"""Benchmark: the neutral defense cell must be free.

The ISSUE-6 defender-side gate: a store deployed with
``DefenseConfig.none()`` — every knob off — must serve the batched login
stream at no more than **5%** cost against the undefended store that the
prior serving gates (``test_bench_store.py``, ``test_bench_serving.py``)
price.  The defense layer's hot-path checks are hoisted per flush, so
the neutral cell runs the same instruction stream as the seed code; this
gate keeps it that way.

The full defense/attack matrix sweep is archived alongside the gate in
``benchmarks/reports/defense_matrix.txt`` — per cell, the attacker's
cost per cracked account on the online and stolen-file paths, and the
defender's verification/refusal cost.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.attacks.economics import defense_matrix_sweep, render_defense_matrix
from repro.core import CenteredDiscretization
from repro.geometry.point import Point
from repro.passwords import (
    DefenseConfig,
    LockoutPolicy,
    PassPointsSystem,
    PasswordStore,
    VerificationService,
    VirtualClock,
)
from repro.study.image import cars_image

ATTEMPTS = 6_000
ACCOUNTS = 25
ROUNDS = 5  # best-of, interleaved, to shield the 5% gate from noise
OVERHEAD_CEILING = 0.05


def _workload():
    image = cars_image()
    rng = np.random.default_rng(2008)

    def password():
        return [
            Point.xy(int(x), int(y))
            for x, y in zip(
                rng.integers(30, image.width - 30, size=5),
                rng.integers(30, image.height - 30, size=5),
            )
        ]

    accounts = {f"user{i}": password() for i in range(ACCOUNTS)}
    stream = []
    names = sorted(accounts)
    for _ in range(ATTEMPTS):
        username = names[int(rng.integers(ACCOUNTS))]
        points = accounts[username]
        if rng.random() < 0.25:
            attempt = [Point.xy(int(p.x) - 25, int(p.y) + 25) for p in points]
        else:
            attempt = list(points)
        stream.append((username, attempt))
    return accounts, stream


def _fresh_service(accounts, **defense_kwargs):
    system = PassPointsSystem(
        image=cars_image(),
        scheme=CenteredDiscretization.for_pixel_tolerance(2, 9),
    )
    store = PasswordStore(
        system=system, policy=LockoutPolicy(max_failures=None), **defense_kwargs
    )
    for username, points in accounts.items():
        store.create_account(username, points)
    return VerificationService(store, max_batch=1024)


def _time_run(accounts, stream, **defense_kwargs):
    service = _fresh_service(accounts, **defense_kwargs)
    start = time.perf_counter()
    outcomes = service.login_many(stream)
    seconds = time.perf_counter() - start
    return seconds, outcomes


def test_neutral_cell_serving_cost(reports_dir, capsys, json_report):
    """DefenseConfig.none() costs < 5% batched serving throughput."""
    accounts, stream = _workload()
    neutral = dict(defense=DefenseConfig.none(), clock=VirtualClock())

    # Warm both paths (kernel dispatch, account material), then interleave
    # timed rounds so drift hits both stores alike.
    _time_run(accounts, stream[:200])
    _time_run(accounts, stream[:200], **neutral)
    plain_best = neutral_best = None
    for _ in range(ROUNDS):
        plain_seconds, plain_outcomes = _time_run(accounts, stream)
        neutral_seconds, neutral_outcomes = _time_run(accounts, stream, **neutral)
        plain_best = min(plain_best or plain_seconds, plain_seconds)
        neutral_best = min(neutral_best or neutral_seconds, neutral_seconds)
    # Not just fast — identical: same decisions, never challenged.
    assert [o.status for o in neutral_outcomes] == [
        o.status for o in plain_outcomes
    ]
    assert all(not o.captcha for o in neutral_outcomes)

    overhead = neutral_best / plain_best - 1.0
    matrix = defense_matrix_sweep()
    lines = [
        f"defense layer cost — {ATTEMPTS:,}-attempt batched stream, "
        f"{ACCOUNTS} accounts, best of {ROUNDS} interleaved rounds",
        "",
        f"  undefended store : {plain_best:.3f} s "
        f"({ATTEMPTS / plain_best:,.0f} logins/s)",
        f"  neutral cell     : {neutral_best:.3f} s "
        f"({ATTEMPTS / neutral_best:,.0f} logins/s)",
        f"  overhead         : {overhead:+.2%} (gate: < {OVERHEAD_CEILING:.0%})",
        "",
        render_defense_matrix(matrix),
        "",
        "Gate: a store deployed with DefenseConfig.none() must match the",
        "undefended baseline within 5% on the batched serving path (and",
        "decide identically).  The matrix above prices every non-neutral",
        "cell: online/offline attacker cost per cracked account vs the",
        "defender's verification cost.  See benchmarks/test_bench_defense.py.",
    ]
    text = "\n".join(lines)
    with capsys.disabled():
        print()
        print(text)
    with open(
        os.path.join(reports_dir, "defense_matrix.txt"), "w", encoding="utf-8"
    ) as handle:
        handle.write(text + "\n")
    json_report(
        "defense_matrix",
        [
            {
                "metric": "neutral_cell_overhead",
                "value": round(overhead, 4),
                "gate": OVERHEAD_CEILING,
            },
            {
                "metric": "undefended_logins_per_s",
                "value": round(ATTEMPTS / plain_best, 1),
            },
        ],
    )

    assert overhead < OVERHEAD_CEILING, (
        f"neutral defense cell costs {overhead:.2%} serving throughput "
        f"(gate: < {OVERHEAD_CEILING:.0%})"
    )
