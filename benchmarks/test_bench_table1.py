"""Benchmark + reproduction: Table 1 (false rates at equal grid sizes).

Regenerates the paper's Table 1 on the simulated field study and prints
paper-vs-measured rows; the benchmark times the full measurement (3339
login attempts × 3 grid sizes × 2 schemes).
"""

from __future__ import annotations

from repro.experiments import table1


def test_table1_false_rates_equal_size(benchmark, report):
    result = benchmark.pedantic(table1.run, rounds=1, iterations=1)
    report(result)
    # Reproduction gates: the paper's orderings must hold.
    robust_fa = [row[2] for row in result.rows]
    robust_fr = [row[3] for row in result.rows]
    assert robust_fr[0] >= robust_fr[-1] > 0
    assert robust_fa[0] >= robust_fa[-1] > 0
    for row in result.rows:
        assert row[4] == 0.0 and row[5] == 0.0  # centered: no errors
