"""Benchmarks + reproductions: the ablation experiments.

Each ablation isolates a design choice DESIGN.md calls out: Robust's grid
selection policy, click accuracy, dictionary seed size, shoulder-surfing
observation accuracy, dictionary seed source, PCCP's viewport persuasion,
the static-grid edge problem, and the n-dimensional extension.
"""

from __future__ import annotations

from repro.experiments import ablations


def test_ablation_grid_selection(benchmark, report):
    result = benchmark.pedantic(ablations.grid_selection, rounds=1, iterations=1)
    report(result)
    by_policy = {row[0]: row for row in result.rows}
    assert by_policy["most_centered"][2] <= by_policy["first_safe"][2]


def test_ablation_click_accuracy(benchmark, report):
    result = benchmark.pedantic(ablations.click_accuracy, rounds=1, iterations=1)
    report(result)
    accept = [row[4] for row in result.rows]
    assert accept[0] >= accept[-1]


def test_ablation_dictionary_size(benchmark, report):
    result = benchmark.pedantic(ablations.dictionary_size, rounds=1, iterations=1)
    report(result)
    robust = [row[3] for row in result.rows]
    assert robust[0] <= robust[-1]


def test_ablation_shoulder_surfing(benchmark, report):
    result = benchmark.pedantic(ablations.shoulder_surfing, rounds=1, iterations=1)
    report(result)
    for row in result.rows:
        assert row[2] >= row[1] - 1e-9  # robust at least as replayable


def test_ablation_hotspot_sources(benchmark, report):
    result = benchmark.pedantic(ablations.hotspot_sources, rounds=1, iterations=1)
    report(result)
    assert len(result.rows) == 3


def test_ablation_pccp_flattening(benchmark, report):
    result = benchmark.pedantic(
        ablations.pccp_flattening, kwargs={"population": 100}, rounds=1, iterations=1
    )
    report(result)
    rows = {row[0]: row for row in result.rows}
    free = rows["free selection (PassPoints/CCP)"]
    viewport = rows["viewport selection (PCCP)"]
    # Viewport persuasion collapses the attack against Centered; Robust's
    # 54-px cells are wider than the 75-px viewport spreading scale, so it
    # barely benefits — persuasion alone cannot rescue Robust.
    assert viewport[1] < free[1]


def test_ablation_edge_problem(benchmark, report):
    result = benchmark.pedantic(ablations.edge_problem, rounds=1, iterations=1)
    report(result)
    by_label = {row[0]: row[1] for row in result.rows}
    assert by_label["false-reject %"] > 0


def test_ablation_ndim(benchmark, report):
    result = benchmark.pedantic(ablations.ndim_advantage, rounds=3, iterations=1)
    report(result)
    advantages = [row[4] for row in result.rows]
    assert advantages == sorted(advantages)
