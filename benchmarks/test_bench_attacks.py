"""Benchmark: work-stealing attack engine vs. static shards vs. serial.

The parallel attack runner exists so paper-scale (and beyond) dictionary
sweeps finish in seconds: the §5.1 password-file grind is embarrassingly
parallel across accounts, and the known-identifier attack across target
passwords.  This bench holds the engine to three floors on 200-account ×
2¹⁰-guess stolen-file workloads:

* **Correctness, always**: ``workers=1`` must be *bit-identical* to the
  serial :func:`~repro.attacks.offline.offline_attack_stolen_file` path
  (it is the serial path, by construction), and every 4-worker merge —
  static and queue mode, uniform and skewed workload — must equal it
  too: outcome tuples, aggregate counts, everything.
* **Latency, when the hardware can**: the full 200 × 2¹⁰ grind in queue
  mode at 4 workers completes in under a second whenever ≥ 4 CPUs are
  schedulable.
* **Work stealing earns its keep, when the hardware can**: on an
  adversarially *skewed* workload — 150 victims planted at the front
  dictionary ranks (they early-stop after a handful of hashes) sorting
  ahead of 50 uncracked accounts that grind the full budget — queue mode
  must beat static contiguous shards by ≥ 1.5x at 4 workers.  Static
  sharding hands all 50 expensive accounts to one worker; the queue
  streams them to whoever is idle.

On smaller machines the latency and speedup floors are physically
unreachable (four processes time-slice one core), so the archived report
(``benchmarks/reports/attack_throughput.txt``) states explicitly that the
gates were **skipped for lack of cores** — a number read months later
must not masquerade as a regression.  The report also carries the
straggler tail (max/mean worker busy seconds) from the engine's
:class:`~repro.attacks.parallel.AttackRunStats` telemetry.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.attacks.offline import (
    offline_attack_known_identifiers,
    offline_attack_stolen_file,
    parse_password_file,
)
from repro.attacks.parallel import ShardedAttackRunner, default_workers
from repro.core.batch import resolve_array_namespace
from repro.core.centered import CenteredDiscretization
from repro.crypto.hashing import Hasher
from repro.experiments.common import (
    default_dataset,
    default_dictionary,
    enrolled_store,
)
from repro.passwords.system import enroll_password

ACCOUNTS = 200
GUESS_BUDGET = 1024  # 2^10 prioritized guesses per account
GATE_WORKERS = 4
#: Queue mode must beat static shards by this factor on the skewed workload.
MIN_QUEUE_SPEEDUP = 1.5
#: The full uniform grind must finish within this wall-clock in queue mode.
MAX_QUEUE_SECONDS = 1.0
#: Skewed workload: this many front-rank victims, the rest full-budget.
SKEW_VICTIMS = 150

SCHEME = CenteredDiscretization.for_pixel_tolerance(2, 9)


@pytest.fixture(scope="module")
def stolen_workload():
    """A 200-account stolen password file plus the attack dictionary."""
    store = enrolled_store(SCHEME, image_name="cars", victims=ACCOUNTS)
    payload = store.dump_records()
    records = parse_password_file(payload)
    assert len(records) == ACCOUNTS
    return records, default_dictionary("cars")


@pytest.fixture(scope="module")
def skewed_workload(stolen_workload):
    """The adversarial shape for static shards: cheap front, expensive tail.

    150 victims enrolled *on* the dictionary's top-ranked entries crack
    (and early-stop) within a handful of guesses; 50 accounts from the
    field-study population survive the whole 2¹⁰ budget.  Usernames sort
    the expensive accounts into one contiguous tail, so a static 4-way
    partition gives the last worker ~80% of all hash work — the precise
    failure mode work stealing exists to fix.
    """
    records, dictionary = stolen_workload
    entries = list(dictionary.prioritized_entries(SKEW_VICTIMS))
    skewed = {}
    for rank in range(SKEW_VICTIMS):
        username = f"victim{rank:03d}"
        skewed[username] = enroll_password(
            SCHEME, entries[rank], Hasher(salt=username.encode())
        )
    survivors = sorted(records)[: ACCOUNTS - SKEW_VICTIMS]
    for index, original in enumerate(survivors):
        skewed[f"zfull{index:03d}"] = records[original]
    assert len(skewed) == ACCOUNTS
    return skewed, dictionary


def _time(fn):
    """Wall-clock one call; returns (seconds, result)."""
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def test_parallel_attack_throughput(
    stolen_workload, skewed_workload, reports_dir, capsys, json_report
):
    """Gate the engine: bit-identical always, fast and balanced with cores."""
    records, dictionary = stolen_workload
    skewed, _ = skewed_workload
    cores = default_workers()
    backend = resolve_array_namespace().__name__
    gated = cores >= GATE_WORKERS

    # -- uniform workload: serial vs 1 worker vs 4-worker queue ------------
    serial_seconds, serial = _time(
        lambda: offline_attack_stolen_file(
            SCHEME, records, dictionary, guess_budget=GUESS_BUDGET
        )
    )
    one_seconds, one = _time(
        lambda: ShardedAttackRunner(workers=1).run_stolen_file(
            SCHEME, records, dictionary, guess_budget=GUESS_BUDGET
        )
    )
    with ShardedAttackRunner(workers=GATE_WORKERS, mode="queue") as runner:
        queue_seconds, queue = _time(
            lambda: runner.run_stolen_file(
                SCHEME, records, dictionary, guess_budget=GUESS_BUDGET
            )
        )
        queue_stats = runner.last_stats
    assert one == serial, "workers=1 must be bit-identical to the serial path"
    assert queue == serial, f"workers={GATE_WORKERS} queue diverged from serial"

    # -- skewed workload: static shards vs the work-stealing queue ---------
    skew_serial_seconds, skew_serial = _time(
        lambda: offline_attack_stolen_file(
            SCHEME, skewed, dictionary, guess_budget=GUESS_BUDGET
        )
    )
    with ShardedAttackRunner(workers=GATE_WORKERS, mode="static") as runner:
        static_seconds, static_result = _time(
            lambda: runner.run_stolen_file(
                SCHEME, skewed, dictionary, guess_budget=GUESS_BUDGET
            )
        )
        static_stats = runner.last_stats
    with ShardedAttackRunner(workers=GATE_WORKERS, mode="queue") as runner:
        steal_seconds, steal_result = _time(
            lambda: runner.run_stolen_file(
                SCHEME, skewed, dictionary, guess_budget=GUESS_BUDGET
            )
        )
        steal_stats = runner.last_stats
    assert static_result == skew_serial, "static-mode merge diverged from serial"
    assert steal_result == skew_serial, "queue-mode merge diverged from serial"
    queue_speedup = static_seconds / steal_seconds

    # Known-identifier attack at the same password count, for the record
    # (too fast at this scale for process sharding to pay on few cores).
    passwords = default_dataset().passwords_on("cars")[:ACCOUNTS]
    known_seconds, known = _time(
        lambda: offline_attack_known_identifiers(SCHEME, passwords, dictionary)
    )
    known_par = ShardedAttackRunner(workers=GATE_WORKERS).run_known_identifiers(
        SCHEME, passwords, dictionary
    )
    assert known_par == known, "known-identifier merge diverged from serial"

    gate_note = (
        "ENFORCED"
        if gated
        else f"SKIPPED for lack of cores: need >= {GATE_WORKERS} schedulable "
        f"CPUs, found {cores} — timings above are one core time-slicing "
        f"{GATE_WORKERS} processes, not a regression"
    )
    lines = [
        f"work-stealing attack engine — {ACCOUNTS} stolen records × "
        f"{GUESS_BUDGET} guesses ({SCHEME.name}, r=9)",
        f"workers detected: {cores}; array backend: {backend}",
        "",
        "uniform workload (field-study accounts, none crack):",
        f"  {'path':<26} {'seconds':>9} {'records/s':>11}",
        f"  {'serial':<26} {serial_seconds:>9.3f} "
        f"{ACCOUNTS / serial_seconds:>11.1f}",
        f"  {'1 worker (serial path)':<26} {one_seconds:>9.3f} "
        f"{ACCOUNTS / one_seconds:>11.1f}",
        f"  {f'queue, {GATE_WORKERS} workers':<26} {queue_seconds:>9.3f} "
        f"{ACCOUNTS / queue_seconds:>11.1f}",
        f"  queue straggler tail (max/mean busy): "
        f"{queue_stats.straggler_ratio:.2f} over {queue_stats.tasks} tasks",
        "",
        f"skewed workload ({SKEW_VICTIMS} front-rank victims + "
        f"{ACCOUNTS - SKEW_VICTIMS} full-budget survivors):",
        f"  {'path':<26} {'seconds':>9} {'straggler':>10}",
        f"  {'serial':<26} {skew_serial_seconds:>9.3f} {'—':>10}",
        f"  {f'static, {GATE_WORKERS} workers':<26} {static_seconds:>9.3f} "
        f"{static_stats.straggler_ratio:>10.2f}",
        f"  {f'queue, {GATE_WORKERS} workers':<26} {steal_seconds:>9.3f} "
        f"{steal_stats.straggler_ratio:>10.2f}",
        f"  queue over static: {queue_speedup:.2f}x "
        f"(floor {MIN_QUEUE_SPEEDUP:.1f}x)",
        "",
        f"gates (<{MAX_QUEUE_SECONDS:.0f}s uniform queue run, "
        f">={MIN_QUEUE_SPEEDUP:.1f}x queue-over-static skewed): {gate_note}",
        f"cracked {serial.cracked}/{serial.attacked} uniform, "
        f"{skew_serial.cracked}/{skew_serial.attacked} skewed; "
        f"{serial.hash_operations:,} hashes per uniform run",
        f"known-identifier attack, {ACCOUNTS} passwords, full "
        f"{dictionary.bits:.0f}-bit dictionary: {known_seconds:.3f}s serial "
        f"(closed form; {known.cracked} cracked)",
        "",
        "every mode/worker combination above is asserted bit-identical to "
        "the serial path on every run (see test_bench_attacks.py)",
    ]
    text = "\n".join(lines)
    with capsys.disabled():
        print()
        print(text)
    with open(
        os.path.join(reports_dir, "attack_throughput.txt"), "w", encoding="utf-8"
    ) as handle:
        handle.write(text + "\n")
    skipped = None if gated else gate_note
    json_report(
        "attack_throughput",
        [
            {
                "metric": "uniform_queue_seconds",
                "value": round(queue_seconds, 3),
                "gate": MAX_QUEUE_SECONDS,
                "skipped": skipped,
            },
            {
                "metric": "skewed_queue_over_static_speedup",
                "value": round(queue_speedup, 3),
                "gate": MIN_QUEUE_SPEEDUP,
                "skipped": skipped,
            },
            {
                "metric": "queue_straggler_ratio",
                "value": round(steal_stats.straggler_ratio, 3),
            },
        ],
    )

    if gated:
        assert queue_seconds < MAX_QUEUE_SECONDS, (
            f"uniform {ACCOUNTS}x{GUESS_BUDGET} queue grind took "
            f"{queue_seconds:.3f}s at {GATE_WORKERS} workers on {cores} CPUs "
            f"(floor {MAX_QUEUE_SECONDS}s)"
        )
        assert queue_speedup >= MIN_QUEUE_SPEEDUP, (
            f"queue mode only {queue_speedup:.2f}x over static shards on the "
            f"skewed workload at {GATE_WORKERS} workers on {cores} CPUs "
            f"(floor {MIN_QUEUE_SPEEDUP}x)"
        )
