"""Benchmark: parallel attack engine vs. the serial offline attacks.

The sharded attack runner exists so paper-scale (and beyond) dictionary
sweeps finish in seconds: the §5.1 password-file grind is embarrassingly
parallel across accounts, and the known-identifier attack across target
passwords.  This bench holds the runner to two floors on a 200-account ×
2¹⁰-guess stolen-file workload (the ISSUE-5 gate shape):

* **Correctness, always**: ``workers=1`` must be *bit-identical* to the
  serial :func:`~repro.attacks.offline.offline_attack_stolen_file` path
  (it is the serial path, by construction), and the 4-worker merge must
  equal it too — outcome tuples, aggregate counts, everything.
* **Throughput, when the hardware can**: ≥ 3x serial throughput at 4
  workers whenever ≥ 4 CPUs are schedulable.  On smaller machines the
  speedup is physically unreachable (four processes time-slice one
  core), so the gate records the measurement and the detected core count
  in the archived report instead of failing on hardware the attack
  engine cannot control.

The archived report (``benchmarks/reports/attack_throughput.txt``) is
self-describing: it opens with the detected worker count and array
backend, so a number read months later carries its own context.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.attacks.offline import (
    offline_attack_known_identifiers,
    offline_attack_stolen_file,
    parse_password_file,
)
from repro.attacks.parallel import ShardedAttackRunner, default_workers
from repro.core.batch import resolve_array_namespace
from repro.core.centered import CenteredDiscretization
from repro.experiments.common import (
    default_dataset,
    default_dictionary,
    enrolled_store,
)

ACCOUNTS = 200
GUESS_BUDGET = 1024  # 2^10 prioritized guesses per account
GATE_WORKERS = 4
MIN_SPEEDUP = 3.0

SCHEME = CenteredDiscretization.for_pixel_tolerance(2, 9)


@pytest.fixture(scope="module")
def stolen_workload():
    """A 200-account stolen password file plus the attack dictionary."""
    store = enrolled_store(SCHEME, image_name="cars", victims=ACCOUNTS)
    payload = store.dump_records()
    records = parse_password_file(payload)
    assert len(records) == ACCOUNTS
    return records, default_dictionary("cars")


def _time(fn):
    """Wall-clock one call; returns (seconds, result)."""
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def test_parallel_attack_throughput(stolen_workload, reports_dir, capsys):
    """Gate the sharded runner: bit-identical always, >=3x when >=4 cores."""
    records, dictionary = stolen_workload
    cores = default_workers()
    backend = resolve_array_namespace().__name__

    serial_seconds, serial = _time(
        lambda: offline_attack_stolen_file(
            SCHEME, records, dictionary, guess_budget=GUESS_BUDGET
        )
    )
    one_seconds, one = _time(
        lambda: ShardedAttackRunner(workers=1).run_stolen_file(
            SCHEME, records, dictionary, guess_budget=GUESS_BUDGET
        )
    )
    par_seconds, par = _time(
        lambda: ShardedAttackRunner(workers=GATE_WORKERS).run_stolen_file(
            SCHEME, records, dictionary, guess_budget=GUESS_BUDGET
        )
    )
    assert one == serial, "workers=1 must be bit-identical to the serial path"
    assert par == serial, f"workers={GATE_WORKERS} merge diverged from serial"
    speedup = serial_seconds / par_seconds

    # Known-identifier attack at the same password count, for the record
    # (too fast at this scale for process sharding to pay on few cores).
    passwords = default_dataset().passwords_on("cars")[:ACCOUNTS]
    known_seconds, known = _time(
        lambda: offline_attack_known_identifiers(SCHEME, passwords, dictionary)
    )
    known_par = ShardedAttackRunner(workers=GATE_WORKERS).run_known_identifiers(
        SCHEME, passwords, dictionary
    )
    assert known_par == known, "known-identifier merge diverged from serial"

    gated = cores >= GATE_WORKERS
    lines = [
        f"parallel attack engine — {ACCOUNTS} stolen records × "
        f"{GUESS_BUDGET} guesses ({SCHEME.name}, r=9)",
        f"workers detected: {cores}; array backend: {backend}",
        "",
        f"{'path':<22} {'seconds':>9} {'records/s':>11}",
        f"{'serial':<22} {serial_seconds:>9.3f} {ACCOUNTS / serial_seconds:>11.1f}",
        f"{'sharded, 1 worker':<22} {one_seconds:>9.3f} {ACCOUNTS / one_seconds:>11.1f}",
        f"{f'sharded, {GATE_WORKERS} workers':<22} {par_seconds:>9.3f} "
        f"{ACCOUNTS / par_seconds:>11.1f}",
        "",
        f"speedup at {GATE_WORKERS} workers: {speedup:.2f}x "
        f"(floor {MIN_SPEEDUP:.0f}x, gated only with >= {GATE_WORKERS} CPUs; "
        f"{'ENFORCED' if gated else f'not enforced on {cores} CPU(s)'})",
        f"cracked {serial.cracked}/{serial.attacked} within budget; "
        f"{serial.hash_operations:,} hashes per run",
        f"known-identifier attack, {ACCOUNTS} passwords, full "
        f"{dictionary.bits:.0f}-bit dictionary: {known_seconds:.3f}s serial "
        f"(closed form; {known.cracked} cracked)",
        "",
        "workers=1 and the 4-worker merge are asserted bit-identical to the "
        "serial path on every run (see test_bench_attacks.py)",
    ]
    text = "\n".join(lines)
    with capsys.disabled():
        print()
        print(text)
    with open(
        os.path.join(reports_dir, "attack_throughput.txt"), "w", encoding="utf-8"
    ) as handle:
        handle.write(text + "\n")

    if gated:
        assert speedup >= MIN_SPEEDUP, (
            f"parallel attack only {speedup:.2f}x over serial at "
            f"{GATE_WORKERS} workers on {cores} CPUs (floor {MIN_SPEEDUP}x)"
        )
