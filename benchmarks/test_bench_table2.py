"""Benchmark + reproduction: Table 2 (false rates at equal guaranteed r)."""

from __future__ import annotations

from repro.experiments import table2


def test_table2_false_rates_equal_r(benchmark, report):
    result = benchmark.pedantic(table2.run, rounds=1, iterations=1)
    report(result)
    robust_fa = [row[2] for row in result.rows]
    robust_fr = [row[3] for row in result.rows]
    assert robust_fr == [0.0, 0.0, 0.0]  # the Table-2 theorem
    assert robust_fa[0] > robust_fa[1] > robust_fa[2] > 0
    # Paper regime: r=4 FA is double-digit (32.1% in the paper's data).
    assert robust_fa[0] >= 15.0
