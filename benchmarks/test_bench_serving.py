"""Benchmark: async serving front-end vs. scalar store login loop.

The ISSUE-3 gate: under 64 concurrent clients on a 10,000-attempt mixed
stream, the :class:`~repro.serving.AsyncVerificationService` must sustain
at least 8x the throughput of the scalar
:meth:`~repro.passwords.store.PasswordStore.login` loop for both of the
paper's discretization schemes, with p50/p95 latency recorded in
``benchmarks/reports/serving_throughput.txt``.

Two client shapes are measured:

* ``window=1`` — fully closed-loop clients (one request in flight each);
  batches are capped at the client count, so this is the hardest shape
  for amortization (report-only);
* ``window=8`` — clients pipeline 8 requests per burst through
  ``submit_many`` (the JSONL protocol supports the same pipelining);
  this is the gated shape.

The static-grid baseline is recorded at a 2x floor, mirroring
``test_bench_store.py``: its scalar ``locate`` is already one
floor-divide, so the achievable ratio is structurally smaller.
"""

from __future__ import annotations

import asyncio
import os
import time

import numpy as np
import pytest

from repro.core import (
    CenteredDiscretization,
    RobustDiscretization,
    StaticGridScheme,
)
from repro.geometry.point import Point
from repro.passwords import (
    LockoutPolicy,
    PassPointsSystem,
    PasswordStore,
)
from repro.serving import AsyncVerificationService, flood_service, mixed_stream
from repro.study.image import cars_image

ATTEMPTS = 10_000
ACCOUNTS = 25
CLIENTS = 64
GATED_WINDOW = 8

#: (scheme, floor at the gated window).  See module docstring for static.
SCHEMES = [
    (CenteredDiscretization.for_pixel_tolerance(2, 9), 8.0),
    (RobustDiscretization.for_pixel_tolerance(2, 9), 8.0),
    (StaticGridScheme(dim=2, cell_size=19), 2.0),
]


@pytest.fixture(scope="module")
def workload():
    """Enrollment points per account plus a mixed 10k-attempt stream."""
    image = cars_image()
    rng = np.random.default_rng(2008)

    def password():
        return [
            Point.xy(int(x), int(y))
            for x, y in zip(
                rng.integers(30, image.width - 30, size=5),
                rng.integers(30, image.height - 30, size=5),
            )
        ]

    accounts = {f"user{i}": password() for i in range(ACCOUNTS)}
    stream = mixed_stream(
        accounts, ATTEMPTS, wrong_fraction=0.25,
        bounds=(image.width, image.height),
    )
    return accounts, stream


def _fresh_store(scheme, accounts):
    system = PassPointsSystem(image=cars_image(), scheme=scheme)
    # No hard lockout: every attempt gets evaluated on both paths (lockout
    # equivalence is tests/test_serving.py's job, not the throughput gate's).
    store = PasswordStore(system=system, policy=LockoutPolicy(max_failures=None))
    for username, points in accounts.items():
        store.create_account(username, points)
    return store


def _measure(scheme, accounts, stream):
    """Scalar loop vs. async flood at window 1 and the gated window."""
    scalar_store = _fresh_store(scheme, accounts)
    start = time.perf_counter()
    for username, attempt in stream:
        scalar_store.login(username, attempt)
    scalar_seconds = time.perf_counter() - start

    results = {}
    for window in (1, GATED_WINDOW):
        # Warm-up run (kernel dispatch + account material), then best-of-3
        # to shield the ratio from scheduler noise.
        service = AsyncVerificationService(_fresh_store(scheme, accounts))
        asyncio.run(flood_service(service, stream[:200], clients=CLIENTS, window=window))
        best = None
        for _ in range(3):
            service = AsyncVerificationService(
                _fresh_store(scheme, accounts), max_batch=1024
            )
            report = asyncio.run(
                flood_service(service, stream, clients=CLIENTS, window=window)
            )
            if best is None or report.seconds < best.seconds:
                best = report
        results[window] = best
    return scalar_seconds, results


def test_async_serving_speedup(workload, reports_dir, capsys, json_report):
    """Async front-end >= 8x scalar login at 64 clients (centered+robust)."""
    accounts, stream = workload
    lines = [
        f"async serving throughput — {ATTEMPTS:,}-attempt mixed stream, "
        f"{ACCOUNTS} accounts, {CLIENTS} concurrent clients",
        "",
        f"{'scheme':<10} {'window':>6} {'scalar s':>9} {'async s':>8} "
        f"{'speedup':>8} {'logins/s':>10} {'p50 ms':>7} {'p95 ms':>7} {'floor':>6}",
    ]
    gated = {}
    for scheme, floor in SCHEMES:
        scalar_seconds, results = _measure(scheme, accounts, stream)
        for window, report in sorted(results.items()):
            speedup = scalar_seconds / report.seconds
            is_gated = window == GATED_WINDOW
            if is_gated:
                gated[scheme.name] = (speedup, floor)
            lines.append(
                f"{scheme.name:<10} {window:>6} {scalar_seconds:>9.3f} "
                f"{report.seconds:>8.3f} {speedup:>7.1f}x "
                f"{report.throughput:>10,.0f} {report.p50_ms:>7.2f} "
                f"{report.p95_ms:>7.2f} "
                f"{(f'{floor:.0f}x' if is_gated else '—'):>6}"
            )
    lines += [
        "",
        "window=1: fully closed-loop clients (batch size capped at the client",
        "count; report-only).  window=8: clients pipeline 8 requests per burst",
        "(the gated shape; floors 8x for the paper's schemes, 2x for the",
        "static baseline whose scalar locate is already one floor-divide).",
        "Latency is submit->decision per attempt (pipelined bursts share",
        "their burst's wall-clock).  Gates fail below the floors; see",
        "benchmarks/test_bench_serving.py.",
    ]
    text = "\n".join(lines)
    with capsys.disabled():
        print()
        print(text)
    with open(
        os.path.join(reports_dir, "serving_throughput.txt"), "w", encoding="utf-8"
    ) as handle:
        handle.write(text + "\n")
    json_report(
        "serving_throughput",
        [
            {
                "metric": f"{name}_async_speedup_window{GATED_WINDOW}",
                "value": round(speedup, 2),
                "gate": floor,
            }
            for name, (speedup, floor) in gated.items()
        ],
    )

    for name, (speedup, floor) in gated.items():
        assert speedup >= floor, (
            f"{name}: async front-end only {speedup:.1f}x over scalar login "
            f"(floor {floor}x at window={GATED_WINDOW}, {CLIENTS} clients)"
        )


def test_async_decisions_match_scalar_on_stream(workload):
    """The benchmarked configuration decides exactly like the scalar loop."""
    accounts, stream = workload
    scheme, _ = SCHEMES[0]
    subset = stream[:1000]

    scalar_store = _fresh_store(scheme, accounts)
    expected = [
        "accept" if scalar_store.login(username, attempt) else "reject"
        for username, attempt in subset
    ]

    async def run():
        service = AsyncVerificationService(_fresh_store(scheme, accounts))
        statuses = [None] * len(subset)

        async def client(offset):
            for index in range(offset, len(subset), CLIENTS):
                username, attempt = subset[index]
                outcome = await service.login(username, attempt)
                statuses[index] = outcome.status

        await asyncio.gather(*(client(offset) for offset in range(CLIENTS)))
        return statuses

    assert asyncio.run(run()) == expected


def test_serving_throughput(benchmark, workload):
    """Proper multi-round timing of the gated async configuration."""
    accounts, stream = workload
    scheme, _ = SCHEMES[0]

    def run():
        service = AsyncVerificationService(
            _fresh_store(scheme, accounts), max_batch=1024
        )
        return asyncio.run(
            flood_service(service, stream, clients=CLIENTS, window=GATED_WINDOW)
        )

    report = benchmark(run)
    assert report.attempts == ATTEMPTS
