"""Benchmark + reproduction: Figure 8 (offline attack, equal r).

The paper's headline security result: at equal guaranteed tolerance,
Robust Discretization's 6r cells make the human-seeded dictionary attack
far more effective than against Centered Discretization's 2r cells
(paper quotes on Cars: r=6 → 45.1% vs 14.8%; r=9 → 79% vs 26%).
"""

from __future__ import annotations

from repro.experiments import figure8


def test_figure8_offline_attack_equal_r(benchmark, report):
    result = benchmark.pedantic(figure8.run, rounds=1, iterations=1)
    report(result)
    # Robust must dominate centered everywhere.
    for image_name, r, centered_pct, robust_pct in result.rows:
        assert robust_pct > centered_pct, (image_name, r)
    # Cars at r=9 must land in the paper's regime (79% vs 26%).
    cars_r9 = next(row for row in result.rows if row[0] == "cars" and row[1] == 9)
    _, _, centered_pct, robust_pct = cars_r9
    assert 60.0 <= robust_pct <= 90.0
    assert 15.0 <= centered_pct <= 40.0
    assert robust_pct >= 2 * centered_pct
