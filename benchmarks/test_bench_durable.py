"""Benchmark: the group-commit write path on a durable (SQLite) backend.

The ISSUE-10 gate.  PR 2's micro-batched service and PR 9's cluster made
durable-backend serving *write-bound*: the kernel work amortizes across a
flush but every changed throttle still cost one SQLite transaction.  This
bench pins down what group commit buys on the same hardware:

* **serving flood** — a 64-client pipelined flood over a sqlite-backed
  :class:`~repro.serving.AsyncVerificationService`, once with the store's
  group-commit path (all of a flush's throttle persists in one
  ``put_throttle_many`` transaction) and once forced to the historical
  per-record-commit path (``group_commit=False``).  Gate: batched ≥3x.
* **bulk enrollment** — :meth:`~repro.passwords.store.PasswordStore.enroll_many`
  (one ``write_batch`` holding one ``put_many`` + one
  ``put_throttle_many``) vs the ``create_account`` loop (two transactions
  per account).  Gate: ≥2x.

Both gates are enforced only when ≥4 CPUs are schedulable (same rule and
wording as the attack/cluster benches — an overloaded box measures
scheduling noise, not the write path).  Bit-identical semantics are
asserted *unconditionally*: the two modes must produce the same decision
stream, the same persisted lockout state, and byte-identical ``dump()``
password files.  Reports land in ``benchmarks/reports/
durable_throughput.txt`` (+ ``.json``).
"""

from __future__ import annotations

import asyncio
import os
import time

import numpy as np

from repro.core.centered import CenteredDiscretization
from repro.geometry.point import Point
from repro.passwords.passpoints import PassPointsSystem
from repro.passwords.policy import LockoutPolicy
from repro.passwords.storage import SQLiteBackend
from repro.passwords.store import PasswordStore
from repro.serving import AsyncVerificationService, flood_service, mixed_stream
from repro.study.image import cars_image

SEED = 2008
ACCOUNTS = int(os.environ.get("DURABLE_ACCOUNTS", "32"))
ATTEMPTS = int(os.environ.get("DURABLE_ATTEMPTS", "4000"))
ENROLL_ACCOUNTS = int(os.environ.get("DURABLE_ENROLL_ACCOUNTS", "300"))
CLIENTS = 64
WINDOW = 8
ROUNDS = 3
GATE_WORKERS = 4
MIN_SERVING_SPEEDUP = 3.0
MIN_ENROLL_SPEEDUP = 2.0


def _cores() -> int:
    from repro.attacks.parallel import default_workers

    return default_workers()


def _gate_note(gated: bool) -> str:
    if gated:
        return "ENFORCED"
    return (
        f"SKIPPED for lack of cores: need >= {GATE_WORKERS} schedulable "
        f"CPUs, found {_cores()} — timings above are one core time-slicing "
        f"{GATE_WORKERS} processes, not a regression"
    )


def _passwords(count: int, prefix: str = "user"):
    image = cars_image()
    rng = np.random.default_rng(SEED)
    return {
        f"{prefix}{i}": [
            Point.xy(int(x), int(y))
            for x, y in zip(
                rng.integers(30, image.width - 30, size=5),
                rng.integers(30, image.height - 30, size=5),
            )
        ]
        for i in range(count)
    }


def _fresh_store(tmp_path, tag: str, group_commit: bool, accounts) -> PasswordStore:
    backend = SQLiteBackend(str(tmp_path / f"{tag}.db"))
    store = PasswordStore(
        system=PassPointsSystem(
            image=cars_image(),
            scheme=CenteredDiscretization.for_pixel_tolerance(2, 9),
        ),
        policy=LockoutPolicy(max_failures=None),
        backend=backend,
        group_commit=group_commit,
    )
    store.enroll_many(list(accounts.items()))
    return store


def _emit(reports_dir, capsys, text: str, mode: str) -> None:
    with capsys.disabled():
        print()
        print(text)
    path = os.path.join(reports_dir, "durable_throughput.txt")
    with open(path, mode, encoding="utf-8") as handle:
        handle.write(text + "\n")


def _flood(store: PasswordStore, stream):
    service = AsyncVerificationService(store, max_batch=1024)
    report = asyncio.run(
        flood_service(service, stream, clients=CLIENTS, window=WINDOW)
    )
    return report


def test_durable_serving_group_commit(tmp_path, reports_dir, capsys, json_report):
    """sqlite-backed async flood: group commit ≥3x forced per-record commits."""
    cores = _cores()
    gated = cores >= GATE_WORKERS
    image = cars_image()
    accounts = _passwords(ACCOUNTS)
    stream = mixed_stream(
        accounts, ATTEMPTS, wrong_fraction=0.25, seed=SEED,
        bounds=(image.width, image.height),
    )

    # -- bit-identical semantics, asserted unconditionally ----------------
    # The flood's client interleaving is nondeterministic, so equivalence
    # is pinned through the sync service with an explicit submission
    # order: same stream, flushed in bursts, both commit modes.
    from repro.passwords.service import VerificationService

    check_group = _fresh_store(tmp_path, "check-group", True, accounts)
    check_record = _fresh_store(tmp_path, "check-record", False, accounts)
    statuses = {}
    for store, tag in ((check_group, "group"), (check_record, "record")):
        service = VerificationService(store, max_batch=256)
        decided = []
        for start in range(0, len(stream), 512):
            for username, attempt in stream[start : start + 512]:
                service.submit(username, attempt)
            decided.extend(outcome.status for outcome in service.flush())
        statuses[tag] = decided
    assert statuses["group"] == statuses["record"]
    assert check_group.backend.dump() == check_record.backend.dump()
    for username in accounts:
        assert check_group.backend.get_throttle(
            username
        ) == check_record.backend.get_throttle(username), username
    check_group.backend.close()
    check_record.backend.close()

    # -- throughput, best-of-ROUNDS per mode ------------------------------
    best = {}
    for mode, group_commit in (("group", True), ("per-record", False)):
        for attempt in range(ROUNDS):
            store = _fresh_store(
                tmp_path, f"{mode}-{attempt}", group_commit, accounts
            )
            report = _flood(store, stream)
            store.backend.close()
            if mode not in best or report.seconds < best[mode].seconds:
                best[mode] = report
    speedup = best["group"].throughput / best["per-record"].throughput
    skipped = None if gated else _gate_note(False)

    lines = [
        f"durable serving write path — sqlite backend, {ATTEMPTS:,}-attempt "
        f"mixed stream, {ACCOUNTS} accounts, {CLIENTS} clients × window "
        f"{WINDOW}",
        f"cores: {cores} schedulable",
        "",
        f"  {'commit mode':<22} {'seconds':>8} {'logins/s':>10} "
        f"{'p50 ms':>8} {'p95 ms':>8}",
    ]
    for mode in ("group", "per-record"):
        report = best[mode]
        label = "group (batched)" if mode == "group" else "per-record (forced)"
        lines.append(
            f"  {label:<22} {report.seconds:>8.3f} "
            f"{report.throughput:>10,.0f} {report.p50_ms:>8.2f} "
            f"{report.p95_ms:>8.2f}"
        )
    lines += [
        f"  group over per-record: {speedup:.2f}x "
        f"(floor {MIN_SERVING_SPEEDUP:.1f}x)",
        "",
        "decisions, persisted lockout state and dump() bytes asserted",
        "identical between the two modes before timing",
        f"gate (>={MIN_SERVING_SPEEDUP:.1f}x on sqlite): {_gate_note(gated)}",
    ]
    _emit(reports_dir, capsys, "\n".join(lines), "w")
    json_report(
        "durable_throughput",
        [
            {
                "metric": "serving_group_commit_speedup",
                "value": round(speedup, 3),
                "gate": MIN_SERVING_SPEEDUP,
                "skipped": skipped,
            },
            {
                "metric": "serving_group_logins_per_s",
                "value": round(best["group"].throughput, 1),
            },
            {
                "metric": "serving_per_record_logins_per_s",
                "value": round(best["per-record"].throughput, 1),
            },
        ],
    )

    if gated:
        assert speedup >= MIN_SERVING_SPEEDUP, (
            f"group commit only {speedup:.2f}x over per-record commits on "
            f"sqlite (floor {MIN_SERVING_SPEEDUP}x)"
        )


def test_bulk_enrollment_speedup(tmp_path, reports_dir, capsys, json_report):
    """enroll_many ≥2x the create_account loop on sqlite, state identical."""
    cores = _cores()
    gated = cores >= GATE_WORKERS
    accounts = _passwords(ENROLL_ACCOUNTS, prefix="enroll")
    scheme = CenteredDiscretization.for_pixel_tolerance(2, 9)

    def fresh(tag: str, group_commit: bool) -> PasswordStore:
        return PasswordStore(
            system=PassPointsSystem(image=cars_image(), scheme=scheme),
            backend=SQLiteBackend(str(tmp_path / f"{tag}.db")),
            group_commit=group_commit,
        )

    bulk_store = fresh("bulk", True)
    started = time.perf_counter()
    enrolled = bulk_store.enroll_many(list(accounts.items()))
    bulk_seconds = time.perf_counter() - started
    assert enrolled == ENROLL_ACCOUNTS

    loop_store = fresh("loop", False)
    started = time.perf_counter()
    for username, points in accounts.items():
        loop_store.create_account(username, points)
    loop_seconds = time.perf_counter() - started

    # Identical persisted state: password file and initial throttles.
    assert bulk_store.backend.dump() == loop_store.backend.dump()
    for username in accounts:
        assert bulk_store.backend.get_throttle(
            username
        ) == loop_store.backend.get_throttle(username)
    bulk_store.backend.close()
    loop_store.backend.close()

    speedup = loop_seconds / bulk_seconds
    skipped = None if gated else _gate_note(False)
    lines = [
        "",
        f"bulk enrollment — {ENROLL_ACCOUNTS} accounts into sqlite",
        f"  enroll_many (one write_batch): {bulk_seconds:.3f}s "
        f"({ENROLL_ACCOUNTS / bulk_seconds:,.0f} accounts/s)",
        f"  create_account loop:           {loop_seconds:.3f}s "
        f"({ENROLL_ACCOUNTS / loop_seconds:,.0f} accounts/s)",
        f"  bulk over loop: {speedup:.2f}x (floor {MIN_ENROLL_SPEEDUP:.1f}x)",
        "  password file and initial throttle states asserted identical",
        f"  gate (>={MIN_ENROLL_SPEEDUP:.1f}x): {_gate_note(gated)}",
    ]
    _emit(reports_dir, capsys, "\n".join(lines), "a")
    json_report(
        "durable_enrollment",
        [
            {
                "metric": "bulk_enrollment_speedup",
                "value": round(speedup, 3),
                "gate": MIN_ENROLL_SPEEDUP,
                "skipped": skipped,
            },
            {
                "metric": "bulk_enrollment_accounts_per_s",
                "value": round(ENROLL_ACCOUNTS / bulk_seconds, 1),
            },
        ],
    )

    if gated:
        assert speedup >= MIN_ENROLL_SPEEDUP, (
            f"enroll_many only {speedup:.2f}x over the create_account loop "
            f"(floor {MIN_ENROLL_SPEEDUP}x)"
        )
