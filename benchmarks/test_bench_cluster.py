"""Benchmark: shard-per-process cluster vs. single-process async serving.

The ISSUE-9 soak: a synthetic population of ``$CLUSTER_USERS`` accounts
(default 2,000 here; ``make cluster-bench`` runs the full 10⁶) is enrolled
*in parallel* — each worker process enrolls its own ring slice — then a
mixed login flood of ``$CLUSTER_ATTEMPTS`` attempts runs through the
router at 64 client connections, pipeline depth 8.  The gate: cluster
throughput must reach ≥2x the single-process :class:`LoginServer` on the
identical stream — enforced only when at least ``$CLUSTER_WORKERS``
(default 4) CPUs are schedulable, because N workers time-slicing one core
measure scheduling overhead, not parallelism (same rule as
``test_bench_attacks.py``).

The second test is the live reshard drill: grow 4→8 SQLite shards under a
closed-loop flood.  Zero-loss is asserted *unconditionally* — every
account's status stream must equal a single-backend scalar replay and
every migrated throttle counter must survive exactly; only the latency
bounds (p99, max cutover window) are gated on core count.

Both tests append to ``benchmarks/reports/cluster_throughput.txt``.
"""

from __future__ import annotations

import asyncio
import json
import os
import time

import numpy as np

from repro.core.centered import CenteredDiscretization
from repro.errors import LockoutError
from repro.geometry.point import Point
from repro.passwords.passpoints import PassPointsSystem
from repro.passwords.policy import LockoutPolicy
from repro.passwords.storage import ShardedBackend, backend_from_uri
from repro.passwords.store import PasswordStore, deployed_store
from repro.serving import (
    LoginServer,
    ServingCluster,
    cluster_username,
    default_cluster_workers,
    flood_server,
    mixed_stream,
    percentile,
    synthetic_points,
)
from repro.study.image import cars_image

SEED = 2008
USERS = int(os.environ.get("CLUSTER_USERS", "2000"))
ATTEMPTS = int(os.environ.get("CLUSTER_ATTEMPTS", "6000"))
GATE_WORKERS = default_cluster_workers()
CLIENTS = 64
PIPELINE_DEPTH = 8
MIN_SPEEDUP = 2.0
DRILL_ACCOUNTS = int(os.environ.get("CLUSTER_DRILL_ACCOUNTS", "24"))
#: Latency bounds for the drill, gated on core count: the longest
#: per-shard cutover window and the drill-wide p99.
MAX_CUTOVER_SECONDS = 2.0
MAX_DRILL_P99_SECONDS = 2.5


def _cores() -> int:
    from repro.attacks.parallel import default_workers

    return default_workers()


def _gate_note(gated: bool) -> str:
    if gated:
        return "ENFORCED"
    return (
        f"SKIPPED for lack of cores: need >= {GATE_WORKERS} schedulable "
        f"CPUs, found {_cores()} — timings above are one core time-slicing "
        f"{GATE_WORKERS} processes, not a regression"
    )


def _attempt_accounts(image):
    """The flood's account subset: ≤1,024 indices spread over the population.

    The stream only ever names these accounts, so the single-process
    baseline enrolls exactly this subset (noted in the report) while the
    cluster workers enroll the *full* population — enrollment is part of
    what the cluster parallelizes.
    """
    sampled = np.unique(
        np.linspace(0, USERS - 1, num=min(USERS, 1024)).astype(int)
    )
    return {
        cluster_username(int(index)): synthetic_points(
            int(index), SEED, image.width, image.height
        )
        for index in sampled
    }


def _emit(reports_dir, capsys, text: str, mode: str) -> None:
    with capsys.disabled():
        print()
        print(text)
    path = os.path.join(reports_dir, "cluster_throughput.txt")
    with open(path, mode, encoding="utf-8") as handle:
        handle.write(text + "\n")


async def _flood_cluster(stream):
    cluster = ServingCluster(
        workers=GATE_WORKERS, users=USERS, seed=SEED, lockout_failures=None
    )
    start_begin = time.perf_counter()
    await cluster.start()
    startup = time.perf_counter() - start_begin
    try:
        host, port = cluster.address
        report = await flood_server(
            host, port, stream, CLIENTS, pipeline_depth=PIPELINE_DEPTH
        )
    finally:
        await cluster.aclose()
    return report, startup


async def _flood_baseline(stream, accounts):
    image = cars_image()
    store = PasswordStore(
        system=PassPointsSystem(
            image=image, scheme=CenteredDiscretization.for_pixel_tolerance(2, 9)
        ),
        policy=LockoutPolicy(max_failures=None),
    )
    for username, points in accounts.items():
        store.create_account(username, points)
    server = await LoginServer(store, port=0).start()
    try:
        host, port = server.address
        report = await flood_server(
            host, port, stream, CLIENTS, pipeline_depth=PIPELINE_DEPTH
        )
    finally:
        await server.aclose()
    return report


def test_cluster_soak_throughput(reports_dir, capsys, json_report):
    """The soak gate: N-worker cluster ≥2x one process, when cores allow."""
    cores = _cores()
    gated = cores >= GATE_WORKERS
    image = cars_image()
    accounts = _attempt_accounts(image)
    bounds = (image.width, image.height)

    cluster_stream = mixed_stream(
        accounts, ATTEMPTS, wrong_fraction=0.2, seed=SEED, bounds=bounds
    )
    baseline_stream = mixed_stream(
        accounts, ATTEMPTS, wrong_fraction=0.2, seed=SEED, bounds=bounds
    )
    cluster_report, startup = asyncio.run(_flood_cluster(cluster_stream))
    baseline_report = asyncio.run(_flood_baseline(baseline_stream, accounts))

    assert cluster_report.tally.get("error", 0) == 0
    assert sum(cluster_report.tally.values()) == ATTEMPTS
    speedup = cluster_report.throughput / baseline_report.throughput

    lines = [
        f"shard-per-process cluster soak — {USERS:,} enrolled accounts, "
        f"{ATTEMPTS:,} attempts, {CLIENTS} connections × depth "
        f"{PIPELINE_DEPTH}",
        f"workers: {GATE_WORKERS} processes; {cores} CPU(s) schedulable",
        f"parallel enrollment + spawn: {startup:.2f}s for {USERS:,} accounts",
        "",
        f"  {'path':<28} {'logins/s':>10} {'p50 ms':>8} {'p95 ms':>8}",
        f"  {f'cluster, {GATE_WORKERS} workers':<28} "
        f"{cluster_report.throughput:>10,.0f} "
        f"{cluster_report.p50_ms:>8.2f} {cluster_report.p95_ms:>8.2f}",
        f"  {'single process':<28} {baseline_report.throughput:>10,.0f} "
        f"{baseline_report.p50_ms:>8.2f} {baseline_report.p95_ms:>8.2f}",
        f"  cluster over single process: {speedup:.2f}x "
        f"(floor {MIN_SPEEDUP:.1f}x)",
        "",
        f"baseline enrolls only the {len(accounts)}-account attempted "
        "subset; the cluster enrolls the full population across workers",
        f"gate (>={MIN_SPEEDUP:.1f}x at {CLIENTS} connections): "
        f"{_gate_note(gated)}",
    ]
    _emit(reports_dir, capsys, "\n".join(lines), "w")
    skipped = None if gated else _gate_note(False)
    json_report(
        "cluster_throughput",
        [
            {
                "metric": "cluster_over_single_process_speedup",
                "value": round(speedup, 3),
                "gate": MIN_SPEEDUP,
                "skipped": skipped,
            },
            {
                "metric": "cluster_logins_per_s",
                "value": round(cluster_report.throughput, 1),
            },
            {
                "metric": "single_process_logins_per_s",
                "value": round(baseline_report.throughput, 1),
            },
        ],
    )

    if gated:
        assert speedup >= MIN_SPEEDUP, (
            f"cluster only {speedup:.2f}x over single-process serving with "
            f"{GATE_WORKERS} workers on {cores} CPUs (floor {MIN_SPEEDUP}x)"
        )


def test_cluster_reshard_drill(reports_dir, tmp_path, capsys, json_report):
    """4→8 live reshard: zero loss always; latency bounds when cores allow."""
    cores = _cores()
    gated = cores >= 4
    old_uris = [f"sqlite:{tmp_path / f'old{i}.db'}" for i in range(4)]
    new_uris = [f"sqlite:{tmp_path / f'new{i}.db'}" for i in range(8)]

    backend = ShardedBackend([backend_from_uri(uri) for uri in old_uris])
    backend.put_meta("scheme", "centered")
    backend.put_meta("tolerance_px", "9")
    backend.put_meta("image", "cars")
    store = deployed_store(backend)
    image = store.system.image
    passwords = {
        cluster_username(index): synthetic_points(
            index, SEED, image.width, image.height
        )
        for index in range(DRILL_ACCOUNTS)
    }
    for username, points in passwords.items():
        store.create_account(username, points)
    backend.close()

    rng = np.random.default_rng(77)
    plans = {
        username: [bool(w) for w in rng.random(6) < 0.35]
        for username in passwords
    }
    executed = {username: [] for username in passwords}
    statuses = {username: [] for username in passwords}
    latencies = []

    async def drill():
        cluster = ServingCluster(shard_uris=old_uris)
        await cluster.start()
        try:
            host, port = cluster.address
            stop = asyncio.Event()

            async def drive(username):
                points = passwords[username]
                plan = plans[username]
                reader, writer = await asyncio.open_connection(host, port)
                try:
                    step = 0
                    while not stop.is_set() or step < len(plan):
                        wrong = plan[step % len(plan)]
                        attempt = (
                            [
                                Point.xy(int(p.x) - 25, int(p.y) + 25)
                                for p in points
                            ]
                            if wrong
                            else points
                        )
                        payload = {
                            "op": "login",
                            "id": step,
                            "user": username,
                            "points": [[int(p.x), int(p.y)] for p in attempt],
                        }
                        sent = time.perf_counter()
                        writer.write(json.dumps(payload).encode() + b"\n")
                        await writer.drain()
                        response = json.loads(await reader.readline())
                        latencies.append(
                            (time.perf_counter() - sent) * 1000.0
                        )
                        assert response.get("status") in (
                            "accept", "reject", "locked",
                        ), response
                        executed[username].append(attempt)
                        statuses[username].append(response["status"])
                        step += 1
                        await asyncio.sleep(0.01)
                finally:
                    writer.close()
                    try:
                        await writer.wait_closed()
                    except ConnectionError:
                        pass

            drivers = [
                asyncio.ensure_future(drive(username))
                for username in passwords
            ]
            await asyncio.sleep(0.1)
            report = await cluster.reshard(new_uris)
            stop.set()
            await asyncio.gather(*drivers)
            return report
        finally:
            await cluster.aclose()

    report = asyncio.run(drill())

    # -- zero-loss, asserted unconditionally ------------------------------
    assert sum(report.moved) == DRILL_ACCOUNTS
    reference = PasswordStore(
        system=PassPointsSystem(
            image=cars_image(),
            scheme=CenteredDiscretization.for_pixel_tolerance(2, 9),
        )
    )
    for username, points in passwords.items():
        reference.create_account(username, points)
    for username, attempts in executed.items():
        expected = []
        for attempt in attempts:
            try:
                expected.append(
                    "accept" if reference.login(username, attempt) else "reject"
                )
            except LockoutError:
                expected.append("locked")
        assert statuses[username] == expected, username
    final = ShardedBackend([backend_from_uri(uri) for uri in new_uris])
    try:
        for username in passwords:
            moved_state = final.get_throttle(username)
            ref_state = reference.backend.get_throttle(username)
            assert moved_state["failures"] == ref_state["failures"]
            assert moved_state["locked"] == ref_state["locked"]
    finally:
        final.close()

    decided = len(latencies)
    p50 = percentile(latencies, 0.50) or 0.0
    p95 = percentile(latencies, 0.95) or 0.0
    p99 = percentile(latencies, 0.99) or 0.0
    windows = ", ".join(f"{w * 1000.0:.0f}" for w in report.cutover_seconds)
    lines = [
        "",
        f"live reshard drill — {report.old_shards}->{report.new_shards} "
        f"shards, {DRILL_ACCOUNTS} accounts under closed-loop flood",
        f"  {report.summary()}",
        f"  cutover windows (ms): {windows}",
        f"  {decided} live decisions during drill: p50 {p50:.1f}ms "
        f"p95 {p95:.1f}ms p99 {p99:.1f}ms",
        "  zero-loss asserted: every status stream equals the scalar "
        "single-backend replay; migrated throttle counters bit-identical",
        f"  latency bounds (p99 < {MAX_DRILL_P99_SECONDS * 1000.0:.0f}ms, "
        f"max cutover < {MAX_CUTOVER_SECONDS * 1000.0:.0f}ms): "
        f"{_gate_note(gated)}",
    ]
    _emit(reports_dir, capsys, "\n".join(lines), "a")
    skipped = None if gated else _gate_note(False)
    json_report(
        "cluster_reshard",
        [
            {
                "metric": "max_cutover_seconds",
                "value": round(report.max_cutover_seconds, 3),
                "gate": MAX_CUTOVER_SECONDS,
                "skipped": skipped,
            },
            {
                "metric": "drill_p99_ms",
                "value": round(p99, 2),
                "gate": MAX_DRILL_P99_SECONDS * 1000.0,
                "skipped": skipped,
            },
            {"metric": "accounts_moved", "value": sum(report.moved)},
        ],
    )

    if gated:
        assert report.max_cutover_seconds < MAX_CUTOVER_SECONDS
        assert p99 < MAX_DRILL_P99_SECONDS * 1000.0
