"""Benchmark: batched verification service vs. scalar store login loop.

The serving stack exists so a deployment can absorb login floods: the
:class:`~repro.passwords.service.VerificationService` resolves the
geometry of a whole micro-batch in one vectorized kernel call and hashes
against a precomputed per-account prefix.  This bench holds it to a hard
floor: service throughput must beat the scalar
:meth:`~repro.passwords.store.PasswordStore.login` loop by at least 10x
on a 10,000-attempt stream, for both of the paper's discretization
schemes (Centered and Robust).  The static-grid baseline is measured and
recorded too, but gated at a lower floor: its scalar ``locate`` is a
single floor-divide, so the remaining per-attempt cost on both paths is
the same salted hash + throttle bookkeeping and the achievable ratio is
structurally smaller.

Decision equivalence on the same stream is asserted inline (the
randomized property suite lives in ``tests/test_verification_service.py``).
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.core import (
    CenteredDiscretization,
    RobustDiscretization,
    StaticGridScheme,
)
from repro.geometry.point import Point
from repro.passwords import (
    LockoutPolicy,
    PassPointsSystem,
    PasswordStore,
    VerificationService,
)
from repro.study.image import cars_image

ATTEMPTS = 10_000
ACCOUNTS = 25

#: Per-scheme speedup floors (see module docstring for the static note).
SCHEMES = [
    (CenteredDiscretization.for_pixel_tolerance(2, 9), 10.0),
    (RobustDiscretization.for_pixel_tolerance(2, 9), 10.0),
    (StaticGridScheme(dim=2, cell_size=19), 2.0),
]


@pytest.fixture(scope="module")
def workload():
    """Enrollment points per account plus a mixed 10k-attempt stream."""
    image = cars_image()
    rng = np.random.default_rng(2008)

    def password():
        return [
            Point.xy(int(x), int(y))
            for x, y in zip(
                rng.integers(30, image.width - 30, size=5),
                rng.integers(30, image.height - 30, size=5),
            )
        ]

    accounts = {f"user{i}": password() for i in range(ACCOUNTS)}
    stream = []
    names = list(accounts)
    for i in range(ATTEMPTS):
        username = names[i % ACCOUNTS]
        points = accounts[username]
        kind = i % 4
        if kind in (0, 1):  # exact re-entry
            attempt = list(points)
        elif kind == 2:  # within tolerance
            attempt = [Point.xy(int(p.x) + 3, int(p.y) - 2) for p in points]
        else:  # wrong password
            attempt = [Point.xy(int(p.x) - 25, int(p.y) + 25) for p in points]
        stream.append((username, attempt))
    return accounts, stream


def _fresh_store(scheme, accounts):
    system = PassPointsSystem(image=cars_image(), scheme=scheme)
    # No hard lockout: every attempt in the stream gets evaluated, so both
    # paths do the full verification work (lockout equivalence is the
    # property suite's job, not the throughput gate's).
    store = PasswordStore(system=system, policy=LockoutPolicy(max_failures=None))
    for username, points in accounts.items():
        store.create_account(username, points)
    return store


def _measure(scheme, accounts, stream):
    """Time the scalar login loop and the batched service on one stream."""
    scalar_store = _fresh_store(scheme, accounts)
    start = time.perf_counter()
    scalar_decisions = [
        scalar_store.login(username, attempt) for username, attempt in stream
    ]
    scalar_seconds = time.perf_counter() - start

    service = VerificationService(_fresh_store(scheme, accounts), max_batch=1024)
    service.login_many(stream[:100])  # warm the kernel + account material
    batch_seconds = float("inf")
    for _ in range(3):  # best-of-3 shields the ratio from scheduler noise
        service = VerificationService(_fresh_store(scheme, accounts), max_batch=1024)
        start = time.perf_counter()
        outcomes = service.login_many(stream)
        batch_seconds = min(batch_seconds, time.perf_counter() - start)

    assert [o.accepted for o in outcomes] == scalar_decisions
    return scalar_seconds, batch_seconds


def test_service_login_speedup(workload, reports_dir, capsys, json_report):
    """Batched service >= 10x over scalar login for centered and robust."""
    accounts, stream = workload
    lines = [
        f"verification service throughput — {ATTEMPTS:,}-attempt login stream, "
        f"{ACCOUNTS} accounts",
        "",
        f"{'scheme':<10} {'scalar s':>10} {'batched s':>10} {'speedup':>9} "
        f"{'logins/s':>12} {'floor':>7}",
    ]
    speedups = {}
    for scheme, floor in SCHEMES:
        scalar_seconds, batch_seconds = _measure(scheme, accounts, stream)
        speedup = scalar_seconds / batch_seconds
        speedups[scheme.name] = (speedup, floor)
        lines.append(
            f"{scheme.name:<10} {scalar_seconds:>10.3f} {batch_seconds:>10.3f} "
            f"{speedup:>8.1f}x {ATTEMPTS / batch_seconds:>12,.0f} "
            f"{floor:>6.0f}x"
        )
    lines += [
        "",
        "floors: 10x for the paper's schemes; 2x for the static baseline, "
        "whose scalar locate is already a single floor-divide "
        "(tests fail below them; see test_bench_store.py)",
    ]
    text = "\n".join(lines)
    with capsys.disabled():
        print()
        print(text)
    with open(
        os.path.join(reports_dir, "store_throughput.txt"), "w", encoding="utf-8"
    ) as handle:
        handle.write(text + "\n")
    json_report(
        "store_throughput",
        [
            {
                "metric": f"{name}_service_speedup",
                "value": round(speedup, 2),
                "gate": floor,
            }
            for name, (speedup, floor) in speedups.items()
        ],
    )

    for name, (speedup, floor) in speedups.items():
        assert speedup >= floor, (
            f"{name}: batched service only {speedup:.1f}x over scalar login "
            f"(floor {floor}x)"
        )


def test_service_throughput(benchmark, workload):
    """Proper multi-round timing of the batched service on the stream."""
    accounts, stream = workload
    scheme, _ = SCHEMES[0]

    def run():
        service = VerificationService(_fresh_store(scheme, accounts), max_batch=1024)
        return service.login_many(stream)

    outcomes = benchmark(run)
    assert len(outcomes) == ATTEMPTS
