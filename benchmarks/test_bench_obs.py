"""Benchmark: telemetry overhead gate and the metrics wire round-trip.

The tentpole's pay-for-what-you-touch contract, measured: the async
serving path with a live :class:`~repro.obs.MetricsRegistry` must sustain
**at least 95%** of the throughput it reaches against the shared no-op
:data:`~repro.obs.NULL_REGISTRY`, on the same 10,000-attempt / 64-client
/ window-8 workload the serving bench gates.  Sub-second flood runs on a
shared machine swing by ±30%, so the gate is computed from **paired
rounds**: each round runs both paths back-to-back (order alternating) so
they share the same machine weather, and the gated figure is the *median*
of the per-round ratios — robust to the frequency/scheduler spikes that
make best-of-N on each side noise-bound.  The measured ratio lands in
``benchmarks/reports/obs_overhead.txt`` (``make obs-bench``).

Alongside the gate, the round-trip check: one process serves logins over
TCP *and* runs an offline attack, then ``{"op": "metrics"}`` and the
``repro metrics --prom`` CLI scraper must both expose the serving
histograms (exact p50/p95/p99) and the attack runner's task/straggler
series from that single registry.
"""

from __future__ import annotations

import asyncio
import os
import statistics

import numpy as np
import pytest

from repro.attacks.dictionary import HumanSeededDictionary
from repro.attacks.parallel import ShardedAttackRunner
from repro.cli import main as cli_main
from repro.core import CenteredDiscretization
from repro.crypto.hashing import Hasher
from repro.geometry.point import Point
from repro.obs import NULL_REGISTRY, MetricsRegistry
from repro.passwords import LockoutPolicy, PassPointsSystem, PasswordStore
from repro.passwords.system import enroll_password
from repro.serving import (
    AsyncVerificationService,
    LoginServer,
    flood_service,
    mixed_stream,
)
from repro.study.image import cars_image

ATTEMPTS = 10_000
ACCOUNTS = 25
CLIENTS = 64
WINDOW = 8
ROUNDS = 9
#: The gate: median paired instrumented/baseline ratio >= this floor.
OVERHEAD_FLOOR = 0.95

SCHEME = CenteredDiscretization.for_pixel_tolerance(2, 9)


@pytest.fixture(scope="module")
def workload():
    """The serving bench's workload shape: 25 accounts, 10k mixed attempts."""
    image = cars_image()
    rng = np.random.default_rng(2008)

    def password():
        return [
            Point.xy(int(x), int(y))
            for x, y in zip(
                rng.integers(30, image.width - 30, size=5),
                rng.integers(30, image.height - 30, size=5),
            )
        ]

    accounts = {f"user{i}": password() for i in range(ACCOUNTS)}
    stream = mixed_stream(
        accounts, ATTEMPTS, wrong_fraction=0.25,
        bounds=(image.width, image.height),
    )
    return accounts, stream


def _fresh_store(accounts, registry):
    system = PassPointsSystem(image=cars_image(), scheme=SCHEME)
    store = PasswordStore(
        system=system,
        policy=LockoutPolicy(max_failures=None),
        registry=registry,
    )
    for username, points in accounts.items():
        store.create_account(username, points)
    return store


def _flood_once(accounts, stream, registry, attempts=None):
    """One flood run against a freshly built store + async service."""
    service = AsyncVerificationService(
        _fresh_store(accounts, registry), max_batch=1024, registry=registry
    )
    workload = stream if attempts is None else stream[:attempts]
    report = asyncio.run(
        flood_service(service, workload, clients=CLIENTS, window=WINDOW)
    )
    return report.throughput


def _paired_rounds(accounts, stream):
    """Paired measurement: both paths run back-to-back each round.

    Each round floods the baseline (``NULL_REGISTRY``) and the
    instrumented path consecutively — they share the same machine
    weather, so the per-round ratio cancels the scheduler/frequency
    drift that dominates sub-second runs.  The order alternates between
    rounds to cancel warm-cache ordering effects.  Returns the list of
    ``(baseline, instrumented)`` throughput pairs.
    """
    _flood_once(accounts, stream, NULL_REGISTRY, attempts=200)
    _flood_once(accounts, stream, MetricsRegistry(), attempts=200)
    pairs = []
    for round_index in range(ROUNDS):
        if round_index % 2 == 0:
            baseline = _flood_once(accounts, stream, NULL_REGISTRY)
            instrumented = _flood_once(accounts, stream, MetricsRegistry())
        else:
            instrumented = _flood_once(accounts, stream, MetricsRegistry())
            baseline = _flood_once(accounts, stream, NULL_REGISTRY)
        pairs.append((baseline, instrumented))
    return pairs


def test_obs_overhead_gate(workload, reports_dir, capsys, json_report):
    """Instrumented serving >= 95% of the NULL_REGISTRY throughput."""
    accounts, stream = workload
    pairs = _paired_rounds(accounts, stream)
    ratios = [instrumented / baseline for baseline, instrumented in pairs]
    ratio = statistics.median(ratios)
    baseline = statistics.median(b for b, _ in pairs)
    instrumented = statistics.median(i for _, i in pairs)
    lines = [
        "telemetry overhead — async serving, "
        f"{ATTEMPTS:,}-attempt mixed stream, {ACCOUNTS} accounts, "
        f"{CLIENTS} clients, window={WINDOW}, "
        f"{ROUNDS} paired rounds (order alternating)",
        "",
        f"{'path':<22} {'median logins/s':>16}",
        f"{'registry disabled':<22} {baseline:>16,.0f}",
        f"{'registry enabled':<22} {instrumented:>16,.0f}",
        "",
        "per-round instrumented/baseline ratios: "
        + " ".join(f"{r:.3f}" for r in ratios),
        f"median ratio: {ratio:.3f} (gate: >= {OVERHEAD_FLOOR})",
        "",
        "The enabled path publishes queue-wait, flush-trigger, batch-size,",
        "kernel/hash-timing and login-status series; the disabled path is",
        "the shared no-op instrument.  See src/repro/obs/metrics.py.",
    ]
    text = "\n".join(lines)
    with capsys.disabled():
        print()
        print(text)
    with open(
        os.path.join(reports_dir, "obs_overhead.txt"), "w", encoding="utf-8"
    ) as handle:
        handle.write(text + "\n")
    json_report(
        "obs_overhead",
        [
            {
                "metric": "instrumented_over_baseline_ratio",
                "value": round(ratio, 4),
                "gate": OVERHEAD_FLOOR,
            },
            {
                "metric": "baseline_logins_per_s",
                "value": round(baseline, 1),
            },
        ],
    )
    assert ratio >= OVERHEAD_FLOOR, (
        f"telemetry overhead too high: instrumented serving at {ratio:.1%} "
        f"of the no-op baseline (floor {OVERHEAD_FLOOR:.0%})"
    )


def test_metrics_roundtrip_serving_and_attack(workload, tmp_path, capsys):
    """One registry, one process: serving + attack series over the wire."""
    accounts, stream = workload
    registry = MetricsRegistry()
    store = _fresh_store(accounts, registry)

    # Attack leg: a serial stolen-file grind publishing into the same
    # registry the server exports.
    seeds = tuple(
        Point.xy(40 + 75 * (i % 4), 60 + 100 * (i // 4)) for i in range(12)
    )
    dictionary = HumanSeededDictionary(
        seed_points=seeds, tuple_length=5, image_name="cars"
    )
    entries = list(dictionary.prioritized_entries(2))
    records = {
        "victim0": enroll_password(SCHEME, entries[0], Hasher(salt=b"victim0"))
    }
    runner = ShardedAttackRunner(workers=1, registry=registry)
    runner.run_stolen_file(SCHEME, records, dictionary, guess_budget=4)

    async def run():
        server = await LoginServer(store, port=0, registry=registry).start()
        host, port = server.address
        import json

        reader, writer = await asyncio.open_connection(host, port)
        try:
            for request_id, (username, points) in enumerate(stream[:64]):
                writer.write(json.dumps({
                    "op": "login", "id": request_id, "user": username,
                    "points": [[int(p.x), int(p.y)] for p in points],
                }).encode() + b"\n")
                await writer.drain()
                await reader.readline()
            writer.write(b'{"op":"metrics","id":900}\n')
            await writer.drain()
            snapshot_response = json.loads(await reader.readline())
            # The CLI scraper, against the same live server, from a worker
            # thread (its socket is blocking).
            exit_code = await asyncio.to_thread(
                cli_main, ["metrics", "--host", host, "--port", str(port), "--prom"]
            )
        finally:
            writer.close()
            await writer.wait_closed()
            await server.aclose()
        return snapshot_response, exit_code

    response, exit_code = asyncio.run(run())
    assert exit_code == 0
    prom_text = capsys.readouterr().out

    assert response["ok"]
    snap = response["metrics"]
    # Serving histograms with exact quantiles.
    queue_wait = snap["histograms"]["serving_queue_wait_seconds"]
    assert queue_wait["count"] == 64
    for quantile in ("p50", "p95", "p99"):
        assert queue_wait[quantile] is not None
    assert snap["histograms"]["service_kernel_seconds"]["p50"] is not None
    assert snap["counters"]["serving_decided_total"] == 64
    # Attack-runner series from the same registry.
    assert snap["counters"]['attack_runs_total{mode="serial"}'] == 1
    assert snap["counters"]["attack_tasks_total"] == 1
    assert snap["gauges"]["attack_straggler_ratio"] == 1.0
    assert snap["histograms"]["attack_worker_busy_seconds"]["count"] == 1

    # The CLI's Prometheus rendering carries the same series.
    assert "serving_queue_wait_seconds_p50 " in prom_text
    assert "serving_queue_wait_seconds_p99 " in prom_text
    assert 'attack_runs_total{mode="serial"} 1' in prom_text
    assert "attack_worker_busy_seconds_count 1" in prom_text
