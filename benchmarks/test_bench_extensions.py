"""Benchmarks + reproductions: the extension experiments.

Analytic-vs-simulated acceptance (pipeline integrity), the §3.2 3-D room
system, and the §5.1 attack-economics wall-clock budgets.
"""

from __future__ import annotations

from repro.experiments import extensions


def test_extension_analytic_acceptance(benchmark, report):
    result = benchmark.pedantic(
        extensions.analytic_acceptance,
        kwargs={"trials": 2500},
        rounds=1,
        iterations=1,
    )
    report(result)
    for comparison in result.comparisons:
        assert float(comparison["measured"]) < 0.04


def test_extension_space3d(benchmark, report):
    result = benchmark.pedantic(extensions.space3d, rounds=1, iterations=1)
    report(result)
    for row in result.rows:
        assert row[1] > row[2]
        assert row[4] == "ok"


def test_extension_attack_economics(benchmark, report):
    result = benchmark.pedantic(
        extensions.attack_economics, rounds=1, iterations=1
    )
    report(result)
    rows = {row[0]: float(row[1]) for row in result.rows}
    assert rows["centered, ids hidden"] > rows["robust, ids hidden"]


def test_extension_divide_conquer(benchmark, report):
    result = benchmark.pedantic(
        extensions.divide_and_conquer, kwargs={"targets": 40}, rounds=1, iterations=1
    )
    report(result)
    assert float(result.comparisons[0]["measured"]) > 25  # ~2^26.5 speedup


def test_extension_usability_profile(benchmark, report):
    result = benchmark.pedantic(
        extensions.usability_profile, rounds=1, iterations=1
    )
    report(result)
    success = {row[0]: row[1] for row in result.rows}
    assert success["static"] < success["centered"] <= success["robust"]
