"""Benchmark: batch engine vs. scalar reference on a 100k-point batch.

The batch engine exists to make attack simulation and analysis sweeps run
at array speed; this bench holds it to a hard floor: ``verify_batch`` must
beat the scalar ``accepts`` loop by at least 20x on a 100,000-candidate
batch, for every scheme.  (Typical measured speedups are far higher —
see ``benchmarks/reports/batch_throughput.txt``.)

Correctness on the same inputs is asserted inline: the mask produced by
the batch engine must equal the scalar loop's decisions element-for-element
(the randomized cross-scheme agreement suite lives in
``tests/test_core_batch.py``).
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.core import (
    CenteredDiscretization,
    RobustDiscretization,
    StaticGridScheme,
    discretize_batch,
    verify_batch,
)
from repro.geometry.point import Point

BATCH_SIZE = 100_000
MIN_SPEEDUP = 20.0

SCHEMES = [
    CenteredDiscretization.for_pixel_tolerance(2, 9),
    RobustDiscretization.for_pixel_tolerance(2, 9),
    StaticGridScheme(dim=2, cell_size=19),
]


@pytest.fixture(scope="module")
def candidates():
    rng = np.random.default_rng(2008)
    array = rng.integers(0, 640, size=(BATCH_SIZE, 2)).astype(float)
    points = [Point.xy(int(x), int(y)) for x, y in array]
    return array, points


def _measure(scheme, array, points):
    """Time the scalar accepts loop and the batch path on the same inputs."""
    enrollment = scheme.enroll(Point.xy(320, 240))
    start = time.perf_counter()
    scalar_mask = [scheme.accepts(enrollment, p) for p in points]
    scalar_seconds = time.perf_counter() - start

    batch_mask = verify_batch(scheme, enrollment, array)  # warm the kernel
    batch_seconds = float("inf")
    for _ in range(3):  # best-of-3 shields the ratio from scheduler noise
        start = time.perf_counter()
        batch_mask = verify_batch(scheme, enrollment, array)
        batch_seconds = min(batch_seconds, time.perf_counter() - start)

    assert np.array_equal(np.array(scalar_mask), batch_mask)
    return scalar_seconds, batch_seconds


def test_verify_batch_speedup(candidates, reports_dir, capsys, json_report):
    """verify_batch >= 20x over the scalar loop at 100k points, per scheme."""
    array, points = candidates
    lines = [
        f"batch engine throughput — {BATCH_SIZE:,}-candidate verification",
        "",
        f"{'scheme':<10} {'scalar s':>10} {'batch s':>10} {'speedup':>9} "
        f"{'batch pts/s':>14}",
    ]
    speedups = {}
    for scheme in SCHEMES:
        scalar_seconds, batch_seconds = _measure(scheme, array, points)
        speedup = scalar_seconds / batch_seconds
        speedups[scheme.name] = speedup
        lines.append(
            f"{scheme.name:<10} {scalar_seconds:>10.3f} {batch_seconds:>10.5f} "
            f"{speedup:>8.0f}x {BATCH_SIZE / batch_seconds:>14,.0f}"
        )

    lines += [
        "",
        f"floor: {MIN_SPEEDUP:.0f}x on every scheme "
        "(tests fail below it; see test_bench_batch.py)",
    ]
    text = "\n".join(lines)
    with capsys.disabled():
        print()
        print(text)
    with open(
        os.path.join(reports_dir, "batch_throughput.txt"), "w", encoding="utf-8"
    ) as handle:
        handle.write(text + "\n")
    json_report(
        "batch_throughput",
        [
            {
                "metric": f"{name}_verify_batch_speedup",
                "value": round(speedup, 1),
                "gate": MIN_SPEEDUP,
            }
            for name, speedup in speedups.items()
        ],
    )

    for name, speedup in speedups.items():
        assert speedup >= MIN_SPEEDUP, (
            f"{name}: batch verify only {speedup:.1f}x over scalar "
            f"(floor {MIN_SPEEDUP}x)"
        )


def test_discretize_batch_throughput(benchmark, candidates):
    """Proper multi-round timing of batch enrollment at 100k points."""
    array, _ = candidates
    scheme = CenteredDiscretization.for_pixel_tolerance(2, 9)
    scheme.batch()  # build the kernel outside the timed region
    result = benchmark(discretize_batch, scheme, array)
    assert result.count == BATCH_SIZE


def test_verify_batch_throughput(benchmark, candidates):
    """Proper multi-round timing of batch verification at 100k points."""
    array, _ = candidates
    scheme = CenteredDiscretization.for_pixel_tolerance(2, 9)
    enrollment = scheme.enroll(Point.xy(320, 240))
    verify_batch(scheme, enrollment, array)  # warm
    mask = benchmark(verify_batch, scheme, enrollment, array)
    assert mask.shape == (BATCH_SIZE,)
