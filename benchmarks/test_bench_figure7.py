"""Benchmark + reproduction: Figure 7 (offline attack, equal grid sizes).

2^36-entry human-seeded dictionary vs 481 field passwords per scheme/size,
evaluated in closed form; the figure's claim is that the schemes perform
similarly when square sizes match.
"""

from __future__ import annotations

from repro.experiments import figure7


def test_figure7_offline_attack_equal_size(benchmark, report):
    result = benchmark.pedantic(figure7.run, rounds=1, iterations=1)
    report(result)
    for image_name, size, centered_pct, robust_pct, bits in result.rows:
        assert abs(centered_pct - robust_pct) <= 12.0, (image_name, size)
        assert 35.5 <= bits <= 36.5
    # Crack rates must increase with square size per image/scheme.
    by_series = {}
    for image_name, size, centered_pct, robust_pct, _ in result.rows:
        by_series.setdefault(image_name, []).append((centered_pct, robust_pct))
    for series in by_series.values():
        centered = [c for c, _ in series]
        robust = [r for _, r in series]
        assert centered == sorted(centered)
        assert robust == sorted(robust)
