"""Benchmark + reproduction: Figures 1–6 (the paper's illustrative figures)."""

from __future__ import annotations

from repro.experiments import illustrations


def test_figure1_worst_case_geometry(benchmark, report):
    result = benchmark.pedantic(
        illustrations.figure1, args=(9,), rounds=5, iterations=1
    )
    report(result)
    for comparison in result.comparisons:
        assert abs(float(comparison["measured"]) - float(comparison["paper"])) < 1e-6


def test_figure2_worked_example(benchmark, report):
    result = benchmark.pedantic(illustrations.figure2, rounds=5, iterations=1)
    report(result)
    by_label = {c["label"]: c for c in result.comparisons}
    assert by_label["worked example i"]["measured"] == 0
    assert by_label["worked example d"]["measured"] == 7.5
    assert by_label["x'=10 accepted (1=yes)"]["measured"] == 1


def test_figures_3_4_image_standins(benchmark, report):
    result = benchmark.pedantic(illustrations.figures_3_4, rounds=1, iterations=1)
    report(result)
    assert len(result.rows) == 2


def test_figures_5_6_framings(benchmark, report):
    result = benchmark.pedantic(illustrations.figures_5_6, rounds=5, iterations=1)
    report(result)
    assert len(result.rows) == 2
