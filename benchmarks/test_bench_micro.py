"""Micro-benchmarks: the per-operation costs of the core primitives.

These are throughput measurements (proper multi-round pytest-benchmark
timings) for the operations a deployed system performs: discretizing a
click-point, verifying a login, hashing with iteration counts, and the
closed-form attack decision for one password.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks.dictionary import HumanSeededDictionary
from repro.attacks.offline import offline_attack_known_identifiers
from repro.core.centered import CenteredDiscretization
from repro.core.robust import RobustDiscretization
from repro.crypto.hashing import Hasher
from repro.geometry.point import Point
from repro.passwords.system import enroll_password, verify_password
from repro.study.dataset import PasswordSample
from repro.study.fieldstudy import FieldStudyConfig, generate_field_study
from repro.study.image import cars_image

POINTS = [
    Point.xy(42, 61),
    Point.xy(130, 88),
    Point.xy(227, 154),
    Point.xy(318, 222),
    Point.xy(401, 290),
]


@pytest.fixture(scope="module")
def centered():
    return CenteredDiscretization.for_pixel_tolerance(2, 9)


@pytest.fixture(scope="module")
def robust():
    return RobustDiscretization.for_pixel_tolerance(2, 9)


def test_micro_centered_enroll(benchmark, centered):
    point = Point.xy(227, 154)
    benchmark(centered.enroll, point)


def test_micro_centered_locate(benchmark, centered):
    enrolled = centered.enroll(Point.xy(227, 154))
    benchmark(centered.locate, Point.xy(230, 150), enrolled.public)


def test_micro_robust_enroll(benchmark, robust):
    point = Point.xy(227, 154)
    benchmark(robust.enroll, point)


def test_micro_robust_locate(benchmark, robust):
    enrolled = robust.enroll(Point.xy(227, 154))
    benchmark(robust.locate, Point.xy(230, 150), enrolled.public)


def test_micro_enroll_password_centered(benchmark, centered):
    benchmark(enroll_password, centered, POINTS)


def test_micro_verify_password_centered(benchmark, centered):
    stored = enroll_password(centered, POINTS)
    benchmark(verify_password, centered, stored, POINTS)


def test_micro_verify_password_robust(benchmark, robust):
    stored = enroll_password(robust, POINTS)
    benchmark(verify_password, robust, stored, POINTS)


def test_micro_hash_single(benchmark):
    hasher = Hasher()
    benchmark(hasher.hash_scalars, list(range(20)))


def test_micro_hash_iterated_1000(benchmark):
    hasher = Hasher(iterations=1000)
    benchmark(hasher.hash_scalars, list(range(20)))


def test_micro_attack_single_password(benchmark, robust):
    rng = np.random.default_rng(3)
    seeds = tuple(
        Point.xy(int(rng.integers(0, 451)), int(rng.integers(0, 331)))
        for _ in range(150)
    )
    dictionary = HumanSeededDictionary(
        seed_points=seeds, tuple_length=5, image_name="cars"
    )
    target = PasswordSample(0, 0, "cars", tuple(POINTS))
    benchmark(
        offline_attack_known_identifiers,
        robust,
        [target],
        dictionary,
        count_entries=False,
    )


def test_micro_study_generation_small(benchmark):
    config = FieldStudyConfig(
        participants=10,
        passwords_total=20,
        logins_total=100,
        seed=5,
        images=(cars_image(),),
    )
    benchmark.pedantic(generate_field_study, args=(config,), rounds=3, iterations=1)
