"""Shared benchmark fixtures.

The experiment benches time the *analysis* (the paper's measurement), not
dataset generation, so the shared simulated study and dictionaries are
warmed once per session.  Each bench prints its paper-vs-measured report
through the ``report`` fixture (bypassing capture so the rows land in
``bench_output.txt``) and archives it under ``benchmarks/reports/``.
"""

from __future__ import annotations

import json
import os

import pytest


def pytest_report_header(config):
    """Bench-run context line: workers, scheduling mode, array backend.

    Archived reports quote throughput numbers; this header (and the
    matching lines inside ``attack_throughput.txt``) makes every bench run
    self-describing about the hardware, the attack-engine scheduling
    configuration (``REPRO_ATTACK_MODE`` / ``REPRO_ATTACK_TASK_SIZE``
    environment overrides included), the storage commit mode
    (``$REPRO_STORE_COMMIT``) and the backend that produced it.
    """
    from repro.attacks.parallel import default_workers
    from repro.core.batch import resolve_array_namespace
    from repro.obs import get_registry
    from repro.passwords.storage import commit_mode
    from repro.serving.cluster import default_cluster_workers

    mode = os.environ.get("REPRO_ATTACK_MODE", "queue")
    task_size = os.environ.get("REPRO_ATTACK_TASK_SIZE", "auto")
    obs = "enabled" if get_registry().enabled else "disabled (REPRO_OBS_DISABLED)"
    return (
        f"attack engine: {default_workers()} worker(s) schedulable, "
        f"mode={mode}, task size={task_size}; "
        f"serving cluster: {default_cluster_workers()} shard worker(s) "
        f"($CLUSTER_WORKERS); "
        f"array backend: {resolve_array_namespace().__name__}; "
        f"obs registry: {obs}; "
        f"storage commit mode: {commit_mode()} ($REPRO_STORE_COMMIT)"
    )


@pytest.fixture(scope="session", autouse=True)
def warm_shared_data():
    """Generate the shared dataset/dictionaries before any timing runs."""
    from repro.experiments.common import default_dataset, default_dictionary

    default_dataset()
    default_dictionary("cars")
    default_dictionary("pool")


@pytest.fixture(scope="session")
def reports_dir():
    path = os.path.join(os.path.dirname(__file__), "reports")
    os.makedirs(path, exist_ok=True)
    return path


@pytest.fixture(scope="session")
def json_report(reports_dir):
    """Write the machine-readable companion of a ``.txt`` bench report.

    Each gated bench calls ``json_report(name, entries)`` with one entry
    per gated (or report-only) metric: ``{"metric": ..., "value": ...,
    "gate": floor-or-None, "skipped": reason-or-None}``.  The file lands
    as ``benchmarks/reports/<name>.json`` next to the human-readable
    ``.txt``, so the perf trajectory is diffable across PRs without
    parsing prose.
    """

    def _write(name: str, entries, **extra):
        payload = {
            "name": name,
            "entries": [
                {
                    "metric": entry["metric"],
                    "value": entry["value"],
                    "gate": entry.get("gate"),
                    "skipped": entry.get("skipped"),
                }
                for entry in entries
            ],
        }
        payload.update(extra)
        path = os.path.join(reports_dir, f"{name}.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        return path

    return _write


@pytest.fixture()
def report(capsys, reports_dir):
    """Print an ExperimentResult's report uncaptured and archive it."""

    def _report(result):
        text = result.rendered()
        with capsys.disabled():
            print()
            print(text)
        path = os.path.join(reports_dir, f"{result.experiment_id}.txt")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        return result

    return _report
