"""Benchmark + reproduction: Table 3 (theoretical password space, exact)."""

from __future__ import annotations

from repro.experiments import table3
from repro.experiments.paper_values import TABLE3


def test_table3_password_space(benchmark, report):
    result = benchmark.pedantic(table3.run, rounds=3, iterations=1)
    report(result)
    # Every published number must match exactly (closed form).
    for comparison in result.comparisons:
        if comparison["paper"] is None:
            continue
        delta = abs(float(comparison["measured"]) - float(comparison["paper"]))
        assert delta <= 0.11, comparison["label"]
    assert len(result.rows) == len(TABLE3)
