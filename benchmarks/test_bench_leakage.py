"""Benchmark + reproduction: §5.2 information-revealed analysis."""

from __future__ import annotations

from repro.experiments import leakage_exp


def test_leakage_identifier_information(benchmark, report):
    result = benchmark.pedantic(
        leakage_exp.run, kwargs={"sample_passwords": 25}, rounds=1, iterations=1
    )
    report(result)
    by_label = {c["label"]: c for c in result.comparisons}
    assert by_label["centered identifier bits (r=8)"]["measured"] == 8.0
    assert by_label["robust identifier storage bits"]["measured"] == 2
    # The paper's conjecture: knowing the exact center pixel (centered)
    # should not be dramatically more useful than the central region
    # (robust) — the mean-rank advantage stays small.
    advantage = abs(float(by_label[
        "leak advantage: robust mean rank frac - centered"
    ]["measured"]))
    assert advantage < 0.25
