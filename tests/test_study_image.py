"""Tests for the synthetic image model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import DomainError, ParameterError
from repro.geometry.point import Point
from repro.study.image import (
    PAPER_IMAGE_HEIGHT,
    PAPER_IMAGE_WIDTH,
    Hotspot,
    StudyImage,
    canonical_images,
    cars_image,
    pool_image,
    random_image,
)


class TestHotspot:
    def test_validation(self):
        with pytest.raises(ParameterError):
            Hotspot(x=1, y=1, spread=0, weight=1)
        with pytest.raises(ParameterError):
            Hotspot(x=1, y=1, spread=1, weight=0)


class TestStudyImage:
    def test_paper_dimensions(self):
        cars = cars_image()
        assert (cars.width, cars.height) == (PAPER_IMAGE_WIDTH, PAPER_IMAGE_HEIGHT)
        assert (cars.width, cars.height) == (451, 331)

    def test_contains(self):
        image = cars_image()
        assert image.contains(Point.xy(0, 0))
        assert image.contains(Point.xy(450, 330))
        assert not image.contains(Point.xy(451, 0))
        assert not image.contains(Point.xy(0, -1))

    def test_contains_rejects_non_2d(self):
        with pytest.raises(DomainError):
            cars_image().contains(Point.of(1))

    def test_clamp(self):
        image = cars_image()
        assert image.clamp(-5.2, 400.9) == (0, 330)
        assert image.clamp(10.4, 10.6) == (10, 11)

    def test_pixel_count(self):
        assert cars_image().pixel_count == 451 * 331

    def test_validation(self):
        spot = Hotspot(x=1, y=1, spread=1, weight=1)
        with pytest.raises(ParameterError):
            StudyImage(name="x", width=0, height=10, hotspots=(spot,))
        with pytest.raises(ParameterError):
            StudyImage(name="x", width=10, height=10, hotspots=())
        with pytest.raises(ParameterError):
            StudyImage(
                name="x", width=10, height=10, hotspots=(spot,), background_rate=1.0
            )


class TestSalience:
    def test_salience_map_normalized(self):
        dense = cars_image().salience_map()
        assert dense.shape == (331, 451)
        assert abs(float(dense.sum()) - 1.0) < 1e-9
        assert (dense >= 0).all()

    def test_salience_peaks_at_hotspots(self):
        image = cars_image()
        top = max(image.hotspots, key=lambda h: h.weight / h.spread**2)
        x, y = int(top.x), int(top.y)
        near = image.salience(x, y)
        far_x, far_y = (x + 150) % image.width, (y + 120) % image.height
        assert near > image.salience(far_x, far_y) or near > 10 * (
            image.background_rate / image.pixel_count
        )

    def test_render_ascii_shape(self):
        art = cars_image().render_ascii(columns=40)
        lines = art.splitlines()
        assert all(len(line) == 40 for line in lines)
        assert len(lines) >= 5


class TestCanonicalImages:
    def test_deterministic(self):
        assert cars_image() == cars_image()
        assert pool_image() == pool_image()

    def test_images_differ(self):
        cars, pool = canonical_images()
        assert cars.name == "cars"
        assert pool.name == "pool"
        assert cars.hotspots != pool.hotspots

    def test_cars_more_concentrated_than_pool(self):
        """Cars must remain the more attackable image (paper's asymmetry)."""
        cars, pool = canonical_images()
        assert cars.background_rate < pool.background_rate
        assert len(cars.hotspots) < len(pool.hotspots)

    def test_json_roundtrip(self):
        image = pool_image()
        assert StudyImage.from_json(image.to_json()) == image


class TestRandomImage:
    def test_reproducible(self):
        a = random_image("x", seed=5)
        b = random_image("x", seed=5)
        assert a == b
        assert a != random_image("x", seed=6)

    def test_hotspots_inside_margin(self):
        image = random_image("x", seed=1, margin=20)
        for spot in image.hotspots:
            assert 20 <= spot.x <= image.width - 20
            assert 20 <= spot.y <= image.height - 20

    def test_zipf_weights_descending(self):
        image = random_image("x", seed=2, zipf_exponent=1.0)
        weights = [h.weight for h in image.hotspots]
        assert weights == sorted(weights, reverse=True)

    def test_validation(self):
        with pytest.raises(ParameterError):
            random_image("x", seed=1, hotspot_count=0)
        with pytest.raises(ParameterError):
            random_image("x", seed=1, width=20, height=20, margin=15)
