"""Tests for Centered Discretization — the paper's §3 contribution.

The load-bearing properties, each property-tested:

* the enrolled point is *exactly centered* in its segment;
* acceptance ⟺ the candidate lies in ``[x − r, x + r)`` per axis
  (zero false accepts / false rejects by construction);
* offsets are always in ``[0, 2r)`` and indices ≥ −1 for points ≥ 0;
* the pixel convention gives a perfectly symmetric integer tolerance.
"""

from __future__ import annotations

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.centered import CenteredDiscretization, discretize_1d, locate_1d
from repro.errors import DimensionMismatchError, ParameterError, VerificationError
from repro.geometry.point import Point

radii = st.one_of(
    st.integers(min_value=1, max_value=50),
    st.fractions(min_value=Fraction(1, 2), max_value=50, max_denominator=6),
)
coords = st.one_of(
    st.integers(min_value=-10**6, max_value=10**6),
    st.fractions(min_value=-10**4, max_value=10**4, max_denominator=100),
)


class TestWorkedExample:
    """The paper's §3.1 worked example, verbatim."""

    def test_enrollment(self):
        index, offset = discretize_1d(13, 5.5)
        assert index == 0
        assert offset == 7.5

    def test_login_accepted(self):
        assert locate_1d(10, 7.5, 5.5) == 0

    def test_exact_arithmetic_variant(self):
        r = Fraction(11, 2)
        index, offset = discretize_1d(13, r)
        assert index == 0
        assert offset == Fraction(15, 2)

    def test_scheme_object(self):
        scheme = CenteredDiscretization(dim=1, r=Fraction(11, 2))
        enrolled = scheme.enroll(Point.of(13))
        assert enrolled.secret == (0,)
        assert enrolled.public == (Fraction(15, 2),)
        assert scheme.accepts(enrolled, Point.of(10))


class TestFormulas:
    @given(coords, radii)
    def test_offset_in_range(self, x, r):
        _, offset = discretize_1d(x, r)
        assert 0 <= offset < 2 * r

    @given(coords, radii)
    def test_reconstruction_identity(self, x, r):
        index, offset = discretize_1d(x, r)
        # x - r = index * 2r + offset  (the div/mod identity)
        assert index * (2 * r) + offset == x - r

    @given(coords, radii)
    def test_point_exactly_centered(self, x, r):
        index, offset = discretize_1d(x, r)
        left_edge = offset + index * (2 * r)
        assert left_edge == x - r  # segment is [x - r, x + r)

    @given(st.integers(min_value=0, max_value=10**6), radii)
    def test_index_at_least_minus_one_for_nonnegative_x(self, x, r):
        """Paper: i >= -1, with i = -1 iff x within r of the origin."""
        index, _ = discretize_1d(x, r)
        assert index >= -1
        if index == -1:
            assert x < r

    def test_rejects_nonpositive_r(self):
        with pytest.raises(ParameterError):
            discretize_1d(5, 0)
        with pytest.raises(ParameterError):
            locate_1d(5, 0, -1)


class TestAcceptanceIffWithinTolerance:
    """The zero-false-accept/zero-false-reject theorem, property-tested."""

    @given(coords, coords, radii)
    def test_1d(self, x, x_prime, r):
        index, offset = discretize_1d(x, r)
        accepted = locate_1d(x_prime, offset, r) == index
        within = (x - r) <= x_prime < (x + r)
        assert accepted == within

    @given(
        st.tuples(coords, coords),
        st.tuples(coords, coords),
        radii,
    )
    @settings(max_examples=60)
    def test_2d(self, original, candidate, r):
        scheme = CenteredDiscretization(dim=2, r=r)
        enrolled = scheme.enroll(Point(original))
        accepted = scheme.accepts(enrolled, Point(candidate))
        within = all(
            (o - r) <= c < (o + r) for o, c in zip(original, candidate)
        )
        assert accepted == within

    @given(st.tuples(coords, coords, coords), radii)
    @settings(max_examples=30)
    def test_3d_acceptance_region_contains_original(self, original, r):
        scheme = CenteredDiscretization(dim=3, r=r)
        enrolled = scheme.enroll(Point(original))
        region = scheme.acceptance_region(enrolled)
        assert region.contains(Point(original))
        assert region.center() == Point(original).exact() or region.center() == Point(original)


class TestPixelConvention:
    def test_symmetric_integer_tolerance(self):
        """t = 9: every integer click within Chebyshev 9 accepted, 10 rejected."""
        scheme = CenteredDiscretization.for_pixel_tolerance(2, 9)
        enrolled = scheme.enroll(Point.xy(100, 200))
        for dx in (-9, 0, 9):
            for dy in (-9, 0, 9):
                assert scheme.accepts(enrolled, Point.xy(100 + dx, 200 + dy))
        assert not scheme.accepts(enrolled, Point.xy(110, 200))
        assert not scheme.accepts(enrolled, Point.xy(100, 190))

    @given(
        st.integers(min_value=0, max_value=1000),
        st.integers(min_value=0, max_value=1000),
        st.integers(min_value=0, max_value=12),
        st.integers(min_value=-20, max_value=20),
        st.integers(min_value=-20, max_value=20),
    )
    @settings(max_examples=80)
    def test_acceptance_is_chebyshev_ball(self, x, y, tolerance, dx, dy):
        scheme = CenteredDiscretization.for_pixel_tolerance(2, tolerance)
        enrolled = scheme.enroll(Point.xy(x, y))
        accepted = scheme.accepts(enrolled, Point.xy(x + dx, y + dy))
        assert accepted == (max(abs(dx), abs(dy)) <= tolerance)

    def test_cell_size_odd(self):
        assert CenteredDiscretization.for_pixel_tolerance(2, 9).cell_size == 19
        assert CenteredDiscretization.for_pixel_tolerance(2, 0).cell_size == 1

    def test_for_grid_size(self):
        scheme = CenteredDiscretization.for_grid_size(2, 13)
        assert scheme.cell_size == 13
        assert scheme.r == Fraction(13, 2)


class TestSchemeInterface:
    def test_dim_checked(self):
        scheme = CenteredDiscretization(dim=2, r=5)
        with pytest.raises(DimensionMismatchError):
            scheme.enroll(Point.of(1))
        with pytest.raises(DimensionMismatchError):
            scheme.locate(Point.of(1), (0, 0))

    def test_locate_public_arity_checked(self):
        scheme = CenteredDiscretization(dim=2, r=5)
        with pytest.raises(VerificationError):
            scheme.locate(Point.xy(1, 2), (0,))

    def test_original_point_recovered(self):
        scheme = CenteredDiscretization(dim=2, r=Fraction(19, 2))
        original = Point.xy(127, 83)
        enrolled = scheme.enroll(original)
        assert scheme.original_point(enrolled) == original.exact()

    def test_offset_space_size(self):
        # Paper §5.2: r = 8 -> 2r = 16 -> 16x16 = 256 offsets (8 bits).
        scheme = CenteredDiscretization(dim=2, r=8)
        assert scheme.offset_space_size() == 256

    def test_enroll_many(self):
        scheme = CenteredDiscretization(dim=2, r=5)
        points = [Point.xy(1, 2), Point.xy(30, 40)]
        enrollments = scheme.enroll_many(points)
        assert len(enrollments) == 2
        for enrollment, point in zip(enrollments, points):
            assert scheme.accepts(enrollment, point)

    def test_guaranteed_tolerance_and_max_accepted(self):
        scheme = CenteredDiscretization(dim=2, r=7)
        enrolled = scheme.enroll(Point.xy(50, 50))
        assert scheme.guaranteed_tolerance == 7
        assert scheme.max_accepted_distance(enrolled) == 7

    def test_invalid_construction(self):
        with pytest.raises(ParameterError):
            CenteredDiscretization(dim=2, r=0)
        with pytest.raises(DimensionMismatchError):
            CenteredDiscretization(dim=0, r=5)

    def test_name(self):
        assert CenteredDiscretization(2, 5).name == "centered"
