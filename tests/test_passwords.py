"""Tests for the password-system layer: PassPoints, storage flow, store."""

from __future__ import annotations

import pytest

from repro.core.centered import CenteredDiscretization
from repro.core.robust import RobustDiscretization
from repro.crypto.hashing import Hasher
from repro.errors import (
    DomainError,
    LockoutError,
    ParameterError,
    StoreError,
    VerificationError,
)
from repro.geometry.point import Point
from repro.passwords.passpoints import PassPointsSystem
from repro.passwords.policy import AccountThrottle, LockoutPolicy
from repro.passwords.store import PasswordStore
from repro.passwords.system import (
    StoredPassword,
    enroll_password,
    locate_secrets,
    verify_password,
)
from repro.study.image import cars_image

POINTS = [
    Point.xy(42, 61),
    Point.xy(130, 88),
    Point.xy(227, 154),
    Point.xy(318, 222),
    Point.xy(401, 290),
]


def shifted(points, dx, dy=0):
    return [Point.xy(int(p.x) + dx, int(p.y) + dy) for p in points]


@pytest.fixture(params=["centered", "robust"])
def scheme(request):
    if request.param == "centered":
        return CenteredDiscretization.for_pixel_tolerance(2, 9)
    return RobustDiscretization.for_pixel_tolerance(2, 9)


class TestEnrollVerify:
    def test_exact_reentry_accepted(self, scheme):
        stored = enroll_password(scheme, POINTS)
        assert verify_password(scheme, stored, POINTS)

    def test_within_tolerance_accepted(self, scheme):
        stored = enroll_password(scheme, POINTS)
        assert verify_password(scheme, stored, shifted(POINTS, 5, -4))

    def test_far_reentry_rejected(self, scheme):
        stored = enroll_password(scheme, POINTS)
        assert not verify_password(scheme, stored, shifted(POINTS, 60))

    def test_single_wrong_point_rejects_whole_password(self, scheme):
        stored = enroll_password(scheme, POINTS)
        attempt = list(POINTS)
        attempt[2] = Point.xy(int(POINTS[2].x) + 60, int(POINTS[2].y))
        assert not verify_password(scheme, stored, attempt)

    def test_order_matters(self, scheme):
        stored = enroll_password(scheme, POINTS)
        assert not verify_password(scheme, stored, list(reversed(POINTS)))

    def test_wrong_click_count_raises(self, scheme):
        stored = enroll_password(scheme, POINTS)
        with pytest.raises(VerificationError):
            verify_password(scheme, stored, POINTS[:3])

    def test_empty_password_rejected(self, scheme):
        with pytest.raises(VerificationError):
            enroll_password(scheme, [])

    def test_locate_secrets_matches_enrollment(self, scheme):
        stored = enroll_password(scheme, POINTS)
        secrets = locate_secrets(scheme, stored, POINTS)
        assert len(secrets) == 5
        # Re-assembling the hash material must reproduce the digest.
        flat = tuple(i for s in secrets for i in s)
        assert stored.record.matches(flat)

    def test_stored_password_json_roundtrip(self, scheme):
        stored = enroll_password(scheme, POINTS, Hasher(salt=b"u", iterations=3))
        restored = StoredPassword.from_json(stored.to_json())
        assert restored == stored
        assert verify_password(scheme, restored, POINTS)

    def test_salt_changes_digest_not_acceptance(self, scheme):
        a = enroll_password(scheme, POINTS, Hasher(salt=b"alice"))
        b = enroll_password(scheme, POINTS, Hasher(salt=b"bob"))
        assert a.record.digest != b.record.digest
        assert verify_password(scheme, a, POINTS)
        assert verify_password(scheme, b, POINTS)


class TestPassPointsSystem:
    def test_domain_enforced(self):
        system = PassPointsSystem(
            image=cars_image(),
            scheme=CenteredDiscretization.for_pixel_tolerance(2, 9),
        )
        bad = list(POINTS)
        bad[0] = Point.xy(9999, 10)
        with pytest.raises(DomainError):
            system.enroll(bad)

    def test_click_count_enforced(self):
        system = PassPointsSystem(
            image=cars_image(),
            scheme=CenteredDiscretization.for_pixel_tolerance(2, 9),
        )
        with pytest.raises(VerificationError):
            system.enroll(POINTS[:4])

    def test_requires_2d_scheme(self):
        with pytest.raises(ParameterError):
            PassPointsSystem(
                image=cars_image(), scheme=CenteredDiscretization(3, 5)
            )

    def test_enroll_sample_checks_image(self, tiny_study):
        system = PassPointsSystem(
            image=cars_image(),
            scheme=CenteredDiscretization.for_pixel_tolerance(2, 9),
        )
        sample = tiny_study.passwords[0]
        stored = system.enroll_sample(sample)
        assert system.verify(stored, list(sample.points))

    def test_with_salt(self):
        system = PassPointsSystem(
            image=cars_image(),
            scheme=CenteredDiscretization.for_pixel_tolerance(2, 9),
        )
        salted = system.with_salt(b"alice")
        assert salted.hasher.salt == b"alice"
        stored = salted.enroll(POINTS)
        assert salted.verify(stored, POINTS)


class TestLockoutPolicy:
    def test_delays(self):
        policy = LockoutPolicy(max_failures=None, delay_base_seconds=1, delay_growth=2)
        assert policy.delay_after(0) == 0
        assert policy.delay_after(1) == 1
        assert policy.delay_after(3) == 4

    def test_validation(self):
        with pytest.raises(ParameterError):
            LockoutPolicy(max_failures=0)
        with pytest.raises(ParameterError):
            LockoutPolicy(delay_base_seconds=-1)
        with pytest.raises(ParameterError):
            LockoutPolicy(delay_growth=0.5)
        with pytest.raises(ParameterError):
            LockoutPolicy().delay_after(-1)

    def test_throttle_locks_after_max(self):
        throttle = AccountThrottle(LockoutPolicy(max_failures=2))
        throttle.record(False)
        assert not throttle.locked
        throttle.record(False)
        assert throttle.locked
        with pytest.raises(LockoutError):
            throttle.check()

    def test_success_resets_failures(self):
        throttle = AccountThrottle(LockoutPolicy(max_failures=3))
        throttle.record(False)
        throttle.record(True)
        assert throttle.failures == 0


class TestPasswordStore:
    def _store(self):
        system = PassPointsSystem(
            image=cars_image(),
            scheme=CenteredDiscretization.for_pixel_tolerance(2, 9),
        )
        return PasswordStore(system=system, policy=LockoutPolicy(max_failures=3))

    def test_create_login(self):
        store = self._store()
        store.create_account("alice", POINTS)
        assert store.login("alice", POINTS)
        assert store.login("alice", shifted(POINTS, 3))
        assert not store.login("alice", shifted(POINTS, 40))

    def test_duplicate_account_rejected(self):
        store = self._store()
        store.create_account("alice", POINTS)
        with pytest.raises(StoreError):
            store.create_account("alice", POINTS)

    def test_unknown_account(self):
        store = self._store()
        with pytest.raises(StoreError):
            store.login("ghost", POINTS)
        with pytest.raises(StoreError):
            store.delete_account("ghost")

    def test_lockout_flow(self):
        store = self._store()
        store.create_account("alice", POINTS)
        for _ in range(3):
            assert not store.login("alice", shifted(POINTS, 30, 30))
        assert store.is_locked("alice")
        with pytest.raises(LockoutError):
            store.login("alice", POINTS)

    def test_per_user_salts_differ(self):
        store = self._store()
        store.create_account("alice", POINTS)
        store.create_account("bob", POINTS)
        assert (
            store.record_for("alice").record.digest
            != store.record_for("bob").record.digest
        )

    def test_dump_load_roundtrip(self):
        store = self._store()
        store.create_account("alice", POINTS)
        store.create_account("bob", shifted(POINTS, 7))
        payload = store.dump_records()
        fresh = self._store()
        fresh.load_records(payload)
        assert fresh.usernames == ("alice", "bob")
        assert fresh.login("alice", POINTS)
        assert fresh.login("bob", shifted(POINTS, 7))

    def test_delete_account(self):
        store = self._store()
        store.create_account("alice", POINTS)
        store.delete_account("alice")
        assert store.usernames == ()
