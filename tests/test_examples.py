"""Smoke tests: every example script runs end-to-end via the public API.

Each example is executed in-process (``runpy`` with ``__main__``
semantics, stdout captured) so the session-cached simulated dataset is
shared and the whole suite stays fast.  A light content assertion per
example guards against scripts that "run" but print nothing meaningful.
"""

from __future__ import annotations

import io
import runpy
from contextlib import redirect_stdout
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

#: script name -> fragment its output must contain.
EXPECTED_OUTPUT = {
    "async_serving.py": "4-shard store",
    "quickstart.py": "edge problem",
    "dictionary_attack.py": "dictionary",
    "field_study_replication.py": "Table 1",
    "grind_million.py": "stolen-file grind",
    "online_attack_and_ccp.py": "online",
    "password_space_explorer.py": "empirical effective space",
    "storage_backends.py": "durable backend",
    "usability_and_3d.py": "3-D",
}


def test_every_example_is_covered():
    """The expectation table tracks the examples directory exactly."""
    assert {p.name for p in EXAMPLES_DIR.glob("*.py")} == set(EXPECTED_OUTPUT)


@pytest.mark.parametrize("script", sorted(EXPECTED_OUTPUT))
def test_example_runs_end_to_end(script):
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    output = buffer.getvalue()
    assert len(output) > 100, f"{script} produced almost no output"
    assert EXPECTED_OUTPUT[script].lower() in output.lower(), (
        f"{script} output lacks expected fragment "
        f"{EXPECTED_OUTPUT[script]!r}"
    )
