"""Tests for repro.geometry.region (Box) and repro.geometry.grid (Grid)."""

from __future__ import annotations

from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import DimensionMismatchError, ParameterError
from repro.geometry.grid import Grid
from repro.geometry.point import Point
from repro.geometry.region import Box, centered_box

coords = st.integers(min_value=-1000, max_value=1000)
sizes = st.integers(min_value=1, max_value=60)
points_2d = st.builds(Point.xy, coords, coords)


class TestBoxBasics:
    def test_half_open_membership(self):
        box = Box(Point.xy(0, 0), Point.xy(10, 5))
        assert box.contains(Point.xy(0, 0))
        assert box.contains(Point.xy(9, 4))
        assert not box.contains(Point.xy(10, 0))
        assert not box.contains(Point.xy(0, 5))

    def test_rejects_empty_box(self):
        with pytest.raises(ParameterError):
            Box(Point.xy(0, 0), Point.xy(0, 5))

    def test_rejects_dim_mismatch(self):
        with pytest.raises(DimensionMismatchError):
            Box(Point.xy(0, 0), Point.of(5))

    def test_sides_and_volume(self):
        box = Box(Point.xy(0, 0), Point.xy(4, 3))
        assert box.sides == (4, 3)
        assert box.volume() == 12

    def test_center(self):
        box = Box(Point.xy(0, 0), Point.xy(10, 4))
        assert box.center() == Point.xy(5, 2)

    def test_margin_interior_and_exterior(self):
        box = Box(Point.xy(0, 0), Point.xy(10, 10))
        assert box.margin(Point.xy(5, 5)) == 5
        assert box.margin(Point.xy(1, 5)) == 1
        assert box.margin(Point.xy(-2, 5)) == -2

    def test_contains_dim_mismatch(self):
        with pytest.raises(DimensionMismatchError):
            Box(Point.xy(0, 0), Point.xy(1, 1)).contains(Point.of(0))


class TestBoxIntersection:
    def test_disjoint(self):
        a = Box(Point.xy(0, 0), Point.xy(5, 5))
        b = Box(Point.xy(5, 0), Point.xy(10, 5))  # touching edge: half-open
        assert not a.intersects(b)
        assert a.intersection(b) is None
        assert a.overlap_volume(b) == 0

    def test_overlap(self):
        a = Box(Point.xy(0, 0), Point.xy(6, 6))
        b = Box(Point.xy(4, 4), Point.xy(10, 10))
        overlap = a.intersection(b)
        assert overlap == Box(Point.xy(4, 4), Point.xy(6, 6))
        assert a.overlap_volume(b) == 4

    @given(points_2d, sizes, points_2d, sizes)
    def test_overlap_commutative(self, lo_a, size_a, lo_b, size_b):
        a = Box(lo_a, lo_a.translate(size_a, size_a))
        b = Box(lo_b, lo_b.translate(size_b, size_b))
        assert a.overlap_volume(b) == b.overlap_volume(a)
        assert a.intersects(b) == b.intersects(a)

    @given(points_2d, sizes)
    def test_self_overlap_is_volume(self, lo, size):
        box = Box(lo, lo.translate(size, size))
        assert box.overlap_volume(box) == box.volume()


class TestIntegerPoints:
    def test_count_matches_enumeration(self):
        box = Box(Point.xy(Fraction(1, 2), -1), Point.xy(4, Fraction(5, 2)))
        enumerated = list(box.integer_points())
        assert box.count_integer_points() == len(enumerated)
        for point in enumerated:
            assert box.contains(point)

    @given(points_2d, sizes)
    def test_count_for_integer_boxes(self, lo, size):
        box = Box(lo, lo.translate(size, size))
        assert box.count_integer_points() == size * size

    def test_centered_box_integer_tolerance(self):
        # r = t + 1/2 around an integer point: exactly (2t+1)^2 pixels.
        box = centered_box(Point.xy(10, 10), Fraction(19, 2))
        assert box.count_integer_points() == 19 * 19

    def test_centered_box_validates_radius(self):
        with pytest.raises(ParameterError):
            centered_box(Point.xy(0, 0), 0)


class TestGrid:
    def test_cell_of_basics(self):
        grid = Grid((10, 10), (0, 0))
        assert grid.cell_of(Point.xy(0, 0)) == (0, 0)
        assert grid.cell_of(Point.xy(9, 9)) == (0, 0)
        assert grid.cell_of(Point.xy(10, 9)) == (1, 0)
        assert grid.cell_of(Point.xy(-1, 0)) == (-1, 0)

    def test_offset_grid(self):
        grid = Grid((10, 10), (3, 7))
        assert grid.cell_of(Point.xy(3, 7)) == (0, 0)
        assert grid.cell_of(Point.xy(2, 7)) == (-1, 0)

    def test_square_constructor(self):
        grid = Grid.square(3, 5, offset=1)
        assert grid.dim == 3
        assert grid.cell_sizes == (5, 5, 5)
        assert grid.offsets == (1, 1, 1)

    def test_square_rejects_bad_dim(self):
        with pytest.raises(ParameterError):
            Grid.square(0, 5)

    def test_validation(self):
        with pytest.raises(ParameterError):
            Grid((0, 10), (0, 0))
        with pytest.raises(DimensionMismatchError):
            Grid((10, 10), (0,))
        with pytest.raises(ParameterError):
            Grid((), ())

    @given(points_2d, sizes, coords)
    def test_point_inside_own_cell_box(self, point, size, offset):
        grid = Grid.square(2, size, offset=offset)
        index = grid.cell_of(point)
        box = grid.cell_box(index)
        assert box.contains(point)
        assert box.volume() == size * size

    @given(points_2d, sizes, coords)
    def test_margin_nonnegative_and_bounded(self, point, size, offset):
        grid = Grid.square(2, size, offset=offset)
        margin = grid.margin(point)
        assert 0 <= margin <= Fraction(size, 2)

    def test_is_safe(self):
        grid = Grid.square(1, 10)
        assert grid.is_safe(Point.of(5), 5)
        assert grid.is_safe(Point.of(3), 3)
        assert not grid.is_safe(Point.of(2), 3)

    def test_translate(self):
        grid = Grid.square(2, 10).translate(3, 4)
        assert grid.offsets == (3, 4)

    def test_cell_box_dim_mismatch(self):
        with pytest.raises(DimensionMismatchError):
            Grid.square(2, 10).cell_box((0,))

    def test_cells_covering(self):
        grid = Grid.square(2, 10)
        box = Box(Point.xy(5, 5), Point.xy(25, 15))
        cells = set(grid.cells_covering(box))
        assert cells == {(0, 0), (1, 0), (2, 0), (0, 1), (1, 1), (2, 1)}

    def test_cells_covering_exact_boundary(self):
        grid = Grid.square(1, 10)
        # hi exactly on a cell edge: that cell is excluded (half-open).
        cells = grid.cells_covering(Box(Point.of(0), Point.of(10)))
        assert cells == ((0,),)

    @given(points_2d, sizes)
    def test_cells_covering_includes_containing_cell(self, point, size):
        grid = Grid.square(2, size)
        box = Box(point, point.translate(3, 3))
        assert grid.cell_of(point) in set(grid.cells_covering(box))
