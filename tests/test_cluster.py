"""Cluster-serving tests: ring routing, hardening, reshard correctness.

The ISSUE-9 acceptance criteria live here:

* the router's :class:`~repro.passwords.storage.ConsistentHashRing` places
  accounts exactly where :class:`~repro.passwords.storage.ShardedBackend`
  does, so a worker process and the backend agree on shard ownership;
* the hardening contracts hold — an oversize request line yields a
  structured ``request_too_large`` error on a *surviving* connection, deep
  pipelining hits the in-flight cap (counted), and a slow reader triggers
  write-buffer backpressure without stalling other connections;
* a live reshard (2→4 here; the 4→8 drill runs in
  ``benchmarks/test_bench_cluster.py``) under a concurrent closed-loop
  flood loses no decision and no lockout/throttle transition: every
  account's observed status sequence equals a single-backend scalar
  replay, and the migrated throttle counters match it exactly;
* ``rebalance(clear=False)`` interleaved with live logins (the in-process
  property test) never contradicts the single-backend reference and never
  moves a failure counter backwards.

Spawned-worker tests use the real ``multiprocessing`` spawn path, so each
costs ~1–2 s of worker startup; they are kept few and load-bearing.
"""

from __future__ import annotations

import asyncio
import json

import numpy as np
import pytest

from repro.core.centered import CenteredDiscretization
from repro.errors import ClusterError, LockoutError, ParameterError, StoreError
from repro.geometry.point import Point
from repro.obs import MetricsRegistry
from repro.passwords.passpoints import PassPointsSystem
from repro.passwords.storage import (
    ConsistentHashRing,
    ShardedBackend,
    backend_from_uri,
    rebalance,
)
from repro.passwords.store import PasswordStore, deployed_store
from repro.serving import (
    LineReader,
    LoginServer,
    OVERSIZE,
    ServingCluster,
    cluster_username,
    merge_stats,
    synthetic_points,
)
from repro.study.image import cars_image


def _centered_system():
    return PassPointsSystem(
        image=cars_image(), scheme=CenteredDiscretization.for_pixel_tolerance(2, 9)
    )


def _wire(points):
    return [[int(p.x), int(p.y)] for p in points]


def _wrong(points):
    return [Point.xy(int(p.x) - 25, int(p.y) + 25) for p in points]


async def _request(reader, writer, payload: dict) -> dict:
    writer.write(json.dumps(payload).encode() + b"\n")
    await writer.drain()
    return json.loads(await reader.readline())


# -- ring ---------------------------------------------------------------------


def test_ring_matches_sharded_backend():
    """Router-side ring placement == backend placement, key for key."""
    backend = ShardedBackend([backend_from_uri("memory:") for _ in range(5)])
    ring = ConsistentHashRing(5)
    for index in range(500):
        username = cluster_username(index)
        assert ring.index_for(username) == backend.shard_index_for(username)
    backend.close()


def test_ring_validates_shard_count():
    with pytest.raises(StoreError):
        ConsistentHashRing(0)


def test_synthetic_points_deterministic_and_in_bounds():
    image = cars_image()
    first = synthetic_points(7, 2008, image.width, image.height)
    again = synthetic_points(7, 2008, image.width, image.height)
    assert _wire(first) == _wire(again)
    for p in first:
        assert 0 <= int(p.x) < image.width and 0 <= int(p.y) < image.height
    other = synthetic_points(8, 2008, image.width, image.height)
    assert _wire(first) != _wire(other)


# -- LineReader framing -------------------------------------------------------


def _feed_reader(*chunks: bytes, eof: bool = True) -> asyncio.StreamReader:
    reader = asyncio.StreamReader()
    for chunk in chunks:
        reader.feed_data(chunk)
    if eof:
        reader.feed_eof()
    return reader


async def test_line_reader_splits_lines_across_chunks():
    reader = _feed_reader(b"alpha\nbe", b"ta\ngam", b"ma")
    lines = LineReader(reader, max_line_bytes=64)
    assert await lines.readline() == b"alpha"
    assert await lines.readline() == b"beta"
    # Unterminated final line is still delivered at EOF.
    assert await lines.readline() == b"gamma"
    assert await lines.readline() is None


async def test_line_reader_oversize_preserves_tail():
    """An oversize line is consumed through its newline; the next good
    line on the same connection parses cleanly."""
    big = b"x" * 100
    reader = _feed_reader(big + b"\n" + b'{"op":"ping"}\n')
    lines = LineReader(reader, max_line_bytes=16)
    assert (await lines.readline()) is OVERSIZE
    assert await lines.readline() == b'{"op":"ping"}'
    assert await lines.readline() is None


async def test_line_reader_limit_is_inclusive():
    exact = b"y" * 16
    reader = _feed_reader(exact + b"\n" + b"z" * 17 + b"\n")
    lines = LineReader(reader, max_line_bytes=16)
    assert await lines.readline() == exact
    assert (await lines.readline()) is OVERSIZE
    assert await lines.readline() is None


# -- server hardening ---------------------------------------------------------


def _server_store():
    store = PasswordStore(system=_centered_system())
    points = [Point.xy(40 + 60 * i, 50 + 40 * i) for i in range(5)]
    store.create_account("alice", points)
    return store, points


async def test_server_oversize_gets_structured_error():
    """Oversize input is a per-request failure, not a dead connection."""
    store, points = _server_store()
    server = await LoginServer(store, max_request_bytes=256).start()
    reader, writer = await asyncio.open_connection(*server.address)

    writer.write(b"A" * 1000 + b"\n")
    await writer.drain()
    response = json.loads(await reader.readline())
    assert response["ok"] is False
    assert response["error"] == "request_too_large"
    assert "256" in response["message"]

    # The connection survived and serves the next request.
    response = await _request(
        reader, writer,
        {"op": "login", "id": 2, "user": "alice", "points": _wire(points)},
    )
    assert response == {"id": 2, "ok": True, "status": "accept"}
    assert server.oversize_rejected == 1
    writer.close()
    await server.aclose()


async def test_server_rejects_bad_hardening_knobs():
    store, _ = _server_store()
    with pytest.raises(ParameterError):
        LoginServer(store, max_request_bytes=0)
    with pytest.raises(ParameterError):
        LoginServer(store, max_pipeline=0)


async def test_server_pipeline_cap_applies_backpressure():
    """A deep pipelined burst crosses the in-flight cap: the reader
    pauses (counted) but every request is still answered."""
    store, points = _server_store()
    server = await LoginServer(
        store, max_pipeline=2, max_batch=4, flush_interval=0.005
    ).start()
    reader, writer = await asyncio.open_connection(*server.address)

    burst = b"".join(
        json.dumps(
            {"op": "login", "id": i, "user": "alice", "points": _wire(points)}
        ).encode() + b"\n"
        for i in range(20)
    )
    writer.write(burst)
    await writer.drain()
    responses = [json.loads(await reader.readline()) for _ in range(20)]
    assert sorted(r["id"] for r in responses) == list(range(20))
    assert all(r["status"] == "accept" for r in responses)
    assert server.backpressure["pipeline"] > 0
    writer.close()
    await server.aclose()


async def test_server_write_buffer_backpressure_scoped_to_slow_client():
    """A reader that stops consuming fills its write buffer: the server
    pauses that connection (counted) while other connections stay live."""
    registry = MetricsRegistry()
    histogram = registry.histogram("probe_seconds", op="probe")
    histogram.observe_many(np.linspace(0.0, 2.0, 8192))
    store, _ = _server_store()
    server = await LoginServer(
        store, registry=registry, write_high_water=4096
    ).start()
    host, port = server.address

    slow_reader, slow_writer = await asyncio.open_connection(
        host, port, limit=2 ** 22
    )
    frame = b'{"op":"metrics","id":1,"samples":true}\n'

    async def trickle():
        # One frame per pass, never reading: responses (large: 8192 raw
        # samples each) pile into the kernel/transport buffers until the
        # server's write-buffer check trips between reads.
        for _ in range(400):
            if server.backpressure["write_buffer"] > 0:
                return
            slow_writer.write(frame)
            await slow_writer.drain()
            await asyncio.sleep(0.005)

    await asyncio.wait_for(trickle(), timeout=30)
    assert server.backpressure["write_buffer"] > 0

    # A second connection is unaffected by the slow one.
    fast_reader, fast_writer = await asyncio.open_connection(host, port)
    pong = await asyncio.wait_for(
        _request(fast_reader, fast_writer, {"op": "ping", "id": 9}), timeout=5
    )
    assert pong["status"] == "pong"
    fast_writer.close()

    # Draining the slow client releases the parked responses.
    async def drain_slow():
        while True:
            line = await slow_reader.readline()
            if not line:
                return

    slow_writer.close()
    await asyncio.wait_for(drain_slow(), timeout=30)
    await server.aclose()


# -- merged stats -------------------------------------------------------------


def test_merge_stats_sums_and_recomputes_mean():
    merged = merge_stats(
        [
            {"submitted": 10, "decided": 10, "flushes": 5, "largest_batch": 4,
             "accounts": 3, "defense": {"pepper": False}},
            {"submitted": 30, "decided": 30, "flushes": 5, "largest_batch": 9,
             "accounts": 5, "defense": {"pepper": False}},
        ]
    )
    assert merged["submitted"] == 40
    assert merged["accounts"] == 8
    assert merged["largest_batch"] == 9
    # 40 decided over 10 flushes — not the mean of per-worker means.
    assert merged["mean_batch"] == 4.0
    assert merged["defense"] == {"pepper": False}
    assert merge_stats([])["mean_batch"] == 0.0


# -- router end-to-end (spawned workers) --------------------------------------


async def test_router_routes_merges_and_hardens(tmp_path):
    """One synthetic 2-worker cluster exercises the whole router surface:
    ring routing, enroll-then-login, merged stats/metrics, error
    forwarding, and the router's own oversize handling."""
    image = cars_image()
    cluster = ServingCluster(workers=2, users=30, seed=11, max_request_bytes=512)
    await cluster.start()
    try:
        host, port = cluster.address
        reader, writer = await asyncio.open_connection(host, port)

        pong = await _request(reader, writer, {"op": "ping", "id": 1})
        assert pong["status"] == "pong" and pong["workers"] == 2

        # Logins route by ring: correct and wrong attempts for accounts
        # that live on different shards.
        ring = ConsistentHashRing(2)
        chosen = {}
        for index in range(30):
            chosen.setdefault(ring.index_for(cluster_username(index)), index)
        assert len(chosen) == 2  # the population really spans both shards
        for index in chosen.values():
            points = synthetic_points(index, 11, image.width, image.height)
            response = await _request(
                reader, writer,
                {"op": "login", "id": 2, "user": cluster_username(index),
                 "points": _wire(points)},
            )
            assert response == {"id": 2, "ok": True, "status": "accept"}
            response = await _request(
                reader, writer,
                {"op": "login", "id": 3, "user": cluster_username(index),
                 "points": _wire(_wrong(points))},
            )
            assert response["status"] == "reject"

        # Enroll through the router lands on the owning worker.
        fresh = synthetic_points(999, 11, image.width, image.height)
        response = await _request(
            reader, writer,
            {"op": "enroll", "id": 4, "user": "newcomer", "points": _wire(fresh)},
        )
        assert response["ok"] and response["status"] == "enrolled"
        response = await _request(
            reader, writer,
            {"op": "login", "id": 5, "user": "newcomer", "points": _wire(fresh)},
        )
        assert response["status"] == "accept"

        # Worker-side failures come back unchanged (id restored).
        response = await _request(
            reader, writer,
            {"op": "login", "id": 6, "user": "ghost", "points": _wire(fresh)},
        )
        assert response["id"] == 6 and response["error"] == "StoreError"
        response = await _request(reader, writer, {"op": "warp", "id": 7})
        assert not response["ok"] and "unknown op" in response["message"]

        # Merged stats see the union of both workers' accounts.
        stats = await _request(reader, writer, {"op": "stats", "id": 8})
        assert stats["ok"] and stats["workers"] == 2
        assert stats["accounts"] == 31
        assert stats["decided"] >= 5

        # Merged metrics: per-worker counters sum across the fan-out.
        metrics = await _request(reader, writer, {"op": "metrics", "id": 9})
        counters = metrics["metrics"]["counters"]
        logins = sum(
            value for key, value in counters.items()
            if key.startswith("server_requests_total") and 'op="login"' in key
        )
        assert logins >= 5
        prom = await _request(
            reader, writer, {"op": "metrics", "id": 10, "format": "prom"}
        )
        assert "server_requests_total" in prom["prom"]

        # The router applies the same size limit as the workers.
        writer.write(b"B" * 2048 + b"\n")
        await writer.drain()
        response = json.loads(await reader.readline())
        assert response["error"] == "request_too_large"
        pong = await _request(reader, writer, {"op": "ping", "id": 11})
        assert pong["status"] == "pong"
        assert cluster.router.oversize_rejected == 1

        writer.close()
        await writer.wait_closed()
    finally:
        await cluster.aclose()


def test_cluster_constructor_validates_shape():
    with pytest.raises(ClusterError):
        ServingCluster()
    with pytest.raises(ClusterError):
        ServingCluster(shard_uris=["memory:"], workers=2)


# -- live reshard drill (spawned workers) -------------------------------------


async def test_live_reshard_drill_matches_reference(tmp_path):
    """Grow 2→4 shards under a live closed-loop flood.

    Every account keeps exactly one authoritative home throughout, so the
    full status stream (accepts, rejects, lockouts) must equal a scalar
    single-backend replay of the same per-account attempt sequences, and
    the migrated failure counters must survive bit-for-bit.
    """
    accounts = 16
    seed = 7
    old_uris = [f"sqlite:{tmp_path / f'old{i}.db'}" for i in range(2)]
    new_uris = [f"sqlite:{tmp_path / f'new{i}.db'}" for i in range(4)]

    backend = ShardedBackend([backend_from_uri(uri) for uri in old_uris])
    backend.put_meta("scheme", "centered")
    backend.put_meta("tolerance_px", "9")
    backend.put_meta("image", "cars")
    store = deployed_store(backend)
    image = store.system.image
    passwords = {
        cluster_username(index): synthetic_points(
            index, seed, image.width, image.height
        )
        for index in range(accounts)
    }
    for username, points in passwords.items():
        store.create_account(username, points)
    backend.close()

    cluster = ServingCluster(shard_uris=old_uris)
    await cluster.start()
    try:
        host, port = cluster.address
        rng = np.random.default_rng(99)
        plans = {
            username: [bool(w) for w in rng.random(6) < 0.4]
            for username in passwords
        }
        executed = {username: [] for username in passwords}
        statuses = {username: [] for username in passwords}
        stop = asyncio.Event()

        async def drive(username):
            # Closed loop (one in-flight attempt per account) so the
            # account's decision order is exactly its send order; cycles
            # its plan until the drill completes, keeping traffic live
            # through every cutover window.
            points = passwords[username]
            plan = plans[username]
            reader, writer = await asyncio.open_connection(host, port)
            try:
                step = 0
                while not stop.is_set() or step < len(plan):
                    wrong = plan[step % len(plan)]
                    attempt = _wrong(points) if wrong else points
                    response = await _request(
                        reader, writer,
                        {"op": "login", "id": step, "user": username,
                         "points": _wire(attempt)},
                    )
                    assert response.get("status") in (
                        "accept", "reject", "locked",
                    ), response
                    executed[username].append(attempt)
                    statuses[username].append(response["status"])
                    step += 1
                    await asyncio.sleep(0.01)
            finally:
                writer.close()
                try:
                    await writer.wait_closed()
                except ConnectionError:
                    pass

        drivers = [
            asyncio.ensure_future(drive(username)) for username in passwords
        ]
        await asyncio.sleep(0.1)  # the flood is live before the drill starts
        report = await cluster.reshard(new_uris)
        stop.set()
        await asyncio.gather(*drivers)

        # Zero-loss: every enrolled account moved exactly once.
        assert report.old_shards == 2 and report.new_shards == 4
        assert sum(report.moved) == accounts
        assert len(report.cutover_seconds) == 2
        assert report.max_cutover_seconds > 0.0
        assert "reshard 2->4" in report.summary()

        # The grown cluster still serves the full population.
        reader, writer = await asyncio.open_connection(host, port)
        stats = await _request(reader, writer, {"op": "stats", "id": 0})
        assert stats["workers"] == 4 and stats["accounts"] == accounts
        writer.close()
        await writer.wait_closed()
    finally:
        await cluster.aclose()

    # Scalar single-backend replay: per-account streams must be identical
    # (throttle state is per-account and each driver was closed-loop, so
    # cross-account interleaving cannot change any decision).
    reference = PasswordStore(system=_centered_system())
    for username, points in passwords.items():
        reference.create_account(username, points)
    for username, attempts in executed.items():
        expected = []
        for attempt in attempts:
            try:
                expected.append(
                    "accept" if reference.login(username, attempt) else "reject"
                )
            except LockoutError:
                expected.append("locked")
        assert statuses[username] == expected, username

    # The migrated throttle counters match the reference exactly.
    final = ShardedBackend([backend_from_uri(uri) for uri in new_uris])
    try:
        for username in passwords:
            moved_state = final.get_throttle(username)
            ref_state = reference.backend.get_throttle(username)
            assert moved_state is not None, username
            assert moved_state["failures"] == ref_state["failures"]
            assert moved_state["locked"] == ref_state["locked"]
    finally:
        final.close()


# -- rebalance under concurrent writes (in-process property test) -------------


def test_rebalance_under_interleaved_writes_matches_reference():
    """Incremental ``rebalance(clear=False)`` migration interleaved with
    login bursts: decisions always match a single-backend reference and
    no failure counter ever moves backwards across a migration step."""
    system = _centered_system()
    image = system.image
    accounts = 32
    old = ShardedBackend([backend_from_uri("memory:") for _ in range(4)])
    new = ShardedBackend([backend_from_uri("memory:") for _ in range(8)])
    old_store = PasswordStore(system=_centered_system(), backend=old)
    new_store = PasswordStore(system=_centered_system(), backend=new)
    reference = PasswordStore(system=_centered_system())

    passwords = {
        cluster_username(index): synthetic_points(
            index, 21, image.width, image.height
        )
        for index in range(accounts)
    }
    for username, points in passwords.items():
        old_store.create_account(username, points)
        reference.create_account(username, points)

    migrated = set()

    def authoritative(username):
        return (
            new_store if old.shard_index_for(username) in migrated else old_store
        )

    def backend_failures(username):
        backend = new if old.shard_index_for(username) in migrated else old
        state = backend.get_throttle(username)
        return state["failures"] if state else 0

    def replay(store, username, attempt):
        try:
            return "accept" if store.login(username, attempt) else "reject"
        except LockoutError:
            return "locked"

    rng = np.random.default_rng(123)
    names = sorted(passwords)

    def burst(size):
        for _ in range(size):
            username = names[int(rng.integers(accounts))]
            wrong = bool(rng.random() < 0.35)
            attempt = (
                _wrong(passwords[username]) if wrong else passwords[username]
            )
            live = replay(authoritative(username), username, attempt)
            assert live == replay(reference, username, attempt), username

    burst(40)
    for shard_index in range(4):
        before = {username: backend_failures(username) for username in names}
        rebalance(old.shards[shard_index], new, clear=False)
        migrated.add(shard_index)
        # Migration alone moves no counter — backwards or forwards.
        for username in names:
            assert backend_failures(username) == before[username], username
        burst(40)

    # End state: every account lives in the new layout with reference
    # throttle state.
    for username in names:
        assert new.get(username) is not None
        state = new.get_throttle(username)
        ref_state = reference.backend.get_throttle(username)
        ref_failures = ref_state["failures"] if ref_state else 0
        assert (state["failures"] if state else 0) == ref_failures
        assert new_store.is_locked(username) == reference.is_locked(username)
    old.close()
    new.close()
