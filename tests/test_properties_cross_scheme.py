"""Cross-scheme metamorphic properties.

These properties connect the schemes to each other and to the paper's
theorems, rather than testing any single implementation in isolation:

* **Containment** (the Table-2 FR=0 theorem): at equal r, Centered's
  acceptance region is always a subset of Robust's — anything Centered
  accepts, Robust accepts too.
* **Translation equivariance**: shifting a point by whole cells shifts its
  index and leaves the offset unchanged (Centered), and shifting by the
  full lattice period preserves Robust's safe-grid set.
* **Attack monotonicity**: adding seed points never un-cracks a password;
  growing the grid squares never un-cracks one either.
"""

from __future__ import annotations

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attacks.dictionary import HumanSeededDictionary
from repro.core.centered import CenteredDiscretization
from repro.core.robust import RobustDiscretization
from repro.geometry.point import Point

radii = st.integers(min_value=1, max_value=20)
coords = st.integers(min_value=-10**4, max_value=10**4)
points_2d = st.builds(Point.xy, coords, coords)


class TestContainmentAtEqualR:
    @given(points_2d, points_2d, radii)
    @settings(max_examples=100)
    def test_centered_accept_implies_robust_accept(self, original, candidate, r):
        """The FR=0 theorem, point by point."""
        centered = CenteredDiscretization(2, r)
        robust = RobustDiscretization(2, r)
        centered_enrollment = centered.enroll(original)
        robust_enrollment = robust.enroll(original)
        if centered.accepts(centered_enrollment, candidate):
            assert robust.accepts(robust_enrollment, candidate)

    @given(points_2d, radii)
    @settings(max_examples=60)
    def test_centered_region_subset_of_robust_region(self, original, r):
        centered = CenteredDiscretization(2, r)
        robust = RobustDiscretization(2, r)
        centered_box = centered.acceptance_region(centered.enroll(original))
        robust_box = robust.acceptance_region(robust.enroll(original))
        # Subset via corner containment (axis-aligned boxes).
        assert robust_box.lo[0] <= centered_box.lo[0]
        assert robust_box.lo[1] <= centered_box.lo[1]
        assert robust_box.hi[0] >= centered_box.hi[0]
        assert robust_box.hi[1] >= centered_box.hi[1]


class TestTranslationEquivariance:
    @given(coords, radii, st.integers(min_value=-50, max_value=50))
    def test_centered_shift_by_cells(self, x, r, k):
        """Shifting by k·2r bumps the index by k and fixes the offset."""
        from repro.core.centered import discretize_1d

        index, offset = discretize_1d(x, r)
        shifted_index, shifted_offset = discretize_1d(x + k * 2 * r, r)
        assert shifted_index == index + k
        assert shifted_offset == offset

    @given(points_2d, radii, st.integers(min_value=-5, max_value=5))
    @settings(max_examples=60)
    def test_robust_lattice_period(self, point, r, k):
        """The 3-grid structure repeats with period 6r on each axis."""
        scheme = RobustDiscretization(2, r)
        period = 6 * r * k
        shifted = Point.xy(point.x + period, point.y + period)
        assert scheme.safe_grids(point) == scheme.safe_grids(shifted)


class TestAttackMonotonicity:
    def _cracks(self, scheme, target_points, seeds):
        dictionary = HumanSeededDictionary(
            seed_points=tuple(seeds),
            tuple_length=len(target_points),
            image_name="x",
        )
        enrollments = [scheme.enroll(p) for p in target_points]
        match_sets = []
        for enrollment in enrollments:
            box = scheme.acceptance_region(enrollment)
            match_sets.append(
                tuple(
                    i for i, s in enumerate(dictionary.seed_points)
                    if box.contains(s)
                )
            )
        return HumanSeededDictionary.has_injective_assignment(match_sets)

    @given(
        st.lists(points_2d, min_size=2, max_size=3, unique=True),
        st.lists(points_2d, min_size=3, max_size=10),
        st.lists(points_2d, min_size=1, max_size=5),
        radii,
    )
    @settings(max_examples=50, deadline=None)
    def test_more_seeds_never_uncrack(self, targets, seeds, extra, r):
        scheme = CenteredDiscretization(2, r)
        before = self._cracks(scheme, targets, seeds)
        after = self._cracks(scheme, targets, seeds + extra)
        if before:
            assert after

    @given(
        st.lists(points_2d, min_size=2, max_size=3, unique=True),
        st.lists(points_2d, min_size=3, max_size=10),
        radii,
    )
    @settings(max_examples=50, deadline=None)
    def test_larger_centered_cells_never_uncrack(self, targets, seeds, r):
        """Growing r grows every acceptance region around the same center."""
        small = CenteredDiscretization(2, r)
        large = CenteredDiscretization(2, r + 3)
        if self._cracks(small, targets, seeds):
            assert self._cracks(large, targets, seeds)


class TestSchemeDisagreementIsBounded:
    @given(points_2d, points_2d, radii)
    @settings(max_examples=80)
    def test_disagreements_lie_in_the_annulus(self, original, candidate, r):
        """Centered and Robust at equal r can only disagree between r and 5r.

        Inside the open r-ball both accept; beyond r_max = 5r both reject.
        """
        from repro.geometry.metrics import chebyshev

        centered = CenteredDiscretization(2, r)
        robust = RobustDiscretization(2, r)
        distance = chebyshev(original, candidate)
        centered_ok = centered.accepts(centered.enroll(original), candidate)
        robust_ok = robust.accepts(robust.enroll(original), candidate)
        if centered_ok != robust_ok:
            assert r <= distance <= 5 * r
