"""Tests for repro.geometry.point."""

from __future__ import annotations

from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import DimensionMismatchError, ParameterError
from repro.geometry.point import Point

coords = st.one_of(
    st.integers(min_value=-10**6, max_value=10**6),
    st.fractions(min_value=-10**4, max_value=10**4, max_denominator=1000),
)
points_2d = st.builds(Point.xy, coords, coords)


class TestConstruction:
    def test_of_and_xy(self):
        assert Point.of(1, 2, 3).coords == (1, 2, 3)
        assert Point.xy(4, 5) == Point((4, 5))

    def test_from_sequence(self):
        assert Point.from_sequence([1, 2]) == Point.xy(1, 2)
        assert Point.from_sequence(iter([3])) == Point.of(3)

    def test_rejects_empty(self):
        with pytest.raises(ParameterError):
            Point(())

    def test_rejects_bad_coordinates(self):
        with pytest.raises(ParameterError):
            Point.xy(1, float("nan"))
        with pytest.raises(ParameterError):
            Point.xy(True, 2)
        with pytest.raises(ParameterError):
            Point.of("3")

    def test_list_coords_normalized_to_tuple(self):
        point = Point([1, 2])  # type: ignore[arg-type]
        assert point.coords == (1, 2)

    def test_hashable_and_equal(self):
        assert hash(Point.xy(1, 2)) == hash(Point.xy(1, 2))
        assert Point.xy(1, 2) == Point.xy(1, 2)
        assert Point.xy(1, 2) != Point.xy(2, 1)


class TestAccessors:
    def test_xyz(self):
        point = Point.of(1, 2, 3)
        assert (point.x, point.y, point.z) == (1, 2, 3)

    def test_y_requires_2d(self):
        with pytest.raises(DimensionMismatchError):
            _ = Point.of(1).y

    def test_z_requires_3d(self):
        with pytest.raises(DimensionMismatchError):
            _ = Point.xy(1, 2).z

    def test_iteration_len_indexing(self):
        point = Point.of(5, 6, 7)
        assert list(point) == [5, 6, 7]
        assert len(point) == 3
        assert point[1] == 6
        assert point.dim == 3


class TestArithmetic:
    def test_add_sub(self):
        a, b = Point.xy(1, 2), Point.xy(10, 20)
        assert a + b == Point.xy(11, 22)
        assert b - a == Point.xy(9, 18)

    def test_dimension_mismatch(self):
        with pytest.raises(DimensionMismatchError):
            Point.xy(1, 2) + Point.of(1)

    def test_scale(self):
        assert Point.xy(2, 3).scale(Fraction(1, 2)) == Point.xy(1, Fraction(3, 2))

    def test_scale_validates(self):
        with pytest.raises(ParameterError):
            Point.xy(1, 2).scale("2")

    def test_translate(self):
        assert Point.xy(1, 2).translate(5, -1) == Point.xy(6, 1)

    def test_translate_wrong_arity(self):
        with pytest.raises(DimensionMismatchError):
            Point.xy(1, 2).translate(5)

    @given(points_2d, points_2d)
    def test_add_sub_inverse(self, a, b):
        assert (a + b) - b == a


class TestConversions:
    def test_exact(self):
        point = Point.xy(0.5, 1).exact()
        assert point.coords == (Fraction(1, 2), 1)

    def test_as_floats(self):
        assert Point.xy(Fraction(1, 2), 3).as_floats() == (0.5, 3.0)

    def test_rounded(self):
        assert Point.xy(1.4, 2.6).rounded() == Point.xy(1, 3)

    @given(points_2d)
    def test_json_roundtrip(self, point):
        assert Point.from_json(point.to_json()) == point

    def test_json_fraction_encoding(self):
        data = Point.xy(Fraction(1, 3), 2).to_json()
        assert data == [[1, 3], 2]

    def test_from_json_rejects_malformed(self):
        with pytest.raises(ParameterError):
            Point.from_json([[1, 2, 3]])
