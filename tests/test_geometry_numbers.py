"""Tests for repro.geometry.numbers: numeric helpers and pixel conventions."""

from __future__ import annotations

import math
from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.geometry.numbers import (
    as_exact,
    centered_pixel_tolerance_for_grid_size,
    centered_r_for_grid_size,
    floor_div,
    floor_mod,
    grid_size_for_pixel_tolerance,
    is_real,
    pixel_tolerance_for_r,
    r_for_pixel_tolerance,
    robust_r_for_grid_size,
    to_float,
    validate_positive,
    validate_real,
)

finite_floats = st.floats(
    allow_nan=False, allow_infinity=False, min_value=-1e9, max_value=1e9
)
reals = st.one_of(
    st.integers(min_value=-10**9, max_value=10**9),
    finite_floats,
    st.fractions(
        min_value=-10**6, max_value=10**6, max_denominator=10**4
    ),
)


class TestValidation:
    def test_is_real_accepts_int_float_fraction(self):
        assert is_real(3)
        assert is_real(-2.5)
        assert is_real(Fraction(1, 3))

    def test_is_real_rejects_bool(self):
        assert not is_real(True)
        assert not is_real(False)

    def test_is_real_rejects_nan_and_inf(self):
        assert not is_real(float("nan"))
        assert not is_real(float("inf"))
        assert not is_real(float("-inf"))

    def test_is_real_rejects_strings_and_none(self):
        assert not is_real("3")
        assert not is_real(None)

    def test_validate_real_returns_value(self):
        assert validate_real(7) == 7

    def test_validate_real_raises_with_name(self):
        with pytest.raises(ParameterError, match="myparam"):
            validate_real("x", "myparam")

    def test_validate_positive_rejects_zero_and_negative(self):
        with pytest.raises(ParameterError):
            validate_positive(0)
        with pytest.raises(ParameterError):
            validate_positive(-1)

    def test_validate_positive_accepts_fraction(self):
        assert validate_positive(Fraction(1, 2)) == Fraction(1, 2)


class TestAsExact:
    def test_float_becomes_fraction(self):
        assert as_exact(0.5) == Fraction(1, 2)

    def test_integral_fraction_becomes_int(self):
        result = as_exact(Fraction(6, 3))
        assert result == 2
        assert isinstance(result, int)

    def test_int_passthrough(self):
        assert as_exact(7) == 7

    @given(reals)
    def test_as_exact_preserves_value_closely(self, value):
        exact = as_exact(value)
        assert math.isclose(float(exact), float(value), rel_tol=1e-9, abs_tol=1e-9)


class TestFloorOps:
    def test_floor_div_matches_paper_example(self):
        # i = floor((13 - 5.5) / 11) = 0
        assert floor_div(13 - 5.5, 11) == 0

    def test_floor_mod_matches_paper_example(self):
        # d = (13 - 5.5) mod 11 = 7.5
        assert floor_mod(13 - 5.5, 11) == 7.5

    def test_negative_numerator(self):
        assert floor_div(-1, 10) == -1
        assert floor_mod(-1, 10) == 9

    def test_rejects_nonpositive_denominator(self):
        with pytest.raises(ParameterError):
            floor_div(1, 0)
        with pytest.raises(ParameterError):
            floor_mod(1, -2)

    @given(
        st.integers(min_value=-10**6, max_value=10**6),
        st.fractions(min_value=Fraction(1, 100), max_value=100, max_denominator=100),
    )
    def test_div_mod_identity(self, numerator, denominator):
        quotient = floor_div(numerator, denominator)
        remainder = floor_mod(numerator, denominator)
        assert 0 <= remainder < denominator
        assert quotient * denominator + remainder == numerator


class TestPixelConventions:
    def test_r_for_pixel_tolerance(self):
        # Paper footnote 2: tolerance 9 -> r = 9.5 -> 19-px squares.
        assert r_for_pixel_tolerance(9) == Fraction(19, 2)

    def test_grid_size_for_pixel_tolerance(self):
        assert grid_size_for_pixel_tolerance(9) == 19
        assert grid_size_for_pixel_tolerance(0) == 1

    def test_pixel_tolerance_roundtrip(self):
        for tolerance in range(0, 30):
            assert pixel_tolerance_for_r(r_for_pixel_tolerance(tolerance)) == tolerance

    def test_pixel_tolerance_for_r_rejects_non_half_integer(self):
        with pytest.raises(ParameterError):
            pixel_tolerance_for_r(Fraction(1, 3))
        with pytest.raises(ParameterError):
            pixel_tolerance_for_r(5)

    def test_r_for_pixel_tolerance_rejects_bad_input(self):
        with pytest.raises(ParameterError):
            r_for_pixel_tolerance(-1)
        with pytest.raises(ParameterError):
            r_for_pixel_tolerance(2.5)
        with pytest.raises(ParameterError):
            r_for_pixel_tolerance(True)


class TestTableThreeColumns:
    """The r columns of the paper's Table 3 follow from the grid size."""

    @pytest.mark.parametrize(
        "size,expected",
        [(9, 4), (13, 6), (19, 9), (24, 11.5), (36, 17.5), (54, 26.5)],
    )
    def test_centered_pixel_tolerance(self, size, expected):
        assert centered_pixel_tolerance_for_grid_size(size) == Fraction(expected)

    @pytest.mark.parametrize(
        "size,expected",
        [(9, Fraction(3, 2)), (13, Fraction(13, 6)), (19, Fraction(19, 6)),
         (24, 4), (36, 6), (54, 9)],
    )
    def test_robust_r(self, size, expected):
        assert robust_r_for_grid_size(size) == expected

    def test_centered_r_is_half_grid(self):
        assert centered_r_for_grid_size(13) == Fraction(13, 2)

    def test_rejects_bad_grid_sizes(self):
        for func in (
            centered_r_for_grid_size,
            centered_pixel_tolerance_for_grid_size,
            robust_r_for_grid_size,
        ):
            with pytest.raises(ParameterError):
                func(0)
            with pytest.raises(ParameterError):
                func(-9)
            with pytest.raises(ParameterError):
                func(9.0)


class TestToFloat:
    def test_fraction(self):
        assert to_float(Fraction(1, 4)) == 0.25

    def test_rejects_invalid(self):
        with pytest.raises(ParameterError):
            to_float("1.5")
