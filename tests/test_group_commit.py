"""Property tests for the group-commit write path (ISSUE-10).

The batched write path — ``put_many`` / ``put_throttle_many`` /
``write_batch`` plus the flush-end throttle persist and ``enroll_many``
— is a pure durability optimization: for any attempt stream it must
produce the identical accept/reject/lockout sequence, identical persisted
throttle state, and byte-identical ``dump()`` password files as the
historical per-record-commit path, across all three schemes and all four
backends.  On top of the equivalence property this file pins the
per-backend atomicity contracts (SQLite all-or-nothing rollback, JSONL
undo-log rewind + replay consistency, sharded per-shard atomicity), the
JSONL ``compact()`` rewrite, ``enroll_many`` validation, and the
base-class fallbacks a minimal third-party backend inherits.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.centered import CenteredDiscretization
from repro.core.robust import RobustDiscretization
from repro.core.static import StaticGridScheme
from repro.errors import StoreError
from repro.geometry.point import Point
from repro.passwords.passpoints import PassPointsSystem
from repro.passwords.policy import LockoutPolicy
from repro.passwords.service import VerificationService
from repro.passwords.storage import (
    JsonlBackend,
    SQLiteBackend,
    StorageBackend,
    backend_from_uri,
    commit_mode,
)
from repro.passwords.store import PasswordStore
from repro.passwords.system import enroll_password
from repro.study.image import cars_image

SCHEMES = {
    "centered": lambda: CenteredDiscretization.for_pixel_tolerance(2, 9),
    "robust": lambda: RobustDiscretization.for_pixel_tolerance(2, 9),
    "static": lambda: StaticGridScheme(dim=2, cell_size=19),
}

BACKENDS = ["memory", "sqlite", "jsonl", "shards"]

POINTS = [
    Point.xy(42, 61),
    Point.xy(130, 88),
    Point.xy(227, 154),
    Point.xy(318, 222),
    Point.xy(401, 290),
]


def make_backend(kind: str, tmp_path, tag: str):
    if kind == "memory":
        return backend_from_uri("memory:")
    if kind == "sqlite":
        return backend_from_uri(f"sqlite:{tmp_path / f'{tag}.db'}")
    if kind == "shards":
        return backend_from_uri(
            f"shards:sqlite:{tmp_path / f'{tag}-shard'}{{0..2}}.db"
        )
    return backend_from_uri(f"jsonl:{tmp_path / f'{tag}.jsonl'}")


def random_password(rng, image):
    return [
        Point.xy(int(x), int(y))
        for x, y in zip(
            rng.integers(30, image.width - 30, size=5),
            rng.integers(30, image.height - 30, size=5),
        )
    ]


def random_stream(rng, accounts, image, length):
    """A mixed attempt stream: exact, within-tolerance, wrong, repeated."""
    names = list(accounts)
    stream = []
    for _ in range(length):
        username = names[int(rng.integers(len(names)))]
        points = accounts[username]
        kind = int(rng.integers(4))
        if kind == 0:  # exact
            attempt = list(points)
        elif kind == 1:  # small jitter (often within tolerance)
            attempt = [
                Point.xy(int(p.x) + int(rng.integers(-4, 5)),
                         int(p.y) + int(rng.integers(-4, 5)))
                for p in points
            ]
        elif kind == 2:  # clearly wrong
            attempt = [Point.xy(int(p.x) - 25, int(p.y) + 25) for p in points]
        else:  # fresh random guess
            attempt = random_password(rng, image)
        stream.append((username, attempt))
    return stream


def build_store(scheme_name, backend, policy, group_commit):
    system = PassPointsSystem(image=cars_image(), scheme=SCHEMES[scheme_name]())
    return PasswordStore(
        system=system, policy=policy, backend=backend, group_commit=group_commit
    )


@pytest.mark.parametrize("scheme_name", sorted(SCHEMES))
@pytest.mark.parametrize("backend_kind", BACKENDS)
def test_batched_path_identical_to_per_record(scheme_name, backend_kind, tmp_path):
    """Decisions, lockouts, throttle bytes, dump() — identical both modes."""
    image = cars_image()
    for seed in (2008, 1387):
        rng = np.random.default_rng(seed)
        accounts = {f"user{i}": random_password(rng, image) for i in range(6)}
        stream = random_stream(rng, accounts, image, 120)
        # Randomized interleaving: submit in bursts of random size, flush
        # between bursts — both modes replay the identical schedule.
        bursts = []
        remaining = len(stream)
        while remaining:
            size = int(rng.integers(1, 33))
            bursts.append(min(size, remaining))
            remaining -= bursts[-1]

        stores = {}
        for mode, group_commit in (("group", True), ("record", False)):
            backend = make_backend(
                backend_kind, tmp_path, f"{scheme_name}-{seed}-{mode}"
            )
            store = build_store(
                scheme_name, backend, LockoutPolicy(max_failures=3), group_commit
            )
            if group_commit:  # bulk path on one side, scalar loop on the other
                store.enroll_many(list(accounts.items()))
            else:
                for username, points in accounts.items():
                    store.create_account(username, points)
            stores[mode] = store

        statuses = {}
        for mode, store in stores.items():
            service = VerificationService(store, max_batch=16)
            decided = []
            cursor = 0
            for size in bursts:
                for username, attempt in stream[cursor : cursor + size]:
                    service.submit(username, attempt)
                cursor += size
                decided.extend(outcome.status for outcome in service.flush())
            statuses[mode] = decided

        assert statuses["group"] == statuses["record"]
        assert "locked" in statuses["group"]  # the stream exercises lockouts
        group, record = stores["group"], stores["record"]
        assert group.backend.dump() == record.backend.dump()
        for username in accounts:
            assert group.backend.get_throttle(
                username
            ) == record.backend.get_throttle(username), username
            assert group.is_locked(username) == record.is_locked(username)
        group.backend.close()
        record.backend.close()


class TestSQLiteAtomicity:
    def _record(self, shift=0):
        scheme = CenteredDiscretization.for_pixel_tolerance(2, 9)
        return enroll_password(
            scheme, [Point.xy(int(p.x) + shift, int(p.y)) for p in POINTS]
        )

    def test_failing_write_rolls_back_whole_batch(self, tmp_path):
        """A StoreError inside write_batch leaves no trace of the batch."""
        path = str(tmp_path / "atomic.db")
        backend = SQLiteBackend(path)
        backend.put("existing", self._record())
        with pytest.raises(StoreError):
            with backend.write_batch():
                backend.put("alice", self._record(3))
                backend.put_throttle("alice", {"failures": 1, "locked": False})
                backend.put_meta("scheme", "centered")
                backend.delete("ghost")  # unknown account -> StoreError
        assert backend.usernames() == ("existing",)
        assert backend.get("alice") is None
        assert backend.get_throttle("alice") is None
        assert backend.get_meta("scheme") is None
        backend.close()
        # The rollback is durable too: a reopen sees only the pre-batch row.
        reopened = SQLiteBackend(path)
        assert reopened.usernames() == ("existing",)
        reopened.close()

    def test_raise_inside_batch_discards_bulk_writes(self, tmp_path):
        backend = SQLiteBackend(str(tmp_path / "bulk.db"))
        with pytest.raises(RuntimeError):
            with backend.write_batch():
                backend.put_many(
                    [(f"user{i}", self._record(i)) for i in range(5)]
                )
                backend.put_throttle_many(
                    [(f"user{i}", {"failures": i}) for i in range(5)]
                )
                raise RuntimeError("abort the batch")
        assert backend.usernames() == ()
        assert backend.get_throttle("user0") is None
        backend.close()

    def test_point_reads_see_batch_snapshot_scans_do_not(self, tmp_path):
        """Writer-connection reads observe the open batch; the read-only
        snapshot (iter_records / usernames / dump) stays pre-batch until
        commit."""
        backend = SQLiteBackend(str(tmp_path / "snap.db"))
        backend.put("alice", self._record())
        with backend.write_batch():
            backend.put("bob", self._record(7))
            assert backend.get("bob") is not None  # the batch's own write
            assert [u for u, _ in backend.iter_records()] == ["alice"]
            assert backend.usernames() == ("alice",)
        assert backend.usernames() == ("alice", "bob")
        backend.close()

    def test_nested_batches_join_the_outer_commit(self, tmp_path):
        backend = SQLiteBackend(str(tmp_path / "nested.db"))
        with backend.write_batch():
            backend.put("a", self._record())
            with backend.write_batch():
                backend.put("b", self._record(3))
            # The inner exit must not commit: still invisible to snapshots.
            assert backend.usernames() == ()
        assert backend.usernames() == ("a", "b")
        backend.close()


class TestJsonlAtomicity:
    def _record(self, shift=0):
        scheme = CenteredDiscretization.for_pixel_tolerance(2, 9)
        return enroll_password(
            scheme, [Point.xy(int(p.x) + shift, int(p.y)) for p in POINTS]
        )

    def test_nothing_hits_the_log_until_commit(self, tmp_path):
        path = tmp_path / "defer.jsonl"
        backend = JsonlBackend(str(path))
        backend.put("alice", self._record())
        before = path.read_text()
        with backend.write_batch():
            backend.put("bob", self._record(7))
            backend.put_throttle("bob", {"failures": 0, "locked": False})
            assert path.read_text() == before  # deferred, not written
        after = path.read_text()
        assert after != before
        assert len(after.splitlines()) == len(before.splitlines()) + 2
        backend.close()

    def test_failed_batch_rewinds_memory_and_writes_nothing(self, tmp_path):
        path = tmp_path / "rollback.jsonl"
        backend = JsonlBackend(str(path))
        original = self._record()
        backend.put("alice", original)
        backend.put_throttle("alice", {"failures": 2, "locked": False})
        backend.put_meta("scheme", "centered")
        before = path.read_text()
        with pytest.raises(RuntimeError):
            with backend.write_batch():
                backend.put("alice", self._record(5))  # overwrite
                backend.put("bob", self._record(9))  # insert
                backend.delete("alice")
                backend.put_throttle("bob", {"failures": 7, "locked": True})
                backend.put_meta("scheme", "robust")
                backend.clear()
                backend.put("carol", self._record(11))
                raise RuntimeError("abort")
        # In-memory state rewound exactly...
        assert path.read_text() == before
        assert backend.usernames() == ("alice",)
        assert backend.get("alice") == original
        assert backend.get_throttle("alice") == {"failures": 2, "locked": False}
        assert backend.get_meta("scheme") == "centered"
        backend.close()
        # ...and the untouched log still replays to the same state.
        replayed = JsonlBackend(str(path))
        assert replayed.usernames() == ("alice",)
        assert replayed.get("alice") == original
        assert replayed.get_throttle("alice") == {"failures": 2, "locked": False}
        replayed.close()

    def test_successful_batch_replays_identically(self, tmp_path):
        path = tmp_path / "commit.jsonl"
        backend = JsonlBackend(str(path))
        with backend.write_batch():
            backend.put_many([(f"user{i}", self._record(i)) for i in range(4)])
            backend.delete("user3")
            backend.put_throttle_many([("user0", {"failures": 1})])
        live = (backend.usernames(), backend.get_throttle("user0"))
        backend.close()
        replayed = JsonlBackend(str(path))
        assert (replayed.usernames(), replayed.get_throttle("user0")) == live
        replayed.close()


class TestJsonlCompact:
    def _grown_backend(self, tmp_path):
        """A log grown the way serving grows it: throttle churn forever."""
        backend = JsonlBackend(str(tmp_path / "grown.jsonl"))
        scheme = CenteredDiscretization.for_pixel_tolerance(2, 9)
        backend.put_meta("scheme", "centered")
        for i in range(4):
            backend.put(
                f"user{i}",
                enroll_password(
                    scheme, [Point.xy(int(p.x) + i, int(p.y)) for p in POINTS]
                ),
            )
        for round_ in range(30):  # 120 superseded throttle events
            for i in range(4):
                backend.put_throttle(
                    f"user{i}", {"failures": round_ % 3, "locked": False}
                )
        return backend

    def test_compact_shrinks_and_preserves_state(self, tmp_path):
        backend = self._grown_backend(tmp_path)
        state = (
            backend.usernames(),
            backend.dump(),
            {u: backend.get_throttle(u) for u in backend.usernames()},
            backend.meta_items(),
        )
        before, after = backend.compact()
        assert after < before
        # One line per live fact: 1 meta + 4 puts + 4 throttles.
        with open(backend._path, encoding="utf-8") as handle:
            lines = handle.readlines()
        assert len(lines) == 9
        for line in lines:
            json.loads(line)  # every surviving line is one valid event
        assert (
            backend.usernames(),
            backend.dump(),
            {u: backend.get_throttle(u) for u in backend.usernames()},
            backend.meta_items(),
        ) == state
        # The handle survives the inode swap: post-compact writes land.
        backend.put_throttle("user0", {"failures": 9, "locked": False})
        backend.close()
        replayed = JsonlBackend(str(tmp_path / "grown.jsonl"))
        assert replayed.usernames() == state[0]
        assert replayed.dump() == state[1]
        assert replayed.get_throttle("user0") == {"failures": 9, "locked": False}
        replayed.close()

    def test_refuses_while_another_handle_is_open(self, tmp_path):
        backend = self._grown_backend(tmp_path)
        other = JsonlBackend(str(tmp_path / "grown.jsonl"))
        with pytest.raises(StoreError, match="live handle"):
            backend.compact()
        other.close()
        before, after = backend.compact()  # closing the rival unblocks it
        assert after < before
        backend.close()

    def test_refuses_inside_open_write_batch(self, tmp_path):
        backend = self._grown_backend(tmp_path)
        with backend.write_batch():
            with pytest.raises(StoreError, match="write_batch"):
                backend.compact()
        backend.close()


class TestShardedBatching:
    def test_put_many_routes_by_hash_ring(self, tmp_path):
        backend = backend_from_uri("shards:memory:{0..2}")
        scheme = CenteredDiscretization.for_pixel_tolerance(2, 9)
        records = [
            (
                f"user{i}",
                enroll_password(
                    scheme, [Point.xy(int(p.x) + i, int(p.y)) for p in POINTS]
                ),
            )
            for i in range(20)
        ]
        backend.put_many(records)
        backend.put_throttle_many(
            [(username, {"failures": 1}) for username, _ in records]
        )
        for username, _ in records:
            owner = backend.shard_index_for(username)
            for index, shard in enumerate(backend.shards):
                assert (username in shard) == (index == owner)
                assert (shard.get_throttle(username) is not None) == (
                    index == owner
                )

    def test_batch_failure_rolls_back_every_sqlite_shard(self, tmp_path):
        backend = backend_from_uri(f"shards:sqlite:{tmp_path / 's'}{{0..2}}.db")
        scheme = CenteredDiscretization.for_pixel_tolerance(2, 9)
        with pytest.raises(RuntimeError):
            with backend.write_batch():
                backend.put_many(
                    [
                        (
                            f"user{i}",
                            enroll_password(
                                scheme,
                                [Point.xy(int(p.x) + i, int(p.y)) for p in POINTS],
                            ),
                        )
                        for i in range(9)
                    ]
                )
                raise RuntimeError("abort")
        # Homogeneous sqlite shards: each child batch rolled back, so the
        # failed batch left no partial shard behind.
        assert backend.usernames() == ()
        assert all(len(shard) == 0 for shard in backend.shards)
        backend.close()


class TestEnrollManyValidation:
    def _store(self, tmp_path, tag):
        backend = make_backend("sqlite", tmp_path, tag)
        system = PassPointsSystem(
            image=cars_image(),
            scheme=CenteredDiscretization.for_pixel_tolerance(2, 9),
        )
        return PasswordStore(system=system, backend=backend, group_commit=True)

    def test_duplicate_in_batch_writes_nothing(self, tmp_path):
        store = self._store(tmp_path, "dup")
        with pytest.raises(StoreError, match="duplicate"):
            store.enroll_many([("alice", POINTS), ("alice", POINTS)])
        assert store.usernames == ()
        store.backend.close()

    def test_existing_account_refuses_whole_batch(self, tmp_path):
        store = self._store(tmp_path, "exists")
        store.create_account("alice", POINTS)
        shifted = [Point.xy(int(p.x) + 5, int(p.y)) for p in POINTS]
        with pytest.raises(StoreError, match="already exists"):
            store.enroll_many([("bob", shifted), ("alice", POINTS)])
        # Validation ran before any write: bob was not half-enrolled.
        assert store.usernames == ("alice",)
        assert store.backend.get_throttle("bob") is None
        store.backend.close()

    def test_enrolled_accounts_serve_logins(self, tmp_path):
        store = self._store(tmp_path, "serve")
        shifted = [Point.xy(int(p.x) + 5, int(p.y)) for p in POINTS]
        assert store.enroll_many([("alice", POINTS), ("bob", shifted)]) == 2
        assert store.usernames == ("alice", "bob")
        assert store.login("alice", POINTS)
        assert store.login("bob", shifted)
        wrong = [Point.xy(int(p.x) + 30, int(p.y) + 30) for p in POINTS]
        assert not store.login("alice", wrong)
        store.backend.close()


class MinimalBackend(StorageBackend):
    """The smallest legal third-party backend: abstract methods only.

    Inherits the base-class group-commit fallbacks — ``put_many`` /
    ``put_throttle_many`` loop per record and ``write_batch`` applies
    writes immediately — so code written against the batched API keeps
    working on backends that predate it.
    """

    def __init__(self):
        self.uri = "minimal:"
        self._records = {}
        self._throttles = {}
        self._meta = {}

    def put(self, username, stored):
        """Insert or replace one record."""
        self._records[username] = stored

    def get(self, username):
        """One record or ``None``."""
        return self._records.get(username)

    def delete(self, username):
        """Drop one account."""
        if username not in self._records:
            raise StoreError(f"unknown account {username!r}")
        del self._records[username]
        self._throttles.pop(username, None)

    def usernames(self):
        """Sorted account names."""
        return tuple(sorted(self._records))

    def clear(self):
        """Drop all records and throttles."""
        self._records.clear()
        self._throttles.clear()

    def put_throttle(self, username, state):
        """Persist one throttle state."""
        self._throttles[username] = dict(state)

    def get_throttle(self, username):
        """One throttle state or ``None``."""
        state = self._throttles.get(username)
        return dict(state) if state is not None else None

    def put_meta(self, key, value):
        """Persist one metadata string."""
        self._meta[key] = value

    def get_meta(self, key):
        """One metadata string or ``None``."""
        return self._meta.get(key)


class TestBaseClassFallbacks:
    def test_minimal_backend_supports_the_batched_api(self, tmp_path):
        backend = MinimalBackend()
        system = PassPointsSystem(
            image=cars_image(),
            scheme=CenteredDiscretization.for_pixel_tolerance(2, 9),
        )
        store = PasswordStore(system=system, backend=backend, group_commit=True)
        shifted = [Point.xy(int(p.x) + 5, int(p.y)) for p in POINTS]
        assert store.enroll_many([("alice", POINTS), ("bob", shifted)]) == 2
        assert backend.usernames() == ("alice", "bob")
        assert store.login("alice", POINTS)
        store.persist_throttles(["alice", "bob"])
        assert backend.get_throttle("alice") is not None

    def test_base_write_batch_applies_immediately(self):
        backend = MinimalBackend()
        scheme = CenteredDiscretization.for_pixel_tolerance(2, 9)
        with backend.write_batch() as inner:
            assert inner is backend
            backend.put("alice", enroll_password(scheme, POINTS))
            assert backend.get("alice") is not None  # no deferral


class TestCommitMode:
    def test_default_and_env_spellings(self, monkeypatch):
        monkeypatch.delenv("REPRO_STORE_COMMIT", raising=False)
        assert commit_mode() == "group"
        for spelling in ("per-record", "per_record", "record", " Per-Record "):
            monkeypatch.setenv("REPRO_STORE_COMMIT", spelling)
            assert commit_mode() == "per-record"
        monkeypatch.setenv("REPRO_STORE_COMMIT", "group")
        assert commit_mode() == "group"
        monkeypatch.setenv("REPRO_STORE_COMMIT", "frobnicate")
        assert commit_mode() == "group"  # unknown values fail open

    def test_store_override_beats_environment(self, monkeypatch):
        system = PassPointsSystem(
            image=cars_image(),
            scheme=CenteredDiscretization.for_pixel_tolerance(2, 9),
        )
        monkeypatch.setenv("REPRO_STORE_COMMIT", "per-record")
        from repro.passwords.storage import MemoryBackend

        assert not PasswordStore(
            system=system, backend=MemoryBackend()
        ).batched_writes
        assert PasswordStore(
            system=system, backend=MemoryBackend(), group_commit=True
        ).batched_writes
        monkeypatch.setenv("REPRO_STORE_COMMIT", "group")
        assert PasswordStore(
            system=system, backend=MemoryBackend()
        ).batched_writes
        assert not PasswordStore(
            system=system, backend=MemoryBackend(), group_commit=False
        ).batched_writes
