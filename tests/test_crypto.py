"""Tests for the crypto substrate: encoding, hashing, records."""

from __future__ import annotations

from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.encoding import encode_scalar, encode_scalars
from repro.crypto.hashing import Hasher, added_security_bits
from repro.crypto.records import VerificationRecord, combine_material, make_record
from repro.errors import ParameterError, VerificationError

scalars = st.one_of(
    st.integers(min_value=-10**9, max_value=10**9),
    st.fractions(min_value=-10**4, max_value=10**4, max_denominator=10**4),
    st.floats(allow_nan=False, allow_infinity=False, min_value=-1e6, max_value=1e6),
    st.text(max_size=20),
)
scalar_lists = st.lists(scalars, max_size=8)


class TestEncoding:
    def test_tagged_length_prefixed(self):
        assert encode_scalar(7) == b"i:1:7"
        assert encode_scalar(Fraction(19, 2)) == b"q:4:19/2"
        assert encode_scalar("ab") == b"s:2:ab"

    def test_numeric_canonicalization(self):
        # Same mathematical value -> same bytes, regardless of carrier type.
        assert encode_scalar(2) == encode_scalar(Fraction(2, 1))
        assert encode_scalar(2) == encode_scalar(2.0)
        assert encode_scalar(Fraction(1, 2)) == encode_scalar(0.5)

    def test_rejects_bool_and_nonfinite(self):
        with pytest.raises(ParameterError):
            encode_scalar(True)
        with pytest.raises(ParameterError):
            encode_scalar(float("nan"))
        with pytest.raises(ParameterError):
            encode_scalar(float("inf"))
        with pytest.raises(ParameterError):
            encode_scalar(None)  # type: ignore[arg-type]

    def test_concatenation_ambiguity_resolved(self):
        assert encode_scalars(["ab", "c"]) != encode_scalars(["a", "bc"])
        assert encode_scalars([1, 2]) != encode_scalars([12])
        assert encode_scalars([]) != encode_scalars([0])

    @given(scalar_lists, scalar_lists)
    def test_injectivity(self, a, b):
        def canon(value):
            if isinstance(value, str):
                return ("s", value)
            return ("n", Fraction(value))

        if list(map(canon, a)) == list(map(canon, b)):
            assert encode_scalars(a) == encode_scalars(b)
        else:
            assert encode_scalars(a) != encode_scalars(b)


class TestHasher:
    def test_deterministic(self):
        assert Hasher().hash_scalars([1, 2.5]) == Hasher().hash_scalars([1, 2.5])

    def test_salt_changes_digest(self):
        material = [0, Fraction(15, 2)]
        assert (
            Hasher(salt=b"alice").hash_scalars(material)
            != Hasher(salt=b"bob").hash_scalars(material)
        )

    def test_iterations_change_digest(self):
        material = [1]
        assert (
            Hasher(iterations=1).hash_scalars(material)
            != Hasher(iterations=2).hash_scalars(material)
        )

    def test_verify_scalars(self):
        hasher = Hasher(salt=b"u")
        digest = hasher.hash_scalars([3, 4])
        assert hasher.verify_scalars([3, 4], digest)
        assert not hasher.verify_scalars([3, 5], digest)

    def test_added_bits(self):
        assert Hasher(iterations=1024).added_bits == 10.0
        assert abs(added_security_bits(1000) - 9.97) < 0.01

    def test_added_bits_validation(self):
        with pytest.raises(ParameterError):
            added_security_bits(0)

    def test_validation(self):
        with pytest.raises(ParameterError):
            Hasher(iterations=0)
        with pytest.raises(ParameterError):
            Hasher(algorithm="not-a-hash")
        with pytest.raises(ParameterError):
            Hasher(salt="string")  # type: ignore[arg-type]
        with pytest.raises(ParameterError):
            Hasher().digest("not-bytes")  # type: ignore[arg-type]

    def test_with_salt(self):
        hasher = Hasher(iterations=7).with_salt(b"x")
        assert hasher.salt == b"x"
        assert hasher.iterations == 7

    def test_json_roundtrip(self):
        hasher = Hasher(algorithm="sha512", iterations=3, salt=b"\x01\x02")
        assert Hasher.from_json(hasher.to_json()) == hasher

    def test_iterated_hash_is_chained(self):
        # h^2(x) must equal h(h(x)) for the raw digest chain.
        import hashlib

        hasher = Hasher(iterations=2)
        once = hashlib.sha256(b"payload").digest()
        twice = hashlib.sha256(once).digest()
        assert hasher.digest(b"payload") == twice


class TestRecords:
    def test_combine_material_order(self):
        assert combine_material([1, 2], [3]) == (1, 2, 3)

    def test_make_and_match(self):
        record = make_record([Fraction(15, 2)], [0])
        assert record.matches([0])
        assert not record.matches([1])
        assert not record.matches([0, 0])

    def test_digest_commits_to_public(self):
        a = make_record([1], [0])
        b = make_record([2], [0])
        assert a.digest != b.digest

    def test_custom_hasher_used(self):
        record = make_record([1], [0], Hasher(salt=b"account"))
        assert record.hasher.salt == b"account"
        assert record.matches([0])

    @given(st.lists(st.integers(-100, 100), max_size=5),
           st.lists(st.integers(-100, 100), min_size=1, max_size=5))
    def test_roundtrip_and_match_property(self, public, secret):
        record = make_record(public, secret)
        assert record.matches(secret)
        restored = VerificationRecord.from_json(record.to_json())
        assert restored == record
        assert restored.matches(secret)

    def test_json_fraction_public(self):
        record = make_record([Fraction(1, 3)], [5])
        restored = VerificationRecord.from_json(record.to_json())
        assert restored.public == (Fraction(1, 3),)
        assert restored.matches([5])

    def test_from_json_rejects_malformed(self):
        with pytest.raises(VerificationError):
            VerificationRecord.from_json({"public": []})
