"""Tests for the analytic acceptance-probability module."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.acceptance import (
    acceptance_curve,
    centered_accept_probability,
    interval_stay_probability,
    robust_accept_probability,
    scheme_accept_probability,
    static_accept_probability,
)
from repro.core.centered import CenteredDiscretization
from repro.core.robust import GridSelection, RobustDiscretization
from repro.core.static import StaticGridScheme
from repro.errors import ParameterError
from repro.geometry.point import Point


class TestIntervalStayProbability:
    def test_zero_sigma_is_indicator(self):
        assert interval_stay_probability(-1, 1, 0) == 1.0
        assert interval_stay_probability(0.5, 1, 0) == 0.0
        assert interval_stay_probability(-1, 0, 0) == 0.0  # half-open at 0

    def test_symmetric_interval(self):
        p = interval_stay_probability(-2, 2, 1)
        # P(|Z| < 2) ≈ 0.9545
        assert abs(p - 0.9545) < 0.001

    def test_monotone_in_width(self):
        assert interval_stay_probability(-1, 1, 2) < interval_stay_probability(
            -3, 3, 2
        )

    def test_validation(self):
        with pytest.raises(ParameterError):
            interval_stay_probability(-1, 1, -0.5)


class TestCenteredClosedForm:
    def test_matches_normal_cdf(self):
        r, sigma = 4.5, 2.0
        per_axis = math.erf(r / sigma / math.sqrt(2))
        expected = per_axis**10  # 5 clicks x 2 axes
        assert abs(centered_accept_probability(r, sigma) - expected) < 1e-12

    def test_sigma_zero_always_accepts(self):
        assert centered_accept_probability(4.5, 0.0) == 1.0

    @given(
        st.floats(min_value=1.0, max_value=20.0),
        st.floats(min_value=0.1, max_value=10.0),
    )
    @settings(max_examples=40)
    def test_monotone_in_r(self, r, sigma):
        assert centered_accept_probability(
            r + 1, sigma
        ) >= centered_accept_probability(r, sigma)

    def test_validation(self):
        with pytest.raises(ParameterError):
            centered_accept_probability(0, 1)
        with pytest.raises(ParameterError):
            centered_accept_probability(1, 1, clicks=0)


class TestSchemeOrdering:
    def test_robust_above_centered_above_static_at_equal_r(self):
        """6r cells accept more noise than 2r cells than an uncentered grid."""
        sigma, r = 3.0, 4
        robust = robust_accept_probability(r, sigma)
        centered = centered_accept_probability(r + 0.5, sigma)
        static = static_accept_probability(2 * r + 1, sigma)
        assert robust > centered > static

    def test_robust_policy_matters(self):
        sigma, r = 4.0, 4
        best = robust_accept_probability(
            r, sigma, selection=GridSelection.MOST_CENTERED
        )
        first = robust_accept_probability(
            r, sigma, selection=GridSelection.FIRST_SAFE
        )
        assert best >= first


class TestMonteCarloAgreement:
    @pytest.mark.parametrize(
        "scheme",
        [
            CenteredDiscretization.for_pixel_tolerance(2, 4),
            RobustDiscretization(2, 4),
            StaticGridScheme(2, 9),
        ],
        ids=["centered", "robust", "static"],
    )
    def test_agreement_within_noise(self, scheme):
        sigma = 3.0
        analytic = scheme_accept_probability(scheme, sigma, clicks=2)
        rng = np.random.default_rng(1234)
        trials = 3000
        hits = 0
        for _ in range(trials):
            ok = True
            for _ in range(2):
                x = float(rng.uniform(50, 400))
                y = float(rng.uniform(50, 280))
                enrollment = scheme.enroll(Point.xy(x, y))
                candidate = Point.xy(
                    x + float(rng.normal(0, sigma)),
                    y + float(rng.normal(0, sigma)),
                )
                if not scheme.accepts(enrollment, candidate):
                    ok = False
                    break
            if ok:
                hits += 1
        simulated = hits / trials
        # 3σ binomial tolerance.
        margin = 3 * math.sqrt(max(analytic * (1 - analytic), 0.01) / trials)
        assert abs(analytic - simulated) < margin + 0.01


class TestAcceptanceCurve:
    def test_curve_decreasing_in_sigma(self):
        scheme = CenteredDiscretization.for_pixel_tolerance(2, 6)
        curve = acceptance_curve(scheme, sigmas=(0.5, 1.0, 2.0, 4.0), clicks=5)
        probs = list(curve.probabilities)
        assert probs == sorted(probs, reverse=True)

    def test_interpolation(self):
        scheme = CenteredDiscretization.for_pixel_tolerance(2, 6)
        curve = acceptance_curve(scheme, sigmas=(1.0, 2.0), clicks=5)
        mid = curve.at(1.5)
        assert curve.probabilities[1] <= mid <= curve.probabilities[0]

    def test_unsupported_scheme(self):
        with pytest.raises(ParameterError):
            scheme_accept_probability(RobustDiscretization(3, 4), 1.0)
