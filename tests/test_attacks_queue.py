"""Tests for the work-stealing task-queue attack mode.

The tentpole property: **queue mode is bit-identical to serial and to
static mode** for every worker count, every task size and every defense
cell — including runs where the guess budget is split into rank windows
and early-stopped accounts drop out of later waves.  Alongside it: the
zero-copy guess batch, the precompiled record matcher (midstate hashing)
that must reproduce ``VerificationRecord.matches`` bit for bit, the
scheduling telemetry, the ``default_workers`` affinity fallback, the
bounded injective-count memo, and the defense-matrix sweep's parallel
offline leg.
"""

from __future__ import annotations

import os
import random
from fractions import Fraction

import numpy as np
import pytest

from repro.attacks.dictionary import (
    INJECTIVE_CACHE_MAXSIZE,
    HumanSeededDictionary,
)
from repro.attacks.economics import (
    default_defense_cells,
    defense_matrix_sweep,
)
from repro.attacks.offline import (
    GuessBatch,
    _record_matcher,
    offline_attack_stolen_file,
    prepare_guess_batch,
)
from repro.attacks.parallel import (
    ShardedAttackRunner,
    auto_task_size,
    default_workers,
)
from repro.core.centered import CenteredDiscretization
from repro.core.robust import RobustDiscretization
from repro.crypto.hashing import Hasher
from repro.crypto.records import make_record, peppered_record
from repro.errors import AttackError
from repro.geometry.point import Point
from repro.passwords.defense import DefenseConfig, VirtualClock
from repro.passwords.passpoints import PassPointsSystem
from repro.passwords.policy import LockoutPolicy
from repro.passwords.store import PasswordStore
from repro.passwords.system import enroll_password
from repro.study.image import cars_image

SCHEME = CenteredDiscretization.for_pixel_tolerance(2, 9)


def _dictionary(tuple_length=5):
    """12 well-separated seed points → 95,040 exact-rank entries."""
    seeds = tuple(
        Point.xy(40 + 75 * (i % 4), 60 + 100 * (i // 4)) for i in range(12)
    )
    return HumanSeededDictionary(
        seed_points=seeds, tuple_length=tuple_length, image_name="cars"
    )


def _planted_records(scheme, dictionary, ranks, survivors=1, budget=512):
    """Accounts cracked at exactly *ranks*, plus full-budget survivors.

    Victim ``i`` enrolls dictionary entry ``ranks[i]`` verbatim (the
    well-separated seed pool makes crack ranks exact); survivors enroll
    the top entry's points shifted far outside every dictionary cell.
    """
    entries = list(dictionary.prioritized_entries(max(ranks) + 1 if ranks else 1))
    records = {}
    for index, rank in enumerate(ranks):
        username = f"victim{index:02d}"
        records[username] = enroll_password(
            scheme, entries[rank], Hasher(salt=username.encode())
        )
    for index in range(survivors):
        username = f"zsurvivor{index:02d}"
        points = [
            Point.xy(int(p.x) + 4096 + index, int(p.y) + 4096)
            for p in entries[0]
        ]
        records[username] = enroll_password(
            scheme, points, Hasher(salt=username.encode())
        )
    return records


class TestQueueBitIdentity:
    @pytest.mark.parametrize(
        "scheme",
        [SCHEME, RobustDiscretization.for_pixel_tolerance(2, 9)],
        ids=lambda s: s.name,
    )
    def test_modes_and_sizes_identical_to_serial(self, scheme):
        """workers × task_size × mode ⇒ one bit-identical result."""
        dictionary = _dictionary()
        records = _planted_records(
            scheme, dictionary, ranks=(0, 3, 17), survivors=2
        )
        serial = offline_attack_stolen_file(
            scheme, records, dictionary, guess_budget=40
        )
        assert serial.cracked == 3
        for workers in (1, 2, 4):
            for mode, sizes in (
                ("static", (None,)),
                ("queue", (None, 1, 7, 128, 10_000)),
            ):
                for task_size in sizes:
                    with ShardedAttackRunner(
                        workers=workers, mode=mode, task_size=task_size
                    ) as runner:
                        result = runner.run_stolen_file(
                            scheme, records, dictionary, guess_budget=40
                        )
                    assert result == serial, (workers, mode, task_size)

    def test_wave_windows_identical_with_random_early_stops(self):
        """Scarce accounts split the budget into waves; outcomes are exact.

        Victim crack ranks are drawn at random across the whole budget, so
        accounts drop out in different waves — the parent must reassemble
        ``guesses_hashed = rank + 1`` from per-window partial grinds.
        """
        dictionary = _dictionary()
        rng = random.Random(7)
        for trial in range(3):
            ranks = tuple(sorted(rng.sample(range(500), 4)))
            records = _planted_records(
                SCHEME, dictionary, ranks=ranks, survivors=2
            )
            serial = offline_attack_stolen_file(
                SCHEME, records, dictionary, guess_budget=512
            )
            by_name = {o.username: o for o in serial.outcomes}
            for index, rank in enumerate(ranks):
                assert by_name[f"victim{index:02d}"].guesses_hashed == rank + 1
            with ShardedAttackRunner(
                workers=2, mode="queue", task_size=len(records)
            ) as runner:
                result = runner.run_stolen_file(
                    SCHEME, records, dictionary, guess_budget=512
                )
                stats = runner.last_stats
            assert result == serial, f"trial {trial} ranks {ranks}"
            assert stats.waves > 1, "one account task must trigger rank windows"

    def test_all_defense_cells_identical_and_pool_reused(self):
        """Queue == serial under all 17 defense cells, one pool for all.

        Each cell enrolls its own population under its ``DefenseConfig``
        (slow-hash iterations, pepper, the works) and is ground with the
        cell's pepper — threading the pepper through per-task submissions
        while the worker-side scheme/dictionary/guess caches stay shared:
        the run payload is cell-independent, so one executor (and one
        cached guess batch per worker) must serve the whole sweep.
        """
        dictionary = _dictionary()
        entries = list(dictionary.prioritized_entries(24))
        image = cars_image()
        system = PassPointsSystem(image=image, scheme=SCHEME)
        cells = default_defense_cells()
        assert len(cells) == 17
        pools = set()
        with ShardedAttackRunner(workers=2, mode="queue", task_size=1) as runner:
            for cell in cells:
                store = PasswordStore(
                    system=system,
                    policy=LockoutPolicy(max_failures=None),
                    defense=cell.config,
                    clock=VirtualClock(),
                )
                for index, rank in enumerate((0, 5, 21)):
                    store.create_account(f"user{index}", list(entries[rank]))
                stolen = store.dump_records()
                pepper = cell.config.pepper
                serial = offline_attack_stolen_file(
                    SCHEME, stolen, dictionary, guess_budget=24, pepper=pepper
                )
                result = runner.run_stolen_file(
                    SCHEME, stolen, dictionary, guess_budget=24, pepper=pepper
                )
                assert result == serial, cell.name
                # With the (stolen) pepper supplied, every cell cracks all
                # three planted accounts; the sweep is not vacuous.
                assert serial.cracked == 3, cell.name
                pools.add(id(runner.__dict__["_pool"]))
        assert len(pools) == 1, "defense cells must share one worker pool"


class TestGuessBatch:
    def test_prepared_batch_reused_and_validated(self):
        dictionary = _dictionary()
        records = _planted_records(SCHEME, dictionary, ranks=(2,), survivors=1)
        batch = prepare_guess_batch(dictionary, 30, SCHEME.dim)
        assert isinstance(batch, GuessBatch)
        assert batch.guesses == 30
        assert not batch.points.flags.writeable
        view = batch.point_rows(3, 5)
        assert np.shares_memory(view, batch.points)  # zero-copy view
        assert view.shape == (2 * batch.clicks, SCHEME.dim)
        direct = offline_attack_stolen_file(
            SCHEME, records, dictionary, guess_budget=30
        )
        reused = offline_attack_stolen_file(
            SCHEME, records, dictionary, guess_budget=30, guesses=batch
        )
        assert reused == direct
        wrong_clicks = GuessBatch(
            entries=batch.entries, points=batch.points, clicks=3
        )
        with pytest.raises(AttackError, match="click"):
            offline_attack_stolen_file(
                SCHEME, records, dictionary, guess_budget=30, guesses=wrong_clicks
            )

    def test_record_matcher_matches_record_exactly(self):
        """The midstate matcher == ``record.matches`` on every config axis."""
        public = (Fraction(19, 2), 3, Fraction(-7, 6), 14)
        secret = (4, 5, -2)
        near_misses = [(4, 5, -1), (4, 6, -2), (0, 0, 0), (5, 4, -2)]
        for algorithm in ("sha256", "md5"):
            for iterations in (1, 3):
                for pepper in (b"", b"spicy"):
                    hasher = Hasher(
                        algorithm=algorithm, iterations=iterations, salt=b"alice"
                    )
                    record = make_record(public, secret, hasher=hasher)
                    if pepper:
                        record = peppered_record(record, pepper)
                    matcher = _record_matcher(record, len(secret), pepper)
                    for candidate in [secret] + near_misses:
                        assert matcher(candidate) == record.matches(
                            candidate, pepper=pepper
                        ), (algorithm, iterations, pepper, candidate)
                    if pepper:
                        # Without the pepper the grind must fail closed,
                        # exactly like the real verifier.
                        blind = _record_matcher(record, len(secret), b"")
                        assert not blind(secret)
                        assert not record.matches(secret)


class TestTelemetryAndDefaults:
    def test_last_stats_for_parallel_and_serial_runs(self):
        dictionary = _dictionary()
        records = _planted_records(SCHEME, dictionary, ranks=(0, 3), survivors=2)
        with ShardedAttackRunner(workers=2, mode="queue", task_size=1) as runner:
            assert runner.last_stats is None
            runner.run_stolen_file(SCHEME, records, dictionary, guess_budget=20)
            stats = runner.last_stats
        assert stats.mode == "queue"
        assert stats.workers == 2
        assert stats.tasks == len(records)
        assert stats.task_size == 1
        assert stats.worker_busy and all(
            seconds >= 0.0 for seconds in stats.worker_busy.values()
        )
        assert stats.straggler_ratio >= 1.0
        serial_runner = ShardedAttackRunner(workers=1)
        serial_runner.run_stolen_file(
            SCHEME, records, dictionary, guess_budget=20
        )
        serial_stats = serial_runner.last_stats
        assert serial_stats.mode == "serial"
        assert serial_stats.workers == serial_stats.tasks == 1
        assert set(serial_stats.worker_busy) == {os.getpid()}

    def test_runner_configuration_validation(self):
        with pytest.raises(AttackError, match="mode"):
            ShardedAttackRunner(mode="stealing")
        with pytest.raises(AttackError, match="task_size"):
            ShardedAttackRunner(task_size=0)

    def test_auto_task_size_bounds(self):
        assert auto_task_size(1, 4) == 1
        assert auto_task_size(200, 4) == 7  # ~8 tasks per worker
        assert auto_task_size(10**9, 1) == 8192  # clamped
        with pytest.raises(AttackError):
            auto_task_size(0, 4)
        with pytest.raises(AttackError):
            auto_task_size(10, 0)

    def test_default_workers_without_sched_getaffinity(self, monkeypatch):
        """macOS has no ``sched_getaffinity``: fall back to cpu_count."""
        monkeypatch.delattr(os, "sched_getaffinity", raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: 6)
        assert default_workers() == 6
        monkeypatch.setattr(os, "cpu_count", lambda: None)
        assert default_workers() == 1


class TestDefenseMatrixRunner:
    def test_sweep_offline_leg_identical_with_runner(self):
        """``defense_matrix_sweep(runner=...)`` changes nothing but speed."""
        cells = default_defense_cells()[:5]
        baseline = defense_matrix_sweep(
            cells=cells, online_guess_budget=8, offline_guess_budget=30
        )
        with ShardedAttackRunner(workers=2, mode="queue", task_size=2) as runner:
            parallel = defense_matrix_sweep(
                cells=cells,
                online_guess_budget=8,
                offline_guess_budget=30,
                runner=runner,
            )
        for serial_cell, parallel_cell in zip(
            baseline["cells"], parallel["cells"]
        ):
            assert parallel_cell["offline"] == serial_cell["offline"], (
                serial_cell["name"]
            )


class TestInjectiveCacheBound:
    def test_cache_stats_exposed_and_bounded(self):
        dictionary = _dictionary()
        HumanSeededDictionary.assignment_cache_clear()
        info = HumanSeededDictionary.assignment_cache_info()
        assert info.maxsize == INJECTIVE_CACHE_MAXSIZE
        assert info.currsize == 0
        match_sets = [[0, 1, 2], [1, 2, 3], [2, 3, 4], [3, 4, 5], [4, 5, 6]]
        first = dictionary.count_injective_assignments(match_sets)
        repeat = dictionary.count_injective_assignments(match_sets)
        assert first == repeat
        info = HumanSeededDictionary.assignment_cache_info()
        assert info.hits >= 1 and info.misses >= 1
        assert 0 < info.currsize <= INJECTIVE_CACHE_MAXSIZE
