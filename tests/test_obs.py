"""Tests for the unified telemetry layer (``repro.obs``).

Covers the metrics registry (counters/gauges/histograms with exact
quantiles, Prometheus exposition, disabled no-op path), the span tracer
(nesting, ring retention, VirtualClock determinism), and the acceptance
criterion: registry counters must equal the legacy ``ServiceStats``
fields across randomized concurrent interleavings for all three schemes
on memory / sqlite / sharded-sqlite backends — plus the server's
``stats`` / ``metrics`` / ``trace`` wire surface.
"""

from __future__ import annotations

import asyncio
import json

import numpy as np
import pytest

from repro.attacks.dictionary import HumanSeededDictionary
from repro.attacks.parallel import ShardedAttackRunner
from repro.core.centered import CenteredDiscretization
from repro.core.robust import RobustDiscretization
from repro.core.static import StaticGridScheme
from repro.crypto.hashing import Hasher
from repro.errors import ParameterError
from repro.geometry.point import Point
from repro.obs import (
    LATENCY_BUCKETS,
    NULL_REGISTRY,
    NULL_SPAN,
    MetricsRegistry,
    SpanTracer,
    export_snapshot,
    get_registry,
    set_registry,
)
from repro.passwords.defense import DefenseConfig, VirtualClock
from repro.passwords.passpoints import PassPointsSystem
from repro.passwords.policy import LockoutPolicy
from repro.passwords.storage import backend_from_uri
from repro.passwords.store import PasswordStore
from repro.passwords.system import enroll_password
from repro.serving import AsyncVerificationService, LoginServer
from repro.study.image import cars_image

SCHEMES = {
    "centered": lambda: CenteredDiscretization.for_pixel_tolerance(2, 9),
    "robust": lambda: RobustDiscretization.for_pixel_tolerance(2, 9),
    "static": lambda: StaticGridScheme(dim=2, cell_size=19),
}

#: The acceptance-criterion backend matrix.
BACKENDS = ["memory", "sqlite", "shards"]


def make_backend(kind: str, tmp_path, tag: str):
    if kind == "memory":
        return backend_from_uri("memory:")
    if kind == "sqlite":
        return backend_from_uri(f"sqlite:{tmp_path / tag}.db")
    return backend_from_uri(f"shards:sqlite:{tmp_path / tag}-s{{0..2}}.db")


def build_store(scheme_name, backend, policy=None, registry=None):
    system = PassPointsSystem(image=cars_image(), scheme=SCHEMES[scheme_name]())
    return PasswordStore(
        system=system,
        policy=policy or LockoutPolicy(max_failures=3),
        backend=backend,
        registry=registry,
    )


def random_password(rng, image):
    return [
        Point.xy(int(x), int(y))
        for x, y in zip(
            rng.integers(30, image.width - 30, size=5),
            rng.integers(30, image.height - 30, size=5),
        )
    ]


# -- metrics primitives ------------------------------------------------------


class TestMetricsPrimitives:
    def test_counter_increments_and_rejects_negative(self):
        registry = MetricsRegistry()
        counter = registry.counter("logins_total", help="x", status="accept")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ParameterError):
            counter.inc(-1)

    def test_same_name_and_labels_is_same_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter("x_total", status="accept")
        b = registry.counter("x_total", status="accept")
        c = registry.counter("x_total", status="reject")
        assert a is b
        assert a is not c

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("thing_total")
        with pytest.raises(ParameterError):
            registry.gauge("thing_total")
        with pytest.raises(ParameterError):
            registry.histogram("thing_total", status="other_labels")

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ParameterError):
            registry.counter("bad-name")
        with pytest.raises(ParameterError):
            registry.counter("ok_name", **{"bad label": "v"})

    def test_gauge_set_max_and_inc(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("largest_batch")
        gauge.set_max(4)
        gauge.set_max(2)
        assert gauge.value == 4
        gauge.set(1.5)
        gauge.inc(-0.5)
        assert gauge.value == 1.0

    def test_histogram_exact_quantiles(self):
        registry = MetricsRegistry()
        hist = registry.histogram("t_seconds", buckets=(0.1, 1.0, 10.0))
        samples = [0.05 * i for i in range(1, 101)]  # 0.05 .. 5.0
        for value in samples:
            hist.observe(value)
        # Nearest-rank over the full retained window: exact, not
        # bucket-interpolated.
        assert hist.quantile(0.5) == samples[49]
        assert hist.quantile(0.95) == samples[94]
        assert hist.quantile(0.99) == samples[98]
        assert hist.quantile(0.0) == samples[0]
        assert hist.quantile(1.0) == samples[-1]
        snap = hist.snapshot()
        assert snap["count"] == 100
        assert snap["min"] == samples[0] and snap["max"] == samples[-1]
        assert snap["p50"] == samples[49]
        assert snap["buckets"]["0.1"] == 2  # 0.05, 0.10
        assert snap["buckets"]["+Inf"] == 100

    def test_histogram_window_bounds_memory_not_count(self):
        registry = MetricsRegistry()
        hist = registry.histogram("w_seconds", sample_window=16)
        for value in range(100):
            hist.observe(float(value))
        assert hist.count == 100  # cumulative count never truncates
        snap = hist.snapshot()
        assert snap["window"] == 16  # quantiles scope to the ring
        assert snap["p50"] == 91.0  # nearest-rank over 84..99

    def test_histogram_observe_many_matches_observe(self):
        registry = MetricsRegistry()
        one = registry.histogram("one_seconds", buckets=(0.1, 1.0, 10.0))
        bulk = registry.histogram("bulk_seconds", buckets=(0.1, 1.0, 10.0))
        samples = [0.05 * i for i in range(1, 101)]
        for value in samples:
            one.observe(value)
        bulk.observe_many(samples)
        bulk.observe_many([])  # empty batch is a no-op
        assert bulk.snapshot() == one.snapshot()

    def test_histogram_empty_quantile_is_none(self):
        hist = MetricsRegistry().histogram("e_seconds")
        assert hist.quantile(0.5) is None
        snap = hist.snapshot()
        assert snap["p50"] is None and snap["min"] is None

    def test_default_latency_buckets_sorted(self):
        assert list(LATENCY_BUCKETS) == sorted(LATENCY_BUCKETS)


class TestRegistryExport:
    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("a_total", help="ah", op="x").inc(2)
        registry.gauge("b").set(1.5)
        registry.histogram("c_seconds").observe(0.25)
        snap = registry.snapshot()
        assert snap["enabled"] is True
        assert snap["counters"] == {'a_total{op="x"}': 2}
        assert snap["gauges"] == {"b": 1.5}
        assert snap["histograms"]["c_seconds"]["count"] == 1
        # JSON-safe end to end (the {"op": "metrics"} payload).
        json.dumps(snap)

    def test_prometheus_exposition(self):
        registry = MetricsRegistry()
        registry.counter("req_total", help="requests", op="login").inc(7)
        registry.gauge("ratio").set(1.25)
        hist = registry.histogram("lat_seconds", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        text = registry.render_prometheus()
        assert "# HELP req_total requests" in text
        assert "# TYPE req_total counter" in text
        assert 'req_total{op="login"} 7' in text
        assert "ratio 1.25" in text
        assert 'lat_seconds_bucket{le="0.1"} 1' in text
        assert 'lat_seconds_bucket{le="+Inf"} 2' in text
        assert "lat_seconds_count 2" in text
        assert "lat_seconds_p50 0.05" in text
        assert text.endswith("\n")

    def test_export_snapshot_default_and_explicit(self):
        isolated = MetricsRegistry()
        isolated.counter("only_here_total").inc()
        assert "only_here_total" in export_snapshot(isolated)["counters"]
        previous = set_registry(isolated)
        try:
            assert export_snapshot() is not None
            assert get_registry() is isolated
        finally:
            set_registry(previous)

    def test_reset_drops_instruments(self):
        registry = MetricsRegistry()
        registry.counter("gone_total").inc()
        registry.reset()
        assert registry.snapshot()["counters"] == {}


class TestDisabledRegistry:
    def test_disabled_registry_hands_out_shared_noop(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("x_total")
        gauge = registry.gauge("y")
        hist = registry.histogram("z_seconds")
        assert counter is gauge is hist  # the one shared NULL_INSTRUMENT
        counter.inc(5)
        gauge.set(3)
        gauge.set_max(9)
        hist.observe(0.5)
        assert counter.value == 0
        assert hist.count == 0 and hist.quantile(0.5) is None
        snap = registry.snapshot()
        assert snap == {
            "enabled": False, "counters": {}, "gauges": {}, "histograms": {},
        }
        assert registry.render_prometheus() == ""

    def test_null_registry_is_disabled(self):
        assert NULL_REGISTRY.enabled is False

    def test_disabled_service_publishes_nothing(self, tmp_path):
        store = build_store(
            "centered", make_backend("memory", tmp_path, "x"),
            registry=NULL_REGISTRY,
        )
        points = [Point.xy(40 + 60 * i, 50 + 40 * i) for i in range(5)]
        store.create_account("alice", points)
        assert store.login("alice", points) is True
        assert NULL_REGISTRY.snapshot()["counters"] == {}


# -- span tracer -------------------------------------------------------------


class TestSpanTracer:
    def test_nesting_attributes_and_to_dict(self):
        clock = VirtualClock()
        tracer = SpanTracer(capacity=8, clock=clock)
        span = tracer.start("serving.flush", trigger="size")
        clock.advance(0.25)
        child = span.child("serving.login", attempts=2)
        clock.advance(0.5)
        child.finish()
        span.annotate(batch_size=3)
        clock.advance(0.25)
        span.finish()
        [got] = tracer.recent()
        assert got["name"] == "serving.flush"
        assert got["duration"] == 1.0
        assert got["attributes"] == {"trigger": "size", "batch_size": 3}
        [child_dict] = got["children"]
        assert child_dict["name"] == "serving.login"
        assert child_dict["duration"] == 0.5
        assert child_dict["attributes"] == {"attempts": 2}

    def test_ring_retention_and_finished_count(self):
        tracer = SpanTracer(capacity=3)
        for index in range(7):
            tracer.start(f"span{index}").finish()
        names = [s["name"] for s in tracer.recent()]
        assert names == ["span4", "span5", "span6"]  # oldest first
        assert tracer.finished_count == 7
        assert [s["name"] for s in tracer.recent(limit=2)] == ["span5", "span6"]
        tracer.clear()
        assert tracer.recent() == []
        assert tracer.finished_count == 7

    def test_child_spans_are_not_committed_as_roots(self):
        tracer = SpanTracer()
        span = tracer.start("root")
        span.child("leaf").finish()
        assert tracer.recent() == []  # root still open
        span.finish()
        assert len(tracer.recent()) == 1

    def test_context_manager_finishes(self):
        tracer = SpanTracer()
        with tracer.start("cm") as span:
            span.annotate(ok=True)
        assert tracer.recent()[0]["attributes"] == {"ok": True}

    def test_double_finish_commits_once(self):
        tracer = SpanTracer()
        span = tracer.start("once")
        span.finish()
        first_end = span.end
        span.finish()
        assert span.end == first_end
        assert tracer.finished_count == 1

    def test_disabled_tracer_returns_null_span(self):
        tracer = SpanTracer(enabled=False)
        span = tracer.start("anything", key="value")
        assert span is NULL_SPAN
        assert span.child("nested") is span
        assert span.annotate(x=1) is span
        span.finish()
        assert tracer.recent() == []
        assert span.to_dict() == {}

    def test_capacity_validation(self):
        with pytest.raises(ParameterError):
            SpanTracer(capacity=0)


# -- instrumented components -------------------------------------------------


class TestStoreInstrumentation:
    def test_scalar_login_counters(self, tmp_path):
        registry = MetricsRegistry()
        store = build_store(
            "centered", make_backend("memory", tmp_path, "s"), registry=registry
        )
        points = [Point.xy(40 + 60 * i, 50 + 40 * i) for i in range(5)]
        wrong = [Point.xy(int(p.x) - 25, int(p.y) + 25) for p in points]
        store.create_account("alice", points)
        assert store.login("alice", points) is True
        for _ in range(3):
            assert store.login("alice", wrong) is False
        from repro.errors import LockoutError

        with pytest.raises(LockoutError):
            store.login("alice", points)
        counters = registry.snapshot()["counters"]
        assert counters['store_logins_total{status="accept"}'] == 1
        assert counters['store_logins_total{status="reject"}'] == 3
        assert counters['store_logins_total{status="locked"}'] == 1
        assert counters['defense_refusals_total{knob="lockout"}'] == 1
        hist = registry.snapshot()["histograms"]["store_verify_seconds"]
        assert hist["count"] == 4  # the locked attempt never hashed

    def test_captcha_and_rate_limit_counters(self, tmp_path):
        clock = VirtualClock()
        registry = MetricsRegistry()
        backend = make_backend("memory", tmp_path, "d")
        system = PassPointsSystem(
            image=cars_image(), scheme=SCHEMES["centered"]()
        )
        store = PasswordStore(
            system=system,
            policy=LockoutPolicy(max_failures=100),
            backend=backend,
            defense=DefenseConfig(
                captcha_after=1, rate_limit_window=60.0, rate_limit_max=3
            ),
            clock=clock,
            registry=registry,
        )
        points = [Point.xy(40 + 60 * i, 50 + 40 * i) for i in range(5)]
        wrong = [Point.xy(int(p.x) - 25, int(p.y) + 25) for p in points]
        store.create_account("bob", points)
        store.login("bob", wrong)  # failure #1 arms the captcha knob
        store.login("bob", wrong)  # challenged
        store.login("bob", wrong)  # challenged; window now exhausted
        from repro.errors import RateLimitError

        with pytest.raises(RateLimitError):
            store.login("bob", wrong)  # challenged, then refused
        counters = registry.snapshot()["counters"]
        # The refused attempt still counts as challenged: the CAPTCHA is
        # presented before the rate-limit verdict.
        assert counters['defense_challenges_total{knob="captcha"}'] == 3
        assert counters['defense_refusals_total{knob="rate_limit"}'] == 1
        assert counters['store_logins_total{status="throttled"}'] == 1


class TestAttackRunnerInstrumentation:
    def test_serial_run_publishes_attack_metrics(self):
        scheme = SCHEMES["centered"]()
        seeds = tuple(
            Point.xy(40 + 75 * (i % 4), 60 + 100 * (i // 4)) for i in range(12)
        )
        dictionary = HumanSeededDictionary(
            seed_points=seeds, tuple_length=5, image_name="cars"
        )
        entries = list(dictionary.prioritized_entries(4))
        records = {
            f"victim{i}": enroll_password(
                scheme, entries[i], Hasher(salt=f"victim{i}".encode())
            )
            for i in range(2)
        }
        registry = MetricsRegistry()
        runner = ShardedAttackRunner(workers=1, registry=registry)
        result = runner.run_stolen_file(
            scheme, records, dictionary, guess_budget=8
        )
        assert result.cracked == 2
        stats = runner.last_stats
        assert stats is not None and stats.mode == "serial"
        snap = registry.snapshot()
        assert snap["counters"]['attack_runs_total{mode="serial"}'] == 1
        assert snap["counters"]["attack_tasks_total"] == stats.tasks == 1
        assert snap["counters"]["attack_waves_total"] == stats.waves == 1
        assert snap["gauges"]["attack_workers"] == 1
        assert snap["gauges"]["attack_task_size"] == stats.task_size
        assert snap["gauges"]["attack_straggler_ratio"] == pytest.approx(
            stats.straggler_ratio
        )
        busy = snap["histograms"]["attack_worker_busy_seconds"]
        assert busy["count"] == len(stats.worker_busy) == 1

    def test_disabled_registry_still_stashes_last_stats(self):
        scheme = SCHEMES["centered"]()
        seeds = tuple(
            Point.xy(40 + 75 * (i % 4), 60 + 100 * (i // 4)) for i in range(12)
        )
        dictionary = HumanSeededDictionary(
            seed_points=seeds, tuple_length=5, image_name="cars"
        )
        entries = list(dictionary.prioritized_entries(1))
        records = {
            "only": enroll_password(scheme, entries[0], Hasher(salt=b"only"))
        }
        runner = ShardedAttackRunner(workers=1, registry=NULL_REGISTRY)
        runner.run_stolen_file(scheme, records, dictionary, guess_budget=2)
        assert runner.last_stats is not None
        assert NULL_REGISTRY.snapshot()["counters"] == {}


# -- the acceptance-criterion property test ---------------------------------


@pytest.mark.parametrize("scheme_name", sorted(SCHEMES))
@pytest.mark.parametrize("backend_kind", BACKENDS)
async def test_registry_matches_service_stats(scheme_name, backend_kind, tmp_path):
    """Registry counters == legacy ServiceStats across random interleavings."""
    image = cars_image()
    rng = np.random.default_rng(20080000 + hash(scheme_name) % 1000)
    accounts = {f"user{i}": random_password(rng, image) for i in range(4)}
    clients = 3
    streams = []
    for _ in range(clients):
        stream = []
        names = sorted(accounts)
        for _ in range(20):
            username = names[int(rng.integers(len(names)))]
            points = accounts[username]
            if rng.random() < 0.4:  # attacker
                attempt = [
                    Point.xy(int(p.x) - 25, int(p.y) + 25) for p in points
                ]
            else:
                attempt = list(points)
            stream.append((username, attempt))
        streams.append(stream)
    yield_plan = [
        [float(x) < 0.4 for x in rng.random(len(stream))] for stream in streams
    ]

    registry = MetricsRegistry()
    backend = make_backend(backend_kind, tmp_path, f"obs-{scheme_name}")
    store = build_store(scheme_name, backend, registry=registry)
    for username, points in accounts.items():
        store.create_account(username, points)
    service = AsyncVerificationService(store, max_batch=8, registry=registry)

    decided_statuses = []

    async def client(stream, yields):
        for (username, attempt), should_yield in zip(stream, yields):
            if should_yield:
                await asyncio.sleep(0)
            outcome = await service.submit(username, attempt)
            decided_statuses.append(outcome.status)

    await asyncio.gather(
        *(client(s, y) for s, y in zip(streams, yield_plan))
    )
    await service.drain()

    stats = service.stats
    snap = registry.snapshot()
    counters = snap["counters"]
    assert counters["serving_submitted_total"] == stats.submitted == 60
    assert counters["serving_decided_total"] == stats.decided == 60
    flush_counters = {
        trigger: counters.get(
            f'serving_flushes_total{{trigger="{trigger}"}}', 0
        )
        for trigger in ("size", "deadline", "drain")
    }
    assert sum(flush_counters.values()) == stats.flushes
    assert flush_counters["size"] == stats.size_flushes
    assert flush_counters["deadline"] == stats.deadline_flushes
    assert snap["gauges"]["serving_largest_batch"] == stats.largest_batch
    batch_hist = snap["histograms"]["serving_batch_size"]
    assert batch_hist["count"] == stats.flushes
    assert batch_hist["sum"] == stats.decided
    assert batch_hist["max"] == stats.largest_batch
    # Queue-wait: one observation per parked submit() call.
    assert snap["histograms"]["serving_queue_wait_seconds"]["count"] == 60
    # Batched decisions land in the service_logins_total{status=...}
    # family — identical tallies to what the clients observed.
    for status in ("accept", "reject", "locked"):
        assert counters[
            f'service_logins_total{{status="{status}"}}'
        ] == decided_statuses.count(status), (scheme_name, backend_kind, status)
    # The stats_view the server's stats op serves agrees field by field.
    view = service.stats_view()
    assert view["submitted"] == stats.submitted
    assert view["pending_count"] == 0
    assert view["deadline_flushes"] == stats.deadline_flushes
    backend.close()


# -- tracer-wired serving ----------------------------------------------------


async def test_async_service_spans_with_virtual_clock(tmp_path):
    """An injected VirtualClock makes span timings bit-deterministic."""
    clock = VirtualClock()
    registry = MetricsRegistry()
    tracer = SpanTracer(capacity=16, clock=clock)
    store = build_store(
        "centered", make_backend("memory", tmp_path, "t"), registry=registry
    )
    points = [Point.xy(40 + 60 * i, 50 + 40 * i) for i in range(5)]
    store.create_account("alice", points)
    service = AsyncVerificationService(
        store, max_batch=64, registry=registry, tracer=tracer
    )
    assert service.tracer is tracer

    future = service.submit("alice", points)
    clock.advance(0.75)
    await service.drain()
    assert (await future).status == "accept"

    [span] = tracer.recent()
    assert span["name"] == "serving.flush"
    assert span["attributes"]["batch_size"] == 1
    assert span["attributes"]["kernel_seconds"] >= 0.0  # annotated timings
    [child] = span["children"]
    assert child["name"] == "serving.login"
    assert child["attributes"]["queue_wait_seconds"] == 0.75
    assert child["duration"] == 0.75
    # The same clock feeds the queue-wait histogram: exact quantile.
    wait = registry.snapshot()["histograms"]["serving_queue_wait_seconds"]
    assert wait["p50"] == 0.75

    # A disabled tracer on the same store is a no-op path.
    silent = AsyncVerificationService(
        store, registry=registry, tracer=SpanTracer(enabled=False)
    )
    assert silent.tracer is None


# -- wire surface ------------------------------------------------------------


async def _request(reader, writer, payload: dict) -> dict:
    writer.write(json.dumps(payload).encode() + b"\n")
    await writer.drain()
    return json.loads(await reader.readline())


async def test_server_stats_metrics_and_trace_ops(tmp_path):
    registry = MetricsRegistry()
    tracer = SpanTracer(capacity=64)
    store = build_store(
        "centered", make_backend("memory", tmp_path, "w"), registry=registry
    )
    points = [Point.xy(40 + 60 * i, 50 + 40 * i) for i in range(5)]
    store.create_account("alice", points)
    server = await LoginServer(
        store, port=0, registry=registry, tracer=tracer
    ).start()
    host, port = server.address
    try:
        reader, writer = await asyncio.open_connection(host, port)
        login = await _request(
            reader, writer,
            {"op": "login", "id": 1, "user": "alice",
             "points": [[int(p.x), int(p.y)] for p in points]},
        )
        assert login["ok"] and login["status"] == "accept"

        stats = await _request(reader, writer, {"op": "stats", "id": 2})
        assert stats["ok"]
        # Satellite: the stats op exposes the live queue depth and the
        # deadline-flush count alongside the legacy counters.
        assert stats["pending_count"] == 0
        assert stats["deadline_flushes"] >= 1
        assert stats["submitted"] == stats["decided"] == 1
        assert stats["accounts"] == 1

        metrics = await _request(reader, writer, {"op": "metrics", "id": 3})
        assert metrics["ok"]
        snap = metrics["metrics"]
        assert snap["enabled"] is True
        assert snap["counters"]["serving_decided_total"] == 1
        assert snap["counters"]['server_requests_total{op="login"}'] == 1
        assert snap["histograms"]["serving_queue_wait_seconds"]["count"] == 1
        assert snap["histograms"]["service_kernel_seconds"]["p50"] is not None

        prom = await _request(
            reader, writer, {"op": "metrics", "id": 4, "format": "prom"}
        )
        assert prom["ok"]
        assert "serving_decided_total 1" in prom["prom"]
        assert "serving_queue_wait_seconds_p50 " in prom["prom"]

        trace = await _request(reader, writer, {"op": "trace", "id": 5})
        assert trace["ok"]
        flushes = [s for s in trace["spans"] if s["name"] == "serving.flush"]
        assert flushes and flushes[0]["children"][0]["name"] == "serving.login"

        limited = await _request(
            reader, writer, {"op": "trace", "id": 6, "limit": 1}
        )
        assert len(limited["spans"]) == 1

        writer.close()
        await writer.wait_closed()
    finally:
        await server.aclose()
    assert registry.snapshot()["counters"]["server_connections_total"] == 1


async def test_server_without_tracer_serves_empty_trace(tmp_path):
    registry = MetricsRegistry()
    store = build_store(
        "centered", make_backend("memory", tmp_path, "nt"), registry=registry
    )
    server = await LoginServer(store, port=0, registry=registry).start()
    host, port = server.address
    try:
        reader, writer = await asyncio.open_connection(host, port)
        trace = await _request(reader, writer, {"op": "trace", "id": 1})
        assert trace["ok"] and trace["spans"] == []
        writer.close()
        await writer.wait_closed()
    finally:
        await server.aclose()


# -- cross-process snapshot merging (the cluster router's fan-out path) -------


def _merge_sample_snapshot(seed: int) -> dict:
    """One worker-shaped registry snapshot with counters/gauges/histograms."""
    rng = np.random.default_rng(seed)
    registry = MetricsRegistry()
    registry.counter("server_requests_total", op="login").inc(
        int(rng.integers(1, 50))
    )
    registry.counter("server_requests_total", op="stats").inc(
        int(rng.integers(1, 10))
    )
    registry.counter("server_connections_total").inc(int(rng.integers(1, 5)))
    registry.gauge("service_pending").set(float(seed))
    registry.histogram("login_flush_seconds", trigger="size").observe_many(
        rng.random(40) * 0.5
    )
    registry.histogram("login_flush_seconds", trigger="deadline").observe_many(
        rng.random(25) * 2.0
    )
    return registry.snapshot(include_samples=True)


class TestRegistryMerge:
    def _fold(self, *snapshots: dict) -> dict:
        registry = MetricsRegistry()
        for snapshot in snapshots:
            registry.merge(snapshot)
        return registry.snapshot(include_samples=True)

    def test_merge_is_associative(self):
        """Merging worker snapshots in any grouping is bit-identical — the
        router may fold replies in whatever order the fan-out resolves."""
        a, b, c = (_merge_sample_snapshot(seed) for seed in (1, 2, 3))
        left = self._fold(self._fold(a, b), c)
        right = self._fold(a, self._fold(b, c))
        flat = self._fold(a, b, c)
        assert left == right == flat

    def test_merge_sums_counts_and_extends_extrema(self):
        a, b = (_merge_sample_snapshot(seed) for seed in (4, 5))
        merged = self._fold(a, b)
        for key in set(a["counters"]) | set(b["counters"]):
            assert merged["counters"][key] == (
                a["counters"].get(key, 0) + b["counters"].get(key, 0)
            )
        for key, hist in merged["histograms"].items():
            parts = [
                snap["histograms"][key]
                for snap in (a, b)
                if key in snap["histograms"]
            ]
            assert hist["count"] == sum(part["count"] for part in parts)
            assert hist["min"] == min(part["min"] for part in parts)
            assert hist["max"] == max(part["max"] for part in parts)
        # Gauges are last-write-wins across the fold.
        assert merged["gauges"]["service_pending"] == b["gauges"][
            "service_pending"
        ]

    def test_merge_rejects_mismatched_buckets(self):
        registry = MetricsRegistry()
        registry.histogram("probe_seconds", buckets=[0.1, 1.0]).observe(0.5)
        donor = MetricsRegistry()
        donor.histogram("probe_seconds", buckets=[0.2, 2.0]).observe(0.5)
        with pytest.raises(ParameterError):
            registry.merge(donor.snapshot(include_samples=True))

    def test_merge_without_samples_still_sums(self):
        """Bucket-only snapshots (no raw rings) merge too — quantiles are
        then bucket-resolution, which is what the wire default ships."""
        a, b = (_merge_sample_snapshot(seed) for seed in (6, 7))
        for snap in (a, b):
            for hist in snap["histograms"].values():
                hist.pop("samples", None)
        merged = self._fold(a, b)
        key = 'login_flush_seconds{trigger="size"}'
        assert merged["histograms"][key]["count"] == (
            a["histograms"][key]["count"] + b["histograms"][key]["count"]
        )

    def test_merge_empty_and_disabled_are_noops(self):
        registry = MetricsRegistry()
        registry.counter("server_connections_total").inc(3)
        before = registry.snapshot(include_samples=True)
        registry.merge({})
        assert registry.snapshot(include_samples=True) == before
        disabled = MetricsRegistry(enabled=False)
        assert disabled.merge(before) is disabled
        assert disabled.snapshot()["counters"] == {}
