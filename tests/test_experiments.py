"""Tests for the experiment drivers: every table/figure reproduction runs
and satisfies the paper's qualitative claims (the quantitative targets are
recorded in EXPERIMENTS.md and spot-checked here where exact)."""

from __future__ import annotations

import pytest

from repro.experiments import EXPERIMENTS, run_experiment
from repro.experiments import figure7, figure8, illustrations, leakage_exp
from repro.experiments import table1, table2, table3
from repro.experiments.common import ExperimentResult, default_dataset


class TestRegistry:
    def test_all_paper_artifacts_present(self):
        for required in (
            "table1", "table2", "table3", "figure7", "figure8",
            "figure1", "figure2", "figures_3_4", "figures_5_6", "leakage",
        ):
            assert required in EXPERIMENTS

    def test_unknown_experiment(self):
        with pytest.raises(KeyError, match="table1"):
            run_experiment("not_an_experiment")


class TestTable1:
    @pytest.fixture(scope="class")
    def result(self, request):
        return table1.run()

    def test_structure(self, result):
        assert isinstance(result, ExperimentResult)
        assert len(result.rows) == 3
        assert len(result.comparisons) == 6

    def test_centered_columns_zero(self, result):
        for row in result.rows:
            assert row[4] == 0.0  # centered FA
            assert row[5] == 0.0  # centered FR

    def test_robust_errors_positive_and_ordered(self, result):
        fa = [row[2] for row in result.rows]
        fr = [row[3] for row in result.rows]
        assert all(value > 0 for value in fa)
        assert all(value > 0 for value in fr)
        assert fa[0] >= fa[-1]
        assert fr[0] >= fr[-1]

    def test_fr_magnitude_matches_paper_regime(self, result):
        """Paper: 9x9 FR 21.8%, 13x13 21.1% — double-digit false rejects."""
        fr_9 = result.rows[0][3]
        assert 10.0 <= fr_9 <= 35.0

    def test_rendered_contains_comparisons(self, result):
        text = result.rendered()
        assert "paper vs measured" in text
        assert "false-reject" in text


class TestTable2:
    @pytest.fixture(scope="class")
    def result(self):
        return table2.run()

    def test_robust_fr_exactly_zero(self, result):
        for row in result.rows:
            assert row[3] == 0.0

    def test_robust_fa_positive_decreasing(self, result):
        fa = [row[2] for row in result.rows]
        assert fa[0] > fa[1] > fa[2] > 0

    def test_fa_magnitude_matches_paper_regime(self, result):
        """Paper: r=4 -> 32.1% FA; ours must be the same double-digit scale."""
        assert 20.0 <= result.rows[0][2] <= 45.0
        assert result.rows[2][2] <= 12.0


class TestTable3:
    @pytest.fixture(scope="class")
    def result(self):
        return table3.run()

    def test_every_paper_value_exact(self, result):
        for comparison in result.comparisons:
            if comparison["paper"] is None:
                continue
            label = comparison["label"]
            delta = abs(float(comparison["measured"]) - float(comparison["paper"]))
            if "text password" in label:
                assert delta <= 0.11, label  # paper rounded 52.56 to 52.5
            else:
                assert delta < 0.05, label

    def test_row_count(self, result):
        assert len(result.rows) == 12


class TestFigure7:
    @pytest.fixture(scope="class")
    def result(self):
        return figure7.run()

    def test_schemes_similar_at_equal_size(self, result):
        for row in result.rows:
            _, _, centered_pct, robust_pct, _ = row
            assert abs(centered_pct - robust_pct) <= 12.0

    def test_crack_rate_monotone_in_size(self, result):
        by_image = {}
        for image_name, size, centered_pct, robust_pct, _ in result.rows:
            by_image.setdefault(image_name, []).append(centered_pct)
        for series in by_image.values():
            assert series == sorted(series)

    def test_dictionary_is_36_bits(self, result):
        for row in result.rows:
            assert 35.5 <= row[4] <= 36.5


class TestFigure8:
    @pytest.fixture(scope="class")
    def result(self):
        return figure8.run()

    def test_robust_dominates_centered(self, result):
        for image_name, r, centered_pct, robust_pct in result.rows:
            assert robust_pct > centered_pct, (image_name, r)

    def test_gap_grows_with_r_on_cars(self, result):
        cars = [row for row in result.rows if row[0] == "cars"]
        gaps = [robust - centered for _, _, centered, robust in cars]
        assert gaps[0] < gaps[-1] or max(gaps) == gaps[1]

    def test_cars_r9_in_paper_regime(self, result):
        row = next(r for r in result.rows if r[0] == "cars" and r[1] == 9)
        _, _, centered_pct, robust_pct = row
        assert 15.0 <= centered_pct <= 40.0  # paper: 26
        assert 60.0 <= robust_pct <= 90.0  # paper: 79

    def test_comparisons_cover_paper_quotes(self, result):
        labels = {c["label"] for c in result.comparisons}
        assert "cars r=9 robust cracked %" in labels
        assert "cars r=6 centered cracked %" in labels


class TestIllustrations:
    def test_figure1_exact_ratios(self):
        result = illustrations.figure1(r=9)
        for comparison in result.comparisons:
            assert abs(
                float(comparison["measured"]) - float(comparison["paper"])
            ) < 1e-6

    def test_figure2_worked_example(self):
        result = illustrations.figure2()
        by_label = {c["label"]: c for c in result.comparisons}
        assert by_label["worked example i"]["measured"] == 0
        assert by_label["worked example d"]["measured"] == 7.5

    def test_figures_3_4_render(self):
        result = illustrations.figures_3_4(columns=30)
        assert "cars" in result.notes
        assert len(result.rows) == 2

    def test_figures_5_6(self):
        result = illustrations.figures_5_6(r=6)
        assert len(result.rows) == 2
        assert "13x13" in str(result.rows[1])


class TestLeakage:
    @pytest.fixture(scope="class")
    def result(self):
        return leakage_exp.run(sample_passwords=15)

    def test_paper_bit_values(self, result):
        by_label = {c["label"]: c for c in result.comparisons}
        assert by_label["centered identifier bits (r=8)"]["measured"] == 8.0
        assert by_label["robust identifier storage bits"]["measured"] == 2

    def test_rank_fractions_in_range(self, result):
        for row in result.rows:
            assert 0 < row[4] <= 1


class TestDatasetSharing:
    def test_default_dataset_cached(self):
        assert default_dataset() is default_dataset()
