"""Tests for the process-sharded parallel attack engine.

The load-bearing property is *determinism*: any worker count must produce
results bit-identical to the serial attack functions — same outcome
tuples, same aggregate counters — across all three schemes.  Alongside
it: worker failures must surface as :class:`AttackError` in the caller
(never hang the merge), and the picklable specs must rebuild schemes and
dictionaries exactly.
"""

from __future__ import annotations

import pytest

from repro.attacks.dictionary import HumanSeededDictionary
from repro.attacks.offline import (
    offline_attack_known_identifiers,
    offline_attack_stolen_file,
)
from repro.attacks.parallel import (
    DictionarySpec,
    SchemeSpec,
    ShardedAttackRunner,
    default_workers,
    merge_offline_results,
    merge_stolen_results,
    partition_evenly,
)
from repro.core.centered import CenteredDiscretization
from repro.core.robust import GridSelection, RobustDiscretization
from repro.core.static import StaticGridScheme
from repro.errors import AttackError
from repro.geometry.point import Point
from repro.passwords.passpoints import PassPointsSystem
from repro.passwords.store import PasswordStore
from repro.study.dataset import PasswordSample
from repro.study.image import cars_image

SCHEMES = [
    CenteredDiscretization.for_pixel_tolerance(2, 9),
    RobustDiscretization.for_pixel_tolerance(2, 9),
    StaticGridScheme(dim=2, cell_size=19),
]


def _passwords(count=7):
    """Small spread-out password set on the cars image."""
    return [
        PasswordSample(
            password_id=pid,
            user_id=pid,
            image_name="cars",
            points=tuple(
                Point.xy(40 + 50 * ((pid + i) % 9), 45 + 35 * ((pid * 2 + i) % 8))
                for i in range(5)
            ),
        )
        for pid in range(count)
    ]


def _dictionary(passwords):
    """Seed pool: the first two passwords' points plus noise → some cracks."""
    seeds = []
    for password in passwords[:2]:
        seeds.extend(password.points)
    seeds.extend(Point.xy(7 + 11 * i, 310) for i in range(4))
    return HumanSeededDictionary(
        seed_points=tuple(seeds), tuple_length=5, image_name="cars"
    )


def _stolen_store(scheme, accounts):
    system = PassPointsSystem(image=cars_image(), scheme=scheme)
    store = PasswordStore(system=system)
    for username, points in accounts.items():
        store.create_account(username, points)
    return store


class TestPartitionEvenly:
    def test_concatenation_reproduces_input(self):
        items = list(range(11))
        for shards in (1, 2, 3, 4, 11):
            parts = partition_evenly(items, shards)
            assert len(parts) == shards
            assert [x for part in parts for x in part] == items
            assert all(parts)  # no empty shard
            sizes = [len(part) for part in parts]
            assert max(sizes) - min(sizes) <= 1

    def test_validation(self):
        with pytest.raises(AttackError):
            partition_evenly([1, 2], 0)
        with pytest.raises(AttackError):
            partition_evenly([1, 2], 3)


class TestSpecs:
    @pytest.mark.parametrize("scheme", SCHEMES, ids=lambda s: s.name)
    def test_scheme_spec_rebuilds_equivalently(self, scheme):
        """Rebuilt schemes enroll pixel points to identical discretizations."""
        rebuilt = SchemeSpec.from_scheme(scheme).build()
        assert type(rebuilt) is type(scheme)
        assert rebuilt.dim == scheme.dim
        assert rebuilt.cell_size == scheme.cell_size
        for point in (Point.xy(123, 45), Point.xy(0, 0), Point.xy(614, 471)):
            assert rebuilt.enroll(point) == scheme.enroll(point)

    def test_scheme_spec_preserves_robust_selection(self):
        scheme = RobustDiscretization(
            2, 9, selection=GridSelection.FIRST_SAFE
        )
        rebuilt = SchemeSpec.from_scheme(scheme).build()
        assert rebuilt.selection is GridSelection.FIRST_SAFE

    def test_random_safe_rejected_for_enrollment_only(self):
        scheme = RobustDiscretization(
            2, 9, selection=GridSelection.RANDOM_SAFE, rng=lambda: 0.5
        )
        with pytest.raises(AttackError, match="RANDOM_SAFE"):
            SchemeSpec.from_scheme(scheme)
        # Locate-only workloads normalize the policy away: locate never
        # consults the selection, so the rebuilt scheme behaves identically.
        rebuilt = SchemeSpec.from_scheme(scheme, for_enrollment=False).build()
        assert rebuilt.selection is GridSelection.MOST_CENTERED
        assert rebuilt.cell_size == scheme.cell_size

    def test_unknown_scheme_and_kind_rejected(self):
        with pytest.raises(AttackError):
            SchemeSpec.from_scheme(object())  # type: ignore[arg-type]
        with pytest.raises(AttackError):
            SchemeSpec(kind="nope", dim=2).build()

    def test_dictionary_spec_roundtrip(self):
        dictionary = _dictionary(_passwords())
        rebuilt = DictionarySpec.from_dictionary(dictionary).build()
        assert rebuilt == dictionary
        assert rebuilt.entry_count == dictionary.entry_count


class TestShardDeterminism:
    @pytest.mark.parametrize("scheme", SCHEMES, ids=lambda s: s.name)
    def test_known_identifiers_identical_across_worker_counts(self, scheme):
        """workers ∈ {1, 2, 4} ⇒ identical OfflineAttackResult."""
        passwords = _passwords(7)
        dictionary = _dictionary(passwords)
        serial = offline_attack_known_identifiers(scheme, passwords, dictionary)
        for workers in (1, 2, 4):
            runner = ShardedAttackRunner(workers=workers)
            result = runner.run_known_identifiers(scheme, passwords, dictionary)
            assert result == serial
        assert serial.cracked >= 1  # the seeded targets actually fall

    @pytest.mark.parametrize("scheme", SCHEMES, ids=lambda s: s.name)
    def test_stolen_file_identical_across_worker_counts(self, scheme):
        """workers ∈ {1, 2, 4} ⇒ identical StolenFileAttackResult."""
        passwords = _passwords(5)
        dictionary = _dictionary(passwords)
        store = _stolen_store(
            scheme,
            {f"user{p.password_id}": list(p.points) for p in passwords},
        )
        payload = store.dump_records()
        serial = offline_attack_stolen_file(
            scheme, payload, dictionary, guess_budget=40
        )
        for workers in (1, 2, 4):
            runner = ShardedAttackRunner(workers=workers)
            result = runner.run_stolen_file(
                scheme, payload, dictionary, guess_budget=40
            )
            assert result == serial

    def test_merge_reassembles_serial_result(self):
        """Merging shard-run serial results equals the one-shot serial run."""
        passwords = _passwords(6)
        dictionary = _dictionary(passwords)
        scheme = SCHEMES[0]
        whole = offline_attack_known_identifiers(scheme, passwords, dictionary)
        parts = [
            offline_attack_known_identifiers(scheme, shard, dictionary)
            for shard in partition_evenly(passwords, 3)
        ]
        assert merge_offline_results(parts) == whole

    def test_merge_validation(self):
        with pytest.raises(AttackError):
            merge_offline_results([])
        with pytest.raises(AttackError):
            merge_stolen_results([])


class TestWorkerFailure:
    def test_worker_exception_surfaces_as_attack_error(self):
        """A failure inside a worker raises AttackError — it never hangs."""
        robust = RobustDiscretization.for_pixel_tolerance(2, 9)
        passwords = _passwords(4)
        dictionary = _dictionary(passwords)
        store = _stolen_store(
            robust, {f"user{p.password_id}": list(p.points) for p in passwords}
        )
        payload = store.dump_records()
        # Attacking robust-enrolled records with a centered scheme blows up
        # only inside the worker (the pre-flight checks pass: 2-D scheme,
        # matching click counts) — the kernel rejects the public material.
        centered = CenteredDiscretization.for_pixel_tolerance(2, 9)
        with pytest.raises(AttackError):
            ShardedAttackRunner(workers=2).run_stolen_file(
                centered, payload, dictionary, guess_budget=10
            )

    def test_random_safe_rejected_at_every_worker_count(self):
        """Not just when forking happens — success must not be host-dependent."""
        scheme = RobustDiscretization(
            2, 9, selection=GridSelection.RANDOM_SAFE, rng=lambda: 0.5
        )
        passwords = _passwords(4)
        for workers in (1, 2):
            with pytest.raises(AttackError, match="RANDOM_SAFE"):
                ShardedAttackRunner(workers=workers).run_known_identifiers(
                    scheme, passwords, _dictionary(passwords)
                )

    def test_random_safe_stolen_file_shards_fine(self):
        """The grind never enrolls, so rng-selection schemes shard anyway."""
        scheme = RobustDiscretization(
            2, 9, selection=GridSelection.RANDOM_SAFE, rng=lambda: 0.5
        )
        passwords = _passwords(4)
        dictionary = _dictionary(passwords)
        store = _stolen_store(
            scheme, {f"user{p.password_id}": list(p.points) for p in passwords}
        )
        payload = store.dump_records()
        serial = offline_attack_stolen_file(
            scheme, payload, dictionary, guess_budget=30
        )
        for workers in (1, 2, 4):
            result = ShardedAttackRunner(workers=workers).run_stolen_file(
                scheme, payload, dictionary, guess_budget=30
            )
            assert result == serial

    def test_input_validation_matches_serial(self):
        passwords = _passwords(4)
        dictionary = _dictionary(passwords)
        runner = ShardedAttackRunner(workers=2)
        with pytest.raises(AttackError):
            ShardedAttackRunner(workers=0)
        with pytest.raises(AttackError):
            runner.run_known_identifiers(SCHEMES[0], [], dictionary)
        with pytest.raises(AttackError):
            runner.run_known_identifiers(
                StaticGridScheme(dim=3, cell_size=19), passwords, dictionary
            )
        mixed = passwords[:3] + [
            PasswordSample(
                password_id=99,
                user_id=99,
                image_name="pool",
                points=passwords[0].points,
            )
        ]
        with pytest.raises(AttackError):
            runner.run_known_identifiers(SCHEMES[0], mixed, dictionary)
        with pytest.raises(AttackError):
            runner.run_stolen_file(SCHEMES[0], "{}", dictionary)
        with pytest.raises(AttackError):
            runner.run_stolen_file(
                SCHEMES[0], {}, dictionary, guess_budget=0
            )


class TestDefaults:
    def test_default_workers_positive(self):
        assert default_workers() >= 1

    def test_effective_workers(self):
        assert ShardedAttackRunner(workers=3).effective_workers == 3
        assert ShardedAttackRunner().effective_workers == default_workers()

    def test_pool_reused_across_calls_and_closed(self):
        """Consecutive parallel calls share one executor; close() drops it."""
        passwords = _passwords(6)
        dictionary = _dictionary(passwords)
        with ShardedAttackRunner(workers=2) as runner:
            first = runner.run_known_identifiers(
                SCHEMES[0], passwords, dictionary
            )
            pool = runner.__dict__.get("_pool")
            assert pool is not None
            second = runner.run_known_identifiers(
                SCHEMES[0], passwords, dictionary
            )
            assert runner.__dict__.get("_pool") is pool
            assert first == second
        assert runner.__dict__.get("_pool") is None
        runner.close()  # idempotent
