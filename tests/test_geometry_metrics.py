"""Tests for repro.geometry.metrics."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.metrics import (
    chebyshev,
    euclidean,
    get_metric,
    manhattan,
    squared_euclidean,
)
from repro.geometry.point import Point

coords = st.integers(min_value=-10**4, max_value=10**4)
points_2d = st.builds(Point.xy, coords, coords)


class TestMetricValues:
    def test_chebyshev(self):
        assert chebyshev(Point.xy(0, 0), Point.xy(3, -7)) == 7

    def test_manhattan(self):
        assert manhattan(Point.xy(0, 0), Point.xy(3, -7)) == 10

    def test_euclidean(self):
        assert euclidean(Point.xy(0, 0), Point.xy(3, 4)) == 5.0

    def test_squared_euclidean_exact(self):
        assert squared_euclidean(Point.xy(0, 0), Point.xy(3, 4)) == 25


class TestMetricProperties:
    @given(points_2d, points_2d)
    def test_symmetry(self, a, b):
        assert chebyshev(a, b) == chebyshev(b, a)
        assert manhattan(a, b) == manhattan(b, a)
        assert euclidean(a, b) == euclidean(b, a)

    @given(points_2d)
    def test_identity(self, a):
        assert chebyshev(a, a) == 0
        assert manhattan(a, a) == 0
        assert euclidean(a, a) == 0.0

    @given(points_2d, points_2d)
    def test_metric_ordering(self, a, b):
        """chebyshev <= euclidean <= manhattan for any pair."""
        c = float(chebyshev(a, b))
        e = euclidean(a, b)
        m = float(manhattan(a, b))
        assert c <= e + 1e-9
        assert e <= m + 1e-9

    @given(points_2d, points_2d, points_2d)
    def test_triangle_inequality_chebyshev(self, a, b, c):
        assert chebyshev(a, c) <= chebyshev(a, b) + chebyshev(b, c)


class TestLookup:
    def test_get_metric(self):
        assert get_metric("chebyshev") is chebyshev
        assert get_metric("Euclidean") is euclidean
        assert get_metric("MANHATTAN") is manhattan

    def test_unknown_metric(self):
        with pytest.raises(KeyError, match="chebyshev"):
            get_metric("minkowski")
