"""Tests for the usability-statistics module."""

from __future__ import annotations

import pytest

from repro.analysis.usability import (
    click_accuracy,
    first_attempt_success,
    login_success,
    per_user_accuracy,
)
from repro.core.centered import CenteredDiscretization
from repro.core.robust import RobustDiscretization
from repro.errors import ParameterError


class TestLoginSuccess:
    def test_counts_and_rate(self, small_study):
        scheme = CenteredDiscretization.for_pixel_tolerance(2, 9)
        report = login_success(scheme, small_study)
        assert report.attempts == len(small_study.logins)
        assert 0 < report.rate <= 1
        low, high = report.interval
        assert low <= report.rate <= high

    def test_larger_tolerance_more_success(self, small_study):
        tight = login_success(
            CenteredDiscretization.for_pixel_tolerance(2, 2), small_study
        )
        loose = login_success(
            CenteredDiscretization.for_pixel_tolerance(2, 9), small_study
        )
        assert loose.successes >= tight.successes

    def test_robust_equal_r_at_least_centered(self, small_study):
        """Robust's 6r cells accept a superset of the centered r-box."""
        centered = login_success(
            CenteredDiscretization.for_pixel_tolerance(2, 6), small_study
        )
        robust = login_success(RobustDiscretization(2, 6), small_study)
        assert robust.successes >= centered.successes

    def test_image_filter(self, small_study):
        scheme = CenteredDiscretization.for_pixel_tolerance(2, 9)
        cars = login_success(scheme, small_study, image_name="cars")
        pool = login_success(scheme, small_study, image_name="pool")
        assert cars.attempts + pool.attempts == len(small_study.logins)
        with pytest.raises(ParameterError):
            login_success(scheme, small_study, image_name="nope")


class TestFirstAttemptSuccess:
    def test_one_attempt_per_password(self, small_study):
        scheme = CenteredDiscretization.for_pixel_tolerance(2, 9)
        report = first_attempt_success(scheme, small_study)
        passwords_with_logins = {l.password_id for l in small_study.logins}
        assert report.attempts == len(passwords_with_logins)

    def test_bounded_by_overall(self, small_study):
        scheme = CenteredDiscretization.for_pixel_tolerance(2, 9)
        first = first_attempt_success(scheme, small_study)
        assert 0 <= first.rate <= 1


class TestClickAccuracy:
    def test_report_shape(self, small_study):
        report = click_accuracy(small_study)
        assert report.clicks == len(small_study.logins) * 5
        assert report.mean_chebyshev <= report.mean_euclidean
        percentile_values = [v for _, v in report.percentiles]
        assert percentile_values == sorted(percentile_values)

    def test_within_fractions_monotone(self, small_study):
        report = click_accuracy(small_study)
        fractions = [f for _, f in report.within]
        assert fractions == sorted(fractions)
        assert report.fraction_within(9) >= report.fraction_within(4)

    def test_users_are_accurate(self, paper_dataset):
        """The calibration target: most clicks land within a few pixels."""
        report = click_accuracy(paper_dataset)
        assert report.fraction_within(4) > 0.85
        assert report.fraction_within(13) > 0.93

    def test_unknown_tolerance(self, small_study):
        report = click_accuracy(small_study)
        with pytest.raises(ParameterError):
            report.fraction_within(3)

    def test_filter_validation(self, small_study):
        with pytest.raises(ParameterError):
            click_accuracy(small_study, image_name="nope")


class TestPerUserAccuracy:
    def test_every_active_user_reported(self, small_study):
        accuracy = per_user_accuracy(small_study)
        users_with_logins = {
            small_study.password(l.password_id).user_id
            for l in small_study.logins
        }
        assert set(accuracy) == users_with_logins

    def test_skill_variation_visible(self, paper_dataset):
        accuracy = per_user_accuracy(paper_dataset)
        values = sorted(accuracy.values())
        assert values[-1] > 2 * values[0]  # clear spread across users
