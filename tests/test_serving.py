"""Serving-layer tests: async front-end equivalence, protocol, flood.

The ISSUE-3 acceptance criterion: for randomized interleavings of
concurrent logins, :class:`~repro.serving.AsyncVerificationService` must
produce decision/lockout sequences identical to the scalar
``PasswordStore.login`` loop — for all three schemes, on both ``memory:``
and ``shards:sqlite:`` backends.  The scalar reference replays the
*observed enqueue order* (recorded atomically at submit), which is the
order the async layer guarantees decisions happen in.

Async tests are plain ``async def`` functions executed by the stdlib
``asyncio.run`` harness in ``tests/conftest.py``.
"""

from __future__ import annotations

import asyncio
import json
import math

import numpy as np
import pytest

from repro.core.centered import CenteredDiscretization
from repro.core.robust import RobustDiscretization
from repro.core.static import StaticGridScheme
from repro.errors import (
    DomainError,
    LockoutError,
    ParameterError,
    StoreError,
    VerificationError,
)
from repro.geometry.point import Point
from repro.passwords.passpoints import PassPointsSystem
from repro.passwords.policy import LockoutPolicy
from repro.passwords.storage import backend_from_uri
from repro.passwords.store import PasswordStore
from repro.serving import (
    AsyncVerificationService,
    LoginServer,
    flood_server,
    flood_service,
    mixed_stream,
    percentile,
)
from repro.study.image import cars_image

SCHEMES = {
    "centered": lambda: CenteredDiscretization.for_pixel_tolerance(2, 9),
    "robust": lambda: RobustDiscretization.for_pixel_tolerance(2, 9),
    "static": lambda: StaticGridScheme(dim=2, cell_size=19),
}

#: The acceptance-criterion backend matrix: in-process and sharded-durable.
BACKENDS = ["memory", "shards"]


def make_backend(kind: str, tmp_path, tag: str):
    if kind == "memory":
        return backend_from_uri("memory:")
    return backend_from_uri(f"shards:sqlite:{tmp_path / tag}-s{{0..2}}.db")


def build_store(scheme_name, backend, policy):
    system = PassPointsSystem(image=cars_image(), scheme=SCHEMES[scheme_name]())
    return PasswordStore(system=system, policy=policy, backend=backend)


def random_password(rng, image):
    return [
        Point.xy(int(x), int(y))
        for x, y in zip(
            rng.integers(30, image.width - 30, size=5),
            rng.integers(30, image.height - 30, size=5),
        )
    ]


def random_stream(rng, accounts, image, length):
    """A mixed attempt stream: exact, within-tolerance, wrong, random."""
    names = list(accounts)
    stream = []
    for _ in range(length):
        username = names[int(rng.integers(len(names)))]
        points = accounts[username]
        kind = int(rng.integers(4))
        if kind == 0:
            attempt = list(points)
        elif kind == 1:
            attempt = [
                Point.xy(int(p.x) + int(rng.integers(-4, 5)),
                         int(p.y) + int(rng.integers(-4, 5)))
                for p in points
            ]
        elif kind == 2:
            attempt = [Point.xy(int(p.x) - 25, int(p.y) + 25) for p in points]
        else:
            attempt = random_password(rng, image)
        stream.append((username, attempt))
    return stream


def scalar_reference(store, stream):
    """The accept/reject/lockout sequence of the scalar login loop."""
    statuses = []
    for username, attempt in stream:
        try:
            statuses.append(
                "accept" if store.login(username, attempt) else "reject"
            )
        except LockoutError:
            statuses.append("locked")
    return statuses


def _fixture_store(tmp_path, tag="svc", policy=None, backend_kind="memory"):
    policy = policy or LockoutPolicy(max_failures=3)
    store = build_store("centered", make_backend(backend_kind, tmp_path, tag), policy)
    points = [Point.xy(40 + 60 * i, 50 + 40 * i) for i in range(5)]
    store.create_account("alice", points)
    return store, points


# -- the acceptance-criterion property test ---------------------------------


@pytest.mark.parametrize("scheme_name", sorted(SCHEMES))
@pytest.mark.parametrize("backend_kind", BACKENDS)
async def test_async_service_matches_scalar_store(
    scheme_name, backend_kind, tmp_path
):
    """Randomized concurrent interleavings == scalar decision sequence."""
    image = cars_image()
    for seed in (2008, 1387):
        rng = np.random.default_rng(seed)
        accounts = {f"user{i}": random_password(rng, image) for i in range(5)}
        clients = 4
        streams = [random_stream(rng, accounts, image, 30) for _ in range(clients)]
        # Pre-drawn randomness: which submissions yield the loop first,
        # and which run as pipelined submit_many bursts.
        yield_plan = [
            [float(x) < 0.4 for x in rng.random(len(stream))]
            for stream in streams
        ]
        burst_plan = [
            [int(x) for x in rng.integers(1, 4, len(stream))] for stream in streams
        ]
        policy = LockoutPolicy(max_failures=3)

        backend = make_backend(backend_kind, tmp_path, f"{scheme_name}-{seed}")
        store = build_store(scheme_name, backend, policy)
        for username, points in accounts.items():
            store.create_account(username, points)
        # Small max_batch so the run crosses size triggers, deadline
        # triggers, and multiple micro-batches.
        service = AsyncVerificationService(store, max_batch=8)

        order = []  # (username, attempt) in true enqueue order
        statuses = {}  # enqueue index -> decided status

        async def client(stream, yields, bursts):
            position = 0
            while position < len(stream):
                if yields[position]:
                    await asyncio.sleep(0)
                size = min(bursts[position], len(stream) - position)
                chunk = stream[position : position + size]
                if size == 1:
                    future = service.submit(*chunk[0])
                    indices = [len(order)]
                    order.extend(chunk)
                    outcomes = [await future]
                else:
                    future = service.submit_many(chunk)
                    indices = list(range(len(order), len(order) + size))
                    order.extend(chunk)
                    outcomes = await future
                for index, outcome in zip(indices, outcomes):
                    statuses[index] = outcome.status
                position += size

        await asyncio.gather(
            *(client(s, y, b) for s, y, b in zip(streams, yield_plan, burst_plan))
        )

        total = sum(len(stream) for stream in streams)
        assert len(order) == len(statuses) == total
        decided = [statuses[index] for index in range(total)]

        reference_store = build_store(
            scheme_name, make_backend("memory", tmp_path, "ref"), policy
        )
        for username, points in accounts.items():
            reference_store.create_account(username, points)
        assert decided == scalar_reference(reference_store, order)
        for username in accounts:
            assert store.is_locked(username) == reference_store.is_locked(username)
        backend.close()


async def test_lockout_ordering_across_flushes(tmp_path):
    """A lockout in one batch refuses attempts parked for the next."""
    store, points = _fixture_store(
        tmp_path, policy=LockoutPolicy(max_failures=2)
    )
    wrong = [Point.xy(int(p.x) + 30, int(p.y) + 30) for p in points]
    service = AsyncVerificationService(store, max_batch=2)
    outcomes = await asyncio.gather(
        service.submit("alice", wrong),
        service.submit("alice", wrong),
        service.submit("alice", points),
        service.submit("alice", points),
    )
    assert [o.status for o in outcomes] == ["reject", "reject", "locked", "locked"]
    assert store.is_locked("alice")


async def test_scalar_and_async_share_throttle_state(tmp_path):
    """Scalar logins and the async service read/write the same throttles."""
    store, points = _fixture_store(
        tmp_path, policy=LockoutPolicy(max_failures=3)
    )
    wrong = [Point.xy(int(p.x) + 30, int(p.y) + 30) for p in points]
    service = AsyncVerificationService(store)
    assert not store.login("alice", wrong)  # scalar failure #1
    assert (await service.login("alice", wrong)).status == "reject"  # #2
    assert not store.login("alice", wrong)  # #3 -> lock
    assert (await service.login("alice", points)).status == "locked"


# -- validation and flush mechanics ------------------------------------------


async def test_unknown_account_raises_at_submit(tmp_path):
    service = AsyncVerificationService(_fixture_store(tmp_path)[0])
    with pytest.raises(StoreError):
        service.submit("ghost", [Point.xy(1, 1)] * 5)
    assert service.pending_count == 0


async def test_wrong_click_count_raises_at_submit(tmp_path):
    store, points = _fixture_store(tmp_path)
    service = AsyncVerificationService(store)
    with pytest.raises(VerificationError):
        service.submit("alice", points[:3])
    assert service.pending_count == 0


async def test_out_of_image_raises_at_submit_not_flush(tmp_path):
    """A bad point fails its own request; the shared batch survives."""
    store, points = _fixture_store(tmp_path)
    service = AsyncVerificationService(store)
    good = service.submit("alice", points)
    bad = list(points)
    bad[2] = Point.xy(9999, 10)
    with pytest.raises(DomainError):
        service.submit("alice", bad)
    assert (await good).status == "accept"


async def test_submit_many_is_atomic(tmp_path):
    """A failing burst leaves no partial state behind."""
    store, points = _fixture_store(tmp_path)
    service = AsyncVerificationService(store)
    with pytest.raises(StoreError):
        service.submit_many([("alice", points), ("ghost", points)])
    assert service.pending_count == 0
    assert service.service.pending_count == 0
    outcomes = await service.submit_many([("alice", points), ("alice", points)])
    assert [o.status for o in outcomes] == ["accept", "accept"]


async def test_size_trigger_flushes_synchronously(tmp_path):
    store, points = _fixture_store(tmp_path)
    service = AsyncVerificationService(store, max_batch=3)
    futures = [service.submit("alice", points) for _ in range(3)]
    # The third submit crossed max_batch: decided without yielding.
    assert all(future.done() for future in futures)
    assert service.stats.size_flushes == 1
    assert service.stats.largest_batch == 3
    await asyncio.gather(*futures)


async def test_deadline_trigger_flushes_without_size(tmp_path):
    store, points = _fixture_store(tmp_path)
    service = AsyncVerificationService(store, max_batch=1000, flush_interval=0.01)
    future = service.submit("alice", points)
    assert not future.done()
    outcome = await asyncio.wait_for(future, timeout=5)
    assert outcome.status == "accept"
    assert service.stats.flushes == 1
    assert service.stats.size_flushes == 0


async def test_same_tick_submissions_share_one_flush(tmp_path):
    store, points = _fixture_store(tmp_path)
    service = AsyncVerificationService(store, max_batch=1000)
    futures = [service.submit("alice", points) for _ in range(5)]
    await asyncio.gather(*futures)
    assert service.stats.flushes == 1
    assert service.stats.largest_batch == 5
    assert math.isclose(service.stats.mean_batch, 5.0)


async def test_drain_decides_pending(tmp_path):
    store, points = _fixture_store(tmp_path)
    service = AsyncVerificationService(store, max_batch=1000, flush_interval=60.0)
    future = service.submit("alice", points)
    await service.drain()
    assert future.done() and future.result().status == "accept"
    assert service.pending_count == 0


def test_flush_interval_validated(tmp_path):
    store, _ = _fixture_store(tmp_path)
    with pytest.raises(ParameterError):
        AsyncVerificationService(store, flush_interval=-1.0)


# -- TCP server / protocol ---------------------------------------------------


async def _request(reader, writer, payload: dict) -> dict:
    writer.write(json.dumps(payload).encode() + b"\n")
    await writer.drain()
    return json.loads(await reader.readline())


async def test_server_protocol_roundtrip(tmp_path):
    store, points = _fixture_store(tmp_path)
    wire_points = [[int(p.x), int(p.y)] for p in points]
    server = await LoginServer(store).start()
    host, port = server.address
    reader, writer = await asyncio.open_connection(host, port)

    assert await _request(reader, writer, {"op": "ping", "id": 1}) == {
        "id": 1, "ok": True, "status": "pong",
    }
    response = await _request(
        reader, writer,
        {"op": "login", "id": 2, "user": "alice", "points": wire_points},
    )
    assert response == {"id": 2, "ok": True, "status": "accept"}
    response = await _request(
        reader, writer,
        {"op": "enroll", "id": 3, "user": "bob",
         "points": [[p[0] + 1, p[1]] for p in wire_points]},
    )
    assert response["ok"] and response["status"] == "enrolled"
    response = await _request(
        reader, writer,
        {"op": "login", "id": 4, "user": "bob",
         "points": [[p[0] + 1, p[1]] for p in wire_points]},
    )
    assert response["status"] == "accept"
    stats = await _request(reader, writer, {"op": "stats", "id": 5})
    assert stats["ok"] and stats["accounts"] == 2 and stats["decided"] == 2

    writer.close()
    await server.aclose()


async def test_server_failures_scoped_to_request(tmp_path):
    store, points = _fixture_store(tmp_path)
    wire_points = [[int(p.x), int(p.y)] for p in points]
    server = await LoginServer(store).start()
    reader, writer = await asyncio.open_connection(*server.address)

    response = await _request(
        reader, writer,
        {"op": "login", "id": 1, "user": "ghost", "points": wire_points},
    )
    assert not response["ok"] and response["error"] == "StoreError"
    response = await _request(
        reader, writer,
        {"op": "login", "id": 2, "user": "alice", "points": [[1, 2], [3]]},
    )
    assert not response["ok"] and response["error"] == "protocol"
    response = await _request(reader, writer, {"op": "warp", "id": 3})
    assert not response["ok"] and "unknown op" in response["message"]

    writer.write(b"this is not json\n")
    await writer.drain()
    response = json.loads(await reader.readline())
    assert not response["ok"] and response["error"] == "protocol"

    # The connection (and the account) survived all of the above.
    response = await _request(
        reader, writer,
        {"op": "login", "id": 4, "user": "alice", "points": wire_points},
    )
    assert response == {"id": 4, "ok": True, "status": "accept"}
    writer.close()
    await server.aclose()


async def test_concurrent_connections_share_batches(tmp_path):
    """Logins from different connections are amortized into one flush."""
    store, points = _fixture_store(tmp_path)
    wire_points = [[int(p.x), int(p.y)] for p in points]
    server = await LoginServer(store, max_batch=1000).start()
    host, port = server.address

    async def one_login(request_id):
        reader, writer = await asyncio.open_connection(host, port)
        response = await _request(
            reader, writer,
            {"op": "login", "id": request_id, "user": "alice",
             "points": wire_points},
        )
        writer.close()
        return response["status"]

    statuses = await asyncio.gather(*(one_login(i) for i in range(8)))
    assert statuses == ["accept"] * 8
    assert server.service.stats.largest_batch > 1
    await server.aclose()


# -- flood helpers ------------------------------------------------------------


def test_percentile_nearest_rank():
    samples = [5.0, 1.0, 3.0, 2.0, 4.0]
    assert percentile(samples, 0.0) == 1.0
    assert percentile(samples, 0.5) == 3.0
    assert percentile(samples, 1.0) == 5.0
    assert percentile([], 0.5) is None
    with pytest.raises(ValueError):
        percentile(samples, 1.5)


def test_mixed_stream_deterministic_and_clamped():
    accounts = {"edge": [Point.xy(3, 3)] * 5}
    stream_a = mixed_stream(accounts, 50, wrong_fraction=1.0, bounds=(451, 331))
    stream_b = mixed_stream(accounts, 50, wrong_fraction=1.0, bounds=(451, 331))
    assert [
        [(int(p.x), int(p.y)) for p in points] for _, points in stream_a
    ] == [[(int(p.x), int(p.y)) for p in points] for _, points in stream_b]
    for _, points in stream_a:
        for p in points:
            assert 0 <= int(p.x) < 451 and 0 <= int(p.y) < 331
    with pytest.raises(ValueError):
        mixed_stream({}, 5)
    with pytest.raises(ValueError):
        mixed_stream(accounts, 5, wrong_fraction=2.0)


@pytest.mark.parametrize("window", [1, 4])
async def test_flood_service_report(tmp_path, window):
    store, points = _fixture_store(
        tmp_path, policy=LockoutPolicy(max_failures=None)
    )
    accounts = {"alice": points}
    stream = mixed_stream(accounts, 120, wrong_fraction=0.25, bounds=(451, 331))
    service = AsyncVerificationService(store)
    report = await flood_service(service, stream, clients=6, window=window)
    assert report.attempts == 120 and report.clients == 6
    assert sum(report.tally.values()) == 120
    assert report.tally.get("locked", 0) == 0
    assert len(report.latencies_ms) == 120
    assert report.throughput > 0
    assert report.p50_ms <= report.p95_ms <= report.p99_ms
    assert "logins/s" in report.summary()


async def test_flood_server_report(tmp_path):
    store, points = _fixture_store(tmp_path)
    accounts = {"alice": points}
    stream = mixed_stream(accounts, 60, wrong_fraction=0.0, bounds=(451, 331))
    server = await LoginServer(store).start()
    host, port = server.address
    report = await flood_server(host, port, stream, clients=4)
    await server.aclose()
    assert report.attempts == 60
    assert sum(report.tally.values()) == 60
    assert report.tally.get("error", 0) == 0
    assert server.service.stats.decided == 60
