"""Tests for the ablation experiments."""

from __future__ import annotations

import pytest

from repro.experiments import ablations


class TestGridSelection:
    @pytest.fixture(scope="class")
    def result(self):
        return ablations.grid_selection()

    def test_three_policies(self, result):
        assert {row[0] for row in result.rows} == {
            "first_safe",
            "most_centered",
            "random_safe",
        }

    def test_most_centered_fewest_false_rejects(self, result):
        by_policy = {row[0]: row for row in result.rows}
        most_centered_fr = by_policy["most_centered"][2]
        for policy in ("first_safe", "random_safe"):
            assert by_policy[policy][2] >= most_centered_fr


class TestClickAccuracy:
    @pytest.fixture(scope="class")
    def result(self):
        return ablations.click_accuracy(multipliers=(0.5, 1.0, 2.0))

    def test_accurate_users_see_fewer_false_rejects(self, result):
        # FR is non-monotone in noise overall (very sloppy attempts leave
        # centered tolerance entirely, becoming TRUE rejects), but precise
        # users must see fewer false rejects than baseline users.
        t1_fr = [row[1] for row in result.rows]
        assert t1_fr[0] < t1_fr[1]

    def test_accept_rate_falls_with_sloppiness(self, result):
        accept = [row[4] for row in result.rows]
        assert accept[0] >= accept[-1]


class TestDictionarySize:
    @pytest.fixture(scope="class")
    def result(self):
        return ablations.dictionary_size(lab_counts=(5, 15, 30))

    def test_crack_rate_grows_with_seeds(self, result):
        robust = [row[3] for row in result.rows]
        assert robust[0] <= robust[-1]

    def test_robust_dominates_at_every_size(self, result):
        for row in result.rows:
            assert row[3] >= row[2]


class TestShoulderSurfing:
    @pytest.fixture(scope="class")
    def result(self):
        return ablations.shoulder_surfing(
            sigmas=(1.0, 6.0, 12.0), sample_passwords=20
        )

    def test_success_decreases_with_noise(self, result):
        centered = [row[1] for row in result.rows]
        assert centered[0] >= centered[-1]

    def test_robust_easier_to_replay(self, result):
        for row in result.rows:
            assert row[2] >= row[1] - 1e-9


class TestHotspotSources:
    @pytest.fixture(scope="class")
    def result(self):
        return ablations.hotspot_sources()

    def test_three_sources(self, result):
        assert len(result.rows) == 3

    def test_all_sources_threaten_robust(self, result):
        for row in result.rows:
            assert row[3] >= row[2]  # robust >= centered cracked


class TestPCCPFlattening:
    @pytest.fixture(scope="class")
    def result(self):
        return ablations.pccp_flattening(population=80)

    def test_viewport_reduces_centered_cracking(self, result):
        by_label = {row[0]: row for row in result.rows}
        free = by_label["free selection (PassPoints/CCP)"]
        constrained = by_label["viewport selection (PCCP)"]
        # Viewport persuasion collapses the attack against Centered (2r
        # cells); Robust's 6r cells are wider than the viewport spreading
        # scale, so it barely benefits.
        assert constrained[1] < free[1]


class TestEdgeProblem:
    @pytest.fixture(scope="class")
    def result(self):
        return ablations.edge_problem()

    def test_margins_reveal_edge_problem(self, result):
        by_label = {row[0]: row[1] for row in result.rows}
        assert by_label["min click margin (px)"] < 1
        assert by_label["false-reject %"] > 0


class TestNdimAdvantage:
    def test_advantage_grows_with_dim(self):
        result = ablations.ndim_advantage(dims=(1, 2, 3))
        advantages = [row[4] for row in result.rows]
        assert advantages == sorted(advantages)
        assert advantages[0] == 1.0  # 1 * log2(2)
        assert abs(advantages[1] - 3.17) < 0.01

    def test_cell_geometry(self):
        result = ablations.ndim_advantage(dims=(2,))
        _, centered_side, robust_side, grids, _ = result.rows[0]
        assert centered_side == 10  # 2r, r=5
        assert robust_side == 30  # 6r
        assert grids == 3
