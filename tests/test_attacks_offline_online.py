"""Tests for the offline and online attacks."""

from __future__ import annotations

import math

import pytest

from repro.attacks.dictionary import HumanSeededDictionary
from repro.attacks.offline import (
    hash_only_work_factor,
    offline_attack_known_identifiers,
    offline_attack_stolen_file,
    parse_password_file,
)
from repro.attacks.online import online_attack
from repro.core.centered import CenteredDiscretization
from repro.core.robust import RobustDiscretization
from repro.core.static import StaticGridScheme
from repro.errors import AttackError
from repro.geometry.point import Point
from repro.passwords.passpoints import PassPointsSystem
from repro.passwords.policy import LockoutPolicy
from repro.passwords.store import PasswordStore
from repro.study.dataset import PasswordSample
from repro.study.image import cars_image


def password_at(pid, points):
    return PasswordSample(
        password_id=pid, user_id=pid, image_name="cars", points=tuple(points)
    )


class TestOfflineKnownIdentifiers:
    def test_seed_equals_target_always_cracks(self):
        """If the seed pool contains the exact click-points, crack is sure."""
        points = [Point.xy(40 + 60 * i, 50 + 40 * i) for i in range(5)]
        target = password_at(0, points)
        # Seeds include the exact points plus noise points.
        seeds = tuple(points) + tuple(Point.xy(5 + i, 300) for i in range(10))
        dictionary = HumanSeededDictionary(
            seed_points=seeds, tuple_length=5, image_name="cars"
        )
        for scheme in (
            CenteredDiscretization.for_pixel_tolerance(2, 4),
            RobustDiscretization(2, 4),
        ):
            result = offline_attack_known_identifiers(scheme, [target], dictionary)
            assert result.cracked == 1
            assert result.outcomes[0].matching_entries >= 1

    def test_far_seeds_never_crack(self):
        points = [Point.xy(40 + 60 * i, 50 + 40 * i) for i in range(5)]
        target = password_at(0, points)
        seeds = tuple(Point.xy(400 + i, 10) for i in range(10))
        dictionary = HumanSeededDictionary(
            seed_points=seeds, tuple_length=5, image_name="cars"
        )
        result = offline_attack_known_identifiers(
            CenteredDiscretization.for_pixel_tolerance(2, 9), [target], dictionary
        )
        assert result.cracked == 0
        assert result.cracked_fraction == 0.0

    def test_matching_entry_count_exact(self):
        """Cross-check the reported entry count on a constructed case."""
        points = [Point.xy(50, 50), Point.xy(150, 150)]
        target = PasswordSample(0, 0, "cars", tuple(points))
        # Two seeds near the first point, three near the second, one stray.
        seeds = (
            Point.xy(51, 50),
            Point.xy(49, 52),
            Point.xy(150, 151),
            Point.xy(149, 149),
            Point.xy(152, 150),
            Point.xy(300, 20),
        )
        dictionary = HumanSeededDictionary(
            seed_points=seeds, tuple_length=2, image_name="cars"
        )
        scheme = CenteredDiscretization.for_pixel_tolerance(2, 9)
        result = offline_attack_known_identifiers(scheme, [target], dictionary)
        assert result.outcomes[0].cracked
        assert result.outcomes[0].matching_entries == 2 * 3

    def test_agrees_with_true_hash_verification(self):
        """The closed-form decision equals actually hashing entries."""
        points = [Point.xy(60, 60), Point.xy(200, 200)]
        target = PasswordSample(0, 0, "cars", tuple(points))
        seeds = (
            Point.xy(62, 58),
            Point.xy(205, 196),
            Point.xy(110, 110),
            Point.xy(10, 320),
        )
        dictionary = HumanSeededDictionary(
            seed_points=seeds, tuple_length=2, image_name="cars"
        )
        scheme = RobustDiscretization(2, 6)
        result = offline_attack_known_identifiers(scheme, [target], dictionary)

        # Brute-force: enroll the password for real, hash every entry.
        from repro.passwords.system import enroll_password, verify_password

        stored = enroll_password(scheme, points)
        hash_hits = sum(
            1
            for entry in dictionary.enumerate_all()
            if verify_password(scheme, stored, list(entry))
        )
        assert result.outcomes[0].cracked == (hash_hits > 0)
        assert result.outcomes[0].matching_entries == hash_hits

    def test_equal_size_schemes_similar(self, paper_dataset):
        """Figure 7's claim on the real workload at one grid size."""
        from repro.experiments.common import default_dictionary

        passwords = paper_dataset.passwords_on("cars")
        dictionary = default_dictionary("cars")
        centered = offline_attack_known_identifiers(
            CenteredDiscretization.for_grid_size(2, 19),
            passwords,
            dictionary,
            count_entries=False,
        )
        robust = offline_attack_known_identifiers(
            RobustDiscretization.for_grid_size(2, 19),
            passwords,
            dictionary,
            count_entries=False,
        )
        assert abs(centered.cracked_fraction - robust.cracked_fraction) < 0.10

    def test_equal_r_robust_much_weaker(self, paper_dataset):
        """Figure 8's claim on the real workload at r = 9."""
        from repro.experiments.common import default_dictionary

        passwords = paper_dataset.passwords_on("cars")
        dictionary = default_dictionary("cars")
        centered = offline_attack_known_identifiers(
            CenteredDiscretization.for_pixel_tolerance(2, 9),
            passwords,
            dictionary,
            count_entries=False,
        )
        robust = offline_attack_known_identifiers(
            RobustDiscretization(2, 9),
            passwords,
            dictionary,
            count_entries=False,
        )
        assert robust.cracked_fraction > 2 * centered.cracked_fraction

    def test_validation(self):
        dictionary = HumanSeededDictionary(
            seed_points=(Point.xy(1, 1),) * 5, tuple_length=5, image_name="cars"
        )
        scheme = CenteredDiscretization.for_pixel_tolerance(2, 9)
        with pytest.raises(AttackError):
            offline_attack_known_identifiers(scheme, [], dictionary)
        pool_password = PasswordSample(0, 0, "pool", (Point.xy(1, 1),) * 5)
        with pytest.raises(AttackError):
            offline_attack_known_identifiers(scheme, [pool_password], dictionary)
        with pytest.raises(AttackError):
            offline_attack_known_identifiers(
                CenteredDiscretization(3, 5),
                [password_at(0, [Point.xy(1, 1)] * 5)],
                dictionary,
            )

    def test_click_count_mismatch(self):
        dictionary = HumanSeededDictionary(
            seed_points=(Point.xy(1, 1),) * 5, tuple_length=5, image_name="cars"
        )
        short = PasswordSample(0, 0, "cars", (Point.xy(1, 1),) * 3)
        with pytest.raises(AttackError):
            offline_attack_known_identifiers(
                CenteredDiscretization.for_pixel_tolerance(2, 9),
                [short],
                dictionary,
            )

    def test_hash_cost_model(self):
        points = [Point.xy(40 + 60 * i, 50 + 40 * i) for i in range(5)]
        seeds = tuple(Point.xy(3 * i, 200) for i in range(12))
        dictionary = HumanSeededDictionary(
            seed_points=seeds, tuple_length=5, image_name="cars"
        )
        result = offline_attack_known_identifiers(
            CenteredDiscretization.for_pixel_tolerance(2, 9),
            [password_at(0, points)],
            dictionary,
            count_entries=False,
        )
        assert result.hash_operations_modeled == dictionary.entry_count


class TestStolenFileAttack:
    def _stolen_store(self, scheme, accounts):
        system = PassPointsSystem(image=cars_image(), scheme=scheme)
        store = PasswordStore(system=system)
        for username, points in accounts.items():
            store.create_account(username, points)
        return store

    def test_seeded_guesses_crack_the_stolen_file(self):
        """Entries covering the real click-points crack the salted records."""
        points = [Point.xy(40 + 60 * i, 50 + 40 * i) for i in range(5)]
        scheme = CenteredDiscretization.for_pixel_tolerance(2, 9)
        store = self._stolen_store(scheme, {"alice": points})
        # Seeds = the exact points plus a little noise, so the prioritized
        # enumeration reaches a cracking entry within a modest budget.
        seeds = tuple(points) + tuple(Point.xy(5 + i, 300) for i in range(3))
        dictionary = HumanSeededDictionary(
            seed_points=seeds, tuple_length=5, image_name="cars"
        )
        payload = store.dump_records()
        result = offline_attack_stolen_file(
            scheme, payload, dictionary, guess_budget=20000
        )
        assert result.scheme_name == scheme.name
        assert result.cracked == 1
        assert result.outcomes[0].username == "alice"
        assert 1 <= result.outcomes[0].guesses_hashed <= 20000
        assert result.hash_operations == result.outcomes[0].guesses_hashed

    def test_far_seeds_crack_nothing(self):
        points = [Point.xy(40 + 60 * i, 50 + 40 * i) for i in range(5)]
        scheme = CenteredDiscretization.for_pixel_tolerance(2, 9)
        store = self._stolen_store(scheme, {"alice": points, "bob": points})
        seeds = tuple(Point.xy(400 + i % 5, 10 + i) for i in range(8))
        dictionary = HumanSeededDictionary(
            seed_points=seeds, tuple_length=5, image_name="cars"
        )
        result = offline_attack_stolen_file(
            scheme, store.dump_records(), dictionary, guess_budget=50
        )
        assert result.cracked == 0
        assert result.cracked_fraction == 0.0
        assert result.attacked == 2
        # Every record pays the full budget when nothing matches.
        assert result.hash_operations == 2 * 50

    def test_accepts_parsed_records(self):
        points = [Point.xy(40 + 60 * i, 50 + 40 * i) for i in range(5)]
        scheme = CenteredDiscretization.for_pixel_tolerance(2, 9)
        store = self._stolen_store(scheme, {"alice": points})
        records = parse_password_file(store.dump_records())
        assert set(records) == {"alice"}
        seeds = tuple(points) + (Point.xy(5, 300),)
        dictionary = HumanSeededDictionary(seed_points=seeds, tuple_length=5)
        result = offline_attack_stolen_file(
            scheme, records, dictionary, guess_budget=20000
        )
        assert result.cracked == 1

    def test_malformed_payload_rejected(self):
        with pytest.raises(AttackError):
            parse_password_file("{broken")
        with pytest.raises(AttackError):
            parse_password_file("[1, 2, 3]")
        # A malformed *nested* record must surface as AttackError too,
        # not leak the records layer's VerificationError.
        with pytest.raises(AttackError):
            parse_password_file(
                '{"alice": {"scheme_name": "x", "publics": [], "record": {}}}'
            )

    def test_validation(self):
        points = [Point.xy(40 + 60 * i, 50 + 40 * i) for i in range(5)]
        scheme = CenteredDiscretization.for_pixel_tolerance(2, 9)
        store = self._stolen_store(scheme, {"alice": points})
        seeds = tuple(points) + (Point.xy(5, 300),)
        dictionary = HumanSeededDictionary(seed_points=seeds, tuple_length=5)
        with pytest.raises(AttackError):
            offline_attack_stolen_file(
                scheme, store.dump_records(), dictionary, guess_budget=0
            )
        with pytest.raises(AttackError):
            offline_attack_stolen_file(scheme, "{}", dictionary)
        short = HumanSeededDictionary(seed_points=seeds, tuple_length=3)
        with pytest.raises(AttackError):
            offline_attack_stolen_file(scheme, store.dump_records(), short)


class TestHashOnlyWorkFactor:
    def test_robust_three_grids(self):
        factor = hash_only_work_factor(RobustDiscretization(2, 6), clicks=5)
        assert factor["per_click_identifiers"] == 3
        assert factor["multiplier"] == 3**5
        assert abs(factor["extra_bits"] - 5 * math.log2(3)) < 1e-9

    def test_centered_offsets(self):
        # 13x13 squares -> 169 offsets per click (paper's example).
        scheme = CenteredDiscretization.for_grid_size(2, 13)
        factor = hash_only_work_factor(scheme, clicks=5)
        assert factor["per_click_identifiers"] == 169
        assert factor["multiplier"] == 169**5

    def test_centered_far_exceeds_robust(self):
        centered = hash_only_work_factor(
            CenteredDiscretization.for_grid_size(2, 13), clicks=5
        )
        robust = hash_only_work_factor(RobustDiscretization(2, 6), clicks=5)
        assert centered["extra_bits"] > robust["extra_bits"] + 25

    def test_static_has_no_identifiers(self):
        factor = hash_only_work_factor(StaticGridScheme(2, 10), clicks=5)
        assert factor["multiplier"] == 1

    def test_validation(self):
        with pytest.raises(AttackError):
            hash_only_work_factor(RobustDiscretization(2, 6), clicks=0)


class TestOnlineAttack:
    def _seed_cluster(self):
        """Five tight clusters; popular points repeated across passwords."""
        base = [Point.xy(40, 60), Point.xy(130, 90), Point.xy(230, 150),
                Point.xy(320, 220), Point.xy(400, 290)]
        seeds = []
        for password_index in range(4):
            for point in base:
                seeds.append(
                    Point.xy(int(point.x) + password_index, int(point.y))
                )
        return base, HumanSeededDictionary(
            seed_points=tuple(seeds), tuple_length=5, image_name="cars"
        )

    def _store(self, scheme, points):
        system = PassPointsSystem(image=cars_image(), scheme=scheme)
        store = PasswordStore(system=system, policy=LockoutPolicy(max_failures=3))
        store.create_account("victim", points)
        return store

    def test_popular_password_compromised_within_lockout(self):
        base, dictionary = self._seed_cluster()
        store = self._store(RobustDiscretization(2, 9), base)
        result = online_attack(store, dictionary, guess_budget=3)
        assert result.compromised == 1
        assert result.outcomes[0].guesses_used <= 3

    def test_lockout_stops_attack(self):
        base, dictionary = self._seed_cluster()
        # Password far away from every seed: attacker locks the account.
        far = [Point.xy(20, 300), Point.xy(60, 310), Point.xy(100, 320),
               Point.xy(140, 300), Point.xy(180, 310)]
        store = self._store(CenteredDiscretization.for_pixel_tolerance(2, 4), far)
        result = online_attack(store, dictionary, guess_budget=50)
        assert result.compromised == 0
        assert result.outcomes[0].locked_out
        assert result.outcomes[0].guesses_used <= 3  # lockout cap, not budget
        assert result.locked_fraction == 1.0

    def test_budget_respected_without_lockout(self):
        base, dictionary = self._seed_cluster()
        far = [Point.xy(20, 300), Point.xy(60, 310), Point.xy(100, 320),
               Point.xy(140, 300), Point.xy(180, 310)]
        system = PassPointsSystem(
            image=cars_image(),
            scheme=CenteredDiscretization.for_pixel_tolerance(2, 4),
        )
        store = PasswordStore(system=system, policy=LockoutPolicy(max_failures=None))
        store.create_account("victim", far)
        result = online_attack(store, dictionary, guess_budget=7)
        assert result.total_guesses == 7
        assert not result.outcomes[0].locked_out

    def test_validation(self):
        base, dictionary = self._seed_cluster()
        store = self._store(RobustDiscretization(2, 9), base)
        with pytest.raises(AttackError):
            online_attack(store, dictionary, guess_budget=0)
        with pytest.raises(AttackError):
            online_attack(store, dictionary, usernames=(), guess_budget=5)


class TestExpectedGuessRank:
    def _result(self):
        """Small attack whose dictionary size and match counts are known."""
        points = [Point.xy(40 + 60 * i, 50 + 40 * i) for i in range(5)]
        target = password_at(0, points)
        seeds = tuple(points) + tuple(Point.xy(600, 20 + 30 * i) for i in range(2))
        dictionary = HumanSeededDictionary(
            seed_points=seeds, tuple_length=5, image_name="cars"
        )
        scheme = CenteredDiscretization.for_pixel_tolerance(2, 9)
        return (
            offline_attack_known_identifiers(scheme, [target], dictionary),
            dictionary,
        )

    def test_dictionary_entries_recovers_exact_size(self):
        result, dictionary = self._result()
        assert result.dictionary_entries == dictionary.entry_count

    def test_formula_matches_docstring(self):
        """expected_guess_rank is (N+1)/(m+1), not raw m."""
        result, dictionary = self._result()
        outcome = result.outcomes[0]
        assert outcome.cracked and outcome.matching_entries >= 1
        n, m = dictionary.entry_count, outcome.matching_entries
        assert result.expected_guess_rank(outcome) == (n + 1) / (m + 1)
        # Sanity bounds: at least 1 guess, at most the whole dictionary + 1.
        assert 1.0 <= result.expected_guess_rank(outcome) <= n + 1

    def test_uncracked_password_costs_the_whole_dictionary(self):
        result, dictionary = self._result()
        from repro.attacks.offline import PasswordAttackOutcome

        survivor = PasswordAttackOutcome(
            password_id=7, cracked=False, matching_entries=0
        )
        assert result.expected_guess_rank(survivor) == dictionary.entry_count + 1

    def test_negative_match_count_rejected(self):
        result, _ = self._result()
        from repro.attacks.offline import PasswordAttackOutcome

        bad = PasswordAttackOutcome(password_id=1, cracked=True, matching_entries=-1)
        with pytest.raises(AttackError):
            result.expected_guess_rank(bad)
