"""Tests for click models, participants, datasets and study generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import DatasetError, ParameterError
from repro.geometry.point import Point
from repro.study.clickmodel import ClickErrorModel, SelectionModel
from repro.study.dataset import LoginSample, PasswordSample, StudyDataset
from repro.study.fieldstudy import PAPER_STUDY, FieldStudyConfig, generate_field_study
from repro.study.image import cars_image, pool_image
from repro.study.labstudy import LabStudyConfig, generate_lab_study, lab_click_points
from repro.study.users import Participant, generate_participants


class TestClickErrorModel:
    def test_validation(self):
        with pytest.raises(ParameterError):
            ClickErrorModel(sigma=0)
        with pytest.raises(ParameterError):
            ClickErrorModel(tail_rate=1.0)
        with pytest.raises(ParameterError):
            ClickErrorModel(tail_rate=0.6, gross_rate=0.5)
        with pytest.raises(ParameterError):
            ClickErrorModel(gross_sigma=-1)
        with pytest.raises(ParameterError):
            ClickErrorModel(skill_spread=-0.1)

    def test_reentry_stays_in_image(self, rng):
        model = ClickErrorModel(sigma=50, gross_rate=0.3)
        image = cars_image()
        original = Point.xy(5, 5)
        for _ in range(200):
            point = model.sample_reentry(image, original, rng)
            assert image.contains(point)

    def test_reentry_is_accurate_on_average(self, rng):
        model = ClickErrorModel(gross_rate=0.0, skill_spread=0.0)
        image = cars_image()
        original = Point.xy(225, 165)
        errors = []
        for _ in range(500):
            point = model.sample_reentry(image, original, rng)
            errors.append(max(abs(int(point.x) - 225), abs(int(point.y) - 165)))
        within4 = sum(1 for e in errors if e <= 4) / len(errors)
        assert within4 > 0.80  # "very accurate" users

    def test_skill_validated(self, rng):
        model = ClickErrorModel()
        with pytest.raises(ParameterError):
            model.sample_reentry(cars_image(), Point.xy(5, 5), rng, skill=0)

    def test_user_skill_positive(self, rng):
        model = ClickErrorModel()
        for _ in range(50):
            assert model.user_skill(rng) > 0

    def test_user_skill_degenerate(self, rng):
        assert ClickErrorModel(skill_spread=0).user_skill(rng) == 1.0

    def test_json_roundtrip(self):
        model = ClickErrorModel(sigma=2.0, tail_rate=0.1)
        assert ClickErrorModel.from_json(model.to_json()) == model


class TestSelectionModel:
    def test_min_separation_enforced(self, rng):
        model = SelectionModel(min_separation=20)
        image = cars_image()
        for _ in range(20):
            points = model.sample_password(image, rng, clicks=5)
            for i in range(5):
                for j in range(i + 1, 5):
                    dx = abs(int(points[i].x) - int(points[j].x))
                    dy = abs(int(points[i].y) - int(points[j].y))
                    assert max(dx, dy) >= 20

    def test_points_inside_image(self, rng):
        model = SelectionModel()
        image = pool_image()
        for _ in range(30):
            for point in model.sample_password(image, rng, clicks=5):
                assert image.contains(point)

    def test_validation(self, rng):
        with pytest.raises(ParameterError):
            SelectionModel(min_separation=-1)
        with pytest.raises(ParameterError):
            SelectionModel(max_resamples=0)
        with pytest.raises(ParameterError):
            SelectionModel().sample_password(cars_image(), rng, clicks=0)

    def test_json_roundtrip(self):
        model = SelectionModel(min_separation=10)
        assert SelectionModel.from_json(model.to_json()) == model


class TestParticipants:
    def test_round_robin_split(self, rng):
        participants = generate_participants(
            10, (cars_image(), pool_image()), ClickErrorModel(), rng
        )
        cars_count = sum(1 for p in participants if p.image_name == "cars")
        assert cars_count == 5

    def test_validation(self, rng):
        with pytest.raises(ParameterError):
            generate_participants(0, (cars_image(),), ClickErrorModel(), rng)
        with pytest.raises(ParameterError):
            generate_participants(5, (), ClickErrorModel(), rng)
        with pytest.raises(ParameterError):
            Participant(user_id=0, image_name="cars", skill=0)


class TestDatasetContainers:
    def _password(self, pid=0, image="cars"):
        return PasswordSample(
            password_id=pid,
            user_id=1,
            image_name=image,
            points=(Point.xy(10, 10), Point.xy(50, 50)),
        )

    def test_password_validation(self):
        with pytest.raises(DatasetError):
            PasswordSample(password_id=0, user_id=0, image_name="cars", points=())
        with pytest.raises(DatasetError):
            PasswordSample(
                password_id=0, user_id=0, image_name="cars", points=(Point.of(1),)
            )

    def test_login_validation(self):
        with pytest.raises(DatasetError):
            LoginSample(login_id=0, password_id=0, points=())

    def test_dataset_invariants(self):
        images = {"cars": cars_image()}
        password = self._password()
        login = LoginSample(
            login_id=0, password_id=0, points=(Point.xy(11, 11), Point.xy(49, 52))
        )
        dataset = StudyDataset(images=images, passwords=(password,), logins=(login,))
        assert dataset.password(0) == password
        assert dataset.logins_for(0) == (login,)

    def test_duplicate_password_id_rejected(self):
        images = {"cars": cars_image()}
        with pytest.raises(DatasetError):
            StudyDataset(
                images=images,
                passwords=(self._password(0), self._password(0)),
                logins=(),
            )

    def test_unknown_image_rejected(self):
        with pytest.raises(DatasetError):
            StudyDataset(images={}, passwords=(self._password(),), logins=())

    def test_out_of_bounds_point_rejected(self):
        images = {"cars": cars_image()}
        bad = PasswordSample(
            password_id=0,
            user_id=0,
            image_name="cars",
            points=(Point.xy(9999, 10),),
        )
        with pytest.raises(DatasetError):
            StudyDataset(images=images, passwords=(bad,), logins=())

    def test_login_click_count_mismatch_rejected(self):
        images = {"cars": cars_image()}
        login = LoginSample(login_id=0, password_id=0, points=(Point.xy(1, 1),))
        with pytest.raises(DatasetError):
            StudyDataset(
                images=images, passwords=(self._password(),), logins=(login,)
            )

    def test_login_unknown_password_rejected(self):
        images = {"cars": cars_image()}
        login = LoginSample(
            login_id=0, password_id=99, points=(Point.xy(1, 1), Point.xy(2, 2))
        )
        with pytest.raises(DatasetError):
            StudyDataset(
                images=images, passwords=(self._password(),), logins=(login,)
            )


class TestFieldStudy:
    def test_paper_shape(self, paper_dataset):
        summary = paper_dataset.summary()
        assert summary["participants"] == 191
        assert summary["passwords"] == 481
        assert summary["logins"] == 3339

    def test_images_roughly_split(self, paper_dataset):
        summary = paper_dataset.summary()
        cars = summary["images"]["cars"]["passwords"]
        pool = summary["images"]["pool"]["passwords"]
        assert cars + pool == 481
        assert abs(cars - pool) < 481 * 0.15

    def test_every_password_has_five_clicks(self, paper_dataset):
        for password in paper_dataset.passwords:
            assert password.clicks == 5

    def test_reproducible(self):
        config = FieldStudyConfig(
            participants=8, passwords_total=10, logins_total=30, seed=3
        )
        assert generate_field_study(config) == generate_field_study(config)

    def test_different_seed_differs(self):
        base = FieldStudyConfig(
            participants=8, passwords_total=10, logins_total=30, seed=3
        )
        assert generate_field_study(base) != generate_field_study(base.with_seed(4))

    def test_validation(self):
        with pytest.raises(ParameterError):
            FieldStudyConfig(participants=0)
        with pytest.raises(ParameterError):
            FieldStudyConfig(participants=10, passwords_total=5)
        with pytest.raises(ParameterError):
            FieldStudyConfig(clicks_per_password=0)
        with pytest.raises(ParameterError):
            FieldStudyConfig(images=(cars_image(), cars_image()))

    def test_fewer_logins_than_passwords(self):
        config = FieldStudyConfig(
            participants=5, passwords_total=10, logins_total=4, seed=9
        )
        dataset = generate_field_study(config)
        assert len(dataset.logins) == 4

    def test_json_roundtrip(self, tiny_study, tmp_path):
        path = tmp_path / "study.json"
        tiny_study.save(str(path))
        loaded = StudyDataset.load(str(path))
        assert loaded == tiny_study


class TestLabStudy:
    def test_paper_shape(self):
        lab = generate_lab_study(cars_image())
        assert len(lab) == 30
        assert len(lab_click_points(lab)) == 150

    def test_deterministic_and_image_specific(self):
        assert generate_lab_study(cars_image()) == generate_lab_study(cars_image())
        cars_points = lab_click_points(generate_lab_study(cars_image()))
        pool_points = lab_click_points(generate_lab_study(pool_image()))
        assert cars_points != pool_points

    def test_config_validation(self):
        with pytest.raises(ParameterError):
            LabStudyConfig(passwords=0)
        with pytest.raises(ParameterError):
            LabStudyConfig(clicks_per_password=0)

    def test_points_inside_image(self):
        image = pool_image()
        for sample in generate_lab_study(image):
            for point in sample.points:
                assert image.contains(point)
