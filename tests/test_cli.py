"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert "repro" in capsys.readouterr().out


class TestList:
    def test_lists_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out
        assert "figure8" in out
        assert "ablation_ndim" in out


class TestRun:
    def test_run_single_fast_experiment(self, capsys):
        assert main(["run", "table3"]) == 0
        out = capsys.readouterr().out
        assert "Table 3" in out
        assert "paper vs measured" in out

    def test_run_multiple(self, capsys):
        assert main(["run", "figure1", "figure2"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out
        assert "worked example" in out or "walkthrough" in out

    def test_unknown_experiment_fails(self, capsys):
        assert main(["run", "bogus"]) == 2
        assert "unknown experiments" in capsys.readouterr().err


class TestStudy:
    def test_generates_json(self, tmp_path, capsys):
        out_path = tmp_path / "study.json"
        assert main(["study", "--out", str(out_path), "--seed", "7"]) == 0
        payload = json.loads(out_path.read_text())
        assert len(payload["passwords"]) == 481
        assert "191 participants" in capsys.readouterr().out


class TestDemo:
    def test_demo_output(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "centered" in out
        assert "robust" in out
        # The demo's 14-px-off login must split the schemes: centered (r=9)
        # rejects it, robust (r=9, 57-px cells) accepts it.
        centered_line = next(l for l in out.splitlines() if "centered" in l)
        robust_line = next(l for l in out.splitlines() if "robust" in l)
        assert "14px-off login: False" in centered_line
        assert "14px-off login: True" in robust_line
