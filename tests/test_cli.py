"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert "repro" in capsys.readouterr().out


class TestList:
    def test_lists_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out
        assert "figure8" in out
        assert "ablation_ndim" in out


class TestRun:
    def test_run_single_fast_experiment(self, capsys):
        assert main(["run", "table3"]) == 0
        out = capsys.readouterr().out
        assert "Table 3" in out
        assert "paper vs measured" in out

    def test_run_multiple(self, capsys):
        assert main(["run", "figure1", "figure2"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out
        assert "worked example" in out or "walkthrough" in out

    def test_unknown_experiment_fails(self, capsys):
        assert main(["run", "bogus"]) == 2
        assert "unknown experiments" in capsys.readouterr().err


class TestStudy:
    def test_generates_json(self, tmp_path, capsys):
        out_path = tmp_path / "study.json"
        assert main(["study", "--out", str(out_path), "--seed", "7"]) == 0
        payload = json.loads(out_path.read_text())
        assert len(payload["passwords"]) == 481
        assert "191 participants" in capsys.readouterr().out


class TestStore:
    def test_create_login_dump_attack_roundtrip(self, tmp_path, capsys):
        uri = f"sqlite:{tmp_path / 'store.db'}"
        assert main(["store", "create", uri, "--users", "3"]) == 0
        out = capsys.readouterr().out
        assert "enrolled 3 new accounts" in out

        # Re-running resumes instead of re-enrolling.
        assert main(["store", "create", uri, "--users", "3"]) == 0
        assert "3 already present" in capsys.readouterr().out

        # The dump is the attacker-visible password file.
        assert main(["store", "dump", uri]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload) == 3
        username = sorted(payload)[0]

        # A wrong-password login is rejected (exit code 1) and counts
        # toward the lockout streak; the right points would be accepted.
        points = "40,50;100,90;160,130;220,170;280,210"
        assert main(["store", "login", uri, "--user", username, "--points", points]) == 1
        assert "rejected" in capsys.readouterr().out
        for _ in range(2):
            main(["store", "login", uri, "--user", username, "--points", points])
        capsys.readouterr()
        assert main(["store", "login", uri, "--user", username, "--points", points]) == 3
        assert "locked" in capsys.readouterr().out

        # Offline grind of the stolen file runs end to end.
        assert main(["store", "attack", uri, "--budget", "10"]) == 0
        out = capsys.readouterr().out
        assert "stolen file" in out
        assert "cracked" in out

    def test_jsonl_backend_roundtrip(self, tmp_path, capsys):
        uri = f"jsonl:{tmp_path / 'store.jsonl'}"
        assert main(["store", "create", uri, "--users", "2", "--scheme", "robust"]) == 0
        capsys.readouterr()
        assert main(["store", "dump", uri]) == 0
        assert len(json.loads(capsys.readouterr().out)) == 2

    def test_compact_jsonl_store(self, tmp_path, capsys):
        uri = f"jsonl:{tmp_path / 'store.jsonl'}"
        assert main(["store", "create", uri, "--users", "3"]) == 0
        capsys.readouterr()
        # Grow the log with superseded throttle events, then compact.
        points = "40,50;100,90;160,130;220,170;280,210"
        for _ in range(4):
            main(["store", "login", uri, "--user", "user0", "--points", points])
        capsys.readouterr()
        assert main(["store", "compact", uri]) == 0
        out = capsys.readouterr().out
        assert "compacted" in out
        assert "3 live accounts" in out
        # The compacted store still serves: dump and login both work.
        assert main(["store", "dump", uri]) == 0
        assert len(json.loads(capsys.readouterr().out)) == 3

    def test_compact_refuses_non_jsonl_backends(self, tmp_path, capsys):
        uri = f"sqlite:{tmp_path / 'store.db'}"
        assert main(["store", "create", uri, "--users", "1"]) == 0
        capsys.readouterr()
        assert main(["store", "compact", uri]) == 2
        assert "jsonl" in capsys.readouterr().err

    def test_recreate_with_mismatched_deployment_refused(self, tmp_path, capsys):
        uri = f"sqlite:{tmp_path / 'store.db'}"
        assert main(["store", "create", uri, "--users", "1"]) == 0
        capsys.readouterr()
        # Different scheme (or tolerance/image) must not overwrite the
        # persisted deployment meta under the enrolled records.
        assert main(["store", "create", uri, "--users", "1", "--scheme", "robust"]) == 2
        assert "refusing" in capsys.readouterr().err
        assert main(["store", "create", uri, "--users", "1", "--tolerance", "4"]) == 2
        capsys.readouterr()
        # Matching deployment still resumes fine.
        assert main(["store", "create", uri, "--users", "1"]) == 0
        assert "1 already present" in capsys.readouterr().out

    def test_attack_without_create_fails_cleanly(self, tmp_path, capsys):
        uri = f"sqlite:{tmp_path / 'empty.db'}"
        assert main(["store", "attack", uri]) == 2
        assert "store create" in capsys.readouterr().err

    def test_bad_uri_fails_cleanly(self, capsys):
        assert main(["store", "dump", "redis:somewhere"]) == 2
        assert "unknown storage backend" in capsys.readouterr().err
        assert main(["store", "create", "sqlite:"]) == 2
        assert "needs a path" in capsys.readouterr().err

    def test_login_without_create_fails(self, tmp_path, capsys):
        uri = f"sqlite:{tmp_path / 'empty.db'}"
        code = main(
            ["store", "login", uri, "--user", "ghost", "--points", "1,1;2,2;3,3;4,4;5,5"]
        )
        assert code == 2
        assert "store create" in capsys.readouterr().err

    def test_malformed_points_rejected(self, tmp_path, capsys):
        uri = f"sqlite:{tmp_path / 'store.db'}"
        main(["store", "create", uri, "--users", "1"])
        capsys.readouterr()
        code = main(["store", "login", uri, "--user", "user0", "--points", "nonsense"])
        assert code == 2
        assert "malformed" in capsys.readouterr().err


class TestServeFlood:
    def test_flood_self_hosted_on_sharded_backend(self, tmp_path, capsys):
        uri = f"shards:sqlite:{tmp_path / 'f'}{{0..1}}.db"
        code = main(
            ["flood", uri, "--users", "4", "--attempts", "80", "--clients", "4"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "logins/s" in out
        assert "p95" in out
        assert "locked out" in out
        assert "batching" in out
        # A second run resumes the enrolled (and partially locked) store —
        # with fewer attempts than accounts, so some accounts see no login
        # and their lockout state must be read back from the (still open)
        # backend, not a warm cache.
        assert main(["flood", uri, "--users", "4", "--attempts", "2"]) == 0
        assert "4 accounts" in capsys.readouterr().out

    def test_flood_respects_persisted_deployment(self, tmp_path, capsys):
        uri = f"sqlite:{tmp_path / 'store.db'}"
        assert main(["store", "create", uri, "--users", "2", "--scheme", "robust"]) == 0
        capsys.readouterr()
        # The flood serves the deployment the backend was created with
        # (robust), regardless of the requested enrollment scheme.
        assert main(["flood", uri, "--users", "2", "--attempts", "40"]) == 0
        assert "logins/s" in capsys.readouterr().out

    def test_flood_bad_uri_fails_cleanly(self, capsys):
        assert main(["flood", "redis:somewhere"]) == 2
        assert "unknown storage backend" in capsys.readouterr().err

    def test_serve_requires_deployment_meta(self, tmp_path, capsys):
        assert main(["serve", f"sqlite:{tmp_path / 'empty.db'}", "--port", "0"]) == 2
        assert "store create" in capsys.readouterr().err

    def test_flood_pipelined_with_connections_alias(self, tmp_path, capsys):
        uri = f"shards:sqlite:{tmp_path / 'p'}{{0..1}}.db"
        code = main(
            ["flood", uri, "--users", "4", "--attempts", "80",
             "--connections", "4", "--pipeline-depth", "8"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "4 clients" in out  # --connections overrode the default 16
        assert "pipeline depth 8" in out
        assert "logins/s" in out

    def test_flood_cluster_over_sharded_backend(self, tmp_path, capsys):
        uri = f"shards:sqlite:{tmp_path / 'c'}{{0..1}}.db"
        code = main(
            ["flood", uri, "--cluster", "--users", "4", "--attempts", "60",
             "--connections", "4", "--pipeline-depth", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "cluster router" in out
        assert "cluster batching: 2 workers" in out
        assert "logins/s" in out

    def test_flood_cluster_refuses_memory_shards(self, capsys):
        assert main(
            ["flood", "shards:memory:{0..1}", "--cluster", "--users", "2",
             "--attempts", "4"]
        ) == 2
        assert "durable" in capsys.readouterr().err

    def test_cluster_requires_sharded_durable_store(self, tmp_path, capsys):
        assert main(["cluster", f"sqlite:{tmp_path / 'one.db'}"]) == 2
        assert "shards:" in capsys.readouterr().err
        assert main(["cluster", "shards:memory:{0..1}"]) == 2
        assert "durable" in capsys.readouterr().err
        empty = f"shards:sqlite:{tmp_path / 'e'}{{0..1}}.db"
        assert main(["cluster", empty]) == 2
        assert "store create" in capsys.readouterr().err


class TestDemo:
    def test_demo_output(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "centered" in out
        assert "robust" in out
        # The demo's 14-px-off login must split the schemes: centered (r=9)
        # rejects it, robust (r=9, 57-px cells) accepts it.
        centered_line = next(l for l in out.splitlines() if "centered" in l)
        robust_line = next(l for l in out.splitlines() if "robust" in l)
        assert "14px-off login: False" in centered_line
        assert "14px-off login: True" in robust_line


class TestAttackCommand:
    def test_known_identifier_attack_runs_sharded(self, capsys):
        assert main(
            ["attack", "--victims", "6", "--workers", "2", "--tolerance", "9"]
        ) == 0
        out = capsys.readouterr().out
        assert "known-identifier attack" in out
        assert "2 worker(s)" in out
        assert "cracked" in out

    def test_store_attack_accepts_workers_flag(self, tmp_path, capsys):
        uri = f"sqlite:{tmp_path / 'attack.db'}"
        assert main(["store", "create", uri, "--users", "4"]) == 0
        capsys.readouterr()
        assert main(
            ["store", "attack", uri, "--budget", "10", "--workers", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "stolen file" in out
        assert "2 worker(s)" in out
