"""Tests for Cued Click-Points, Persuasive CCP and the Blonder baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.centered import CenteredDiscretization
from repro.errors import DomainError, ParameterError, VerificationError
from repro.geometry.point import Point
from repro.geometry.region import Box
from repro.passwords.blonder import BlonderSystem
from repro.passwords.ccp import CCPSystem, next_image_index
from repro.passwords.pccp import PCCPSystem, ViewportSelectionModel
from repro.study.image import cars_image, pool_image

POINTS = [
    Point.xy(42, 61),
    Point.xy(130, 88),
    Point.xy(227, 154),
    Point.xy(318, 222),
    Point.xy(401, 290),
]


def shifted(points, dx, dy=0):
    return [Point.xy(int(p.x) + dx, int(p.y) + dy) for p in points]


@pytest.fixture()
def ccp():
    return CCPSystem(
        images=(cars_image(), pool_image()),
        scheme=CenteredDiscretization.for_pixel_tolerance(2, 9),
    )


class TestNextImageIndex:
    def test_deterministic(self):
        assert next_image_index(0, (1, 2), (0.5, 0.5), 7) == next_image_index(
            0, (1, 2), (0.5, 0.5), 7
        )

    def test_depends_on_cell(self):
        outputs = {
            next_image_index(0, (cell, 0), (0.5, 0.5), 1000) for cell in range(50)
        }
        assert len(outputs) > 10  # far from constant

    def test_validation(self):
        with pytest.raises(ParameterError):
            next_image_index(0, (0, 0), (), 0)


class TestCCP:
    def test_enroll_verify_roundtrip(self, ccp):
        stored = ccp.enroll(POINTS)
        assert ccp.verify(stored, POINTS)

    def test_tolerant_reentry_accepted(self, ccp):
        stored = ccp.enroll(POINTS)
        assert ccp.verify(stored, shifted(POINTS, 4, -4))

    def test_wrong_click_rejected(self, ccp):
        stored = ccp.enroll(POINTS)
        assert not ccp.verify(stored, shifted(POINTS, 30))

    def test_image_path_consistency(self, ccp):
        stored = ccp.enroll(POINTS)
        good_path = ccp.image_path(stored, POINTS)
        tolerant_path = ccp.image_path(stored, shifted(POINTS, 4))
        assert good_path == tolerant_path  # implicit feedback: same cells

    def test_wrong_click_diverts_path(self, ccp):
        stored = ccp.enroll(POINTS)
        good_path = ccp.image_path(stored, POINTS)
        # Shift only the second click far away: path may diverge from round
        # 2 onward (depends on the hash), but rounds before it are frozen.
        attempt = list(POINTS)
        attempt[1] = Point.xy(int(POINTS[1].x) + 60, int(POINTS[1].y) + 60)
        diverted_path = ccp.image_path(stored, attempt)
        assert diverted_path[:2] == good_path[:2]

    def test_click_count_enforced(self, ccp):
        with pytest.raises(VerificationError):
            ccp.enroll(POINTS[:3])
        stored = ccp.enroll(POINTS)
        with pytest.raises(VerificationError):
            ccp.verify(stored, POINTS[:3])

    def test_domain_enforced_on_path_image(self, ccp):
        bad = list(POINTS)
        bad[0] = Point.xy(9999, 10)
        with pytest.raises(DomainError):
            ccp.enroll(bad)

    def test_validation(self):
        with pytest.raises(ParameterError):
            CCPSystem(images=(), scheme=CenteredDiscretization(2, 5))
        with pytest.raises(ParameterError):
            CCPSystem(
                images=(cars_image(),),
                scheme=CenteredDiscretization(2, 5),
                rounds=0,
            )
        with pytest.raises(ParameterError):
            CCPSystem(
                images=(cars_image(),),
                scheme=CenteredDiscretization(2, 5),
                start_index=5,
            )


class TestPCCP:
    def test_create_and_verify(self, ccp, rng):
        pccp = PCCPSystem(ccp=ccp)
        points, stored = pccp.create_password(rng)
        assert len(points) == 5
        assert pccp.verify(stored, list(points))

    def test_viewport_click_inside_viewport_bounds(self, rng):
        viewport = ViewportSelectionModel(viewport_size=75, shuffle_rate=0)
        image = cars_image()
        for _ in range(50):
            point = viewport.sample_click(image, rng)
            assert image.contains(point)

    def test_viewport_flattens_selection(self, rng):
        """Viewport selection must be visibly less hotspot-concentrated."""
        image = cars_image()
        viewport = ViewportSelectionModel()
        free = []
        constrained = []
        from repro.study.clickmodel import SelectionModel

        selection = SelectionModel(min_separation=0)
        for _ in range(300):
            free.append(selection._sample_raw(image, rng))
            constrained.append(viewport.sample_click(image, rng))

        def nearest_hotspot_distance(points):
            total = 0.0
            for point in points:
                best = min(
                    max(abs(float(point.x) - h.x), abs(float(point.y) - h.y))
                    for h in image.hotspots
                )
                total += best
            return total / len(points)

        assert nearest_hotspot_distance(constrained) > nearest_hotspot_distance(free)

    def test_viewport_validation(self):
        with pytest.raises(ParameterError):
            ViewportSelectionModel(viewport_size=2)
        with pytest.raises(ParameterError):
            ViewportSelectionModel(shuffle_rate=1.5)
        with pytest.raises(ParameterError):
            ViewportSelectionModel(max_shuffles=-1)


class TestBlonder:
    def _system(self):
        return BlonderSystem.uniform_partition(cars_image(), rows=4, columns=6)

    def test_enroll_verify(self):
        system = self._system()
        record = system.enroll(POINTS)
        assert system.verify(record, POINTS)

    def test_click_anywhere_in_region_accepted(self):
        system = self._system()
        record = system.enroll(POINTS)
        # Move each click a little; with ~75x82-px regions, small shifts
        # usually stay within the region, but build the attempt from the
        # region geometry to be exact.
        attempt = []
        for point in POINTS:
            region_index = system.region_of(point)
            box = system.regions[region_index]
            center = box.center()
            attempt.append(Point.xy(int(center.x), int(center.y)))
        assert system.verify(record, attempt)

    def test_wrong_region_rejected(self):
        system = self._system()
        record = system.enroll(POINTS)
        attempt = list(POINTS)
        attempt[0] = Point.xy(
            (int(POINTS[0].x) + 200) % 451, (int(POINTS[0].y) + 200) % 331
        )
        if system.region_of(attempt[0]) != system.region_of(POINTS[0]):
            assert not system.verify(record, attempt)

    def test_overlapping_regions_rejected(self):
        box_a = Box(Point.xy(0, 0), Point.xy(10, 10))
        box_b = Box(Point.xy(5, 5), Point.xy(15, 15))
        with pytest.raises(ParameterError):
            BlonderSystem(image=cars_image(), regions=(box_a, box_b))

    def test_password_space_bits(self):
        system = self._system()
        import math

        assert system.password_space_bits() == 5 * math.log2(24)

    def test_validation(self):
        with pytest.raises(ParameterError):
            BlonderSystem(image=cars_image(), regions=())
        with pytest.raises(ParameterError):
            BlonderSystem.uniform_partition(cars_image(), rows=0, columns=3)
