"""Tests for Robust Discretization (Birget et al.) — the paper's baseline.

Property-tests the scheme's defining guarantees across dimensions:

* for every point, at least one of the dim+1 grids is r-safe (the
  "three grids are necessary and sufficient" theorem in 2-D);
* enrollment always yields a cell with margin ≥ r, so everything within
  the half-open r-box is accepted;
* nothing beyond r_max = (2(dim+1) − 1)·r is ever accepted;
* false accepts/rejects relative to centered tolerance *do* occur — the
  paper's §2.2.1 defect, demonstrated constructively.
"""

from __future__ import annotations

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.robust import GridSelection, RobustDiscretization
from repro.errors import ParameterError, VerificationError
from repro.geometry.metrics import chebyshev
from repro.geometry.point import Point

radii = st.one_of(
    st.integers(min_value=1, max_value=30),
    st.fractions(min_value=Fraction(1, 2), max_value=30, max_denominator=6),
)
coords = st.one_of(
    st.integers(min_value=-10**5, max_value=10**5),
    st.fractions(min_value=-10**4, max_value=10**4, max_denominator=50),
)


class TestGeometry:
    def test_2d_constants(self):
        scheme = RobustDiscretization(dim=2, r=3)
        assert scheme.grid_count == 3
        assert scheme.cell_size == 18  # 6r
        assert scheme.r_max == 15  # 5r

    @pytest.mark.parametrize("dim", [1, 2, 3, 4])
    def test_nd_constants(self, dim):
        scheme = RobustDiscretization(dim=dim, r=2)
        assert scheme.grid_count == dim + 1
        assert scheme.cell_size == 2 * (dim + 1) * 2
        assert scheme.r_max == (2 * (dim + 1) - 1) * 2

    def test_for_grid_size_2d(self):
        scheme = RobustDiscretization.for_grid_size(2, 13)
        assert scheme.r == Fraction(13, 6)
        assert scheme.cell_size == 13

    def test_for_grid_size_3d(self):
        scheme = RobustDiscretization.for_grid_size(3, 16)
        assert scheme.cell_size == 16
        assert scheme.r == 2

    def test_for_pixel_tolerance(self):
        scheme = RobustDiscretization.for_pixel_tolerance(2, 9)
        assert scheme.r == Fraction(19, 2)
        assert scheme.cell_size == 57

    def test_grids_diagonally_offset(self):
        scheme = RobustDiscretization(dim=2, r=5)
        offsets = [scheme.grid(g).offsets for g in range(3)]
        assert offsets == [(0, 0), (10, 10), (20, 20)]


class TestSafetyGuarantee:
    @given(st.lists(coords, min_size=1, max_size=4), radii)
    @settings(max_examples=120)
    def test_at_least_one_safe_grid_any_dim(self, point_coords, r):
        """The Birget et al. theorem: dim+1 offset grids always suffice."""
        dim = len(point_coords)
        scheme = RobustDiscretization(dim=dim, r=r)
        point = Point(tuple(point_coords))
        assert scheme.safe_grids(point), (point, r)

    @given(st.tuples(coords, coords), radii)
    @settings(max_examples=80)
    def test_enrolled_margin_at_least_r(self, point_coords, r):
        scheme = RobustDiscretization(dim=2, r=r)
        point = Point(point_coords)
        enrolled = scheme.enroll(point)
        region = scheme.acceptance_region(enrolled)
        assert region.margin(point) >= r

    @given(st.tuples(coords, coords), radii)
    @settings(max_examples=80)
    def test_accepts_within_r_box(self, point_coords, r):
        """Everything in the half-open r-box around the original verifies."""
        scheme = RobustDiscretization(dim=2, r=r)
        point = Point(point_coords)
        enrolled = scheme.enroll(point)
        probes = [
            Point((point.x - r, point.y)),          # low edge: included
            Point((point.x, point.y - r)),
            Point((point.x + r - Fraction(1, 7), point.y)),  # just inside
            Point((point.x, point.y + r - Fraction(1, 7))),
        ]
        for probe in probes:
            assert scheme.accepts(enrolled, probe), probe

    @given(st.tuples(coords, coords), radii, st.tuples(coords, coords))
    @settings(max_examples=80)
    def test_never_accepts_beyond_r_max(self, point_coords, r, candidate_coords):
        scheme = RobustDiscretization(dim=2, r=r)
        point = Point(point_coords)
        candidate = Point(candidate_coords)
        enrolled = scheme.enroll(point)
        if chebyshev(point, candidate) > scheme.r_max:
            assert not scheme.accepts(enrolled, candidate)


class TestFalseAcceptRejectExist:
    """Constructive demonstrations of the paper's §2.2.1 defect."""

    def test_false_accept_up_to_5r(self):
        # Pick a point exactly r above a cell's low edge in both axes: the
        # far corner of its cell is 5r - epsilon away yet accepted.
        r = 3
        scheme = RobustDiscretization(dim=2, r=r, selection=GridSelection.FIRST_SAFE)
        point = Point.xy(r, r)  # r-safe in grid 0 at the cell's low corner
        enrolled = scheme.enroll(point)
        assert enrolled.public == (0,)
        far = Point.xy(6 * r - 1, 6 * r - 1)  # distance 5r - 1 > r
        assert chebyshev(point, far) == 5 * r - 1
        assert scheme.accepts(enrolled, far)

    def test_false_reject_just_beyond_r(self):
        r = 3
        scheme = RobustDiscretization(dim=2, r=r, selection=GridSelection.FIRST_SAFE)
        point = Point.xy(r, r)
        enrolled = scheme.enroll(point)
        # r+1 away toward the low edge leaves the cell: rejected, although
        # within the centered tolerance 3r of an equal-size centered square.
        near = Point.xy(r - (r + 1), r)
        assert chebyshev(point, near) == r + 1 < 3 * r
        assert not scheme.accepts(enrolled, near)


class TestGridSelection:
    def test_most_centered_maximizes_margin(self):
        scheme_first = RobustDiscretization(2, 4, selection=GridSelection.FIRST_SAFE)
        scheme_best = RobustDiscretization(2, 4, selection=GridSelection.MOST_CENTERED)
        # Scan points; best margin must be >= first-safe margin everywhere.
        for x in range(0, 48, 5):
            for y in range(0, 48, 7):
                point = Point.xy(x, y)
                first = scheme_first.enroll(point)
                best = scheme_best.enroll(point)
                margin_first = scheme_first.acceptance_region(first).margin(point)
                margin_best = scheme_best.acceptance_region(best).margin(point)
                assert margin_best >= margin_first

    def test_random_safe_requires_rng(self):
        with pytest.raises(ParameterError):
            RobustDiscretization(2, 3, selection=GridSelection.RANDOM_SAFE)

    def test_random_safe_choice_is_safe(self, rng):
        scheme = RobustDiscretization(
            2, 3, selection=GridSelection.RANDOM_SAFE, rng=rng.random
        )
        for x in range(0, 40, 3):
            point = Point.xy(x, x // 2)
            enrolled = scheme.enroll(point)
            assert scheme.acceptance_region(enrolled).margin(point) >= 3

    def test_selection_validated(self):
        with pytest.raises(ParameterError):
            RobustDiscretization(2, 3, selection="optimal")  # type: ignore[arg-type]


class TestVerificationSide:
    def test_locate_uses_stored_grid(self):
        scheme = RobustDiscretization(2, 3)
        point = Point.xy(50, 50)
        enrolled = scheme.enroll(point)
        located = scheme.locate(point, enrolled.public)
        assert located == enrolled.secret

    def test_locate_validates_public(self):
        scheme = RobustDiscretization(2, 3)
        with pytest.raises(VerificationError):
            scheme.locate(Point.xy(1, 2), ())
        with pytest.raises(VerificationError):
            scheme.locate(Point.xy(1, 2), (1.5,))
        with pytest.raises(VerificationError):
            scheme.locate(Point.xy(1, 2), (7,))  # out-of-range grid id

    def test_acceptance_region_validates_identifier(self):
        from repro.core.scheme import Discretization

        scheme = RobustDiscretization(2, 3)
        with pytest.raises(VerificationError):
            scheme.acceptance_region(Discretization(public=("g0",), secret=(0, 0)))

    def test_invalid_r(self):
        with pytest.raises(ParameterError):
            RobustDiscretization(2, 0)
