"""Tests for the human-seeded dictionary machinery.

The crucial correctness property: the closed-form crack decision and the
exact matching-entry count must agree with brute-force enumeration of all
ordered distinct-point tuples on small seed pools (hypothesis-driven).
"""

from __future__ import annotations

import itertools
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attacks.dictionary import (
    HumanSeededDictionary,
    partition_moebius_weight,
    set_partitions,
)
from repro.errors import AttackError
from repro.geometry.point import Point
from repro.study.dataset import PasswordSample
from repro.study.image import cars_image
from repro.study.labstudy import generate_lab_study


class TestSetPartitions:
    def test_bell_numbers(self):
        for n, bell in [(1, 1), (2, 2), (3, 5), (4, 15), (5, 52)]:
            assert len(list(set_partitions(range(n)))) == bell

    def test_blocks_partition_the_set(self):
        for partition in set_partitions(range(4)):
            elements = sorted(x for block in partition for x in block)
            assert elements == [0, 1, 2, 3]

    def test_moebius_weight(self):
        assert partition_moebius_weight(((0,), (1,))) == 1
        assert partition_moebius_weight(((0, 1),)) == -1
        assert partition_moebius_weight(((0, 1, 2),)) == 2


class TestDictionaryBasics:
    def test_from_lab_passwords(self):
        lab = generate_lab_study(cars_image())
        dictionary = HumanSeededDictionary.from_lab_passwords(lab)
        assert len(dictionary.seed_points) == 150
        assert dictionary.tuple_length == 5
        assert dictionary.image_name == "cars"

    def test_paper_dictionary_size(self):
        """30 passwords x 5 clicks -> P(150, 5) ≈ 2^36 entries."""
        lab = generate_lab_study(cars_image())
        dictionary = HumanSeededDictionary.from_lab_passwords(lab)
        assert dictionary.entry_count == math.perm(150, 5)
        assert 36.0 <= dictionary.bits <= 36.1

    def test_mixed_images_rejected(self):
        a = PasswordSample(0, 0, "cars", (Point.xy(1, 1),))
        b = PasswordSample(1, 1, "pool", (Point.xy(2, 2),))
        with pytest.raises(AttackError):
            HumanSeededDictionary.from_lab_passwords([a, b], tuple_length=1)

    def test_validation(self):
        with pytest.raises(AttackError):
            HumanSeededDictionary(seed_points=(Point.xy(1, 1),), tuple_length=2)
        with pytest.raises(AttackError):
            HumanSeededDictionary(seed_points=(), tuple_length=1)
        with pytest.raises(AttackError):
            HumanSeededDictionary.from_lab_passwords([])


def brute_force(match_sets, n_seeds, k):
    """Reference implementation: enumerate all ordered distinct tuples."""
    sets = [set(m) for m in match_sets]
    crack_count = 0
    for combo in itertools.permutations(range(n_seeds), k):
        if all(index in sets[pos] for pos, index in enumerate(combo)):
            crack_count += 1
    return crack_count


match_set_strategy = st.lists(
    st.lists(st.integers(min_value=0, max_value=7), max_size=8, unique=True),
    min_size=1,
    max_size=4,
)


class TestClosedFormAgainstBruteForce:
    @given(match_set_strategy)
    @settings(max_examples=60, deadline=None)
    def test_count_matches_enumeration(self, match_sets):
        n_seeds, k = 8, len(match_sets)
        expected = brute_force(match_sets, n_seeds, k)
        assert (
            HumanSeededDictionary.count_injective_assignments(match_sets)
            == expected
        )

    @given(match_set_strategy)
    @settings(max_examples=60, deadline=None)
    def test_decision_matches_enumeration(self, match_sets):
        n_seeds, k = 8, len(match_sets)
        expected = brute_force(match_sets, n_seeds, k) > 0
        assert (
            HumanSeededDictionary.has_injective_assignment(match_sets) == expected
        )

    def test_hall_violation(self):
        """Two positions sharing one single candidate cannot both be filled."""
        match_sets = [[3], [3]]
        assert not HumanSeededDictionary.has_injective_assignment(match_sets)
        assert HumanSeededDictionary.count_injective_assignments(match_sets) == 0

    def test_disjoint_candidates(self):
        match_sets = [[0, 1], [2]]
        assert HumanSeededDictionary.has_injective_assignment(match_sets)
        assert HumanSeededDictionary.count_injective_assignments(match_sets) == 2


class TestOracleInterface:
    def test_cracks_and_count_via_oracle(self):
        points = tuple(Point.xy(10 * i, 0) for i in range(6))
        dictionary = HumanSeededDictionary(
            seed_points=points, tuple_length=2, image_name="x"
        )

        def accepts(position, point):
            # Position 0 accepts x < 30, position 1 accepts x >= 30.
            return (point.x < 30) == (position == 0)

        assert dictionary.cracks(accepts)
        assert dictionary.matching_entry_count(accepts) == 9  # 3 x 3

    def test_match_sets(self):
        points = (Point.xy(0, 0), Point.xy(10, 0))
        dictionary = HumanSeededDictionary(
            seed_points=points, tuple_length=1, image_name="x"
        )
        sets = dictionary.match_sets(lambda position, point: point.x == 10)
        assert sets == ((1,),)


class TestPrioritizedEnumeration:
    def _dictionary(self):
        # Three popular points clustered together, three loners.
        points = (
            Point.xy(100, 100),
            Point.xy(102, 101),
            Point.xy(99, 103),
            Point.xy(10, 10),
            Point.xy(200, 50),
            Point.xy(300, 300),
        )
        return HumanSeededDictionary(
            seed_points=points, tuple_length=2, image_name="x"
        )

    def test_yields_requested_count(self):
        dictionary = self._dictionary()
        entries = list(dictionary.prioritized_entries(10))
        assert len(entries) == 10

    def test_entries_are_distinct_point_tuples(self):
        dictionary = self._dictionary()
        for entry in dictionary.prioritized_entries(20):
            assert len(entry) == 2
            assert entry[0] != entry[1]

    def test_scores_non_increasing(self):
        dictionary = self._dictionary()
        scores = dictionary.popularity_scores()
        by_point = {p: s for p, s in zip(dictionary.seed_points, scores)}
        products = [
            by_point[a] * by_point[b]
            for a, b in dictionary.prioritized_entries(15)
        ]
        assert products == sorted(products, reverse=True)

    def test_popular_cluster_comes_first(self):
        dictionary = self._dictionary()
        first = next(iter(dictionary.prioritized_entries(1)))
        cluster = {Point.xy(100, 100), Point.xy(102, 101), Point.xy(99, 103)}
        assert set(first) <= cluster

    def test_limit_validation(self):
        with pytest.raises(AttackError):
            list(self._dictionary().prioritized_entries(-1))

    def test_no_duplicates_across_stream(self):
        dictionary = self._dictionary()
        entries = list(dictionary.prioritized_entries(25))
        assert len(entries) == len(set(entries))


class TestEnumerateAll:
    def test_small_pool(self):
        points = (Point.xy(0, 0), Point.xy(1, 1), Point.xy(2, 2))
        dictionary = HumanSeededDictionary(
            seed_points=points, tuple_length=2, image_name="x"
        )
        entries = list(dictionary.enumerate_all())
        assert len(entries) == 6  # P(3, 2)
        assert dictionary.entry_count == 6

    def test_refuses_huge_pools(self):
        lab = generate_lab_study(cars_image())
        dictionary = HumanSeededDictionary.from_lab_passwords(lab)
        with pytest.raises(AttackError):
            next(dictionary.enumerate_all())


class TestInjectiveCountMemoization:
    def test_position_permutation_invariance(self):
        """The permanent is invariant under position order — so is the cache key."""
        match_sets = [[0, 1, 2], [1, 2], [0, 4], [3], [2, 3, 4]]
        base = HumanSeededDictionary.count_injective_assignments(match_sets)
        for permuted in itertools.permutations(match_sets):
            assert (
                HumanSeededDictionary.count_injective_assignments(list(permuted))
                == base
            )

    def test_singleton_and_empty_short_circuits(self):
        """Peeling singletons / zeroing empties agrees with brute force."""
        cases = [
            [[0], [0, 1], [1, 2], [2, 3], [3, 4]],  # chained singletons
            [[4], [4], [0, 1], [1, 2], [2, 3]],  # conflicting singletons -> 0
            [[0, 1], [], [2, 3], [3, 4], [4, 5]],  # empty position -> 0
            [[0], [1], [2], [3], [4]],  # fully forced -> 1
        ]
        for match_sets in cases:
            expected = brute_force(match_sets, 8, len(match_sets))
            assert (
                HumanSeededDictionary.count_injective_assignments(match_sets)
                == expected
            )

    def test_cache_hits_do_not_change_results(self):
        from repro.attacks.dictionary import _count_injective_cached

        match_sets = [[0, 1, 5], [1, 2], [2, 3, 5], [3, 4], [4, 0]]
        first = HumanSeededDictionary.count_injective_assignments(match_sets)
        info_before = _count_injective_cached.cache_info()
        second = HumanSeededDictionary.count_injective_assignments(match_sets)
        info_after = _count_injective_cached.cache_info()
        assert first == second == brute_force(match_sets, 6, 5)
        assert info_after.hits == info_before.hits + 1

    def test_duplicate_indices_within_a_position_are_deduplicated(self):
        assert HumanSeededDictionary.count_injective_assignments(
            [[0, 0, 1], [1, 1]]
        ) == HumanSeededDictionary.count_injective_assignments([[0, 1], [1]])
