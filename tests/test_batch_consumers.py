"""Consumers of the batch engine: attacks and analysis fast paths.

The offline attack, the dictionary match-set machinery, hotspot coverage
and the empirical password-space measures all route through
:mod:`repro.core.batch`; these tests pin their semantics against the
scalar definitions they replaced.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis import effective_space_bits, empirical_cell_distribution
from repro.attacks.dictionary import HumanSeededDictionary
from repro.attacks.hotspot import (
    HarvestedHotspot,
    harvest_hotspots,
    hotspot_coverage,
)
from repro.core import CenteredDiscretization, RobustDiscretization, StaticGridScheme
from repro.errors import AttackError
from repro.geometry.grid import Grid, grid_float_table, square_grid_family
from repro.geometry.point import Point
from repro.study.dataset import PasswordSample


def _samples(points_per_password, image_name="cars"):
    return [
        PasswordSample(
            password_id=i,
            user_id=i,
            image_name=image_name,
            points=tuple(Point.xy(x, y) for x, y in pts),
        )
        for i, pts in enumerate(points_per_password)
    ]


class TestDictionaryBatchPaths:
    def test_match_sets_batch_equals_scalar_oracle(self):
        scheme = CenteredDiscretization.for_pixel_tolerance(2, 9)
        seeds = tuple(
            Point.xy(20 * i % 300, 15 * i % 200) for i in range(40)
        )
        dictionary = HumanSeededDictionary(seed_points=seeds, tuple_length=3)
        originals = [Point.xy(50, 60), Point.xy(140, 90), Point.xy(220, 130)]
        enrollments = [scheme.enroll(p) for p in originals]

        def accepts(position, point):
            return scheme.accepts(enrollments[position], point)

        assert dictionary.match_sets_batch(scheme, enrollments) == (
            dictionary.match_sets(accepts)
        )

    def test_match_mask_batch_equals_scalar_oracle(self):
        """The one-call (positions, N) mask matches the scalar match sets."""
        from repro.core.batch import discretize_batch

        seeds = tuple(
            Point.xy(20 * i % 300, 15 * i % 200) for i in range(40)
        )
        dictionary = HumanSeededDictionary(seed_points=seeds, tuple_length=3)
        originals = [Point.xy(50, 60), Point.xy(140, 90), Point.xy(220, 130)]
        for scheme in (
            CenteredDiscretization.for_pixel_tolerance(2, 9),
            RobustDiscretization.for_pixel_tolerance(2, 9),
            StaticGridScheme(dim=2, cell_size=19),
        ):
            enrollments = [scheme.enroll(p) for p in originals]

            def accepts(position, point):
                return scheme.accepts(enrollments[position], point)

            batch = discretize_batch(scheme, originals)
            mask = dictionary.match_mask_batch(scheme, batch)
            assert mask.shape == (3, len(seeds))
            assert HumanSeededDictionary.match_sets_from_mask(mask) == (
                dictionary.match_sets(accepts)
            )

    def test_match_mask_batch_validates_position_count(self):
        from repro.core.batch import discretize_batch

        scheme = CenteredDiscretization.for_pixel_tolerance(2, 9)
        dictionary = HumanSeededDictionary(
            seed_points=tuple(Point.xy(i, i) for i in range(10)), tuple_length=5
        )
        batch = discretize_batch(scheme, [Point.xy(1, 1), Point.xy(2, 2)])
        with pytest.raises(AttackError):
            dictionary.match_mask_batch(scheme, batch)

    def test_match_sets_batch_validates_position_count(self):
        scheme = CenteredDiscretization.for_pixel_tolerance(2, 9)
        dictionary = HumanSeededDictionary(
            seed_points=tuple(Point.xy(i, i) for i in range(10)), tuple_length=5
        )
        with pytest.raises(AttackError):
            dictionary.match_sets_batch(scheme, [scheme.enroll(Point.xy(1, 1))])

    def test_seed_array_shape(self):
        dictionary = HumanSeededDictionary(
            seed_points=tuple(Point.xy(i, 2 * i) for i in range(8)),
            tuple_length=2,
        )
        array = dictionary.seed_array()
        assert array.shape == (8, 2)
        assert array[3].tolist() == [3.0, 6.0]

    def test_popularity_scores_match_definition(self):
        """The vectorized scores equal the quadratic-loop definition."""
        rng = np.random.default_rng(5)
        seeds = tuple(
            Point.xy(int(x), int(y))
            for x, y in rng.integers(0, 60, size=(30, 2))
        )
        dictionary = HumanSeededDictionary(seed_points=seeds, tuple_length=2)
        expected = tuple(
            float(
                sum(
                    1
                    for other in seeds
                    if max(
                        abs(int(p.x) - int(other.x)),
                        abs(int(p.y) - int(other.y)),
                    )
                    <= 5
                )
            )
            for p in seeds
        )
        assert dictionary.popularity_scores() == expected


class TestHotspotCoverage:
    def test_full_coverage_when_hotspots_are_the_targets(self):
        scheme = CenteredDiscretization.for_pixel_tolerance(2, 9)
        targets = _samples([[(100, 100), (200, 200)]])
        hotspots = [
            HarvestedHotspot(x=100, y=100, support=3),
            HarvestedHotspot(x=200, y=200, support=2),
        ]
        assert hotspot_coverage(scheme, hotspots, targets) == 1.0

    def test_partial_coverage_counts_within_tolerance_only(self):
        scheme = CenteredDiscretization.for_pixel_tolerance(2, 9)
        # One click within 9 px of the hotspot, one far away.
        targets = _samples([[(105, 100), (400, 400)]])
        hotspots = [HarvestedHotspot(x=100, y=100, support=3)]
        assert hotspot_coverage(scheme, hotspots, targets) == 0.5

    def test_requires_hotspots_and_targets(self):
        scheme = CenteredDiscretization.for_pixel_tolerance(2, 9)
        with pytest.raises(AttackError):
            hotspot_coverage(scheme, [], _samples([[(1, 1)]]))
        with pytest.raises(AttackError):
            hotspot_coverage(
                scheme, [HarvestedHotspot(x=1, y=1, support=1)], []
            )

    def test_harvest_hotspots_claims_dense_cluster_first(self):
        """The incremental-count rewrite keeps the greedy semantics."""
        cluster = [(50 + dx, 50 + dy) for dx in (-2, 0, 2) for dy in (-2, 0, 2)]
        stragglers = [(300, 300), (400, 100)]
        observed = _samples([cluster + stragglers])
        hotspots = harvest_hotspots(observed, radius=9, max_hotspots=10)
        # Every cluster point ties at support 9; the greedy tie-break picks
        # the earliest observed point, exactly like the pre-rewrite loop.
        assert (hotspots[0].x, hotspots[0].y) == cluster[0]
        assert hotspots[0].support == len(cluster)
        assert {(h.x, h.y) for h in hotspots[1:]} == set(stragglers)
        assert all(h.support == 1 for h in hotspots[1:])


class TestEmpiricalSpace:
    def test_distribution_counts_cells(self):
        scheme = StaticGridScheme(dim=2, cell_size=10)
        points = [(1, 1), (2, 3), (15, 1), (1, 2)]
        distribution = empirical_cell_distribution(scheme, points)
        assert distribution == {(0, 0): 3, (1, 0): 1}

    def test_robust_cells_distinguished_by_grid(self):
        scheme = RobustDiscretization.for_pixel_tolerance(2, 9)
        points = [(100, 100), (100, 100), (101, 101)]
        distribution = empirical_cell_distribution(scheme, points)
        # Keys carry the grid identifier as their first component.
        assert all(len(key) == 3 for key in distribution)
        assert sum(distribution.values()) == 3

    def test_uniform_two_cells_is_one_bit_per_click(self):
        scheme = StaticGridScheme(dim=2, cell_size=10)
        points = [(1, 1), (15, 1)]
        assert effective_space_bits(scheme, points, clicks=5) == pytest.approx(
            5.0
        )

    def test_single_cell_pool_has_zero_bits(self):
        scheme = StaticGridScheme(dim=2, cell_size=10)
        assert effective_space_bits(scheme, [(1, 1), (2, 2)], clicks=5) == 0.0

    def test_effective_never_exceeds_uniform_entropy(self):
        scheme = CenteredDiscretization.for_pixel_tolerance(2, 9)
        rng = np.random.default_rng(11)
        points = rng.integers(0, 451, size=(500, 2)).astype(float)
        bits = effective_space_bits(scheme, points, clicks=1)
        assert 0.0 < bits <= math.log2(500)


class TestAsPointArrayEdgeCases:
    def test_ragged_rows_raise_parameter_error(self):
        from repro.core.batch import as_point_array
        from repro.errors import ParameterError

        with pytest.raises(ParameterError, match="inconsistent dimensionality"):
            as_point_array([(1, 2), (3,)])

    def test_empty_input_raises_parameter_error(self):
        from repro.core.batch import as_point_array
        from repro.errors import ParameterError

        with pytest.raises(ParameterError, match="at least one point"):
            as_point_array([])
        with pytest.raises(ParameterError, match="at least one point"):
            as_point_array(np.empty((0, 2)))

    def test_seed_array_cached_and_read_only(self):
        dictionary = HumanSeededDictionary(
            seed_points=tuple(Point.xy(i, i) for i in range(5)), tuple_length=2
        )
        first = dictionary.seed_array()
        assert dictionary.seed_array() is first
        with pytest.raises(ValueError):
            first[0, 0] = 99.0


class TestGridCaches:
    def test_float_table_cached_per_identical_grid(self):
        a = Grid.square(2, 18, offset=6)
        b = Grid.square(2, 18, offset=6)
        assert grid_float_table(a)[0] is grid_float_table(b)[0]
        assert a.float_table()[1] is b.float_table()[1]

    def test_float_tables_read_only(self):
        sizes, offsets = Grid.square(2, 18, offset=6).float_table()
        with pytest.raises(ValueError):
            sizes[0] = 1.0

    def test_square_family_shared_across_scheme_instances(self):
        first = RobustDiscretization.for_pixel_tolerance(2, 9)
        second = RobustDiscretization.for_pixel_tolerance(2, 9)
        assert first.grid(0) is second.grid(0)
        assert first.grid(2) is second.grid(2)
        family = square_grid_family(2, first.cell_size, 2 * first.r, 3)
        assert family[1] is first.grid(1)
