"""Property tests: batched VerificationService == scalar PasswordStore.login.

The ISSUE-2 acceptance criterion: for the same attempt stream, the
micro-batched service must produce the identical accept/reject/lockout
*sequence* as a scalar ``PasswordStore.login`` loop — per-account lockout
ordering preserved bit-for-bit — for all three schemes and all three
storage backends.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.centered import CenteredDiscretization
from repro.core.robust import RobustDiscretization
from repro.core.static import StaticGridScheme
from repro.errors import (
    DomainError,
    LockoutError,
    ParameterError,
    StoreError,
    VerificationError,
)
from repro.geometry.point import Point
from repro.passwords.passpoints import PassPointsSystem
from repro.passwords.policy import LockoutPolicy
from repro.passwords.service import VerificationService
from repro.passwords.storage import backend_from_uri
from repro.passwords.store import PasswordStore
from repro.study.image import cars_image

SCHEMES = {
    "centered": lambda: CenteredDiscretization.for_pixel_tolerance(2, 9),
    "robust": lambda: RobustDiscretization.for_pixel_tolerance(2, 9),
    "static": lambda: StaticGridScheme(dim=2, cell_size=19),
}

BACKENDS = ["memory", "sqlite", "jsonl"]


def make_backend(kind: str, tmp_path, tag: str):
    if kind == "memory":
        return backend_from_uri("memory:")
    suffix = "db" if kind == "sqlite" else "jsonl"
    return backend_from_uri(f"{kind}:{tmp_path / f'{tag}.{suffix}'}")


def random_password(rng, image):
    return [
        Point.xy(int(x), int(y))
        for x, y in zip(
            rng.integers(30, image.width - 30, size=5),
            rng.integers(30, image.height - 30, size=5),
        )
    ]


def random_stream(rng, accounts, image, length):
    """A mixed attempt stream: exact, within-tolerance, wrong, repeated."""
    names = list(accounts)
    stream = []
    for _ in range(length):
        username = names[int(rng.integers(len(names)))]
        points = accounts[username]
        kind = int(rng.integers(4))
        if kind == 0:  # exact
            attempt = list(points)
        elif kind == 1:  # small jitter (often within tolerance)
            attempt = [
                Point.xy(int(p.x) + int(rng.integers(-4, 5)),
                         int(p.y) + int(rng.integers(-4, 5)))
                for p in points
            ]
        elif kind == 2:  # clearly wrong
            attempt = [
                Point.xy(int(p.x) - 25, int(p.y) + 25) for p in points
            ]
        else:  # fresh random guess
            attempt = random_password(rng, image)
        stream.append((username, attempt))
    return stream


def scalar_reference(store, stream):
    """The accept/reject/lockout sequence of the scalar login loop."""
    statuses = []
    for username, attempt in stream:
        try:
            statuses.append("accept" if store.login(username, attempt) else "reject")
        except LockoutError:
            statuses.append("locked")
    return statuses


def build_store(scheme_name, backend, policy):
    system = PassPointsSystem(image=cars_image(), scheme=SCHEMES[scheme_name]())
    return PasswordStore(system=system, policy=policy, backend=backend)


@pytest.mark.parametrize("scheme_name", sorted(SCHEMES))
@pytest.mark.parametrize("backend_kind", BACKENDS)
def test_service_matches_scalar_store(scheme_name, backend_kind, tmp_path):
    """Identical decision sequences across schemes x backends x seeds."""
    image = cars_image()
    for seed in (2008, 1387):
        rng = np.random.default_rng(seed)
        accounts = {f"user{i}": random_password(rng, image) for i in range(6)}
        stream = random_stream(rng, accounts, image, 120)
        policy = LockoutPolicy(max_failures=3)

        backend = make_backend(backend_kind, tmp_path, f"svc-{scheme_name}-{seed}")
        service_store = build_store(scheme_name, backend, policy)
        for username, points in accounts.items():
            service_store.create_account(username, points)
        service = VerificationService(service_store, max_batch=16)
        batched = [o.status for o in service.login_many(stream)]

        scalar_store = build_store(
            scheme_name, make_backend("memory", tmp_path, "ref"), policy
        )
        for username, points in accounts.items():
            scalar_store.create_account(username, points)
        expected = scalar_reference(scalar_store, stream)

        assert batched == expected
        # Final lockout states agree too (and, for durable backends, are
        # what a reopened store would see).
        for username in accounts:
            assert service_store.is_locked(username) == scalar_store.is_locked(
                username
            )
        backend.close()


def test_lockout_ordering_across_micro_batches(tmp_path):
    """A lockout in one micro-batch refuses attempts in the next."""
    policy = LockoutPolicy(max_failures=2)
    store = build_store("centered", make_backend("memory", tmp_path, "x"), policy)
    points = [Point.xy(40 + 60 * i, 50 + 40 * i) for i in range(5)]
    wrong = [Point.xy(int(p.x) + 30, int(p.y) + 30) for p in points]
    store.create_account("alice", points)
    service = VerificationService(store, max_batch=2)
    outcomes = service.login_many(
        [("alice", wrong), ("alice", wrong), ("alice", points), ("alice", points)]
    )
    assert [o.status for o in outcomes] == ["reject", "reject", "locked", "locked"]
    assert store.is_locked("alice")


def test_interleaved_scalar_and_batched_share_throttle_state(tmp_path):
    """Scalar logins and the service read/write the same throttle state."""
    policy = LockoutPolicy(max_failures=3)
    store = build_store("centered", make_backend("memory", tmp_path, "x"), policy)
    points = [Point.xy(40 + 60 * i, 50 + 40 * i) for i in range(5)]
    wrong = [Point.xy(int(p.x) + 30, int(p.y) + 30) for p in points]
    store.create_account("alice", points)
    service = VerificationService(store)

    assert not store.login("alice", wrong)  # scalar failure #1
    outcomes = service.login_many([("alice", wrong)])  # batched failure #2
    assert outcomes[0].status == "reject"
    assert not store.login("alice", wrong)  # scalar failure #3 -> lock
    assert store.is_locked("alice")
    assert service.login_many([("alice", points)])[0].status == "locked"


class TestServiceValidation:
    def _service(self, tmp_path):
        store = build_store(
            "centered", make_backend("memory", tmp_path, "v"), LockoutPolicy()
        )
        points = [Point.xy(40 + 60 * i, 50 + 40 * i) for i in range(5)]
        store.create_account("alice", points)
        return VerificationService(store), points

    def test_unknown_account_raises_at_submit(self, tmp_path):
        service, points = self._service(tmp_path)
        with pytest.raises(StoreError):
            service.submit("ghost", points)

    def test_wrong_click_count_raises_at_submit(self, tmp_path):
        service, points = self._service(tmp_path)
        with pytest.raises(VerificationError):
            service.submit("alice", points[:3])

    def test_out_of_image_raises_at_flush(self, tmp_path):
        service, points = self._service(tmp_path)
        bad = list(points)
        bad[2] = Point.xy(9999, 10)
        service.submit("alice", bad)
        with pytest.raises(DomainError):
            service.flush()

    def test_max_batch_validated(self, tmp_path):
        service, _ = self._service(tmp_path)
        with pytest.raises(ParameterError):
            VerificationService(service.store, max_batch=0)

    def test_enroll_delegates_to_store(self, tmp_path):
        service, points = self._service(tmp_path)
        shifted = [Point.xy(int(p.x) + 1, int(p.y)) for p in points]
        service.enroll("bob", shifted)
        assert service.store.usernames == ("alice", "bob")
        assert service.login_many([("bob", shifted)])[0].accepted

    def test_material_refreshes_after_reenrollment(self, tmp_path):
        service, points = self._service(tmp_path)
        assert service.login_many([("alice", points)])[0].accepted
        # Re-create the account with a different password: the cached
        # per-account material must not serve stale digests.
        service.store.delete_account("alice")
        new_points = [Point.xy(int(p.x) + 40, int(p.y)) for p in points]
        service.store.create_account("alice", new_points)
        assert not service.login_many([("alice", points)])[0].accepted
        assert service.login_many([("alice", new_points)])[0].accepted

    def test_pending_count(self, tmp_path):
        service, points = self._service(tmp_path)
        assert service.pending_count == 0
        service.submit("alice", points)
        assert service.pending_count == 1
        service.flush()
        assert service.pending_count == 0
