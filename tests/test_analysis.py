"""Tests for the analysis layer: password space, false rates, stats, tables."""

from __future__ import annotations

import math
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.false_rates import (
    equal_r_report,
    equal_size_report,
    measure_false_rates,
    sweep_equal_r,
    sweep_equal_size,
)
from repro.analysis.password_space import (
    equal_r_comparison,
    password_space_bits,
    space_row,
    space_table,
    squares_per_grid,
    text_password_bits,
)
from repro.analysis.stats import percent, summarize, wilson_interval
from repro.analysis.tables import format_value, render_comparison, render_table
from repro.core.centered import CenteredDiscretization
from repro.core.robust import RobustDiscretization
from repro.errors import ParameterError
from repro.experiments.paper_values import TABLE3


class TestPasswordSpace:
    @pytest.mark.parametrize("key,expected", sorted(TABLE3.items()))
    def test_table3_exact(self, key, expected):
        width, height, size = key
        _, _, paper_squares, paper_bits = expected
        assert squares_per_grid(width, height, size) == paper_squares
        assert round(password_space_bits(width, height, size), 1) == paper_bits

    def test_text_password_paper_value(self):
        # Paper says 52.5; exact value is 52.56, rounding to 52.6.
        assert abs(text_password_bits() - 52.56) < 0.01

    def test_equal_r_comparison_paper_example(self):
        result = equal_r_comparison(640, 480, 4)
        assert round(result["centered_bits"], 1) == 59.6
        assert round(result["robust_bits"], 1) == 45.4
        assert result["advantage_bits"] > 14

    @given(
        st.integers(min_value=50, max_value=2000),
        st.integers(min_value=50, max_value=2000),
        st.integers(min_value=2, max_value=100),
    )
    @settings(max_examples=50)
    def test_bits_decrease_with_grid_size(self, width, height, size):
        small = password_space_bits(width, height, size)
        large = password_space_bits(width, height, size + 10)
        assert small >= large

    @given(
        st.integers(min_value=50, max_value=1000),
        st.integers(min_value=50, max_value=1000),
        st.integers(min_value=2, max_value=60),
    )
    @settings(max_examples=50)
    def test_bits_increase_with_image_size(self, width, height, size):
        assert password_space_bits(width + 200, height + 200, size) >= (
            password_space_bits(width, height, size)
        )

    def test_space_row_fields(self):
        row = space_row(451, 331, 13)
        assert row.centered_r == Fraction(6)
        assert row.robust_r == Fraction(13, 6)
        assert row.squares == 910

    def test_space_table_size(self):
        assert len(space_table()) == 12

    def test_validation(self):
        with pytest.raises(ParameterError):
            squares_per_grid(0, 10, 5)
        with pytest.raises(ParameterError):
            password_space_bits(100, 100, 10, clicks=0)
        with pytest.raises(ParameterError):
            text_password_bits(0)
        with pytest.raises(ParameterError):
            equal_r_comparison(100, 100, 0)


class TestFalseRates:
    def test_centered_zero_errors_any_size(self, small_study):
        for size in (9, 13, 19):
            report = equal_size_report(
                small_study,
                size,
                scheme=CenteredDiscretization.for_grid_size(2, size),
            )
            assert report.false_accepts == 0
            assert report.false_rejects == 0

    def test_centered_zero_errors_equal_r(self, small_study):
        for r in (4, 6, 9):
            report = equal_r_report(
                small_study, r, scheme=CenteredDiscretization(2, r)
            )
            assert report.false_accepts == 0
            assert report.false_rejects == 0

    def test_robust_equal_r_no_false_rejects(self, small_study):
        """The Table-2 theorem: within half-open r-box => accepted."""
        for r in (4, 6, 9):
            report = equal_r_report(small_study, r)
            assert report.false_rejects == 0

    def test_robust_equal_size_has_false_rejects(self, paper_dataset):
        report = equal_size_report(paper_dataset, 13)
        assert report.false_rejects > 0
        assert report.false_reject_rate > 0.05

    def test_rates_sum_to_attempts(self, small_study):
        report = equal_size_report(small_study, 13)
        total = (
            report.true_accepts
            + report.false_accepts
            + report.false_rejects
            + report.true_rejects
        )
        assert total == report.attempts
        assert report.attempts == len(small_study.logins)

    def test_image_filter(self, small_study):
        cars = equal_size_report(small_study, 13, image_name="cars")
        pool = equal_size_report(small_study, 13, image_name="pool")
        assert cars.attempts + pool.attempts == len(small_study.logins)
        with pytest.raises(ParameterError):
            equal_size_report(small_study, 13, image_name="nope")

    def test_sweeps_shapes(self, small_study):
        t1 = sweep_equal_size(small_study)
        t2 = sweep_equal_r(small_study)
        assert [r.rho for r in t1] == [
            Fraction(9, 2), Fraction(13, 2), Fraction(19, 2)
        ]
        assert [r.rho for r in t2] == [4, 6, 9]

    def test_fa_decreases_with_grid_size(self, paper_dataset):
        """Table 1 ordering: false accepts shrink as squares grow."""
        reports = sweep_equal_size(paper_dataset)
        rates = [r.false_accept_rate for r in reports]
        assert rates[0] >= rates[1] >= rates[2]

    def test_fa_decreases_with_r(self, paper_dataset):
        """Table 2 ordering: false accepts shrink as r grows."""
        reports = sweep_equal_r(paper_dataset)
        rates = [r.false_accept_rate for r in reports]
        assert rates[0] > rates[1] > rates[2]

    def test_accept_rate_definition(self, small_study):
        report = measure_false_rates(
            CenteredDiscretization.for_grid_size(2, 19),
            small_study,
            Fraction(19, 2),
        )
        assert report.accept_rate == report.accepted / report.attempts


class TestStats:
    def test_percent(self):
        assert percent(1, 8) == 12.5
        assert percent(0, 0) == 0.0
        with pytest.raises(ParameterError):
            percent(-1, 5)

    def test_wilson_interval(self):
        low, high = wilson_interval(50, 100)
        assert low < 0.5 < high
        assert wilson_interval(0, 0) == (0.0, 1.0)
        low0, high0 = wilson_interval(0, 1000)
        assert low0 == 0.0
        assert high0 < 0.01

    def test_wilson_validation(self):
        with pytest.raises(ParameterError):
            wilson_interval(5, 3)

    def test_summarize(self):
        summary = summarize([1, 2, 3, 4])
        assert summary.mean == 2.5
        assert summary.median == 2.5
        assert summary.minimum == 1
        assert summary.maximum == 4
        assert abs(summary.std - math.sqrt(1.25)) < 1e-12

    def test_summarize_odd(self):
        assert summarize([3, 1, 2]).median == 2

    def test_summarize_empty(self):
        with pytest.raises(ParameterError):
            summarize([])


class TestTables:
    def test_format_value(self):
        assert format_value(Fraction(13, 6)) == "2.17"
        assert format_value(Fraction(4, 1)) == "4"
        assert format_value(2.345) == "2.3"
        assert format_value(True) == "yes"
        assert format_value("x") == "x"

    def test_render_table_alignment(self):
        text = render_table(["a", "bb"], [[1, 2.5], [10, 3.25]])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) or True for line in lines)

    def test_render_table_validates(self):
        with pytest.raises(ParameterError):
            render_table([], [])
        with pytest.raises(ParameterError):
            render_table(["a"], [[1, 2]])

    def test_render_comparison(self):
        text = render_comparison(
            [
                {"label": "x", "paper": 1.0, "measured": 1.5},
                {"label": "y", "paper": None, "measured": 3.0},
            ]
        )
        assert "+0.5" in text
        assert "--" in text
