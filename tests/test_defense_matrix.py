"""Defense/attack matrix tests: DefenseConfig knobs against the baseline.

The ISSUE-6 acceptance criterion has two halves:

* **Neutral cell == undefended baseline, bit for bit.**  A store built
  with ``DefenseConfig.none()`` must produce byte-identical password
  files and identical decision sequences to a store built with no
  defense argument at all — across all three schemes, three storage
  backends, and the scalar / batched / async serving paths.  Every other
  cell of the matrix is then an auditable delta from the reproduced
  paper rather than a fork of it.

* **Each knob moves exactly the axis it claims.**  Pepper withheld from
  the stolen file drives offline cracks to zero; ``hash_cost_factor=k``
  multiplies the grind cost by exactly k; rate limits and CAPTCHAs tax
  the online channel; the sharded attack engine stays bit-identical at
  any worker count under every cell.

Async tests are plain ``async def`` functions executed by the stdlib
``asyncio.run`` harness in ``tests/conftest.py``.
"""

from __future__ import annotations

import asyncio
import json

import numpy as np
import pytest

from repro.attacks.dictionary import HumanSeededDictionary
from repro.attacks.economics import (
    CrackingCostEstimate,
    DefenseCell,
    default_defense_cells,
    defense_matrix_sweep,
    render_defense_matrix,
    summarize_attack_economics,
)
from repro.attacks.offline import (
    OfflineAttackResult,
    PasswordAttackOutcome,
    offline_attack_stolen_file,
)
from repro.attacks.online import online_attack
from repro.attacks.parallel import ShardedAttackRunner
from repro.cli import main
from repro.core.centered import CenteredDiscretization
from repro.core.robust import RobustDiscretization
from repro.core.static import StaticGridScheme
from repro.errors import (
    AttackError,
    LockoutError,
    ParameterError,
    RateLimitError,
)
from repro.geometry.point import Point
from repro.passwords.defense import DefenseConfig, RateLimiter, VirtualClock
from repro.passwords.passpoints import PassPointsSystem
from repro.passwords.policy import LockoutPolicy
from repro.passwords.service import VerificationService
from repro.passwords.storage import backend_from_uri
from repro.passwords.store import PasswordStore
from repro.serving import AsyncVerificationService, LoginServer
from repro.study.image import cars_image

SCHEMES = {
    "centered": lambda: CenteredDiscretization.for_pixel_tolerance(2, 9),
    "robust": lambda: RobustDiscretization.for_pixel_tolerance(2, 9),
    "static": lambda: StaticGridScheme(dim=2, cell_size=19),
}

#: The acceptance-criterion backend matrix.
BACKENDS = ["memory", "sqlite", "shards"]

PEPPER = b"\xa1\xb2\xc3"


def make_backend(kind: str, tmp_path, tag: str):
    if kind == "memory":
        return backend_from_uri("memory:")
    if kind == "sqlite":
        return backend_from_uri(f"sqlite:{tmp_path / tag}.db")
    return backend_from_uri(f"shards:sqlite:{tmp_path / tag}-s{{0..2}}.db")


def build_system(scheme_name: str) -> PassPointsSystem:
    return PassPointsSystem(image=cars_image(), scheme=SCHEMES[scheme_name]())


def seeded_dictionary() -> HumanSeededDictionary:
    """12 well-separated seed points on cars: entry == password, exactly."""
    seeds = [Point.xy(40 + 75 * (i % 4), 60 + 100 * (i // 4)) for i in range(12)]
    return HumanSeededDictionary(
        seed_points=seeds, tuple_length=5, image_name="cars"
    )


def planted_passwords(count: int = 4, ranks=(0, 1, 3, 8)):
    """Account passwords planted at known dictionary ranks."""
    dictionary = seeded_dictionary()
    entries = list(dictionary.prioritized_entries(max(ranks) + 1))
    passwords = {
        f"user{i}": list(entries[rank]) for i, rank in enumerate(ranks[:count])
    }
    return dictionary, passwords


def planted_store(system, config: DefenseConfig, passwords) -> PasswordStore:
    store = PasswordStore(
        system=system,
        policy=LockoutPolicy(max_failures=None),
        defense=config,
        clock=VirtualClock(),
    )
    for username in sorted(passwords):
        store.create_account(username, passwords[username])
    return store


def mixed_stream(rng, accounts, image, length):
    """Deterministic attempt stream: exact, jittered, wrong, random."""
    names = sorted(accounts)
    stream = []
    for _ in range(length):
        username = names[int(rng.integers(len(names)))]
        points = accounts[username]
        kind = int(rng.integers(3))
        if kind == 0:
            attempt = list(points)
        elif kind == 1:
            attempt = [
                Point.xy(int(p.x) + int(rng.integers(-4, 5)),
                         int(p.y) + int(rng.integers(-4, 5)))
                for p in points
            ]
        else:
            attempt = [Point.xy(int(p.x) - 25, int(p.y) + 25) for p in points]
        stream.append((username, attempt))
    return stream


def scalar_statuses(store, stream, with_captcha=False):
    """Decision sequence of the scalar login loop, defense errors mapped."""
    statuses, captchas = [], []
    for username, attempt in stream:
        captchas.append(store.captcha_required(username))
        try:
            statuses.append(
                "accept" if store.login(username, attempt) else "reject"
            )
        except LockoutError:
            statuses.append("locked")
        except RateLimitError:
            statuses.append("throttled")
    if with_captcha:
        return statuses, captchas
    return statuses


# -- DefenseConfig unit behavior --------------------------------------------


class TestDefenseConfig:
    def test_neutral_and_spec_roundtrip(self):
        assert DefenseConfig.none().is_neutral
        assert DefenseConfig.none().to_spec() == ""
        assert DefenseConfig.from_spec("") == DefenseConfig.none()
        assert DefenseConfig.from_spec("   ") == DefenseConfig.none()
        configs = [
            DefenseConfig(hash_cost_factor=16),
            DefenseConfig(pepper=PEPPER),
            DefenseConfig(captcha_after=3),
            DefenseConfig(rate_limit_window=30.0, rate_limit_max=3),
            DefenseConfig(lockout_policy=LockoutPolicy(max_failures=None)),
            DefenseConfig(
                hash_cost_factor=4,
                pepper=b"secret",
                captcha_after=2,
                rate_limit_window=60.0,
                rate_limit_max=10,
                lockout_policy=LockoutPolicy(max_failures=5),
            ),
        ]
        for config in configs:
            assert not config.is_neutral
            assert DefenseConfig.from_spec(config.to_spec()) == config

    def test_plaintext_pepper_spec(self):
        assert DefenseConfig.from_spec("pepper=hunter2").pepper == b"hunter2"

    def test_validation(self):
        with pytest.raises(ParameterError):
            DefenseConfig(hash_cost_factor=0)
        with pytest.raises(ParameterError):
            DefenseConfig(captcha_after=0)
        with pytest.raises(ParameterError):
            DefenseConfig(rate_limit_window=30.0)  # max missing
        with pytest.raises(ParameterError):
            DefenseConfig(rate_limit_window=0.0, rate_limit_max=3)
        with pytest.raises(ParameterError):
            DefenseConfig(rate_limit_window=30.0, rate_limit_max=0)
        for bad in ("hash_cost=", "zoom=3", "rate_limit=30", "pepper=hex:zz"):
            with pytest.raises(ParameterError):
                DefenseConfig.from_spec(bad)

    def test_describe_redacts_pepper(self):
        description = DefenseConfig(pepper=PEPPER).describe()
        assert description["pepper"] is True
        assert PEPPER.hex() not in json.dumps(description)

    def test_rate_limiter_window_rolls(self):
        limiter = RateLimiter(window=10.0, max_attempts=2)
        assert limiter.admit(0.0) is None
        assert limiter.admit(1.0) is None
        assert limiter.admit(2.0) == pytest.approx(8.0)  # oldest frees at 10
        assert limiter.admit(10.5) is None  # slot freed, consumed again


# -- the tentpole property: neutral cell == undefended, bit for bit ---------


@pytest.mark.parametrize("scheme_name", sorted(SCHEMES))
@pytest.mark.parametrize("backend_kind", BACKENDS)
def test_neutral_cell_bit_identical_serial_and_batched(
    scheme_name, backend_kind, tmp_path
):
    """DefenseConfig.none() changes nothing: records, decisions, lockouts."""
    image = cars_image()
    rng = np.random.default_rng(2008)
    _, accounts = planted_passwords(count=3, ranks=(0, 1, 3))
    stream = mixed_stream(rng, accounts, image, 40)
    policy = LockoutPolicy(max_failures=3)

    def deploy(tag, **defense_kwargs):
        backend = make_backend(backend_kind, tmp_path, f"{scheme_name}-{tag}")
        store = PasswordStore(
            system=build_system(scheme_name),
            policy=policy,
            backend=backend,
            **defense_kwargs,
        )
        for username in sorted(accounts):
            store.create_account(username, accounts[username])
        return store

    plain = deploy("plain")
    neutral = deploy("neutral", defense=DefenseConfig.none(), clock=VirtualClock())

    # The stolen artifact is byte-identical: same records, same digests.
    assert plain.backend.dump() == neutral.backend.dump()

    # The scalar decision/lockout sequence is identical, and no attempt is
    # ever challenged or throttled.
    plain_statuses = scalar_statuses(plain, stream)
    neutral_statuses, neutral_captchas = scalar_statuses(
        neutral, stream, with_captcha=True
    )
    assert neutral_statuses == plain_statuses
    assert not any(neutral_captchas)
    assert "throttled" not in neutral_statuses
    for username in accounts:
        assert plain.is_locked(username) == neutral.is_locked(username)

    # The batched service agrees with itself and with the scalar loop.
    plain_batched = deploy("plain-batched")
    neutral_batched = deploy(
        "neutral-batched", defense=DefenseConfig.none(), clock=VirtualClock()
    )
    plain_outcomes = VerificationService(plain_batched, max_batch=7).login_many(
        stream
    )
    neutral_outcomes = VerificationService(
        neutral_batched, max_batch=7
    ).login_many(stream)
    assert [o.status for o in plain_outcomes] == plain_statuses
    assert [o.status for o in neutral_outcomes] == plain_statuses
    assert all(not o.captcha for o in neutral_outcomes)
    plain.backend.close()
    neutral.backend.close()
    plain_batched.backend.close()
    neutral_batched.backend.close()


@pytest.mark.parametrize("scheme_name", sorted(SCHEMES))
@pytest.mark.parametrize("backend_kind", BACKENDS)
async def test_neutral_cell_async_matches_undefended(
    scheme_name, backend_kind, tmp_path
):
    """Concurrent interleavings on the neutral cell == undefended scalar."""
    image = cars_image()
    rng = np.random.default_rng(1387)
    _, accounts = planted_passwords(count=3, ranks=(0, 1, 3))
    policy = LockoutPolicy(max_failures=3)

    backend = make_backend(backend_kind, tmp_path, f"{scheme_name}-async")
    store = PasswordStore(
        system=build_system(scheme_name),
        policy=policy,
        backend=backend,
        defense=DefenseConfig.none(),
        clock=VirtualClock(),
    )
    for username in sorted(accounts):
        store.create_account(username, accounts[username])
    service = AsyncVerificationService(store, max_batch=6)

    streams = [mixed_stream(rng, accounts, image, 15) for _ in range(2)]
    yield_plan = [
        [float(x) < 0.4 for x in rng.random(len(stream))] for stream in streams
    ]
    order, statuses = [], {}

    async def client(stream, yields):
        for position, attempt in enumerate(stream):
            if yields[position]:
                await asyncio.sleep(0)
            future = service.submit(*attempt)
            index = len(order)
            order.append(attempt)
            outcome = await future
            statuses[index] = (outcome.status, outcome.captcha)

    await asyncio.gather(*(client(s, y) for s, y in zip(streams, yield_plan)))
    decided = [statuses[index] for index in range(len(order))]
    assert all(not captcha for _, captcha in decided)

    reference = PasswordStore(system=build_system(scheme_name), policy=policy)
    for username in sorted(accounts):
        reference.create_account(username, accounts[username])
    assert [status for status, _ in decided] == scalar_statuses(reference, order)
    for username in accounts:
        assert store.is_locked(username) == reference.is_locked(username)
    backend.close()


# -- single-knob cells: batched/async paths == scalar reference -------------


SINGLE_KNOB_SPECS = [
    "hash_cost=4",
    f"pepper=hex:{PEPPER.hex()}",
    "captcha_after=2",
    "rate_limit=60:4",
    "lockout=2",
]


@pytest.mark.parametrize("spec", SINGLE_KNOB_SPECS)
async def test_single_knob_async_matches_scalar_reference(spec, tmp_path):
    """Each knob alone: randomized interleavings == scalar replay."""
    image = cars_image()
    config = DefenseConfig.from_spec(spec)
    rng = np.random.default_rng(42)
    _, accounts = planted_passwords(count=3, ranks=(0, 1, 3))

    def deploy():
        store = PasswordStore(
            system=build_system("centered"),
            policy=LockoutPolicy(max_failures=None),
            defense=config,
            clock=VirtualClock(),
        )
        for username in sorted(accounts):
            store.create_account(username, accounts[username])
        return store

    store = deploy()
    service = AsyncVerificationService(store, max_batch=5)
    streams = [mixed_stream(rng, accounts, image, 12) for _ in range(2)]
    yield_plan = [
        [float(x) < 0.4 for x in rng.random(len(stream))] for stream in streams
    ]
    order, decided = [], {}

    async def client(stream, yields):
        for position, attempt in enumerate(stream):
            if yields[position]:
                await asyncio.sleep(0)
            future = service.submit(*attempt)
            index = len(order)
            order.append(attempt)
            outcome = await future
            decided[index] = (outcome.status, outcome.captcha)

    await asyncio.gather(*(client(s, y) for s, y in zip(streams, yield_plan)))
    observed = [decided[index] for index in range(len(order))]

    reference = deploy()
    statuses, captchas = scalar_statuses(reference, order, with_captcha=True)
    assert observed == list(zip(statuses, captchas))


@pytest.mark.parametrize("spec", SINGLE_KNOB_SPECS)
def test_single_knob_batched_matches_scalar_reference(spec):
    """login_many micro-batches decide exactly like the scalar loop."""
    image = cars_image()
    config = DefenseConfig.from_spec(spec)
    rng = np.random.default_rng(7)
    _, accounts = planted_passwords(count=3, ranks=(0, 1, 3))
    stream = mixed_stream(rng, accounts, image, 30)

    def deploy():
        store = PasswordStore(
            system=build_system("centered"),
            policy=LockoutPolicy(max_failures=None),
            defense=config,
            clock=VirtualClock(),
        )
        for username in sorted(accounts):
            store.create_account(username, accounts[username])
        return store

    outcomes = VerificationService(deploy(), max_batch=7).login_many(stream)
    statuses, captchas = scalar_statuses(deploy(), stream, with_captcha=True)
    assert [(o.status, o.captcha) for o in outcomes] == list(
        zip(statuses, captchas)
    )


# -- attack-path regressions ------------------------------------------------


class TestOfflineDefenses:
    def test_pepper_withheld_fails_closed(self):
        dictionary, passwords = planted_passwords()
        system = build_system("centered")
        baseline = planted_store(system, DefenseConfig(), passwords)
        peppered = planted_store(system, DefenseConfig(pepper=PEPPER), passwords)

        reference = offline_attack_stolen_file(
            system.scheme, baseline.dump_records(), dictionary, guess_budget=60
        )
        assert reference.cracked == len(passwords)  # ranks are in budget

        stolen = peppered.dump_records()
        assert PEPPER.hex() not in stolen  # the file holds no pepper trace
        blind = offline_attack_stolen_file(
            system.scheme, stolen, dictionary, guess_budget=60
        )
        assert blind.cracked == 0
        assert all(o.guesses_hashed == 60 for o in blind.outcomes)
        assert blind.hash_units_per_crack == float("inf")

        # The grind recovers exactly the baseline once the pepper leaks.
        keyed = offline_attack_stolen_file(
            system.scheme, stolen, dictionary, guess_budget=60, pepper=PEPPER
        )
        assert [(o.username, o.cracked, o.guesses_hashed) for o in keyed.outcomes] \
            == [(o.username, o.cracked, o.guesses_hashed) for o in reference.outcomes]

    @pytest.mark.parametrize("factor", [4, 16])
    def test_hash_cost_multiplies_grind_cost(self, factor):
        dictionary, passwords = planted_passwords()
        system = build_system("centered")
        baseline = offline_attack_stolen_file(
            system.scheme,
            planted_store(system, DefenseConfig(), passwords).dump_records(),
            dictionary,
            guess_budget=60,
        )
        hardened = offline_attack_stolen_file(
            system.scheme,
            planted_store(
                system, DefenseConfig(hash_cost_factor=factor), passwords
            ).dump_records(),
            dictionary,
            guess_budget=60,
        )
        # Same guesses, k× the iterated-hash work: the knob moves cost only.
        assert hardened.cracked == baseline.cracked
        assert [o.guesses_hashed for o in hardened.outcomes] == [
            o.guesses_hashed for o in baseline.outcomes
        ]
        assert hardened.hash_units == factor * baseline.hash_units
        assert hardened.hash_units_per_crack == pytest.approx(
            factor * baseline.hash_units_per_crack
        )

    def test_sharded_bit_identical_under_every_cell(self):
        """Workers ∈ {1,2,4} agree bit-for-bit in every defense cell."""
        dictionary, passwords = planted_passwords()
        system = build_system("centered")
        for cell in default_defense_cells():
            stolen = planted_store(system, cell.config, passwords).dump_records()
            pepper = cell.config.pepper
            results = [
                ShardedAttackRunner(workers=workers).run_stolen_file(
                    system.scheme,
                    stolen,
                    dictionary,
                    guess_budget=25,
                    pepper=pepper,
                )
                for workers in (1, 2, 4)
            ]
            serial, two, four = results
            assert serial.outcomes == two.outcomes == four.outcomes, cell.name
            assert serial.hash_units == two.hash_units == four.hash_units


class TestOnlineDefenses:
    def _attack(self, config, **kwargs):
        dictionary, passwords = planted_passwords()
        store = planted_store(build_system("centered"), config, passwords)
        return online_attack(
            store, dictionary, guess_budget=10, **kwargs
        ), store

    def test_rate_limit_costs_attacker_time(self):
        baseline, _ = self._attack(DefenseConfig())
        limited, _ = self._attack(
            DefenseConfig(rate_limit_window=30.0, rate_limit_max=2)
        )
        # Same compromises eventually, but every wait is attacker seconds.
        assert limited.compromised == baseline.compromised
        assert limited.attacker_seconds > baseline.attacker_seconds
        assert limited.seconds_per_compromise > baseline.seconds_per_compromise

    def test_captcha_walls_automated_attacker(self):
        walled, _ = self._attack(DefenseConfig(captcha_after=1))
        assert walled.captcha_walled_fraction > 0
        assert walled.compromised < 4
        # A human-solver budget buys through the wall, at a price.
        solved, _ = self._attack(
            DefenseConfig(captcha_after=1), captcha_solve_seconds=20.0
        )
        assert solved.compromised >= walled.compromised
        assert solved.attacker_seconds > walled.attacker_seconds

    def test_lockout_stops_the_guessing_run(self):
        locked, store = self._attack(
            DefenseConfig(lockout_policy=LockoutPolicy(max_failures=1))
        )
        assert locked.locked_fraction > 0
        assert locked.total_guesses < 4 * 10
        assert any(store.is_locked(username) for username in store.usernames)

    def test_rate_limited_store_needs_advanceable_clock(self):
        dictionary, passwords = planted_passwords()
        store = PasswordStore(
            system=build_system("centered"),
            policy=LockoutPolicy(max_failures=None),
            defense=DefenseConfig(rate_limit_window=30.0, rate_limit_max=2),
        )  # real monotonic clock: the simulation cannot wait it out
        for username in sorted(passwords):
            store.create_account(username, passwords[username])
        with pytest.raises(AttackError):
            online_attack(store, dictionary, guess_budget=10)


# -- economics: per-account cost is the expected guess rank -----------------


class TestEconomics:
    def _result(self, matches, dictionary_entries=99):
        outcomes = tuple(
            PasswordAttackOutcome(
                password_id=i, cracked=m > 0, matching_entries=m
            )
            for i, m in enumerate(matches)
        )
        return OfflineAttackResult(
            scheme_name="centered",
            image_name="cars",
            outcomes=outcomes,
            dictionary_bits=float(np.log2(dictionary_entries)),
            hash_operations_modeled=dictionary_entries * len(outcomes),
        )

    def test_expected_guess_rank_formula(self):
        result = self._result([1, 3, 0])
        # (N+1)/(m+1) with N=99: m=1 → 50, m=3 → 25, m=0 → 100 (sentinel).
        assert result.expected_guess_rank(result.outcomes[0]) == 50.0
        assert result.expected_guess_rank(result.outcomes[1]) == 25.0
        assert result.expected_guess_rank(result.outcomes[2]) == 100.0

    def test_summary_prices_accounts_by_expected_rank(self):
        result = self._result([1, 3, 0])
        estimate = CrackingCostEstimate(
            scheme_name="centered",
            dictionary_entries=99,
            identifier_multiplier=2.0,
            hash_iterations=5,
            hash_rate=1e6,
        )
        summary = summarize_attack_economics(result, estimate)
        # Mean expected rank over the *cracked* outcomes: (50 + 25) / 2.
        assert summary["mean_expected_guesses"] == 37.5
        assert summary["median_expected_guesses"] == 50.0
        # Per-account cost = rank × multiplier × iterations — NOT the
        # full-dictionary budget (99 × 2 × 5), which stays in its own key.
        assert summary["expected_hashes_per_cracked_account"] == 37.5 * 2.0 * 5
        assert summary["expected_hours_per_cracked_account"] == pytest.approx(
            37.5 * 2.0 * 5 / 1e6 / 3600.0
        )
        assert summary["hashes_per_password"] == 99 * 2.0 * 5

    def test_summary_with_no_cracks(self):
        summary = summarize_attack_economics(
            self._result([0, 0]),
            CrackingCostEstimate(
                scheme_name="centered",
                dictionary_entries=99,
                identifier_multiplier=1.0,
                hash_iterations=1,
                hash_rate=1e9,
            ),
        )
        assert summary["mean_expected_guesses"] is None
        assert summary["expected_hashes_per_cracked_account"] is None
        assert summary["expected_hours_per_cracked_account"] is None


# -- the sweep --------------------------------------------------------------


@pytest.fixture(scope="module")
def sweep_report():
    return defense_matrix_sweep(online_guess_budget=12, offline_guess_budget=160)


class TestDefenseMatrixSweep:
    def _cell(self, report, name):
        return next(c for c in report["cells"] if c["name"] == name)

    def test_report_shape(self, sweep_report):
        assert sweep_report["meta"]["cells"] >= 16
        assert len(sweep_report["cells"]) == sweep_report["meta"]["cells"]
        json.dumps(sweep_report)  # machine-readable, no inf/bytes leaking
        for cell in sweep_report["cells"]:
            assert cell["defense"] == DefenseConfig.from_spec(
                cell["spec"]
            ).describe()
            assert {"attacked", "compromised", "seconds_per_compromise"} \
                <= set(cell["online"])
            assert {"cracked", "hash_units_per_crack"} <= set(cell["offline"])
            assert {"relative_hash_cost", "legit_throttled"} \
                <= set(cell["defender"])

    def test_neutral_cell_costs_defender_nothing(self, sweep_report):
        none = self._cell(sweep_report, "none")
        defender = none["defender"]
        assert defender["relative_hash_cost"] == 1.0
        assert defender["legit_throttled"] == 0
        assert defender["legit_captcha_challenged"] == 0
        assert defender["legit_accepted"] == defender["legit_attempts"]

    def test_hash_cost_scales_offline_cost_exactly(self, sweep_report):
        none = self._cell(sweep_report, "none")["offline"]
        hardened = self._cell(sweep_report, "hash_cost_16")["offline"]
        assert hardened["cracked"] == none["cracked"] > 0
        assert hardened["hash_units_per_crack"] == pytest.approx(
            16 * none["hash_units_per_crack"]
        )

    def test_pepper_cells_fail_closed_offline(self, sweep_report):
        for name in ("pepper", "pepper+hash_cost_16", "kitchen_sink"):
            offline = self._cell(sweep_report, name)["offline"]
            assert offline["cracked"] == 0
            assert offline["hash_units_per_crack"] is None

    def test_rate_limit_taxes_online_attacker(self, sweep_report):
        none = self._cell(sweep_report, "none")["online"]
        strict = self._cell(sweep_report, "rate_limit_strict")["online"]
        assert strict["seconds_per_compromise"] > none["seconds_per_compromise"]

    def test_lockout_and_kitchen_sink_shrink_online_compromise(
        self, sweep_report
    ):
        none = self._cell(sweep_report, "none")["online"]
        for name in ("lockout_1", "kitchen_sink"):
            online = self._cell(sweep_report, name)["online"]
            assert online["compromised"] < none["compromised"]

    def test_render_lists_every_cell(self, sweep_report):
        table = render_defense_matrix(sweep_report)
        for cell in sweep_report["cells"]:
            assert cell["name"] in table


# -- CLI + protocol ---------------------------------------------------------


class TestDefenseCLI:
    def test_defense_matrix_json_and_out(self, tmp_path, capsys):
        out = tmp_path / "matrix.json"
        code = main(
            [
                "defense-matrix",
                "--online-budget", "4",
                "--offline-budget", "40",
                "--json",
                "--out", str(out),
            ]
        )
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["meta"]["cells"] >= 16
        assert json.loads(out.read_text()) == report

    def test_defense_matrix_table(self, capsys):
        code = main(
            ["defense-matrix", "--scheme", "robust",
             "--online-budget", "4", "--offline-budget", "40"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "scheme=robust" in out
        assert "kitchen_sink" in out

    def test_store_create_defense_roundtrip(self, tmp_path, capsys):
        uri = f"sqlite:{tmp_path / 'defended.db'}"
        spec = f"hash_cost=4,pepper=hex:{PEPPER.hex()}"
        assert main(["store", "create", uri, "--users", "2",
                     "--defense", spec]) == 0
        assert spec in capsys.readouterr().out

        # The spec round-trips through storage meta...
        backend = backend_from_uri(uri)
        assert backend.get_meta("defense") == spec
        assert PEPPER.hex() not in backend.dump()  # ...but not the dump
        backend.close()

        # Re-creating must match the persisted defense exactly.
        assert main(["store", "create", uri, "--users", "2"]) == 2
        assert "refusing" in capsys.readouterr().err
        assert main(["store", "create", uri, "--users", "2",
                     "--defense", spec]) == 0
        assert "2 already present" in capsys.readouterr().out

        # The stolen file fails closed without the pepper...
        assert main(["store", "attack", uri, "--budget", "10"]) == 0
        out = capsys.readouterr().out
        assert "cracked 0/2" in out
        assert "fails closed" in out
        # ...and the grind resumes when the attacker has it.
        assert main(["store", "attack", uri, "--budget", "10",
                     "--pepper", PEPPER.hex()]) == 0
        assert "fails closed" not in capsys.readouterr().out

    def test_store_attack_rejects_bad_pepper_hex(self, tmp_path, capsys):
        uri = f"sqlite:{tmp_path / 'plain.db'}"
        assert main(["store", "create", uri, "--users", "1"]) == 0
        capsys.readouterr()
        assert main(["store", "attack", uri, "--pepper", "zz"]) == 2
        assert "not valid hex" in capsys.readouterr().err

    def test_store_create_rejects_bad_defense_spec(self, tmp_path, capsys):
        uri = f"sqlite:{tmp_path / 'bad.db'}"
        assert main(["store", "create", uri, "--defense", "zoom=3"]) == 2
        assert "defense" in capsys.readouterr().err

    async def test_server_protocol_reports_defense(self, tmp_path):
        """JSONL protocol: captcha flag on challenged logins, stats counters."""
        config = DefenseConfig(
            captcha_after=1, rate_limit_window=60.0, rate_limit_max=3
        )
        _, accounts = planted_passwords(count=1, ranks=(0,))
        store = PasswordStore(
            system=build_system("centered"),
            policy=LockoutPolicy(max_failures=None),
            defense=config,
            clock=VirtualClock(),
        )
        username, points = next(iter(accounts.items()))
        store.create_account(username, points)
        wire_points = [[int(p.x), int(p.y)] for p in points]
        wrong = [[p[0] + 30, p[1]] for p in wire_points]

        server = await LoginServer(store).start()
        reader, writer = await asyncio.open_connection(*server.address)

        async def request(payload):
            writer.write(json.dumps(payload).encode() + b"\n")
            await writer.drain()
            return json.loads(await reader.readline())

        first = await request(
            {"op": "login", "id": 1, "user": username, "points": wrong}
        )
        assert first == {"id": 1, "ok": True, "status": "reject"}
        second = await request(
            {"op": "login", "id": 2, "user": username, "points": wrong}
        )
        assert second["status"] == "reject" and second["captcha"] is True
        third = await request(
            {"op": "login", "id": 3, "user": username, "points": wire_points}
        )
        assert third["status"] == "accept" and third["captcha"] is True
        # The fourth attempt in the window is refused, not evaluated.
        fourth = await request(
            {"op": "login", "id": 4, "user": username, "points": wire_points}
        )
        assert fourth["status"] == "throttled"

        stats = await request({"op": "stats", "id": 5})
        assert stats["throttled"] == 1
        assert stats["captcha_challenged"] >= 2
        assert stats["defense"]["captcha_after"] == 1
        assert stats["defense"]["neutral"] is False
        writer.close()
        await server.aclose()
