"""Shared fixtures for the test suite.

The full paper-shaped field study (481 passwords / 3339 logins) takes a few
seconds to generate; tests that only need *a* dataset use the small study,
while the handful of end-to-end reproduction tests share the cached default
dataset from :mod:`repro.experiments.common`.
"""

from __future__ import annotations

import asyncio
import inspect

import pytest

from repro.study.clickmodel import ClickErrorModel, SelectionModel
from repro.study.fieldstudy import FieldStudyConfig, generate_field_study
from repro.study.image import cars_image, pool_image


def pytest_pyfunc_call(pyfuncitem):
    """Run ``async def`` tests on a fresh stdlib event loop.

    The container has no pytest-asyncio, so the serving-layer tests
    (tests/test_serving.py) rely on this hook: any collected coroutine
    test function is executed via ``asyncio.run`` with its requested
    fixtures, keeping async tests first-class citizens of tier-1.
    """
    test_fn = pyfuncitem.obj
    if inspect.iscoroutinefunction(test_fn):
        kwargs = {
            name: pyfuncitem.funcargs[name]
            for name in pyfuncitem._fixtureinfo.argnames
        }
        asyncio.run(test_fn(**kwargs))
        return True
    return None


@pytest.fixture(scope="session")
def small_study():
    """A small but fully-shaped study: 2 images, 40 users, 60 passwords."""
    config = FieldStudyConfig(
        participants=40,
        passwords_total=60,
        logins_total=400,
        seed=1234,
    )
    return generate_field_study(config)


@pytest.fixture(scope="session")
def tiny_study():
    """A minimal single-image study for fast structural tests."""
    config = FieldStudyConfig(
        participants=6,
        passwords_total=8,
        logins_total=30,
        seed=77,
        images=(cars_image(),),
    )
    return generate_field_study(config)


@pytest.fixture(scope="session")
def paper_dataset():
    """The full paper-shaped dataset (cached across the session)."""
    from repro.experiments.common import default_dataset

    return default_dataset()


@pytest.fixture()
def rng():
    """A fresh deterministic numpy generator per test."""
    import numpy as np

    return np.random.default_rng(42)
