"""Integration tests: the full pipeline wired end-to-end.

These tests cross-check layers against each other: the passwords layer
against raw scheme acceptance, the analysis layer against the store's
actual login outcomes, and the attack layer against real hash verification
— so a bug in any one layer shows up as a disagreement here.
"""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.analysis.false_rates import measure_false_rates
from repro.attacks.dictionary import HumanSeededDictionary
from repro.attacks.offline import offline_attack_known_identifiers
from repro.core.centered import CenteredDiscretization
from repro.core.robust import RobustDiscretization
from repro.crypto.hashing import Hasher
from repro.passwords.passpoints import PassPointsSystem
from repro.passwords.policy import LockoutPolicy
from repro.passwords.store import PasswordStore
from repro.passwords.system import enroll_password, verify_password
from repro.study.image import cars_image
from repro.study.labstudy import LabStudyConfig, generate_lab_study


@pytest.fixture(params=["centered", "robust"])
def scheme(request):
    if request.param == "centered":
        return CenteredDiscretization.for_pixel_tolerance(2, 9)
    return RobustDiscretization.for_pixel_tolerance(2, 9)


class TestHashPathEqualsGeometryPath:
    """verify_password (hash comparison) ⟺ scheme.accepts (geometry)."""

    def test_agreement_over_study_logins(self, tiny_study, scheme):
        for password, login in tiny_study.iter_login_pairs():
            enrollments = scheme.enroll_many(password.points)
            stored = enroll_password(scheme, password.points)
            geometry_accept = all(
                scheme.accepts(enrollment, point)
                for enrollment, point in zip(enrollments, login.points)
            )
            hash_accept = verify_password(scheme, stored, login.points)
            assert geometry_accept == hash_accept


class TestStoreMatchesAnalysis:
    """The live store's accept rate equals the analysis layer's measure."""

    def test_accept_rates_agree(self, tiny_study):
        scheme = CenteredDiscretization.for_pixel_tolerance(2, 9)
        image = cars_image()
        system = PassPointsSystem(image=image, scheme=scheme)
        store = PasswordStore(system=system, policy=LockoutPolicy(max_failures=None))

        live_accepts = 0
        total = 0
        for password in tiny_study.passwords:
            store.create_account(f"user{password.password_id}", password.points)
        for password, login in tiny_study.iter_login_pairs():
            total += 1
            if store.login(f"user{password.password_id}", login.points):
                live_accepts += 1

        report = measure_false_rates(
            scheme, tiny_study, Fraction(19, 2)
        )
        assert report.attempts == total
        assert report.accepted == live_accepts


class TestAttackAgainstRealStore:
    """Closed-form attack results agree with hashing against the store."""

    def test_cracked_passwords_really_crack(self, tiny_study):
        scheme = RobustDiscretization(2, 9)
        lab = generate_lab_study(cars_image(), LabStudyConfig(passwords=4, seed=5))
        dictionary = HumanSeededDictionary.from_lab_passwords(lab)
        passwords = tiny_study.passwords[:4]
        result = offline_attack_known_identifiers(scheme, passwords, dictionary)

        for password, outcome in zip(passwords, result.outcomes):
            stored = enroll_password(scheme, password.points, Hasher(salt=b"s"))
            if outcome.cracked:
                # At least one dictionary entry must truly verify; find it
                # through per-position match sets (small enough to search).
                import itertools

                found = False
                for entry in itertools.islice(dictionary.enumerate_all(), 200000):
                    if verify_password(scheme, stored, list(entry)):
                        found = True
                        break
                assert found, f"password {password.password_id} falsely cracked"

    def test_uncracked_resist_enumeration(self, tiny_study):
        scheme = CenteredDiscretization.for_pixel_tolerance(2, 4)
        lab = generate_lab_study(cars_image(), LabStudyConfig(passwords=2, seed=6))
        dictionary = HumanSeededDictionary.from_lab_passwords(lab)
        passwords = tiny_study.passwords[:2]
        result = offline_attack_known_identifiers(scheme, passwords, dictionary)
        for password, outcome in zip(passwords, result.outcomes):
            if not outcome.cracked:
                stored = enroll_password(scheme, password.points)
                for entry in dictionary.enumerate_all():
                    assert not verify_password(scheme, stored, list(entry))


class TestSaltingBlocksPrecomputation:
    """Same password, different users -> unrelated digests (paper §3.2)."""

    def test_digests_differ_hash_work_doubles(self, tiny_study):
        scheme = CenteredDiscretization.for_pixel_tolerance(2, 9)
        password = tiny_study.passwords[0]
        alice = enroll_password(scheme, password.points, Hasher(salt=b"alice"))
        bob = enroll_password(scheme, password.points, Hasher(salt=b"bob"))
        assert alice.record.digest != bob.record.digest
        # Both still verify for the right user.
        assert verify_password(scheme, alice, password.points)
        assert verify_password(scheme, bob, password.points)


class TestIteratedHashing:
    def test_iterated_record_verifies_and_slows(self, tiny_study):
        import time

        scheme = CenteredDiscretization.for_pixel_tolerance(2, 9)
        password = tiny_study.passwords[0]
        fast_hasher = Hasher(iterations=1)
        slow_hasher = Hasher(iterations=5000)
        stored_slow = enroll_password(scheme, password.points, slow_hasher)
        assert verify_password(scheme, stored_slow, password.points)

        start = time.perf_counter()
        for _ in range(20):
            enroll_password(scheme, password.points, fast_hasher)
        fast_time = time.perf_counter() - start
        start = time.perf_counter()
        for _ in range(20):
            enroll_password(scheme, password.points, slow_hasher)
        slow_time = time.perf_counter() - start
        assert slow_time > fast_time  # the work factor is real
