"""Tests for the divide-and-conquer demonstration (paper §3.1 rationale)."""

from __future__ import annotations

import math

import pytest

from repro.attacks.divide_conquer import (
    attack_cost_comparison,
    divide_and_conquer_attack,
    enroll_per_point,
    verify_per_point,
)
from repro.core.centered import CenteredDiscretization
from repro.core.robust import RobustDiscretization
from repro.errors import AttackError, VerificationError
from repro.geometry.point import Point

POINTS = [
    Point.xy(42, 61),
    Point.xy(130, 88),
    Point.xy(227, 154),
    Point.xy(318, 222),
    Point.xy(401, 290),
]


@pytest.fixture(params=["centered", "robust"])
def scheme(request):
    if request.param == "centered":
        return CenteredDiscretization.for_pixel_tolerance(2, 9)
    return RobustDiscretization.for_pixel_tolerance(2, 9)


class TestPerPointRecords:
    def test_verify_roundtrip(self, scheme):
        stored = enroll_per_point(scheme, POINTS)
        assert verify_per_point(scheme, stored, POINTS)
        shifted = [Point.xy(int(p.x) + 4, int(p.y) - 4) for p in POINTS]
        assert verify_per_point(scheme, stored, shifted)

    def test_wrong_point_rejected(self, scheme):
        stored = enroll_per_point(scheme, POINTS)
        attempt = list(POINTS)
        # Shift beyond both schemes' guaranteed-rejection radius: robust at
        # r = 9.5 accepts up to r_max = 5r = 47.5 px in the worst case.
        attempt[3] = Point.xy(int(POINTS[3].x) + 60, int(POINTS[3].y))
        assert not verify_per_point(scheme, stored, attempt)

    def test_structural_validation(self, scheme):
        with pytest.raises(VerificationError):
            enroll_per_point(scheme, [])
        stored = enroll_per_point(scheme, POINTS)
        with pytest.raises(VerificationError):
            verify_per_point(scheme, stored, POINTS[:2])


class TestDivideAndConquer:
    def test_recovers_each_position_independently(self, scheme):
        stored = enroll_per_point(scheme, POINTS)
        # Seeds: a near-duplicate of each true point plus decoys.
        seeds = [Point.xy(int(p.x) + 2, int(p.y) - 1) for p in POINTS]
        seeds += [Point.xy(13 * i % 451, 17 * i % 331) for i in range(20)]
        result = divide_and_conquer_attack(scheme, stored, seeds)
        assert result.cracked
        # The matching seed for position j must actually verify there.
        for j, matches in enumerate(result.per_position_matches):
            assert matches, f"position {j} unmatched"
            located = scheme.locate(matches[0], stored.records[j].public)
            assert stored.records[j].matches(tuple(int(i) for i in located))

    def test_cost_is_linear_not_exponential(self, scheme):
        stored = enroll_per_point(scheme, POINTS)
        seeds = [Point.xy(7 * i % 451, 11 * i % 331) for i in range(30)]
        result = divide_and_conquer_attack(scheme, stored, seeds)
        assert result.hash_trials == len(seeds) * len(POINTS)

    def test_fails_when_a_position_is_uncovered(self, scheme):
        stored = enroll_per_point(scheme, POINTS)
        # Seeds near only 4 of the 5 points.
        seeds = [Point.xy(int(p.x) + 1, int(p.y)) for p in POINTS[:4]]
        result = divide_and_conquer_attack(scheme, stored, seeds)
        assert not result.cracked
        assert result.per_position_matches[4] == ()

    def test_candidate_count_is_product(self, scheme):
        stored = enroll_per_point(scheme, POINTS)
        seeds = []
        for p in POINTS:
            seeds.append(Point.xy(int(p.x) + 1, int(p.y)))
            seeds.append(Point.xy(int(p.x) - 1, int(p.y)))
        result = divide_and_conquer_attack(scheme, stored, seeds)
        assert result.cracked
        expected = 1
        for matches in result.per_position_matches:
            expected *= len(matches)
        assert result.recovered_candidates == expected
        assert result.recovered_candidates >= 2**5

    def test_empty_seed_validation(self, scheme):
        stored = enroll_per_point(scheme, POINTS)
        with pytest.raises(AttackError):
            divide_and_conquer_attack(scheme, stored, [])


class TestCostComparison:
    def test_paper_parameters(self):
        costs = attack_cost_comparison(150, 5)
        assert costs["combined_trials"] == math.perm(150, 5)
        assert costs["per_point_trials"] == 750
        assert 26 <= costs["speedup_bits"] <= 27

    def test_validation(self):
        with pytest.raises(AttackError):
            attack_cost_comparison(3, 5)


class TestExtensionExperiment:
    def test_driver_runs_and_quantifies_speedup(self):
        from repro.experiments.extensions import divide_and_conquer

        result = divide_and_conquer(targets=10)
        by_label = {row[0]: row[1] for row in result.rows}
        assert by_label["hash trials per password (per-point)"] == 750
        assert float(result.comparisons[0]["measured"]) > 25

    def test_usability_profile_driver(self):
        from repro.experiments.extensions import usability_profile

        result = usability_profile()
        names = [row[0] for row in result.rows]
        assert names == ["centered", "robust", "static"]
        success = {row[0]: row[1] for row in result.rows}
        # Static grid collapses; robust >= centered at equal r.
        assert success["static"] < success["centered"] <= success["robust"]
