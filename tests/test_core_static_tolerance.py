"""Tests for the static-grid baseline and the tolerance/classification layer."""

from __future__ import annotations

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.centered import CenteredDiscretization
from repro.core.robust import RobustDiscretization
from repro.core.static import StaticGridScheme
from repro.core.tolerance import (
    Outcome,
    centered_tolerance_region,
    classify,
    classify_attempt,
    classify_point,
    within_centered_tolerance,
    worst_case_geometry,
)
from repro.errors import DimensionMismatchError, ParameterError, VerificationError
from repro.geometry.point import Point

coords = st.integers(min_value=-10**4, max_value=10**4)


class TestStaticGrid:
    def test_edge_problem(self):
        scheme = StaticGridScheme(dim=2, cell_size=10)
        enrolled = scheme.enroll(Point.xy(19, 5))
        assert not scheme.accepts(enrolled, Point.xy(20, 5))  # 1 px away
        assert scheme.accepts(enrolled, Point.xy(10, 5))  # 9 px away

    def test_zero_guaranteed_tolerance(self):
        assert StaticGridScheme(2, 10).guaranteed_tolerance == 0

    def test_no_public_material(self):
        scheme = StaticGridScheme(2, 10)
        enrolled = scheme.enroll(Point.xy(3, 3))
        assert enrolled.public == ()
        with pytest.raises(VerificationError):
            scheme.locate(Point.xy(3, 3), (1,))

    def test_offset_grid(self):
        scheme = StaticGridScheme(2, 10, offset=5)
        enrolled = scheme.enroll(Point.xy(5, 5))
        assert enrolled.secret == (0, 0)

    @given(coords, coords)
    def test_worst_case_margin_bounds(self, x, y):
        scheme = StaticGridScheme(2, 10)
        margin = scheme.worst_case_margin(Point.xy(x, y))
        assert 0 <= margin <= 5

    def test_acceptance_region_is_cell(self):
        scheme = StaticGridScheme(2, 10)
        enrolled = scheme.enroll(Point.xy(13, 27))
        region = scheme.acceptance_region(enrolled)
        assert region.lo == Point.xy(10, 20)
        assert region.hi == Point.xy(20, 30)


class TestClassification:
    def test_classify_matrix(self):
        assert classify(True, True) is Outcome.TRUE_ACCEPT
        assert classify(True, False) is Outcome.FALSE_ACCEPT
        assert classify(False, True) is Outcome.FALSE_REJECT
        assert classify(False, False) is Outcome.TRUE_REJECT

    def test_outcome_flags(self):
        assert Outcome.TRUE_ACCEPT.accepted and not Outcome.TRUE_ACCEPT.erroneous
        assert Outcome.FALSE_ACCEPT.accepted and Outcome.FALSE_ACCEPT.erroneous
        assert not Outcome.FALSE_REJECT.accepted and Outcome.FALSE_REJECT.erroneous
        assert not Outcome.TRUE_REJECT.accepted and not Outcome.TRUE_REJECT.erroneous

    def test_within_centered_tolerance_half_open(self):
        original = Point.xy(10, 10)
        assert within_centered_tolerance(original, Point.xy(5, 10), 5)  # low edge in
        assert not within_centered_tolerance(original, Point.xy(15, 10), 5)  # high out

    def test_region_validates(self):
        with pytest.raises(ParameterError):
            centered_tolerance_region(Point.xy(0, 0), 0)

    def test_classify_point_centered_never_errs(self):
        scheme = CenteredDiscretization(2, Fraction(13, 2))
        original = Point.xy(100, 100)
        enrolled = scheme.enroll(original)
        for dx in range(-10, 11, 2):
            for dy in range(-10, 11, 5):
                outcome = classify_point(
                    scheme, enrolled, original, Point.xy(100 + dx, 100 + dy),
                    Fraction(13, 2),
                )
                assert not outcome.erroneous

    def test_classify_point_robust_false_reject(self):
        from repro.core.robust import GridSelection

        r = 3
        scheme = RobustDiscretization(2, r, selection=GridSelection.FIRST_SAFE)
        original = Point.xy(r, r)
        enrolled = scheme.enroll(original)
        # Equal-size framing: rho = 3r.  A click r+1 low is within rho but
        # outside the cell -> FALSE_REJECT.
        outcome = classify_point(
            scheme, enrolled, original, Point.xy(-1, r), 3 * r
        )
        assert outcome is Outcome.FALSE_REJECT


class TestClassifyAttempt:
    def test_all_points_must_verify(self):
        scheme = CenteredDiscretization(2, Fraction(19, 2))
        originals = [Point.xy(50, 50), Point.xy(150, 150)]
        enrollments = scheme.enroll_many(originals)
        good = [Point.xy(52, 48), Point.xy(150, 150)]
        bad_one = [Point.xy(52, 48), Point.xy(170, 150)]
        rho = Fraction(19, 2)
        assert (
            classify_attempt(scheme, enrollments, originals, good, rho)
            is Outcome.TRUE_ACCEPT
        )
        assert (
            classify_attempt(scheme, enrollments, originals, bad_one, rho)
            is Outcome.TRUE_REJECT
        )

    def test_length_mismatch(self):
        scheme = CenteredDiscretization(2, 5)
        originals = [Point.xy(1, 1)]
        enrollments = scheme.enroll_many(originals)
        with pytest.raises(DimensionMismatchError):
            classify_attempt(scheme, enrollments, originals, [], 5)

    def test_empty_attempt(self):
        scheme = CenteredDiscretization(2, 5)
        with pytest.raises(ParameterError):
            classify_attempt(scheme, [], [], [], 5)


class TestWorstCaseGeometry:
    def test_2d_unit(self):
        geometry = worst_case_geometry(1, dim=2)
        assert geometry.cell_volume == 36
        assert geometry.centered_volume == 36
        assert geometry.overlap_volume == 16
        assert geometry.false_accept_volume == 20
        assert geometry.false_reject_volume == 20
        assert geometry.r_max == 5

    def test_scaling(self):
        geometry = worst_case_geometry(3, dim=2)
        assert geometry.cell_volume == 36 * 9
        assert geometry.overlap_volume == 16 * 9

    @given(st.integers(min_value=1, max_value=20), st.integers(min_value=1, max_value=3))
    @settings(max_examples=30)
    def test_overlap_fraction_formula(self, r, dim):
        # Per axis the overlap is side/2 + r out of side = 2(dim+1)r, i.e.
        # (dim+2) / (2(dim+1)); independent axes multiply.
        geometry = worst_case_geometry(r, dim=dim)
        expected = ((dim + 2) / (2 * (dim + 1))) ** dim
        assert abs(geometry.overlap_fraction - expected) < 1e-9

    def test_1d(self):
        geometry = worst_case_geometry(2, dim=1)
        assert geometry.cell_volume == 8  # 4r
        assert geometry.r_max == 6  # 3r

    def test_validation(self):
        with pytest.raises(ParameterError):
            worst_case_geometry(0)
        with pytest.raises(DimensionMismatchError):
            worst_case_geometry(1, dim=0)
