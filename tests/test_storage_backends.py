"""Tests for the pluggable storage backends and store serialization.

Covers the ISSUE-2 round-trip matrix (StoredPassword/VerificationRecord
JSON with Fraction publics, dump->load equality across backends, throttle
and lockout state survival across durable reopens) plus the ISSUE-3
additions: the consistent-hash ``ShardedBackend`` (``shards:`` URIs,
merged dumps, replicated meta), WAL-mode SQLite with non-blocking
read-only readers, and lockout persistence across shard rebalancing.
"""

from __future__ import annotations

import sqlite3
from fractions import Fraction

import pytest

from repro.core.centered import CenteredDiscretization
from repro.crypto.encoding import scalar_from_json, scalar_to_json
from repro.crypto.records import VerificationRecord, make_record
from repro.errors import LockoutError, StoreError
from repro.geometry.point import Point
from repro.passwords.passpoints import PassPointsSystem
from repro.passwords.policy import AccountThrottle, LockoutPolicy
from repro.passwords.storage import (
    JsonlBackend,
    MemoryBackend,
    ShardedBackend,
    SQLiteBackend,
    backend_from_uri,
    rebalance,
)
from repro.passwords.store import PasswordStore
from repro.passwords.system import enroll_password
from repro.study.image import cars_image

POINTS = [
    Point.xy(42, 61),
    Point.xy(130, 88),
    Point.xy(227, 154),
    Point.xy(318, 222),
    Point.xy(401, 290),
]


def shifted(points, dx, dy=0):
    return [Point.xy(int(p.x) + dx, int(p.y) + dy) for p in points]


def make_backend(kind: str, tmp_path):
    if kind == "memory":
        return backend_from_uri("memory:")
    if kind == "sqlite":
        return backend_from_uri(f"sqlite:{tmp_path / 'store.db'}")
    if kind == "shards":
        return backend_from_uri(f"shards:sqlite:{tmp_path / 'shard'}{{0..2}}.db")
    return backend_from_uri(f"jsonl:{tmp_path / 'store.jsonl'}")


BACKENDS = ["memory", "sqlite", "jsonl", "shards"]


@pytest.fixture
def scheme():
    return CenteredDiscretization.for_pixel_tolerance(2, 9)


@pytest.fixture
def system(scheme):
    return PassPointsSystem(image=cars_image(), scheme=scheme)


class TestScalarJson:
    def test_fraction_round_trip(self):
        value = Fraction(19, 2)
        assert scalar_from_json(scalar_to_json(value)) == value

    def test_passthrough_types(self):
        for value in (7, 2.5, "salt"):
            assert scalar_from_json(scalar_to_json(value)) == value

    def test_record_json_with_fraction_publics(self):
        record = make_record([Fraction(19, 2), Fraction(1, 3), 4], [0, 1])
        restored = VerificationRecord.from_json(record.to_json())
        assert restored == record
        assert restored.matches([0, 1])
        assert not restored.matches([1, 0])

    def test_stored_password_fraction_publics_roundtrip(self, scheme):
        stored = enroll_password(scheme, POINTS)
        # Centered publics are exact rationals with .5 parts.
        assert any(
            isinstance(v, Fraction) for per in stored.publics for v in per
        )
        restored = type(stored).from_json(stored.to_json())
        assert restored == stored


class TestBackendUri:
    def test_memory(self):
        assert backend_from_uri("memory:").uri == "memory:"

    def test_sqlite_and_jsonl(self, tmp_path):
        sqlite = backend_from_uri(f"sqlite:{tmp_path / 'a.db'}")
        jsonl = backend_from_uri(f"jsonl:{tmp_path / 'a.jsonl'}")
        assert isinstance(sqlite, SQLiteBackend)
        assert isinstance(jsonl, JsonlBackend)
        sqlite.close()
        jsonl.close()

    def test_missing_path_rejected(self):
        with pytest.raises(StoreError):
            backend_from_uri("sqlite:")
        with pytest.raises(StoreError):
            backend_from_uri("jsonl:")

    def test_unknown_scheme_rejected(self):
        with pytest.raises(StoreError):
            backend_from_uri("redis:somewhere")


@pytest.mark.parametrize("kind", BACKENDS)
class TestBackendContract:
    def test_put_get_delete(self, kind, tmp_path, scheme):
        backend = make_backend(kind, tmp_path)
        stored = enroll_password(scheme, POINTS)
        backend.put("alice", stored)
        assert backend.get("alice") == stored
        assert "alice" in backend
        assert len(backend) == 1
        assert backend.usernames() == ("alice",)
        backend.delete("alice")
        assert backend.get("alice") is None
        with pytest.raises(StoreError):
            backend.delete("alice")
        backend.close()

    def test_throttle_state(self, kind, tmp_path):
        backend = make_backend(kind, tmp_path)
        backend.put_throttle("alice", {"failures": 2, "locked": False, "accumulated_delay": 1.5})
        assert backend.get_throttle("alice")["failures"] == 2
        assert backend.get_throttle("ghost") is None
        backend.close()

    def test_meta(self, kind, tmp_path):
        backend = make_backend(kind, tmp_path)
        assert backend.get_meta("scheme") is None
        backend.put_meta("scheme", "centered")
        assert backend.get_meta("scheme") == "centered"
        backend.close()

    def test_dump_load_round_trip(self, kind, tmp_path, scheme):
        backend = make_backend(kind, tmp_path)
        backend.put("alice", enroll_password(scheme, POINTS))
        backend.put("bob", enroll_password(scheme, shifted(POINTS, 7)))
        payload = backend.dump()
        fresh = MemoryBackend()
        fresh.load(payload)
        assert fresh.usernames() == ("alice", "bob")
        # The password file is backend-agnostic: reloading it anywhere
        # reproduces the identical artifact byte-for-byte.
        assert fresh.dump() == payload
        backend.close()

    def test_load_replaces_existing(self, kind, tmp_path, scheme):
        backend = make_backend(kind, tmp_path)
        backend.put("old", enroll_password(scheme, POINTS))
        donor = MemoryBackend()
        donor.put("new", enroll_password(scheme, shifted(POINTS, 3)))
        backend.load(donor.dump())
        assert backend.usernames() == ("new",)
        backend.close()

    def test_load_rejects_garbage(self, kind, tmp_path):
        backend = make_backend(kind, tmp_path)
        with pytest.raises(StoreError):
            backend.load("{not json")
        backend.close()


@pytest.mark.parametrize("kind", ["sqlite", "jsonl", "shards"])
class TestDurability:
    def test_records_survive_reopen(self, kind, tmp_path, system):
        backend = make_backend(kind, tmp_path)
        store = PasswordStore(system=system, backend=backend)
        store.create_account("alice", POINTS)
        backend.close()

        reopened = make_backend(kind, tmp_path)
        store2 = PasswordStore(system=system, backend=reopened)
        assert store2.usernames == ("alice",)
        assert store2.login("alice", POINTS)
        assert store2.login("alice", shifted(POINTS, 3))
        reopened.close()

    def test_lockout_survives_reopen(self, kind, tmp_path, system):
        backend = make_backend(kind, tmp_path)
        store = PasswordStore(
            system=system, policy=LockoutPolicy(max_failures=2), backend=backend
        )
        store.create_account("alice", POINTS)
        for _ in range(2):
            assert not store.login("alice", shifted(POINTS, 30, 30))
        assert store.is_locked("alice")
        backend.close()

        reopened = make_backend(kind, tmp_path)
        store2 = PasswordStore(
            system=system, policy=LockoutPolicy(max_failures=2), backend=reopened
        )
        assert store2.is_locked("alice")
        with pytest.raises(LockoutError):
            store2.login("alice", POINTS)
        reopened.close()

    def test_partial_failures_survive_reopen(self, kind, tmp_path, system):
        backend = make_backend(kind, tmp_path)
        store = PasswordStore(
            system=system, policy=LockoutPolicy(max_failures=3), backend=backend
        )
        store.create_account("alice", POINTS)
        assert not store.login("alice", shifted(POINTS, 30, 30))
        backend.close()

        reopened = make_backend(kind, tmp_path)
        store2 = PasswordStore(
            system=system, policy=LockoutPolicy(max_failures=3), backend=reopened
        )
        assert store2.throttle_for("alice").failures == 1
        # Two more failures complete the persisted streak.
        assert not store2.login("alice", shifted(POINTS, 30, 30))
        assert not store2.login("alice", shifted(POINTS, 30, 30))
        assert store2.is_locked("alice")
        reopened.close()


class TestJsonlLog:
    def test_delete_and_clear_replay(self, tmp_path, scheme):
        path = tmp_path / "log.jsonl"
        backend = JsonlBackend(str(path))
        backend.put("alice", enroll_password(scheme, POINTS))
        backend.put("bob", enroll_password(scheme, shifted(POINTS, 7)))
        backend.delete("alice")
        backend.close()

        replayed = JsonlBackend(str(path))
        assert replayed.usernames() == ("bob",)
        replayed.clear()
        replayed.close()

        emptied = JsonlBackend(str(path))
        assert emptied.usernames() == ()
        emptied.close()

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text('{"op": "put", "username": "x"}\n')
        with pytest.raises(StoreError):
            JsonlBackend(str(path))

    def test_unknown_op_rejected(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text('{"op": "frobnicate"}\n')
        with pytest.raises(StoreError):
            JsonlBackend(str(path))


class TestSQLiteConcurrency:
    def test_wal_journal_mode_enabled(self, tmp_path):
        backend = SQLiteBackend(str(tmp_path / "wal.db"))
        assert backend.journal_mode == "wal"
        backend.close()

    def test_busy_timeout_configured(self, tmp_path):
        backend = SQLiteBackend(str(tmp_path / "wal.db"))
        timeout = backend._conn.execute("PRAGMA busy_timeout").fetchone()[0]
        assert timeout == SQLiteBackend.BUSY_TIMEOUT_MS
        backend.close()

    def test_reader_not_blocked_by_open_write_transaction(self, tmp_path, scheme):
        """iter_records snapshots committed state while a writer holds the lock."""
        backend = SQLiteBackend(str(tmp_path / "wal.db"))
        backend.put("alice", enroll_password(scheme, POINTS))
        # Hold the write lock with an uncommitted row: a rollback-journal
        # reader would block (then fail); the WAL read-only reader sees
        # the last committed snapshot immediately.
        backend._conn.execute("BEGIN IMMEDIATE")
        backend._conn.execute(
            "INSERT INTO records (username, payload) VALUES ('bob', '{}')"
        )
        try:
            names = [username for username, _ in backend.iter_records()]
        finally:
            backend._conn.execute("ROLLBACK")
        assert names == ["alice"]
        backend.close()

    def test_dump_uses_read_only_connection(self, tmp_path, scheme, monkeypatch):
        backend = SQLiteBackend(str(tmp_path / "wal.db"))
        backend.put("alice", enroll_password(scheme, POINTS))
        reader = backend._reader()
        assert reader is not None
        with pytest.raises(sqlite3.OperationalError):
            reader.execute("DELETE FROM records")
        reader.close()
        # And iter_records falls back to the writer connection when no
        # read-only connection can be opened.
        monkeypatch.setattr(backend, "_reader", lambda: None)
        assert [username for username, _ in backend.iter_records()] == ["alice"]
        backend.close()

    def test_two_instances_share_one_live_store(self, tmp_path, system):
        """A second process (modelled as a second backend) grinds the live
        store while the first keeps serving logins."""
        path = str(tmp_path / "live.db")
        server_side = SQLiteBackend(path)
        store = PasswordStore(system=system, backend=server_side)
        store.create_account("alice", POINTS)

        attacker_side = SQLiteBackend(path)
        stolen = attacker_side.dump()
        assert "alice" in stolen
        store.create_account("bob", shifted(POINTS, 7))  # server still writes
        assert sorted(attacker_side.usernames()) == ["alice", "bob"]
        attacker_side.close()
        server_side.close()


class TestShardedBackend:
    def test_uri_round_trip_and_shard_count(self, tmp_path):
        backend = backend_from_uri(f"shards:sqlite:{tmp_path / 's'}{{0..3}}.db")
        assert isinstance(backend, ShardedBackend)
        assert len(backend.shards) == 4
        assert all(isinstance(shard, SQLiteBackend) for shard in backend.shards)
        backend.close()

    def test_template_validation(self, tmp_path):
        with pytest.raises(StoreError):
            backend_from_uri("shards:")
        with pytest.raises(StoreError):  # no {A..B} range
            backend_from_uri(f"shards:sqlite:{tmp_path / 'x.db'}")
        with pytest.raises(StoreError):  # empty range
            backend_from_uri(f"shards:sqlite:{tmp_path / 's'}{{3..1}}.db")
        with pytest.raises(StoreError):  # two ranges
            backend_from_uri(f"shards:sqlite:{tmp_path / 's'}{{0..1}}{{0..1}}.db")
        with pytest.raises(StoreError):
            ShardedBackend([])

    def test_routing_is_deterministic_across_instances(self, tmp_path):
        first = backend_from_uri(f"shards:memory:{{0..3}}")
        second = backend_from_uri(f"shards:memory:{{0..3}}")
        names = [f"user{i}" for i in range(64)]
        assert [first.shard_index_for(n) for n in names] == [
            second.shard_index_for(n) for n in names
        ]

    def test_population_spreads_over_shards(self, tmp_path, scheme):
        backend = backend_from_uri("shards:memory:{0..3}")
        record = enroll_password(scheme, POINTS)
        for i in range(60):
            backend.put(f"user{i}", record)
        sizes = [len(shard) for shard in backend.shards]
        assert sum(sizes) == 60
        assert all(size > 0 for size in sizes)  # no empty shard at n=60
        # Each record lives on exactly the shard the router names.
        for i in range(60):
            username = f"user{i}"
            owner = backend.shard_index_for(username)
            for index, shard in enumerate(backend.shards):
                assert (username in shard) == (index == owner)

    def test_merged_dump_matches_unsharded(self, tmp_path, scheme):
        sharded = backend_from_uri(f"shards:sqlite:{tmp_path / 'm'}{{0..2}}.db")
        flat = MemoryBackend()
        for i in range(12):
            record = enroll_password(scheme, shifted(POINTS, i))
            sharded.put(f"user{i}", record)
            flat.put(f"user{i}", record)
        # One stolen artifact: merging the shards equals the flat file.
        assert sharded.dump() == flat.dump()
        sharded.close()

    def test_meta_replicates_to_every_shard(self, tmp_path):
        backend = backend_from_uri("shards:memory:{0..2}")
        backend.put_meta("scheme", "centered")
        for shard in backend.shards:
            assert shard.get_meta("scheme") == "centered"
        assert backend.get_meta("scheme") == "centered"
        assert backend.meta_items() == (("scheme", "centered"),)

    def test_load_routes_through_hash_ring(self, tmp_path, scheme):
        donor = MemoryBackend()
        for i in range(10):
            donor.put(f"user{i}", enroll_password(scheme, shifted(POINTS, i)))
        backend = backend_from_uri("shards:memory:{0..2}")
        backend.load(donor.dump())
        assert backend.usernames() == donor.usernames()
        for i in range(10):
            username = f"user{i}"
            assert username in backend.shards[backend.shard_index_for(username)]


class TestRebalance:
    def _locked_store(self, backend, system, max_failures=2):
        store = PasswordStore(
            system=system,
            policy=LockoutPolicy(max_failures=max_failures),
            backend=backend,
        )
        store.create_account("alice", POINTS)
        store.create_account("bob", shifted(POINTS, 7))
        for _ in range(max_failures):
            assert not store.login("alice", shifted(POINTS, 30, 30))
        assert store.is_locked("alice")
        return store

    def test_lockout_survives_shard_rebalancing(self, tmp_path, system):
        """4 shards -> 2 shards: records, partial streaks and lockouts move."""
        old = backend_from_uri(f"shards:sqlite:{tmp_path / 'old'}{{0..3}}.db")
        old.put_meta("scheme", "centered")
        store = self._locked_store(old, system)
        assert not store.login("bob", shifted(POINTS, 30, 30))  # partial streak

        new = backend_from_uri(f"shards:sqlite:{tmp_path / 'new'}{{0..1}}.db")
        moved = rebalance(old, new)
        assert moved == 2
        assert new.dump() == old.dump()
        assert new.meta_items() == old.meta_items()
        old.close()

        restored = PasswordStore(
            system=system, policy=LockoutPolicy(max_failures=2), backend=new
        )
        assert restored.is_locked("alice")
        with pytest.raises(LockoutError):
            restored.login("alice", POINTS)
        # Bob's one-failure streak also moved: one more failure locks him.
        assert restored.throttle_for("bob").failures == 1
        assert not restored.login("bob", shifted(POINTS, 30, 30))
        assert restored.is_locked("bob")
        new.close()

    def test_lockout_survives_rebalanced_reopen(self, tmp_path, system):
        """Rebalance, close everything, reopen the new layout from disk."""
        old = backend_from_uri(f"shards:sqlite:{tmp_path / 'a'}{{0..2}}.db")
        self._locked_store(old, system)
        new = backend_from_uri(f"shards:sqlite:{tmp_path / 'b'}{{0..4}}.db")
        rebalance(old, new)
        old.close()
        new.close()

        reopened = backend_from_uri(f"shards:sqlite:{tmp_path / 'b'}{{0..4}}.db")
        store = PasswordStore(
            system=system, policy=LockoutPolicy(max_failures=2), backend=reopened
        )
        assert store.usernames == ("alice", "bob")
        assert store.is_locked("alice")
        assert store.login("bob", shifted(POINTS, 7))
        reopened.close()

    def test_rebalance_into_unsharded_backend(self, tmp_path, system):
        """Sharded -> single file is just another rebalance."""
        old = backend_from_uri(f"shards:sqlite:{tmp_path / 'c'}{{0..2}}.db")
        self._locked_store(old, system)
        flat = SQLiteBackend(str(tmp_path / "flat.db"))
        assert rebalance(old, flat) == 2
        store = PasswordStore(
            system=system, policy=LockoutPolicy(max_failures=2), backend=flat
        )
        assert store.is_locked("alice")
        assert store.login("bob", shifted(POINTS, 7))
        old.close()
        flat.close()


class TestThrottleState:
    def test_state_round_trip(self):
        policy = LockoutPolicy(max_failures=3, delay_base_seconds=1)
        throttle = AccountThrottle(policy)
        throttle.record(False)
        throttle.record(False)
        restored = AccountThrottle.from_state(policy, throttle.state())
        assert restored.failures == 2
        assert restored.accumulated_delay == throttle.accumulated_delay
        assert not restored.locked

    def test_store_dump_identical_across_backends(self, tmp_path, system):
        dumps = []
        for kind in BACKENDS:
            (tmp_path / kind).mkdir(exist_ok=True)
            backend = make_backend(kind, tmp_path / kind)
            store = PasswordStore(system=system, backend=backend)
            store.create_account("alice", POINTS)
            store.create_account("bob", shifted(POINTS, 7))
            dumps.append(store.dump_records())
            backend.close()
        assert len(set(dumps)) == 1
