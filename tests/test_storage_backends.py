"""Tests for the pluggable storage backends and store serialization.

Covers the ISSUE-2 round-trip matrix: StoredPassword/VerificationRecord
JSON with Fraction publics, dump->load equality across all three backends,
and throttle/lockout state survival across a SQLite (and JSONL) reopen.
"""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.core.centered import CenteredDiscretization
from repro.crypto.encoding import scalar_from_json, scalar_to_json
from repro.crypto.records import VerificationRecord, make_record
from repro.errors import LockoutError, StoreError
from repro.geometry.point import Point
from repro.passwords.passpoints import PassPointsSystem
from repro.passwords.policy import AccountThrottle, LockoutPolicy
from repro.passwords.storage import (
    JsonlBackend,
    MemoryBackend,
    SQLiteBackend,
    backend_from_uri,
)
from repro.passwords.store import PasswordStore
from repro.passwords.system import enroll_password
from repro.study.image import cars_image

POINTS = [
    Point.xy(42, 61),
    Point.xy(130, 88),
    Point.xy(227, 154),
    Point.xy(318, 222),
    Point.xy(401, 290),
]


def shifted(points, dx, dy=0):
    return [Point.xy(int(p.x) + dx, int(p.y) + dy) for p in points]


def make_backend(kind: str, tmp_path):
    if kind == "memory":
        return backend_from_uri("memory:")
    if kind == "sqlite":
        return backend_from_uri(f"sqlite:{tmp_path / 'store.db'}")
    return backend_from_uri(f"jsonl:{tmp_path / 'store.jsonl'}")


BACKENDS = ["memory", "sqlite", "jsonl"]


@pytest.fixture
def scheme():
    return CenteredDiscretization.for_pixel_tolerance(2, 9)


@pytest.fixture
def system(scheme):
    return PassPointsSystem(image=cars_image(), scheme=scheme)


class TestScalarJson:
    def test_fraction_round_trip(self):
        value = Fraction(19, 2)
        assert scalar_from_json(scalar_to_json(value)) == value

    def test_passthrough_types(self):
        for value in (7, 2.5, "salt"):
            assert scalar_from_json(scalar_to_json(value)) == value

    def test_record_json_with_fraction_publics(self):
        record = make_record([Fraction(19, 2), Fraction(1, 3), 4], [0, 1])
        restored = VerificationRecord.from_json(record.to_json())
        assert restored == record
        assert restored.matches([0, 1])
        assert not restored.matches([1, 0])

    def test_stored_password_fraction_publics_roundtrip(self, scheme):
        stored = enroll_password(scheme, POINTS)
        # Centered publics are exact rationals with .5 parts.
        assert any(
            isinstance(v, Fraction) for per in stored.publics for v in per
        )
        restored = type(stored).from_json(stored.to_json())
        assert restored == stored


class TestBackendUri:
    def test_memory(self):
        assert backend_from_uri("memory:").uri == "memory:"

    def test_sqlite_and_jsonl(self, tmp_path):
        sqlite = backend_from_uri(f"sqlite:{tmp_path / 'a.db'}")
        jsonl = backend_from_uri(f"jsonl:{tmp_path / 'a.jsonl'}")
        assert isinstance(sqlite, SQLiteBackend)
        assert isinstance(jsonl, JsonlBackend)
        sqlite.close()
        jsonl.close()

    def test_missing_path_rejected(self):
        with pytest.raises(StoreError):
            backend_from_uri("sqlite:")
        with pytest.raises(StoreError):
            backend_from_uri("jsonl:")

    def test_unknown_scheme_rejected(self):
        with pytest.raises(StoreError):
            backend_from_uri("redis:somewhere")


@pytest.mark.parametrize("kind", BACKENDS)
class TestBackendContract:
    def test_put_get_delete(self, kind, tmp_path, scheme):
        backend = make_backend(kind, tmp_path)
        stored = enroll_password(scheme, POINTS)
        backend.put("alice", stored)
        assert backend.get("alice") == stored
        assert "alice" in backend
        assert len(backend) == 1
        assert backend.usernames() == ("alice",)
        backend.delete("alice")
        assert backend.get("alice") is None
        with pytest.raises(StoreError):
            backend.delete("alice")
        backend.close()

    def test_throttle_state(self, kind, tmp_path):
        backend = make_backend(kind, tmp_path)
        backend.put_throttle("alice", {"failures": 2, "locked": False, "accumulated_delay": 1.5})
        assert backend.get_throttle("alice")["failures"] == 2
        assert backend.get_throttle("ghost") is None
        backend.close()

    def test_meta(self, kind, tmp_path):
        backend = make_backend(kind, tmp_path)
        assert backend.get_meta("scheme") is None
        backend.put_meta("scheme", "centered")
        assert backend.get_meta("scheme") == "centered"
        backend.close()

    def test_dump_load_round_trip(self, kind, tmp_path, scheme):
        backend = make_backend(kind, tmp_path)
        backend.put("alice", enroll_password(scheme, POINTS))
        backend.put("bob", enroll_password(scheme, shifted(POINTS, 7)))
        payload = backend.dump()
        fresh = MemoryBackend()
        fresh.load(payload)
        assert fresh.usernames() == ("alice", "bob")
        # The password file is backend-agnostic: reloading it anywhere
        # reproduces the identical artifact byte-for-byte.
        assert fresh.dump() == payload
        backend.close()

    def test_load_replaces_existing(self, kind, tmp_path, scheme):
        backend = make_backend(kind, tmp_path)
        backend.put("old", enroll_password(scheme, POINTS))
        donor = MemoryBackend()
        donor.put("new", enroll_password(scheme, shifted(POINTS, 3)))
        backend.load(donor.dump())
        assert backend.usernames() == ("new",)
        backend.close()

    def test_load_rejects_garbage(self, kind, tmp_path):
        backend = make_backend(kind, tmp_path)
        with pytest.raises(StoreError):
            backend.load("{not json")
        backend.close()


@pytest.mark.parametrize("kind", ["sqlite", "jsonl"])
class TestDurability:
    def test_records_survive_reopen(self, kind, tmp_path, system):
        backend = make_backend(kind, tmp_path)
        store = PasswordStore(system=system, backend=backend)
        store.create_account("alice", POINTS)
        backend.close()

        reopened = make_backend(kind, tmp_path)
        store2 = PasswordStore(system=system, backend=reopened)
        assert store2.usernames == ("alice",)
        assert store2.login("alice", POINTS)
        assert store2.login("alice", shifted(POINTS, 3))
        reopened.close()

    def test_lockout_survives_reopen(self, kind, tmp_path, system):
        backend = make_backend(kind, tmp_path)
        store = PasswordStore(
            system=system, policy=LockoutPolicy(max_failures=2), backend=backend
        )
        store.create_account("alice", POINTS)
        for _ in range(2):
            assert not store.login("alice", shifted(POINTS, 30, 30))
        assert store.is_locked("alice")
        backend.close()

        reopened = make_backend(kind, tmp_path)
        store2 = PasswordStore(
            system=system, policy=LockoutPolicy(max_failures=2), backend=reopened
        )
        assert store2.is_locked("alice")
        with pytest.raises(LockoutError):
            store2.login("alice", POINTS)
        reopened.close()

    def test_partial_failures_survive_reopen(self, kind, tmp_path, system):
        backend = make_backend(kind, tmp_path)
        store = PasswordStore(
            system=system, policy=LockoutPolicy(max_failures=3), backend=backend
        )
        store.create_account("alice", POINTS)
        assert not store.login("alice", shifted(POINTS, 30, 30))
        backend.close()

        reopened = make_backend(kind, tmp_path)
        store2 = PasswordStore(
            system=system, policy=LockoutPolicy(max_failures=3), backend=reopened
        )
        assert store2.throttle_for("alice").failures == 1
        # Two more failures complete the persisted streak.
        assert not store2.login("alice", shifted(POINTS, 30, 30))
        assert not store2.login("alice", shifted(POINTS, 30, 30))
        assert store2.is_locked("alice")
        reopened.close()


class TestJsonlLog:
    def test_delete_and_clear_replay(self, tmp_path, scheme):
        path = tmp_path / "log.jsonl"
        backend = JsonlBackend(str(path))
        backend.put("alice", enroll_password(scheme, POINTS))
        backend.put("bob", enroll_password(scheme, shifted(POINTS, 7)))
        backend.delete("alice")
        backend.close()

        replayed = JsonlBackend(str(path))
        assert replayed.usernames() == ("bob",)
        replayed.clear()
        replayed.close()

        emptied = JsonlBackend(str(path))
        assert emptied.usernames() == ()
        emptied.close()

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text('{"op": "put", "username": "x"}\n')
        with pytest.raises(StoreError):
            JsonlBackend(str(path))

    def test_unknown_op_rejected(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text('{"op": "frobnicate"}\n')
        with pytest.raises(StoreError):
            JsonlBackend(str(path))


class TestThrottleState:
    def test_state_round_trip(self):
        policy = LockoutPolicy(max_failures=3, delay_base_seconds=1)
        throttle = AccountThrottle(policy)
        throttle.record(False)
        throttle.record(False)
        restored = AccountThrottle.from_state(policy, throttle.state())
        assert restored.failures == 2
        assert restored.accumulated_delay == throttle.accumulated_delay
        assert not restored.locked

    def test_store_dump_identical_across_backends(self, tmp_path, system):
        dumps = []
        for kind in BACKENDS:
            (tmp_path / kind).mkdir(exist_ok=True)
            backend = make_backend(kind, tmp_path / kind)
            store = PasswordStore(system=system, backend=backend)
            store.create_account("alice", POINTS)
            store.create_account("bob", shifted(POINTS, 7))
            dumps.append(store.dump_records())
            backend.close()
        assert dumps[0] == dumps[1] == dumps[2]
