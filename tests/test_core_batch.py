"""Batch engine correctness: batch/scalar agreement and kernel contracts.

The batch kernels (:mod:`repro.core.batch`) are float64 re-implementations
of the exact-arithmetic scalar schemes.  These tests hold them to the
strongest available standard: on pixel data with the library's rational
tolerances, every batch result — secret indices, public material, accept
decisions, acceptance regions — must agree with the scalar reference
bit-for-bit, for all three schemes, across dimensions and grid-selection
policies.
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    BatchDiscretization,
    CenteredDiscretization,
    Discretization,
    RobustDiscretization,
    StaticGridScheme,
    acceptance_region_batch,
    discretize_batch,
    verify_batch,
)
from repro.core.batch import as_point_array, batch_kernel_for
from repro.core.robust import GridSelection
from repro.errors import (
    DimensionMismatchError,
    ParameterError,
    VerificationError,
)
from repro.geometry.point import Point

coords = st.integers(min_value=-(10**4), max_value=10**4)
tolerances = st.integers(min_value=0, max_value=20)
grid_sizes = st.integers(min_value=2, max_value=60)


def _point_batch(draw_coords, dim, size):
    return st.lists(
        st.tuples(*[draw_coords] * dim), min_size=size, max_size=size
    ).map(lambda rows: np.array(rows, dtype=float))


def _schemes_2d():
    return [
        CenteredDiscretization.for_pixel_tolerance(2, 9),
        RobustDiscretization.for_pixel_tolerance(2, 9),
        RobustDiscretization.for_grid_size(2, 13),  # r = 13/6
        RobustDiscretization.for_pixel_tolerance(
            2, 9, selection=GridSelection.FIRST_SAFE
        ),
        StaticGridScheme(dim=2, cell_size=19),
        StaticGridScheme(dim=2, cell_size=Fraction(19, 3), offset=Fraction(1, 2)),
    ]


class TestBatchScalarAgreement:
    """Randomized agreement between batch kernels and the exact reference."""

    @given(_point_batch(coords, 2, 15), tolerances)
    @settings(max_examples=25, deadline=None)
    def test_centered_enroll_agrees(self, pts, t):
        scheme = CenteredDiscretization.for_pixel_tolerance(2, t)
        batch = discretize_batch(scheme, pts)
        for n, row in enumerate(pts):
            scalar = scheme.enroll(Point.xy(int(row[0]), int(row[1])))
            assert tuple(int(v) for v in batch.secret[n]) == scalar.secret
            assert tuple(batch.public[n]) == tuple(
                float(d) for d in scalar.public
            )

    @given(_point_batch(coords, 2, 15), tolerances)
    @settings(max_examples=20, deadline=None)
    def test_robust_enroll_agrees(self, pts, t):
        scheme = RobustDiscretization.for_pixel_tolerance(2, t)
        batch = discretize_batch(scheme, pts)
        for n, row in enumerate(pts):
            scalar = scheme.enroll(Point.xy(int(row[0]), int(row[1])))
            assert int(batch.public[n]) == scalar.public[0]
            assert tuple(int(v) for v in batch.secret[n]) == scalar.secret

    @given(_point_batch(coords, 2, 15), grid_sizes)
    @settings(max_examples=20, deadline=None)
    def test_robust_fractional_r_enroll_agrees(self, pts, size):
        """Denominator-6 tolerances: exact-arithmetic margin ties included."""
        scheme = RobustDiscretization.for_grid_size(2, size)
        batch = discretize_batch(scheme, pts)
        for n, row in enumerate(pts):
            scalar = scheme.enroll(Point.xy(int(row[0]), int(row[1])))
            assert int(batch.public[n]) == scalar.public[0]
            assert tuple(int(v) for v in batch.secret[n]) == scalar.secret

    @given(_point_batch(coords, 2, 15), grid_sizes)
    @settings(max_examples=20, deadline=None)
    def test_static_enroll_agrees(self, pts, size):
        scheme = StaticGridScheme(dim=2, cell_size=size)
        batch = discretize_batch(scheme, pts)
        for n, row in enumerate(pts):
            scalar = scheme.enroll(Point.xy(int(row[0]), int(row[1])))
            assert tuple(int(v) for v in batch.secret[n]) == scalar.secret

    @given(
        _point_batch(coords, 2, 12),
        st.lists(
            st.tuples(
                st.integers(min_value=-12, max_value=12),
                st.integers(min_value=-12, max_value=12),
            ),
            min_size=12,
            max_size=12,
        ),
    )
    @settings(max_examples=10, deadline=None)
    def test_verify_agrees_all_schemes(self, pts, jitter):
        """Accept decisions match the scalar path for near-miss candidates."""
        candidates = pts + np.array(jitter, dtype=float)
        for scheme in _schemes_2d():
            batch = discretize_batch(scheme, pts)
            pairwise = verify_batch(scheme, batch, candidates)
            for n, row in enumerate(pts):
                scalar_enrollment = scheme.enroll(
                    Point.xy(int(row[0]), int(row[1]))
                )
                candidate = Point.xy(
                    int(candidates[n][0]), int(candidates[n][1])
                )
                expected = scheme.accepts(scalar_enrollment, candidate)
                assert bool(pairwise[n]) == expected
            # Attack shape: one scalar enrollment vs the whole candidate set.
            first = scheme.enroll(Point.xy(int(pts[0][0]), int(pts[0][1])))
            attack = verify_batch(scheme, first, candidates)
            for n in range(len(candidates)):
                candidate = Point.xy(
                    int(candidates[n][0]), int(candidates[n][1])
                )
                assert bool(attack[n]) == scheme.accepts(first, candidate)

    @given(_point_batch(coords, 2, 10))
    @settings(max_examples=10, deadline=None)
    def test_acceptance_regions_agree(self, pts):
        """Regions match the scalar path: exactly when every quantity is
        float-representable (the pixel convention), to 1e-9 otherwise
        (composed float ops are not correctly rounded; denominator-3
        bounds may differ from the exact value by 1 ulp)."""
        for scheme, exact in [
            (CenteredDiscretization.for_pixel_tolerance(2, 9), True),
            (RobustDiscretization.for_pixel_tolerance(2, 9), True),
            (RobustDiscretization.for_grid_size(2, 13), False),
            (StaticGridScheme(dim=2, cell_size=19), True),
        ]:
            batch = discretize_batch(scheme, pts)
            lo, hi = acceptance_region_batch(scheme, batch)
            for n, row in enumerate(pts):
                box = scheme.acceptance_region(
                    scheme.enroll(Point.xy(int(row[0]), int(row[1])))
                )
                if exact:
                    assert tuple(lo[n]) == box.lo.as_floats()
                    assert tuple(hi[n]) == box.hi.as_floats()
                else:
                    assert np.allclose(lo[n], box.lo.as_floats(), atol=1e-9)
                    assert np.allclose(hi[n], box.hi.as_floats(), atol=1e-9)

    @given(_point_batch(coords, 1, 15), tolerances)
    @settings(max_examples=10, deadline=None)
    def test_one_dimensional_agreement(self, pts, t):
        for scheme in (
            CenteredDiscretization.for_pixel_tolerance(1, t),
            RobustDiscretization.for_pixel_tolerance(1, t),
        ):
            batch = discretize_batch(scheme, pts)
            for n, row in enumerate(pts):
                scalar = scheme.enroll(Point.of(int(row[0])))
                assert tuple(int(v) for v in batch.secret[n]) == scalar.secret

    @given(_point_batch(coords, 3, 10), st.integers(min_value=0, max_value=9))
    @settings(max_examples=8, deadline=None)
    def test_three_dimensional_agreement(self, pts, t):
        for scheme in (
            CenteredDiscretization.for_pixel_tolerance(3, t),
            RobustDiscretization.for_pixel_tolerance(3, t),
        ):
            batch = discretize_batch(scheme, pts)
            for n, row in enumerate(pts):
                scalar = scheme.enroll(Point.of(*[int(v) for v in row]))
                assert tuple(int(v) for v in batch.secret[n]) == scalar.secret


class TestRandomSafeSelection:
    def test_random_safe_enrollments_are_valid(self):
        """RANDOM_SAFE batch enrollments always land on an r-safe grid."""
        rng = np.random.default_rng(7)
        scheme = RobustDiscretization.for_pixel_tolerance(
            2, 9, selection=GridSelection.RANDOM_SAFE, rng=rng.random
        )
        pts = rng.integers(0, 640, size=(300, 2)).astype(float)
        batch = discretize_batch(scheme, pts)
        for n, row in enumerate(pts):
            point = Point.xy(int(row[0]), int(row[1]))
            assert int(batch.public[n]) in scheme.safe_grids(point)
            assert (
                tuple(int(v) for v in batch.secret[n])
                == scheme.grid(int(batch.public[n])).cell_of(point)
            )


class TestCenteredZeroFalseRates:
    """The paper's headline theorem holds for the batch path too."""

    def test_accepts_iff_within_r_chebyshev(self):
        scheme = CenteredDiscretization.for_pixel_tolerance(2, 9)
        rng = np.random.default_rng(3)
        originals = rng.integers(50, 500, size=(200, 2)).astype(float)
        offsets = rng.integers(-15, 16, size=(200, 2)).astype(float)
        batch = discretize_batch(scheme, originals)
        accepted = verify_batch(scheme, batch, originals + offsets)
        within = np.abs(offsets).max(axis=1) < float(scheme.r)
        assert np.array_equal(accepted, within)


class TestBatchApiContracts:
    def test_kernel_cached_per_scheme_instance(self):
        scheme = CenteredDiscretization.for_pixel_tolerance(2, 9)
        assert scheme.batch() is scheme.batch()

    def test_batch_kernel_for_rejects_unknown_scheme(self):
        with pytest.raises(ParameterError):
            batch_kernel_for(object())  # type: ignore[arg-type]

    def test_as_point_array_shapes(self):
        assert as_point_array(Point.xy(1, 2)).shape == (1, 2)
        assert as_point_array([Point.xy(1, 2), Point.xy(3, 4)]).shape == (2, 2)
        assert as_point_array([(1, 2, 3)]).shape == (1, 3)
        assert as_point_array(np.zeros(4)).shape == (1, 4)

    def test_as_point_array_rejects_bad_input(self):
        with pytest.raises(ParameterError):
            as_point_array(np.zeros((2, 2, 2)))
        with pytest.raises(ParameterError):
            as_point_array(np.array([[np.nan, 0.0]]))
        with pytest.raises(DimensionMismatchError):
            as_point_array(np.zeros((3, 3)), dim=2)

    def test_pairwise_count_mismatch_rejected(self):
        scheme = CenteredDiscretization.for_pixel_tolerance(2, 9)
        batch = discretize_batch(scheme, np.zeros((3, 2)))
        with pytest.raises(DimensionMismatchError):
            verify_batch(scheme, batch, np.zeros((5, 2)))

    def test_robust_locate_rejects_bad_identifiers(self):
        scheme = RobustDiscretization.for_pixel_tolerance(2, 9)
        kernel = scheme.batch()
        with pytest.raises(VerificationError):
            kernel.locate(np.zeros((2, 2)), np.array([0, 99]))
        with pytest.raises(VerificationError):
            kernel.locate(np.zeros((2, 2)), np.array([0.5, 1.5]))
        with pytest.raises(VerificationError):
            kernel.accepts(
                Discretization(public=("nope",), secret=(0, 0)),
                np.zeros((1, 2)),
            )

    def test_static_rejects_public_material(self):
        scheme = StaticGridScheme(dim=2, cell_size=10)
        kernel = scheme.batch()
        with pytest.raises(VerificationError):
            kernel.accepts(
                Discretization(public=(1,), secret=(0, 0)), np.zeros((1, 2))
            )

    def test_row_round_trips_to_scalar_discretization(self):
        pts = np.array([[100.0, 200.0], [5.0, 7.0]])
        for scheme in _schemes_2d():
            batch = discretize_batch(scheme, pts)
            for n in range(2):
                row = batch.row(n)
                assert isinstance(row, Discretization)
                assert row.secret == tuple(int(v) for v in batch.secret[n])
                # A row converted back verifies exactly like the batch.
                assert bool(
                    scheme.batch().accepts(row, pts[n : n + 1])[0]
                )

    def test_batch_discretization_validates_shapes(self):
        with pytest.raises(ParameterError):
            BatchDiscretization(
                scheme_name="x",
                public=np.zeros((2, 2)),
                secret=np.zeros(3, dtype=np.int64),
            )
        with pytest.raises(ParameterError):
            BatchDiscretization(
                scheme_name="x",
                public=np.zeros((1, 2)),
                secret=np.zeros((2, 2), dtype=np.int64),
            )

    def test_len_count_dim(self):
        scheme = CenteredDiscretization.for_pixel_tolerance(2, 9)
        batch = discretize_batch(scheme, np.zeros((4, 2)))
        assert len(batch) == batch.count == 4
        assert batch.dim == 2


class _NamespaceProxy:
    """Duck-typed array namespace: delegates to numpy, records attribute use.

    Proves the kernels run unmodified under an *injected* namespace — the
    cupy/jax contract — without needing an accelerator installed.
    """

    def __init__(self):
        self.used = set()

    def __getattr__(self, name):
        self.used.add(name)
        return getattr(np, name)


class TestArrayNamespaces:
    def test_resolve_defaults_to_numpy(self):
        from repro.core.batch import resolve_array_namespace

        assert resolve_array_namespace() is np
        assert resolve_array_namespace(np) is np
        assert resolve_array_namespace("numpy") is np

    def test_resolve_rejects_unknown_backend_and_non_namespace(self):
        from repro.core.batch import resolve_array_namespace

        with pytest.raises(ParameterError):
            resolve_array_namespace("not-a-backend")
        with pytest.raises(ParameterError):
            resolve_array_namespace(object())

    def test_env_var_selects_default_backend(self, monkeypatch):
        from repro.core.batch import resolve_array_namespace

        monkeypatch.setenv("REPRO_ARRAY_BACKEND", "numpy")
        assert resolve_array_namespace() is np
        monkeypatch.setenv("REPRO_ARRAY_BACKEND", "not-a-backend")
        with pytest.raises(ParameterError):
            resolve_array_namespace()
        # A fresh scheme's first batch() resolves through the env var too.
        scheme = CenteredDiscretization.for_pixel_tolerance(2, 9)
        with pytest.raises(ParameterError):
            scheme.batch()

    def test_kernels_run_unmodified_under_injected_namespace(self):
        """Every scheme's kernel: injected-xp results == default results."""
        pts = np.array(
            [[100.0, 200.0], [5.0, 7.0], [613.0, 470.0], [59.0, 59.0]]
        )
        for scheme in _schemes_2d():
            proxy = _NamespaceProxy()
            kernel = scheme.batch(xp=proxy)
            default = scheme.batch()
            assert kernel is not default
            assert kernel.xp is proxy
            enrolled = kernel.enroll(pts)
            reference = default.enroll(pts)
            np.testing.assert_array_equal(enrolled.secret, reference.secret)
            np.testing.assert_array_equal(enrolled.public, reference.public)
            np.testing.assert_array_equal(
                kernel.accepts(enrolled, pts), default.accepts(reference, pts)
            )
            lo, hi = kernel.acceptance_bounds(enrolled)
            ref_lo, ref_hi = default.acceptance_bounds(reference)
            np.testing.assert_array_equal(lo, ref_lo)
            np.testing.assert_array_equal(hi, ref_hi)
            assert proxy.used, "kernel never touched the injected namespace"

    def test_injected_kernel_is_cached_per_namespace(self):
        scheme = CenteredDiscretization.for_pixel_tolerance(2, 9)
        proxy = _NamespaceProxy()
        assert scheme.batch(xp=proxy) is scheme.batch(xp=proxy)
        assert scheme.batch(xp=proxy) is not scheme.batch()
        assert scheme.batch(xp=np) is not scheme.batch(xp=proxy)

    @pytest.mark.parametrize("backend", ["cupy", "jax"])
    def test_optional_accelerator_smoke(self, backend):
        """cupy/jax drop in when installed; skips cleanly when not."""
        from repro.core.batch import array_namespace_from_name

        pytest.importorskip(backend)
        xp = array_namespace_from_name(backend)
        if backend == "jax":
            # Resolving jax by name must opt into x64, or the float64
            # exactness contract silently degrades to float32.
            assert xp.asarray([1.5]).dtype == np.float64
        pts = np.array([[100.0, 200.0], [5.0, 7.0], [613.0, 470.0]])
        for scheme in _schemes_2d():
            kernel = scheme.batch(xp=xp)
            enrolled = kernel.enroll(pts)
            reference = scheme.batch().enroll(pts)
            np.testing.assert_array_equal(
                np.asarray(enrolled.secret), reference.secret
            )
            np.testing.assert_array_equal(
                np.asarray(kernel.accepts(enrolled, pts)),
                scheme.batch().accepts(reference, pts),
            )
