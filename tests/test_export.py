"""Tests for the experiment-result export layer and the report CLI."""

from __future__ import annotations

import csv
import json

import pytest

from repro.cli import main
from repro.errors import ParameterError
from repro.experiments import illustrations, table3
from repro.experiments.export import result_to_json, write_reports, write_result


class TestResultToJson:
    def test_shape(self):
        result = illustrations.figure1(r=9)
        data = result_to_json(result)
        assert data["experiment_id"] == "figure1"
        assert len(data["rows"]) == len(result.rows)
        assert data["library_version"]
        # Everything must actually be JSON-serializable.
        json.dumps(data)

    def test_fractions_become_floats(self):
        result = table3.run()
        data = result_to_json(result)
        json.dumps(data)  # would raise on a raw Fraction


class TestWriteResult:
    def test_files_written(self, tmp_path):
        result = illustrations.figure2()
        paths = write_result(result, str(tmp_path))
        loaded = json.loads((tmp_path / "figure2.json").read_text())
        assert loaded["experiment_id"] == "figure2"
        with open(paths["csv"], newline="") as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == list(result.headers)
        assert len(rows) == len(result.rows) + 1


class TestWriteReports:
    def test_summary_flattens_comparisons(self, tmp_path):
        results = [illustrations.figure1(), illustrations.figure2()]
        summary_path = write_reports(results, str(tmp_path))
        summary = json.loads(open(summary_path).read())
        assert summary["experiments"] == ["figure1", "figure2"]
        experiment_ids = {c["experiment_id"] for c in summary["comparisons"]}
        assert experiment_ids == {"figure1", "figure2"}

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ParameterError):
            write_reports([], str(tmp_path))


class TestReportCommand:
    def test_report_selected(self, tmp_path, capsys):
        out_dir = tmp_path / "reports"
        assert main(["report", "--out", str(out_dir), "figure1", "figure2"]) == 0
        assert (out_dir / "summary.json").exists()
        assert (out_dir / "figure1.csv").exists()
        assert "2 experiment artifacts" in capsys.readouterr().out

    def test_report_unknown(self, tmp_path, capsys):
        assert main(["report", "--out", str(tmp_path), "bogus"]) == 2
        assert "unknown experiments" in capsys.readouterr().err
