"""Tests for hotspot harvesting, shoulder-surfing, and leakage analyses."""

from __future__ import annotations

import math

import pytest

from repro.attacks.hotspot import (
    dictionary_from_hotspots,
    harvest_hotspots,
    hotspot_seed_points,
    salience_hotspots,
)
from repro.attacks.leakage import cell_salience_ranking, identifier_bits
from repro.attacks.shoulder import shoulder_surf_attack
from repro.core.centered import CenteredDiscretization
from repro.core.robust import RobustDiscretization
from repro.core.static import StaticGridScheme
from repro.errors import AttackError
from repro.geometry.point import Point
from repro.study.dataset import PasswordSample
from repro.study.image import cars_image


class TestHarvestHotspots:
    def _observed(self):
        # Two strong clusters plus scattered singles.
        cluster_a = [Point.xy(100 + d, 100) for d in range(5)]
        cluster_b = [Point.xy(300, 200 + d) for d in range(4)]
        strays = [Point.xy(10, 10), Point.xy(440, 320), Point.xy(225, 30)]
        points = cluster_a + cluster_b + strays
        return [
            PasswordSample(i, i, "cars", (p,)) for i, p in enumerate(points)
        ]

    def test_clusters_found_in_support_order(self):
        hotspots = harvest_hotspots(self._observed(), radius=9)
        assert hotspots[0].support == 5
        assert hotspots[1].support == 4
        assert abs(hotspots[0].x - 102) <= 4 and abs(hotspots[0].y - 100) <= 4

    def test_deterministic(self):
        assert harvest_hotspots(self._observed()) == harvest_hotspots(
            self._observed()
        )

    def test_seed_points_support_filter(self):
        hotspots = harvest_hotspots(self._observed(), radius=9)
        seeds = hotspot_seed_points(hotspots, minimum_support=2)
        assert len(seeds) == 2
        with pytest.raises(AttackError):
            hotspot_seed_points(hotspots, minimum_support=99)

    def test_validation(self):
        with pytest.raises(AttackError):
            harvest_hotspots([])
        with pytest.raises(AttackError):
            harvest_hotspots(self._observed(), radius=-1)
        with pytest.raises(AttackError):
            harvest_hotspots(self._observed(), max_hotspots=0)

    def test_dictionary_wrapper(self):
        seeds = (Point.xy(1, 1), Point.xy(2, 2), Point.xy(3, 3))
        dictionary = dictionary_from_hotspots(seeds, "cars", tuple_length=2)
        assert dictionary.entry_count == 6


class TestSalienceHotspots:
    def test_peaks_inside_image_and_distinct(self):
        image = cars_image()
        peaks = salience_hotspots(image, top_n=15)
        assert len(peaks) == 15
        assert len(set(peaks)) == 15
        for peak in peaks:
            assert image.contains(peak)

    def test_top_peak_near_a_hotspot(self):
        image = cars_image()
        top = salience_hotspots(image, top_n=1)[0]
        nearest = min(
            max(abs(float(top.x) - h.x), abs(float(top.y) - h.y))
            for h in image.hotspots
        )
        assert nearest <= 6

    def test_validation(self):
        with pytest.raises(AttackError):
            salience_hotspots(cars_image(), top_n=0)


class TestShoulderSurfing:
    def _passwords(self):
        return [
            PasswordSample(
                0, 0, "cars",
                (Point.xy(60, 60), Point.xy(200, 120), Point.xy(350, 250)),
            )
        ]

    def test_perfect_observation_always_succeeds(self):
        result = shoulder_surf_attack(
            CenteredDiscretization.for_pixel_tolerance(2, 9),
            cars_image(),
            self._passwords(),
            observation_sigma=0,
        )
        assert result.success_rate == 1.0

    def test_noise_decreases_success(self):
        scheme = CenteredDiscretization.for_pixel_tolerance(2, 9)
        low = shoulder_surf_attack(
            scheme, cars_image(), self._passwords(),
            observation_sigma=1.0, replays_per_password=200,
        )
        high = shoulder_surf_attack(
            scheme, cars_image(), self._passwords(),
            observation_sigma=12.0, replays_per_password=200,
        )
        assert low.success_rate > high.success_rate

    def test_equal_r_robust_more_replayable(self):
        """Paper §2.1: larger cells tolerate sloppier observation."""
        passwords = self._passwords()
        sigma = 6.0
        centered = shoulder_surf_attack(
            CenteredDiscretization.for_pixel_tolerance(2, 9),
            cars_image(), passwords,
            observation_sigma=sigma, replays_per_password=300,
        )
        robust = shoulder_surf_attack(
            RobustDiscretization(2, 9),
            cars_image(), passwords,
            observation_sigma=sigma, replays_per_password=300,
        )
        assert robust.success_rate > centered.success_rate

    def test_validation(self):
        scheme = CenteredDiscretization.for_pixel_tolerance(2, 9)
        with pytest.raises(AttackError):
            shoulder_surf_attack(
                scheme, cars_image(), self._passwords(), observation_sigma=-1
            )
        with pytest.raises(AttackError):
            shoulder_surf_attack(
                scheme, cars_image(), [], observation_sigma=1
            )
        with pytest.raises(AttackError):
            shoulder_surf_attack(
                scheme, cars_image(), self._passwords(),
                observation_sigma=1, replays_per_password=0,
            )


class TestIdentifierBits:
    def test_robust_paper_values(self):
        bits = identifier_bits(RobustDiscretization(2, 8))
        assert bits["choices"] == 3
        assert bits["storage_bits"] == 2  # paper: "2 bits"
        assert abs(bits["entropy_bits"] - math.log2(3)) < 1e-9

    def test_centered_paper_value_r8(self):
        # Paper §5.2: log2(2r x 2r) = 8 bits for r = 8.
        bits = identifier_bits(CenteredDiscretization(2, 8))
        assert bits["entropy_bits"] == 8.0
        assert bits["storage_bits"] == 8

    def test_static_no_identifier(self):
        bits = identifier_bits(StaticGridScheme(2, 10))
        assert bits["storage_bits"] == 0


class TestCellSalienceRanking:
    def test_rank_within_bounds(self):
        image = cars_image()
        point = Point.xy(120, 140)
        for scheme in (
            CenteredDiscretization(2, 8),
            RobustDiscretization(2, 8),
        ):
            ranking = cell_salience_ranking(scheme, image, point)
            assert 1 <= ranking.true_cell_rank <= ranking.cells_considered
            assert 0 < ranking.rank_fraction <= 1

    def test_hotspot_click_ranks_high(self):
        """A click on the strongest hotspot should rank early."""
        image = cars_image()
        top = max(image.hotspots, key=lambda h: h.weight)
        point = Point.xy(int(top.x), int(top.y))
        ranking = cell_salience_ranking(
            CenteredDiscretization(2, 8), image, point, center_window=2
        )
        assert ranking.rank_fraction < 0.2

    def test_validation(self):
        with pytest.raises(AttackError):
            cell_salience_ranking(
                CenteredDiscretization(2, 8), cars_image(), Point.xy(9999, 0)
            )
        with pytest.raises(AttackError):
            cell_salience_ranking(
                CenteredDiscretization(2, 8),
                cars_image(),
                Point.xy(10, 10),
                center_window=-1,
            )
