"""Tests for attack economics, the 3-D system, and extension experiments."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.attacks.economics import (
    expected_guesses_to_crack,
    offline_cracking_cost,
    summarize_attack_economics,
)
from repro.attacks.dictionary import HumanSeededDictionary
from repro.attacks.offline import offline_attack_known_identifiers
from repro.core.centered import CenteredDiscretization
from repro.core.robust import RobustDiscretization
from repro.crypto.hashing import Hasher
from repro.errors import AttackError, DomainError, ParameterError, VerificationError
from repro.experiments import extensions
from repro.geometry.point import Point
from repro.passwords.space3d import ClickSpace3D, Space3DSystem, space3d_password_bits
from repro.study.dataset import PasswordSample


class TestExpectedGuesses:
    def test_formula(self):
        assert expected_guesses_to_crack(1, 99) == 50.0
        assert expected_guesses_to_crack(99, 99) == 1.0

    def test_none_when_uncrackable(self):
        assert expected_guesses_to_crack(0, 100) is None

    def test_validation(self):
        with pytest.raises(AttackError):
            expected_guesses_to_crack(5, 0)
        with pytest.raises(AttackError):
            expected_guesses_to_crack(10, 5)


class TestCrackingCost:
    def _dictionary(self):
        points = tuple(Point.xy(7 * i, 11 * i % 300) for i in range(10))
        return HumanSeededDictionary(
            seed_points=points, tuple_length=5, image_name="cars"
        )

    def test_known_identifiers_cost(self):
        dictionary = self._dictionary()
        estimate = offline_cracking_cost(
            RobustDiscretization(2, 9), dictionary, hash_rate=1e6
        )
        assert estimate.hashes_per_password == dictionary.entry_count
        assert estimate.seconds_per_password == dictionary.entry_count / 1e6

    def test_hidden_identifiers_multiplier(self):
        dictionary = self._dictionary()
        robust = offline_cracking_cost(
            RobustDiscretization(2, 9),
            dictionary,
            identifiers_known=False,
        )
        assert robust.identifier_multiplier == 3**5
        centered = offline_cracking_cost(
            CenteredDiscretization.for_pixel_tolerance(2, 9),
            dictionary,
            identifiers_known=False,
        )
        assert centered.identifier_multiplier == float(19**2) ** 5

    def test_iterated_hashing_scales_cost(self):
        dictionary = self._dictionary()
        base = offline_cracking_cost(
            RobustDiscretization(2, 9), dictionary, Hasher(iterations=1)
        )
        hard = offline_cracking_cost(
            RobustDiscretization(2, 9), dictionary, Hasher(iterations=1000)
        )
        assert hard.hashes_per_password == 1000 * base.hashes_per_password

    def test_validation(self):
        with pytest.raises(AttackError):
            offline_cracking_cost(
                RobustDiscretization(2, 9), self._dictionary(), hash_rate=0
            )

    def test_summary_integration(self):
        points = [Point.xy(40 + 60 * i, 50 + 40 * i) for i in range(5)]
        target = PasswordSample(0, 0, "cars", tuple(points))
        seeds = tuple(points) + tuple(Point.xy(5 + i, 300) for i in range(5))
        dictionary = HumanSeededDictionary(
            seed_points=seeds, tuple_length=5, image_name="cars"
        )
        scheme = RobustDiscretization(2, 9)
        result = offline_attack_known_identifiers(scheme, [target], dictionary)
        estimate = offline_cracking_cost(scheme, dictionary)
        summary = summarize_attack_economics(result, estimate)
        assert summary["cracked"] == 1
        assert summary["mean_expected_guesses"] is not None
        assert summary["hours_total"] >= summary["hours_per_password"]


class TestClickSpace3D:
    def _space(self):
        return ClickSpace3D(
            name="room",
            width=100,
            height=80,
            depth=60,
            objects=((50.0, 40.0, 30.0, 4.0, 1.0),),
        )

    def test_contains(self):
        space = self._space()
        assert space.contains(Point.of(0, 0, 0))
        assert space.contains(Point.of(99, 79, 59))
        assert not space.contains(Point.of(100, 0, 0))
        with pytest.raises(DomainError):
            space.contains(Point.xy(1, 2))

    def test_clamp_and_voxels(self):
        space = self._space()
        assert space.clamp(-5, 200, 30.4) == (0, 79, 30)
        assert space.voxel_count == 100 * 80 * 60

    def test_sample_click_inside(self, rng):
        space = self._space()
        for _ in range(100):
            assert space.contains(space.sample_click(rng))

    def test_validation(self):
        with pytest.raises(ParameterError):
            ClickSpace3D(name="x", width=0, height=10, depth=10)
        with pytest.raises(ParameterError):
            ClickSpace3D(
                name="x", width=10, height=10, depth=10,
                objects=((1.0, 1.0, 1.0, 0.0, 1.0),),
            )


class TestSpace3DSystem:
    def _system(self, r=6):
        space = ClickSpace3D(name="room", width=200, height=150, depth=100)
        scheme = CenteredDiscretization.for_pixel_tolerance(3, r)
        return Space3DSystem(space=space, scheme=scheme)

    def test_enroll_verify_roundtrip(self):
        system = self._system()
        points = [
            Point.of(20, 30, 40),
            Point.of(100, 75, 50),
            Point.of(150, 140, 90),
            Point.of(60, 10, 10),
            Point.of(190, 100, 30),
        ]
        stored = system.enroll(points)
        assert system.verify(stored, points)
        shifted = [Point.of(int(p.x) + 3, int(p.y) - 3, int(p.z) + 3) for p in points]
        assert system.verify(stored, shifted)
        far = [Point.of(int(p.x), int(p.y), (int(p.z) + 30) % 100) for p in points]
        assert not system.verify(stored, far)

    def test_requires_3d_scheme(self):
        space = ClickSpace3D(name="room", width=10, height=10, depth=10)
        with pytest.raises(ParameterError):
            Space3DSystem(space=space, scheme=CenteredDiscretization(2, 5))

    def test_domain_and_count_enforced(self):
        system = self._system()
        with pytest.raises(VerificationError):
            system.enroll([Point.of(1, 1, 1)])
        bad = [Point.of(1, 1, 1)] * 4 + [Point.of(999, 1, 1)]
        with pytest.raises(DomainError):
            system.enroll(bad)

    def test_password_space_advantage_is_6_bits_per_click(self):
        space = ClickSpace3D(name="room", width=400, height=300, depth=250)
        r = 5
        centered_bits = space3d_password_bits(space, 2 * r)
        robust_bits = space3d_password_bits(space, 8 * r)
        # Ignoring ceil effects, the gap is 5 clicks x 3 log2(4) = 30 bits.
        assert 25 <= centered_bits - robust_bits <= 32

    def test_bits_validation(self):
        space = ClickSpace3D(name="room", width=10, height=10, depth=10)
        with pytest.raises(ParameterError):
            space3d_password_bits(space, 0)
        with pytest.raises(ParameterError):
            space3d_password_bits(space, 5, clicks=0)


class TestExtensionExperiments:
    def test_analytic_acceptance_agrees(self):
        result = extensions.analytic_acceptance(trials=1500)
        for comparison in result.comparisons:
            assert float(comparison["measured"]) < 0.04

    def test_space3d_experiment(self):
        result = extensions.space3d()
        for row in result.rows:
            assert row[1] > row[2]  # centered bits > robust bits
            assert row[4] == "ok"

    def test_attack_economics_orderings(self):
        result = extensions.attack_economics()
        rows = {row[0]: float(row[1]) for row in result.rows}
        assert rows["robust, ids hidden"] > rows["robust, ids known"]
        assert rows["centered, ids hidden"] > rows["robust, ids hidden"]
        assert (
            rows["centered, ids known, h^1000"]
            == 1000 * rows["centered, ids known"]
        )
