#!/usr/bin/env python3
"""Usability statistics, analytic acceptance curves, and 3-D passwords.

Three capabilities beyond the paper's published artifacts:

1. the descriptive usability layer behind Section 4 — success rates with
   confidence intervals and click-accuracy percentiles on the simulated
   field study;
2. analytic acceptance-vs-accuracy curves for all three schemes (closed
   form / quadrature), cross-checking the simulation;
3. the Section 3.2 extension: Centered Discretization in a 3-D virtual
   room, where its password-space advantage doubles to 6 bits per click.

Run:  python examples/usability_and_3d.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis import (
    acceptance_curve,
    click_accuracy,
    first_attempt_success,
    login_success,
    render_table,
)
from repro import CenteredDiscretization, Point, RobustDiscretization, StaticGridScheme
from repro.experiments import default_dataset
from repro.passwords import ClickSpace3D, Space3DSystem, space3d_password_bits


def usability_section() -> None:
    dataset = default_dataset()
    print("login success on the simulated field study (tolerance 9 px):")
    rows = []
    for scheme in (
        CenteredDiscretization.for_pixel_tolerance(2, 9),
        RobustDiscretization(2, 9),
        StaticGridScheme(2, 19),
    ):
        overall = login_success(scheme, dataset)
        first = first_attempt_success(scheme, dataset)
        low, high = overall.interval
        rows.append(
            (
                scheme.name,
                f"{overall.rate:.1%}",
                f"[{low:.1%}, {high:.1%}]",
                f"{first.rate:.1%}",
            )
        )
    print(render_table(("scheme", "success", "95% CI", "first attempt"), rows))
    print()

    accuracy = click_accuracy(dataset)
    print(
        f"click accuracy over {accuracy.clicks} clicks: "
        f"mean Chebyshev {accuracy.mean_chebyshev:.2f} px, "
        f"mean Euclidean {accuracy.mean_euclidean:.2f} px"
    )
    print("  " + ", ".join(f"p{p}={v:.1f}px" for p, v in accuracy.percentiles))
    print(
        "  within 4 px: "
        f"{accuracy.fraction_within(4):.1%}; within 9 px: "
        f"{accuracy.fraction_within(9):.1%}  (the paper's 'very accurate')"
    )
    print()


def acceptance_section() -> None:
    print("analytic acceptance probability vs user accuracy (5 clicks, r=9):")
    sigmas = (1.0, 2.0, 3.0, 5.0, 8.0)
    curves = [
        acceptance_curve(CenteredDiscretization.for_pixel_tolerance(2, 9), sigmas),
        acceptance_curve(RobustDiscretization(2, 9), sigmas),
        acceptance_curve(StaticGridScheme(2, 19), sigmas),
    ]
    rows = [
        (curve.scheme_name, *(f"{p:.3f}" for p in curve.probabilities))
        for curve in curves
    ]
    headers = ("scheme",) + tuple(f"sigma={s}" for s in sigmas)
    print(render_table(headers, rows))
    print("  robust accepts sloppier clicks than its guarantee promises —")
    print("  those extra accepts are exactly the Table-2 false accepts.")
    print()


def room_section() -> None:
    room = ClickSpace3D(
        name="studio",
        width=400,
        height=300,
        depth=250,
        objects=(
            (120.0, 90.0, 60.0, 6.0, 3.0),
            (310.0, 220.0, 130.0, 8.0, 2.0),
            (200.0, 150.0, 200.0, 5.0, 1.0),
        ),
    )
    scheme = CenteredDiscretization.for_pixel_tolerance(3, 9)
    system = Space3DSystem(space=room, scheme=scheme)
    rng = np.random.default_rng(99)
    points = [room.sample_click(rng) for _ in range(5)]
    stored = system.enroll(points)
    nearby = [
        Point.of(*room.clamp(float(p.x) + 4, float(p.y) - 4, float(p.z) + 4))
        for p in points
    ]
    print(f"3-D room {room.width}x{room.height}x{room.depth}, 5 clicks, r=9:")
    print(f"  enroll -> verify(exact) = {system.verify(stored, points)}, "
          f"verify(4px off) = {system.verify(stored, nearby)}")
    centered_bits = system.password_space_bits()
    robust_bits = space3d_password_bits(room, 8 * 9.5)
    print(f"  password space: centered {centered_bits:.1f} bits vs "
          f"robust {robust_bits:.1f} bits (predefined-object schemes: "
          f"{5 * np.log2(3):.1f} bits with 3 objects)")


def main() -> None:
    usability_section()
    acceptance_section()
    room_section()


if __name__ == "__main__":
    main()
