#!/usr/bin/env python3
"""The async serving stack: a login flood against a sharded store.

The paper's deployment (§5.1) is a server verifying salted click-point
hashes for an enrolled population while throttling online guessing.  This
example runs that server shape end to end:

1. **Enroll 1,000 users on a 4-shard store** — a ``shards:sqlite:`` URI
   routes usernames across four WAL-mode SQLite files by consistent
   hashing; the population survives the process and the shards merge into
   one stolen password file.
2. **Mixed legit/attacker flood, in process** — 64 concurrent client
   coroutines drive exact, within-tolerance, and wrong-password attempts
   through ``AsyncVerificationService``; the event loop amortizes them
   into vectorized kernel batches while per-account lockout stays
   bit-for-bit scalar-equivalent.
3. **The same protocol over TCP** — a ``LoginServer`` on an ephemeral
   port floods through real sockets (the ``repro serve`` / ``repro
   flood`` shape).

Printed: throughput, p50/p95/p99 tail latency, accept/reject/locked
tallies, batching stats, and how many attacked accounts ended locked out.

Run:  python examples/async_serving.py
"""

from __future__ import annotations

import asyncio
import tempfile
import time
from pathlib import Path

import numpy as np

from repro import CenteredDiscretization
from repro.geometry.point import Point
from repro.passwords import (
    LockoutPolicy,
    PassPointsSystem,
    PasswordStore,
    backend_from_uri,
)
from repro.serving import (
    AsyncVerificationService,
    LoginServer,
    flood_server,
    flood_service,
    mixed_stream,
)
from repro.study import cars_image

USERS = 1_000
ATTEMPTS = 8_000
CLIENTS = 64


def enroll_population(workdir: Path):
    """Enroll USERS random passwords into a 4-shard SQLite store."""
    image = cars_image()
    scheme = CenteredDiscretization.for_pixel_tolerance(2, 9)
    uri = f"shards:sqlite:{workdir / 'pop'}{{0..3}}.db"
    backend = backend_from_uri(uri)
    store = PasswordStore(
        system=PassPointsSystem(image=image, scheme=scheme),
        policy=LockoutPolicy(max_failures=3),
        backend=backend,
    )
    rng = np.random.default_rng(2008)
    accounts = {}
    start = time.perf_counter()
    for index in range(USERS):
        points = [
            Point.xy(int(x), int(y))
            for x, y in zip(
                rng.integers(30, image.width - 30, size=5),
                rng.integers(30, image.height - 30, size=5),
            )
        ]
        username = f"user{index}"
        store.create_account(username, points)
        accounts[username] = points
    seconds = time.perf_counter() - start
    sizes = [len(shard) for shard in backend.shards]
    print(f"enrolled {USERS:,} users on a 4-shard store in {seconds:.1f}s")
    print(f"  {uri}")
    print(f"  shard populations: {sizes} (consistent-hash routing)")
    print(f"  merged password file covers {len(backend.usernames()):,} accounts")
    print()
    return store, accounts, (image.width, image.height)


def in_process_flood(store, accounts, bounds):
    """64 concurrent coroutines straight into the async service."""
    stream = mixed_stream(
        accounts, ATTEMPTS, wrong_fraction=0.2, bounds=bounds
    )
    service = AsyncVerificationService(store, max_batch=1024)
    report = asyncio.run(
        flood_service(service, stream, clients=CLIENTS, window=8)
    )
    stats = service.stats
    locked = sum(1 for username in accounts if store.is_locked(username))
    print(f"in-process flood ({CLIENTS} clients, window 8, 20% attacker traffic):")
    print(f"  {report.summary()}")
    print(f"  p99 {report.p99_ms:.2f}ms")
    print(
        f"  batching: {stats.flushes} flushes, mean batch "
        f"{stats.mean_batch:.0f}, largest {stats.largest_batch}"
    )
    print(f"  lockout (3-strike policy): {locked:,} of {len(accounts):,} accounts")
    print()


def tcp_flood(store, accounts, bounds):
    """The same protocol through real sockets (the `repro flood` shape)."""
    stream = mixed_stream(
        accounts, 2_000, wrong_fraction=0.2, seed=77, bounds=bounds
    )

    async def run():
        server = await LoginServer(store, max_batch=1024).start()
        host, port = server.address
        report = await flood_server(host, port, stream, clients=16)
        await server.aclose()
        return report

    report = run_result = asyncio.run(run())
    print("TCP flood (16 connections, JSONL protocol):")
    print(f"  {run_result.summary()}")
    print("  (same store, same throttles: TCP clients see the lockouts the")
    print("   in-process flood caused)")
    assert report.tally.get("error", 0) == 0


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        store, accounts, bounds = enroll_population(Path(tmp))
        in_process_flood(store, accounts, bounds)
        tcp_flood(store, accounts, bounds)
        store.backend.close()


if __name__ == "__main__":
    main()
