#!/usr/bin/env python3
"""Replicate the paper's security analysis (Figures 7 and 8, Section 5.1).

Builds the ≈2^36-entry human-seeded dictionary (all ordered 5-tuples of the
150 click-points from 30 lab passwords per image) and attacks the simulated
field-study passwords offline, with known grid identifiers — under both
comparison framings:

* equal grid-square sizes (Figure 7): the schemes perform similarly;
* equal guaranteed tolerance r (Figure 8): Robust Discretization's 6r
  cells are dramatically easier to crack (paper: 79% vs 26% at r=9).

Also prints the hash-only work-factor model (Section 5.1's last paragraph):
what withholding the clear grid identifiers costs an attacker under each
scheme.

Run:  python examples/dictionary_attack.py
"""

from __future__ import annotations

from repro.attacks import hash_only_work_factor
from repro import CenteredDiscretization, RobustDiscretization
from repro.experiments import figure7, figure8
from repro.experiments import default_dictionary


def main() -> None:
    dictionary = default_dictionary("cars")
    print(
        f"attack dictionary: {len(dictionary.seed_points)} seed points, "
        f"{dictionary.entry_count:,} ordered 5-tuples "
        f"(~2^{dictionary.bits:.1f})"
    )
    print()

    print(figure7.run().rendered())
    print()
    print(figure8.run().rendered())
    print()

    print("hash-only attacks (grid identifiers withheld, Section 5.1):")
    print(f"{'scheme':<22} {'ids/click':>10} {'extra work':>14} {'extra bits':>11}")
    for label, scheme in (
        ("robust (any r)", RobustDiscretization(2, 6)),
        ("centered 13x13", CenteredDiscretization.for_grid_size(2, 13)),
        ("centered 19x19", CenteredDiscretization.for_grid_size(2, 19)),
    ):
        factor = hash_only_work_factor(scheme, clicks=5)
        print(
            f"{label:<22} {factor['per_click_identifiers']:>10.0f} "
            f"{factor['multiplier']:>14.3g} {factor['extra_bits']:>11.1f}"
        )
    print()
    print("withholding identifiers multiplies Robust's attack cost by only")
    print("3^5 = 243 (~8 bits) but Centered's by 169^5 (~37 bits at 13x13) —")
    print("the clear identifier is far less damaging for Centered.")


if __name__ == "__main__":
    main()
