#!/usr/bin/env python3
"""Explore the theoretical password space (Table 3 and Section 2.2.2).

Reproduces the paper's Table 3 exactly, then goes beyond it: a sweep of
modern screen sizes, the equal-r comparison at several tolerances, the
text-password comparator, and the Blonder predefined-region baseline.

Run:  python examples/password_space_explorer.py
"""

from __future__ import annotations

from repro.analysis import (
    equal_r_comparison,
    password_space_bits,
    render_table,
    text_password_bits,
)
from repro.experiments import table3
from repro.passwords import BlonderSystem
from repro.study import cars_image


def main() -> None:
    print(table3.run().rendered())
    print()

    # Beyond the paper: modern display sizes at the paper's r = 9.
    rows = []
    for width, height, label in (
        (451, 331, "paper study image"),
        (1280, 720, "HD"),
        (1920, 1080, "full HD"),
        (3840, 2160, "4K"),
    ):
        rows.append(
            (
                f"{width}x{height}",
                label,
                round(password_space_bits(width, height, 19), 1),
                round(password_space_bits(width, height, 54), 1),
            )
        )
    print(
        render_table(
            ("image", "display", "centered bits (r=9)", "robust bits (r=9)"),
            rows,
            title="password space vs display size (5 clicks, equal r = 9 px)",
        )
    )
    print()

    rows = []
    for r in (3, 4, 6, 9, 12):
        comparison = equal_r_comparison(1920, 1080, r)
        rows.append(
            (
                r,
                f"{comparison['centered_grid_size']}px",
                f"{comparison['robust_grid_size']}px",
                round(comparison["centered_bits"], 1),
                round(comparison["robust_bits"], 1),
                round(comparison["advantage_bits"], 1),
            )
        )
    print(
        render_table(
            ("r", "centered cell", "robust cell", "centered bits",
             "robust bits", "advantage"),
            rows,
            title="equal-r comparison on 1920x1080 (5 clicks)",
        )
    )
    print()

    blonder = BlonderSystem.uniform_partition(cars_image(), rows=6, columns=8)
    print("comparators:")
    print(f"  random 8-char text password (95 symbols): {text_password_bits():.1f} bits")
    print(
        f"  Blonder predefined regions (6x8 = 48 regions, 5 clicks): "
        f"{blonder.password_space_bits():.1f} bits"
    )
    print(
        "  centered discretization, 451x331 @ 9x9 squares, 5 clicks: "
        f"{password_space_bits(451, 331, 9):.1f} bits"
    )


if __name__ == "__main__":
    main()
