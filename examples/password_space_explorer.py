#!/usr/bin/env python3
"""Explore the theoretical password space (Table 3 and Section 2.2.2).

Reproduces the paper's Table 3 exactly, then goes beyond it: a sweep of
modern screen sizes, the equal-r comparison at several tolerances, the
text-password comparator, the Blonder predefined-region baseline, and —
via the batch engine — the *empirical* effective space of simulated
users, whose hotspot clustering costs several bits per click relative to
the uniform theoretical value.

Run:  python examples/password_space_explorer.py
"""

from __future__ import annotations

import math

from repro import CenteredDiscretization
from repro.analysis import (
    effective_space_bits,
    empirical_cell_distribution,
    equal_r_comparison,
    password_space_bits,
    render_table,
    text_password_bits,
)
from repro.experiments import default_dataset, table3
from repro.passwords import BlonderSystem
from repro.study import cars_image


def main() -> None:
    print(table3.run().rendered())
    print()

    # Beyond the paper: modern display sizes at the paper's r = 9.
    rows = []
    for width, height, label in (
        (451, 331, "paper study image"),
        (1280, 720, "HD"),
        (1920, 1080, "full HD"),
        (3840, 2160, "4K"),
    ):
        rows.append(
            (
                f"{width}x{height}",
                label,
                round(password_space_bits(width, height, 19), 1),
                round(password_space_bits(width, height, 54), 1),
            )
        )
    print(
        render_table(
            ("image", "display", "centered bits (r=9)", "robust bits (r=9)"),
            rows,
            title="password space vs display size (5 clicks, equal r = 9 px)",
        )
    )
    print()

    rows = []
    for r in (3, 4, 6, 9, 12):
        comparison = equal_r_comparison(1920, 1080, r)
        rows.append(
            (
                r,
                f"{comparison['centered_grid_size']}px",
                f"{comparison['robust_grid_size']}px",
                round(comparison["centered_bits"], 1),
                round(comparison["robust_bits"], 1),
                round(comparison["advantage_bits"], 1),
            )
        )
    print(
        render_table(
            ("r", "centered cell", "robust cell", "centered bits",
             "robust bits", "advantage"),
            rows,
            title="equal-r comparison on 1920x1080 (5 clicks)",
        )
    )
    print()

    blonder = BlonderSystem.uniform_partition(cars_image(), rows=6, columns=8)
    print("comparators:")
    print(f"  random 8-char text password (95 symbols): {text_password_bits():.1f} bits")
    print(
        f"  Blonder predefined regions (6x8 = 48 regions, 5 clicks): "
        f"{blonder.password_space_bits():.1f} bits"
    )
    print(
        "  centered discretization, 451x331 @ 9x9 squares, 5 clicks: "
        f"{password_space_bits(451, 331, 9):.1f} bits"
    )
    print()

    # Theoretical space assumes users pick cells uniformly; real users
    # cluster on hotspots.  Discretize the simulated field study's clicks
    # through the batch engine and compare entropies.
    image = cars_image()
    clicks = [
        point
        for sample in default_dataset().passwords_on(image.name)
        for point in sample.points
    ]
    scheme = CenteredDiscretization.for_pixel_tolerance(2, 9)
    occupied = len(empirical_cell_distribution(scheme, clicks))
    effective = effective_space_bits(scheme, clicks, clicks=5)
    theoretical = password_space_bits(image.width, image.height, 19)
    print("hotspots vs theory (cars image, 19x19 centered cells, 5 clicks):")
    print(f"  observed click-points: {len(clicks)} in {occupied} distinct cells")
    print(f"  theoretical space: {theoretical:.1f} bits")
    print(
        f"  empirical effective space: {effective:.1f} bits "
        f"(ceiling log2(pool) = {5 * math.log2(len(clicks)):.1f})"
    )
    print(
        f"  hotspot cost: {theoretical - effective:.1f} bits "
        "- what clustering hands the attacker before any cracking starts"
    )


if __name__ == "__main__":
    main()
