#!/usr/bin/env python3
"""Quickstart: enroll and verify a click-based graphical password.

Demonstrates the library's core loop on all three discretization schemes —
the paper's Centered Discretization, the Robust Discretization baseline,
and the naive static grid — and shows exactly the behaviours the paper is
about:

* all schemes accept a login within tolerance of the original clicks;
* Robust Discretization *also* accepts clicks far away (false accepts) and
  can reject near ones (false rejects);
* the static grid rejects a 1-pixel miss across a cell edge (the edge
  problem).

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    CenteredDiscretization,
    Point,
    RobustDiscretization,
    StaticGridScheme,
)
from repro.passwords import PassPointsSystem
from repro.study import cars_image


def main() -> None:
    image = cars_image()
    password_points = [
        Point.xy(42, 61),
        Point.xy(130, 88),
        Point.xy(227, 154),
        Point.xy(318, 222),
        Point.xy(401, 290),
    ]

    print(f"image: {image.name} ({image.width}x{image.height})")
    print(f"password: {[(int(p.x), int(p.y)) for p in password_points]}")
    print()

    # A user re-entering the password is a few pixels off each time.
    close_attempt = [Point.xy(int(p.x) + 4, int(p.y) - 3) for p in password_points]
    far_attempt = [Point.xy(int(p.x) + 14, int(p.y)) for p in password_points]

    tolerance_px = 9
    schemes = [
        CenteredDiscretization.for_pixel_tolerance(dim=2, tolerance_px=tolerance_px),
        RobustDiscretization.for_pixel_tolerance(dim=2, tolerance_px=tolerance_px),
        StaticGridScheme(dim=2, cell_size=2 * tolerance_px + 1),
    ]
    print(f"guaranteed tolerance requested: {tolerance_px} px")
    print(f"{'scheme':<10} {'cell px':>8} {'exact':>6} {'4px off':>8} {'14px off':>9}")
    for scheme in schemes:
        system = PassPointsSystem(image=image, scheme=scheme)
        stored = system.enroll(password_points)
        print(
            f"{scheme.name:<10} {str(scheme.cell_size):>8} "
            f"{str(system.verify(stored, password_points)):>6} "
            f"{str(system.verify(stored, close_attempt)):>8} "
            f"{str(system.verify(stored, far_attempt)):>9}"
        )

    print()
    print("what the table shows:")
    print(" * centered: accepts iff every click is within 9 px — exactly the")
    print("   tolerance the user was promised (no false accepts/rejects).")
    print(" * robust: same guarantee, but its 57-px cells also accept the")
    print("   14-px-off attempt — a false accept (paper, Section 2.2.1).")
    print(" * static: no guarantee at all; a click next to a grid line is")
    print("   one pixel from rejection (the edge problem, Section 2).")

    # The edge problem, concretely.
    static = StaticGridScheme(dim=2, cell_size=19)
    edge_click = Point.xy(37, 100)  # 1 px left of the x=38 grid line
    enrolled = static.enroll(edge_click)
    neighbour = Point.xy(38, 100)
    print()
    print(
        f"static grid edge problem: original {(37, 100)} accepted="
        f"{static.accepts(enrolled, edge_click)}, 1 px right {(38, 100)} "
        f"accepted={static.accepts(enrolled, neighbour)}"
    )


if __name__ == "__main__":
    main()
