#!/usr/bin/env python3
"""Pluggable storage backends + the batched verification service.

The paper's deployment (§3.1–3.2, §5.1) is a server holding salted hash
records and throttling logins.  This example exercises that server as a
real subsystem:

1. **Enroll once, resume forever** — a population enrolls into a durable
   SQLite backend; reopening the same URI skips re-enrollment and keeps
   lockout state (a locked account stays locked across restarts).
2. **The password file is an artifact** — ``dump()`` produces the same
   JSON from every backend (memory / SQLite / append-only JSONL); we
   steal it and grind it offline with popularity-ordered guesses.
3. **Micro-batched serving** — a login flood goes through
   ``VerificationService``, which resolves the geometry of a whole batch
   in one vectorized kernel call while preserving per-account lockout
   ordering bit-for-bit.

Run:  python examples/storage_backends.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import CenteredDiscretization, RobustDiscretization
from repro.attacks import offline_attack_stolen_file
from repro.errors import LockoutError
from repro.experiments import default_dataset, default_dictionary, enrolled_store
from repro.geometry.point import Point
from repro.passwords import VerificationService, backend_from_uri
from repro.study import cars_image


def shifted(points, dx: int, dy: int = 0):
    """Shift click-points, clamped to the cars image domain."""
    image = cars_image()
    return [
        Point.xy(
            min(max(int(p.x) + dx, 0), image.width - 1),
            min(max(int(p.y) + dy, 0), image.height - 1),
        )
        for p in points
    ]


def enroll_and_resume(workdir: Path) -> str:
    scheme = CenteredDiscretization.for_pixel_tolerance(2, 9)
    uri = f"sqlite:{workdir / 'population.db'}"

    store = enrolled_store(scheme, image_name="cars", backend_uri=uri, victims=25)
    first_count = len(store.usernames)
    # Lock one account the §5.1 way: three wrong attempts.
    victim = store.usernames[0]
    for _ in range(3):
        try:
            store.login(victim, shifted(default_dataset().passwords_on("cars")[0].points, -25))
        except LockoutError:
            break
    store.backend.close()

    # Reopen the same URI: no re-enrollment, and the lockout survived.
    store = enrolled_store(scheme, image_name="cars", backend_uri=uri, victims=25)
    print("enroll-once / resume on a durable backend:")
    print(f"  {uri}")
    print(f"  first open enrolled {first_count} accounts; "
          f"reopen found {len(store.usernames)} (no re-enrollment)")
    print(f"  lockout survived restart: is_locked({victim}) = {store.is_locked(victim)}")
    print()
    store.backend.close()
    return uri


def steal_and_grind(workdir: Path, uri: str) -> None:
    scheme = CenteredDiscretization.for_pixel_tolerance(2, 9)
    backend = backend_from_uri(uri)
    payload = backend.dump()  # the theft — same JSON from any backend
    backend.close()

    # The stolen artifact is backend-agnostic: replaying it into an
    # append-only JSONL log yields a byte-identical password file.
    log = backend_from_uri(f"jsonl:{workdir / 'stolen.jsonl'}")
    log.load(payload)
    assert log.dump() == payload
    log.close()

    print("offline grind of stolen password files (300 guesses/record):")
    robust_store = enrolled_store(
        RobustDiscretization(2, 9), image_name="cars", victims=25
    )
    for grind_scheme, stolen in (
        (scheme, payload),
        (robust_store.system.scheme, robust_store.dump_records()),
    ):
        result = offline_attack_stolen_file(
            grind_scheme, stolen, default_dictionary("cars"), guess_budget=300
        )
        print(f"  {result.scheme_name:<10} cracked {result.cracked}/{result.attacked} "
              f"accounts ({result.cracked_fraction:.0%}) at "
              f"{result.hash_operations} hashes")
    print("  (a budget this small cracks nothing — the paper's offline threat")
    print("   is the full 2^36 enumeration, reproduced in closed form by")
    print("   experiments figure7/figure8)")
    print()


def batched_service() -> None:
    scheme = CenteredDiscretization.for_pixel_tolerance(2, 9)
    store = enrolled_store(scheme, image_name="cars", victims=20)
    service = VerificationService(store, max_batch=256)

    samples = default_dataset().passwords_on("cars")[:20]
    attempts = []
    for sample in samples:
        username = f"user{sample.password_id}"
        attempts.append((username, list(sample.points)))            # accept
        attempts.append((username, shifted(sample.points, -3, 2)))  # within r
        attempts.append((username, shifted(sample.points, -30)))    # reject
    outcomes = service.login_many(attempts)
    tally = {status: 0 for status in ("accept", "reject", "locked")}
    for outcome in outcomes:
        tally[outcome.status] += 1
    print("micro-batched verification service (one kernel call per batch):")
    print(f"  {len(outcomes)} attempts -> {tally['accept']} accepted, "
          f"{tally['reject']} rejected, {tally['locked']} lockout-refused")
    store.backend.close()


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        workdir = Path(tmp)
        uri = enroll_and_resume(workdir)
        steal_and_grind(workdir, uri)
    batched_service()


if __name__ == "__main__":
    main()
