#!/usr/bin/env python3
"""A production-scale stolen-file grind: 10⁶ accounts through the queue.

The paper's §5.1 threat at deployed-system scale: an attacker who dumped a
million-account graphical-password file grinds every record against the
human-seeded dictionary.  The demo streams the population through the
work-stealing attack engine in enrollment *waves* — enroll a wave,
grind it, discard it — so peak memory stays a wave's worth of records
(not 1.5 GB of a million ``StoredPassword`` objects) while the engine
reuses one worker pool, and each worker its cached scheme/kernel/guess
arrays, across every wave.

One account in ten is a *victim* enrolled on an actual dictionary entry
(they crack — and early-stop — at their entry's rank); the rest are
enrolled far outside the dictionary's click-points and survive the whole
budget.  That 10:1 mix makes per-account cost skewed, which is exactly
the workload shape the queue scheduler exists for.

Configuration is via environment variables so the same script is both the
CI smoke test and the full benchmark:

* ``GRIND_ACCOUNTS`` — population size (default 1500; ``make grind-bench``
  sets 1,000,000)
* ``GRIND_BUDGET``   — guesses per account (default 64)
* ``GRIND_WORKERS``  — worker processes (default: schedulable CPUs)
* ``GRIND_TASK_SIZE`` — accounts per queue task (default: auto)
* ``GRIND_WAVE``     — accounts enrolled/ground per wave (default 50,000)
* ``GRIND_REPORT``   — when set, append the throughput/straggler section
  to ``benchmarks/reports/attack_throughput.txt``

Run:  python examples/grind_million.py
      make grind-bench          # the full 10⁶-account version
"""

from __future__ import annotations

import os
import time

from repro.attacks.offline import prepare_guess_batch
from repro.attacks.parallel import ShardedAttackRunner, default_workers
from repro.core.centered import CenteredDiscretization
from repro.crypto.hashing import Hasher
from repro.experiments.common import default_dictionary
from repro.geometry.point import Point
from repro.passwords.system import enroll_password

#: Every tenth account is enrolled on a dictionary entry (and cracks).
VICTIM_EVERY = 10

#: Coordinate shift putting survivor click-points far outside every
#: dictionary cell (cells are tens of pixels; this is thousands).
SURVIVOR_SHIFT = 4096


def _env_int(name: str, default: int) -> int:
    value = int(os.environ.get(name, default))
    if value < 1:
        raise SystemExit(f"{name} must be >= 1, got {value}")
    return value


def enroll_wave(scheme, entries, start, count):
    """Enroll accounts ``start .. start+count`` of the synthetic population.

    Victims (every :data:`VICTIM_EVERY`-th account) reuse dictionary entry
    ``index % len(entries)`` verbatim; survivors take the same entry's
    points shifted :data:`SURVIVOR_SHIFT` pixels out of dictionary range.
    """
    records = {}
    for index in range(start, start + count):
        username = f"acct{index:07d}"
        entry = entries[index % len(entries)]
        if index % VICTIM_EVERY == 0:
            points = entry
        else:
            jitter = index % 7
            points = [
                Point.xy(
                    int(p.x) + SURVIVOR_SHIFT + jitter,
                    int(p.y) + SURVIVOR_SHIFT,
                )
                for p in entry
            ]
        records[username] = enroll_password(
            scheme, points, Hasher(salt=username.encode())
        )
    return records


def main() -> None:
    accounts = _env_int("GRIND_ACCOUNTS", 1500)
    budget = _env_int("GRIND_BUDGET", 64)
    workers = int(os.environ.get("GRIND_WORKERS", 0)) or None
    task_size = int(os.environ.get("GRIND_TASK_SIZE", 0)) or None
    wave_size = _env_int("GRIND_WAVE", 50_000)

    scheme = CenteredDiscretization.for_pixel_tolerance(2, 9)
    dictionary = default_dictionary("cars")
    # Victim entries must sit inside the guess budget so they crack.
    entries = list(dictionary.prioritized_entries(budget))
    # Fail fast if the dictionary/budget combination is degenerate.
    prepare_guess_batch(dictionary, budget, scheme.dim)

    runner = ShardedAttackRunner(workers=workers, mode="queue", task_size=task_size)
    print(
        f"stolen-file grind: {accounts:,} accounts x {budget} guesses "
        f"({scheme.name}, r=9), {runner.effective_workers} worker(s), "
        f"queue mode, waves of {min(wave_size, accounts):,}"
    )

    cracked = hashes = ground = 0
    busy = {}
    enroll_seconds = grind_seconds = 0.0
    started = time.perf_counter()
    waves = range(0, accounts, wave_size)
    for wave_index, wave_start in enumerate(waves):
        count = min(wave_size, accounts - wave_start)
        tick = time.perf_counter()
        records = enroll_wave(scheme, entries, wave_start, count)
        enroll_seconds += time.perf_counter() - tick

        tick = time.perf_counter()
        result = runner.run_stolen_file(
            scheme, records, dictionary, guess_budget=budget
        )
        grind_seconds += time.perf_counter() - tick

        ground += result.attacked
        cracked += result.cracked
        hashes += result.hash_operations
        for pid, seconds in runner.last_stats.worker_busy.items():
            busy[pid] = busy.get(pid, 0.0) + seconds
        print(
            f"  wave {wave_index + 1}/{len(waves)}: {ground:,}/{accounts:,} "
            f"accounts ground, {cracked:,} cracked, "
            f"{ground / max(grind_seconds, 1e-9):,.0f} accounts/s grinding",
            flush=True,
        )
    runner.close()
    wall = time.perf_counter() - started

    mean_busy = sum(busy.values()) / max(len(busy), 1)
    straggler = (max(busy.values()) / mean_busy) if mean_busy > 0 else 1.0
    lines = [
        f"ground {ground:,} accounts in {wall:.1f}s wall "
        f"({enroll_seconds:.1f}s enrolling, {grind_seconds:.1f}s grinding)",
        f"cracked {cracked:,}/{ground:,} "
        f"({cracked / ground:.1%}; every {VICTIM_EVERY}th account is a "
        f"planted victim), {hashes:,} hashes "
        f"({hashes / max(grind_seconds, 1e-9):,.0f} hashes/s while grinding)",
        f"straggler tail (max/mean worker busy): {straggler:.2f} across "
        f"{len(busy)} worker(s)",
    ]
    print()
    for line in lines:
        print(line)

    if os.environ.get("GRIND_REPORT"):
        path = os.path.join(
            os.path.dirname(__file__),
            os.pardir,
            "benchmarks",
            "reports",
            "attack_throughput.txt",
        )
        section = "\n".join(
            [
                "",
                f"{accounts:,}-account stolen-file grind "
                f"(examples/grind_million.py, {runner.effective_workers} "
                f"worker(s) of {default_workers()} schedulable, queue mode):",
            ]
            + [f"  {line}" for line in lines]
        )
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(section + "\n")
        print(f"\nappended grind section to {os.path.normpath(path)}")


if __name__ == "__main__":
    main()
