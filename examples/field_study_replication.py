#!/usr/bin/env python3
"""Replicate the paper's usability analysis (Tables 1 and 2).

Simulates the field study the paper analyzed (191 participants, 481
PassPoints passwords, 3339 login attempts on the Cars and Pool images),
replays every login attempt under Robust and Centered Discretization, and
prints the false-accept / false-reject tables with the paper's published
values alongside.

Run:  python examples/field_study_replication.py
"""

from __future__ import annotations

from repro.experiments import table1, table2
from repro.experiments import default_dataset


def main() -> None:
    dataset = default_dataset()
    summary = dataset.summary()
    print("simulated field study (stand-in for Chiasson et al. SOUPS 2007 data):")
    print(
        f"  {summary['participants']} participants, "
        f"{summary['passwords']} passwords, {summary['logins']} login attempts"
    )
    for name, counts in summary["images"].items():
        print(
            f"  {name}: {counts['passwords']} passwords, "
            f"{counts['logins']} logins"
        )
    print()

    print(table1.run(dataset).rendered())
    print()
    print(table2.run(dataset).rendered())
    print()
    print("reading the tables:")
    print(" * equal square size (Table 1): Robust falsely rejects a large")
    print("   share of honest logins — the acceptance cell is not centered")
    print("   on the click-point, so clicks slightly past the near edge lose.")
    print(" * equal guaranteed r (Table 2): Robust never falsely rejects but")
    print("   must use 6r-px cells, silently accepting clicks up to 5r away.")
    print(" * Centered Discretization scores zero on both error types, in")
    print("   both framings, on every attempt — measured, not assumed.")


if __name__ == "__main__":
    main()
