#!/usr/bin/env python3
"""Online attacks against a live store, and the CCP/PCCP systems.

Two scenarios beyond the paper's offline analysis:

1. **Online dictionary attack** (Section 5.1): a throttled login interface
   (3-strike lockout) attacked with popularity-ordered guesses, at equal r
   for both schemes.  Smaller cells + lockout make online guessing nearly
   hopeless against Centered Discretization.
2. **Cued Click-Points / Persuasive CCP**: the successor systems the paper
   discusses (Section 2), built on the same discretization layer — showing
   the implicit-feedback image path and PCCP's viewport-constrained
   password creation.

Run:  python examples/online_attack_and_ccp.py
"""

from __future__ import annotations

import numpy as np

from repro.attacks import online_attack
from repro import CenteredDiscretization, RobustDiscretization
from repro.experiments import default_dictionary, enrolled_store
from repro.passwords import CCPSystem, PCCPSystem
from repro.study import canonical_images


def online_attack_scenario() -> None:
    dictionary = default_dictionary("cars")

    print("online dictionary attack, 3-strike lockout, 100-guess budget:")
    print(f"{'scheme':<12} {'compromised':>12} {'locked out':>11} {'guesses':>8}")
    for scheme in (
        CenteredDiscretization.for_pixel_tolerance(2, 9),
        RobustDiscretization(2, 9),
    ):
        # The population enrolls once through the storage layer (memory:
        # here; pass a sqlite:/jsonl: URI to persist and resume — see
        # examples/storage_backends.py).
        store = enrolled_store(scheme, image_name="cars", victims=40)
        victims = store.usernames
        result = online_attack(store, dictionary, guess_budget=100)
        print(
            f"{scheme.name:<12} "
            f"{result.compromised:>7}/{len(victims):<4} "
            f"{result.locked_fraction:>10.0%} "
            f"{result.total_guesses:>8}"
        )
    print()


def ccp_scenario() -> None:
    from repro.geometry.point import Point

    images = canonical_images()
    scheme = CenteredDiscretization.for_pixel_tolerance(2, 9)
    ccp = CCPSystem(images=images, scheme=scheme)

    points = [
        Point.xy(42, 61),
        Point.xy(130, 88),
        Point.xy(227, 154),
        Point.xy(318, 222),
        Point.xy(401, 290),
    ]
    stored = ccp.enroll(points)
    good_path = ccp.image_path(stored, points)
    wrong = list(points)
    wrong[1] = Point.xy(int(points[1].x) + 60, int(points[1].y) + 60)
    wrong_path = ccp.image_path(stored, wrong)

    names = [images[i].name for i in good_path]
    wrong_names = [images[i].name for i in wrong_path]
    print("cued click-points (one click per image, path follows the clicks):")
    print(f"  correct-login image sequence: {' -> '.join(names)}")
    print(f"  wrong-2nd-click sequence:     {' -> '.join(wrong_names)}")
    print(f"  verify(correct) = {ccp.verify(stored, points)}, "
          f"verify(wrong) = {ccp.verify(stored, wrong)}")
    print("  (a diverging image path is the user's implicit cue that the")
    print("   previous click was wrong — without the system saying so)")
    print()

    rng = np.random.default_rng(11)
    pccp = PCCPSystem(ccp=ccp)
    created_points, pccp_stored = pccp.create_password(rng)
    print("persuasive CCP (creation constrained to a random 75px viewport):")
    print(
        "  system-influenced click-points: "
        f"{[(int(p.x), int(p.y)) for p in created_points]}"
    )
    print(f"  verify(created) = {pccp.verify(pccp_stored, list(created_points))}")


def main() -> None:
    online_attack_scenario()
    ccp_scenario()


if __name__ == "__main__":
    main()
