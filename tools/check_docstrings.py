#!/usr/bin/env python3
"""Fail when public symbols in the library lack docstrings.

Walks every module under ``src/repro`` and reports:

* modules without a module docstring;
* public classes (not ``_``-prefixed) without a class docstring;
* public functions and methods without a docstring.

Exempt: ``_``-private symbols, dunder methods (their contracts come from
the data model), and ``__init__``/``__post_init__`` (documented in their
class docstring's Parameters section).  Everything else public needs at
least a one-line summary; this checker is the ``make docs-check`` gate
enforcing that bar.

Exit status: 0 when clean, 1 with a per-symbol report otherwise.

Usage::

    python tools/check_docstrings.py [root ...]

Roots default to ``src/repro``.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

#: Names that never need docstrings: dunders get their contract from the
#: data model, and these two carry no API surface of their own.
EXEMPT_NAMES = {"__post_init__", "__init__"}


def is_public(name: str) -> bool:
    """Public means not underscore-prefixed (dunders are handled apart)."""
    return not name.startswith("_")


def iter_missing(path: Path) -> Iterator[Tuple[int, str]]:
    """Yield ``(line, description)`` for each missing docstring in *path*."""
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    if ast.get_docstring(tree) is None:
        yield 1, "module docstring missing"

    def walk(node: ast.AST, prefix: str) -> Iterator[Tuple[int, str]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                if is_public(child.name):
                    if ast.get_docstring(child) is None:
                        yield child.lineno, f"class {prefix}{child.name}"
                    yield from walk(child, f"{prefix}{child.name}.")
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                name = child.name
                if name in EXEMPT_NAMES:
                    continue
                if name.startswith("__") and name.endswith("__"):
                    continue
                if not is_public(name):
                    continue
                if ast.get_docstring(child) is None:
                    yield child.lineno, f"def {prefix}{name}"

    yield from walk(tree, "")


def main(argv: List[str]) -> int:
    """Check all roots; print a report and return the exit status."""
    roots = [Path(a) for a in argv[1:]] or [Path("src/repro")]
    failures: List[str] = []
    checked = 0
    for root in roots:
        files = sorted(root.rglob("*.py")) if root.is_dir() else [root]
        for path in files:
            checked += 1
            for line, what in iter_missing(path):
                failures.append(f"{path}:{line}: {what}")
    if failures:
        print("\n".join(failures))
        print(f"\n{len(failures)} public symbol(s) without docstrings "
              f"across {checked} file(s)")
        return 1
    print(f"docstrings ok: {checked} file(s) clean")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
