# Development entry points.  Everything runs against src/ directly —
# there is no build step.  `make test` is the tier-1 gate; `make
# docs-check` enforces the docstring bar described in docs/architecture.md.

PYTHON ?= python
PYTHONPATH := src

export PYTHONPATH

.PHONY: test unit bench bench-store serve-bench attack-bench defense-bench obs-bench cluster-bench durable-bench grind-bench examples docs-check check

## Full tier-1 run: tests + benchmark reproduction gates.
test:
	$(PYTHON) -m pytest -x -q

## Unit tests only (fast inner loop; skips the benchmark suites).
unit:
	$(PYTHON) -m pytest tests -x -q

## Benchmarks only, with timing tables and archived reports.
bench:
	$(PYTHON) -m pytest benchmarks -q

## Store/serving throughput gate only (>=10x batched-service floor).
bench-store:
	$(PYTHON) -m pytest benchmarks/test_bench_store.py -q

## Async serving gate only; regenerates benchmarks/reports/serving_throughput.txt.
serve-bench:
	$(PYTHON) -m pytest benchmarks/test_bench_serving.py -q

## Parallel attack gate only; regenerates benchmarks/reports/attack_throughput.txt.
attack-bench:
	$(PYTHON) -m pytest benchmarks/test_bench_attacks.py -q

## Defense-layer gate (neutral cell < 5% serving cost); regenerates
## benchmarks/reports/defense_matrix.txt with the full defense/attack matrix.
defense-bench:
	$(PYTHON) -m pytest benchmarks/test_bench_defense.py -q

## Telemetry overhead gate (instrumented serving >= 95% of the no-op
## registry) plus the metrics wire round-trip; regenerates
## benchmarks/reports/obs_overhead.txt.
obs-bench:
	$(PYTHON) -m pytest benchmarks/test_bench_obs.py -q

## Million-user soak of the shard-per-process serving cluster: parallel
## enrollment across workers, 64-connection pipelined flood through the
## router, then the 4->8 live reshard drill; regenerates
## benchmarks/reports/cluster_throughput.txt.
cluster-bench:
	CLUSTER_USERS=1000000 CLUSTER_ATTEMPTS=200000 \
		$(PYTHON) -m pytest benchmarks/test_bench_cluster.py -q

## Group-commit write-path gate on a durable backend: sqlite-backed async
## serving flood >=3x the forced per-record-commit path, plus the bulk
## enrollment (enroll_many) gate; regenerates
## benchmarks/reports/durable_throughput.txt (+ .json).
durable-bench:
	DURABLE_ATTEMPTS=8000 DURABLE_ENROLL_ACCOUNTS=500 \
		$(PYTHON) -m pytest benchmarks/test_bench_durable.py -q

## Million-account stolen-file grind through the work-stealing queue;
## appends its throughput/straggler section to
## benchmarks/reports/attack_throughput.txt.
grind-bench:
	GRIND_ACCOUNTS=1000000 GRIND_BUDGET=64 GRIND_REPORT=1 \
		$(PYTHON) examples/grind_million.py

## Execute every example end-to-end.
examples:
	@set -e; for script in examples/*.py; do \
		echo "== $$script"; \
		$(PYTHON) $$script > /dev/null; \
	done; echo "all examples ok"

## Fail when any public symbol lacks a docstring.
docs-check:
	$(PYTHON) tools/check_docstrings.py src/repro tools

## Everything a PR must pass.
check: docs-check test
