"""Scheme-neutral discretization interface.

A *discretization scheme* turns a continuous point into two pieces:

* **public** material, stored in the clear (Robust: the chosen grid
  identifier; Centered: the per-axis offsets ``d``), and
* a **secret** integer index vector (the grid-square / segment indices),
  which is never stored directly — only inside a hash.

Verification never sees the original point: it re-discretizes a candidate
point *under the stored public material* and compares the resulting index
vector (in deployment, compares hashes).  This interface captures exactly
that contract, so PassPoints, the analysis harness and the attacks can be
written once and run against Centered Discretization, Robust Discretization
or the naive static grid.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.crypto.encoding import Encodable
from repro.errors import DimensionMismatchError
from repro.geometry.numbers import RealLike
from repro.geometry.point import Point
from repro.geometry.region import Box

__all__ = ["Discretization", "DiscretizationScheme"]


@dataclass(frozen=True, slots=True)
class Discretization:
    """The result of discretizing one point.

    ``public`` is clear-text material; ``secret`` is the index vector that
    goes inside the hash.  Together with the scheme parameters they fully
    determine the acceptance region.
    """

    public: Tuple[Encodable, ...]
    secret: Tuple[int, ...]


class DiscretizationScheme(abc.ABC):
    """Common interface of all discretization schemes.

    Concrete schemes (:class:`~repro.core.centered.CenteredDiscretization`,
    :class:`~repro.core.robust.RobustDiscretization`,
    :class:`~repro.core.static.StaticGridScheme`) implement :meth:`enroll`,
    :meth:`locate` and :meth:`acceptance_region`; everything else derives.
    """

    #: Human-readable scheme name, set by subclasses.
    name: str = "abstract"

    def __init__(self, dim: int) -> None:
        if dim < 1:
            raise DimensionMismatchError(f"dim must be >= 1, got {dim}")
        self._dim = dim
        self._batch_kernel: "object | None" = None
        self._batch_kernels: "dict[object, object]" = {}

    # -- abstract ----------------------------------------------------------

    @abc.abstractmethod
    def enroll(self, point: Point) -> Discretization:
        """Discretize an *original* (enrollment-time) point.

        May raise :class:`~repro.errors.EnrollmentError` when the scheme
        cannot discretize the point (cannot happen for the schemes in this
        library, by the papers' guarantees, but the contract allows it).
        """

    @abc.abstractmethod
    def locate(
        self, point: Point, public: Tuple[Encodable, ...]
    ) -> Tuple[int, ...]:
        """Index vector of *point* under stored *public* material.

        This is the verification-side computation: it must not depend on
        the original point, only on what the password file stores.
        """

    @abc.abstractmethod
    def acceptance_region(self, discretization: Discretization) -> Box:
        """The half-open region of points accepted against *discretization*."""

    @property
    @abc.abstractmethod
    def guaranteed_tolerance(self) -> RealLike:
        """Minimum r such that any point within r (Chebyshev) is accepted."""

    @property
    @abc.abstractmethod
    def cell_size(self) -> RealLike:
        """Side length of the scheme's (hyper-)square cells."""

    # -- derived -----------------------------------------------------------

    @property
    def dim(self) -> int:
        """Dimensionality of the space the scheme operates in."""
        return self._dim

    def accepts(self, discretization: Discretization, candidate: Point) -> bool:
        """Whether *candidate* verifies against an enrolled discretization.

        Equivalent to the deployed hash comparison: the candidate's index
        vector under the stored public material must equal the enrolled
        secret index vector.
        """
        return self.locate(candidate, discretization.public) == discretization.secret

    def max_accepted_distance(self, discretization: Discretization) -> RealLike:
        """Largest Chebyshev distance from the *region center* still accepted.

        For Centered Discretization this equals ``r`` (the region is centered
        on the original point).  For Robust Discretization the region is not
        centered on the original point, so the worst-case accepted distance
        from the original point can reach ``5r`` (paper §2.2.1) — see
        :mod:`repro.core.tolerance` for the original-point-relative bounds.
        """
        region = self.acceptance_region(discretization)
        return max(region.side(k) for k in range(region.dim)) / 2

    def _check_point(self, point: Point) -> None:
        """Validate dimensionality of an input point."""
        if point.dim != self._dim:
            raise DimensionMismatchError(
                f"{self.name}: point is {point.dim}-D, scheme is {self._dim}-D"
            )

    def enroll_many(self, points: Sequence[Point]) -> Tuple[Discretization, ...]:
        """Enroll several click-points (one password) at once."""
        return tuple(self.enroll(p) for p in points)

    def batch(self, xp=None) -> "BatchKernel":
        """The vectorized kernel mirroring this scheme instance.

        Lazily built on first use and cached on the instance; all batch
        entry points (:func:`repro.core.batch.discretize_batch`,
        :func:`~repro.core.batch.verify_batch`,
        :func:`~repro.core.batch.acceptance_region_batch`) route through
        it.  The scalar methods remain the exact-arithmetic reference
        implementation.

        *xp* injects an array namespace (a backend name or any object
        duck-typing the NumPy API — see
        :func:`repro.core.batch.resolve_array_namespace`); kernels are
        cached per namespace.  The default kernel computes on NumPy
        unless the ``REPRO_ARRAY_BACKEND`` environment variable names
        another backend when it is first built.
        """
        from repro.core.batch import batch_kernel_for, resolve_array_namespace

        if xp is None:
            if self._batch_kernel is None:
                self._batch_kernel = batch_kernel_for(self)
            return self._batch_kernel  # type: ignore[return-value]
        namespace = resolve_array_namespace(xp)
        if (
            self._batch_kernel is not None
            and self._batch_kernel.xp is namespace  # type: ignore[attr-defined]
        ):
            return self._batch_kernel  # type: ignore[return-value]
        kernel = self._batch_kernels.get(namespace)
        if kernel is None:
            kernel = batch_kernel_for(self, namespace)
            self._batch_kernels[namespace] = kernel
        return kernel  # type: ignore[return-value]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(dim={self._dim}, "
            f"r={self.guaranteed_tolerance!r}, cell={self.cell_size!r})"
        )
