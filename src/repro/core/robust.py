"""Robust Discretization (Birget, Hong, Memon 2006) — the paper's baseline.

To guarantee a minimum tolerance ``r`` without centering, Robust
Discretization overlays ``dim + 1`` candidate grids (three in 2-D), each
with (hyper-)square cells of side ``2·(dim+1)·r`` (6r in 2-D), diagonally
offset from one another by ``2r`` along every axis.  For any point, at
least one grid leaves the point **r-safe** — at least ``r`` away from every
edge of the cell containing it (the paper's and Birget et al.'s
three-grids-suffice argument; property-tested in this repository for 1-D
through 4-D).

Enrollment picks an r-safe grid, stores the grid identifier in the clear and
the cell index in the hash.  Verification locates the candidate point in the
*stored* grid.  Because the point is only guaranteed to be ``r``-safe — not
centered — a login click can be rejected as little as ``r`` away in one
direction (a *false reject* w.r.t. centered tolerance) yet accepted up to
``(2(dim+1) − 1)·r = 5r`` away in the other (a *false accept*), which is the
usability/security defect the paper quantifies (§2.2.1, Tables 1–2).

Implementation notes mirroring the paper's §4:

* The original authors never implemented the scheme; grid-selection policy
  when several grids are r-safe was left unspecified.  The paper's
  reconstruction used an "optimal" policy — pick the grid where the point
  is closest to its cell center — implemented here as
  :attr:`GridSelection.MOST_CENTERED` (the default), alongside
  :attr:`GridSelection.FIRST_SAFE` and :attr:`GridSelection.RANDOM_SAFE`
  for ablation.
* All computations use exact rational arithmetic ("We used real numbers for
  our computations and comparisons to minimize rounding errors").
"""

from __future__ import annotations

import enum
from typing import Callable, Optional, Tuple

from repro.crypto.encoding import Encodable
from repro.errors import EnrollmentError, ParameterError, VerificationError
from repro.geometry.grid import Grid, square_grid_family
from repro.geometry.numbers import (
    RealLike,
    as_exact,
    r_for_pixel_tolerance,
    robust_r_for_grid_size,
    validate_positive,
)
from repro.geometry.point import Point
from repro.geometry.region import Box
from repro.core.scheme import Discretization, DiscretizationScheme

__all__ = ["GridSelection", "RobustDiscretization"]


class GridSelection(enum.Enum):
    """Policy for choosing among multiple r-safe grids at enrollment.

    ``MOST_CENTERED`` reproduces the paper's optimal reconstruction: among
    safe grids, pick the one whose cell the point is most central in
    (maximum margin to the nearest edge); ties break toward the lowest grid
    identifier, deterministically.
    """

    FIRST_SAFE = "first_safe"
    MOST_CENTERED = "most_centered"
    RANDOM_SAFE = "random_safe"


class RobustDiscretization(DiscretizationScheme):
    """Robust Discretization in ``dim`` dimensions with tolerance ``r``.

    Public material is the 1-tuple ``(g,)`` naming the selected grid
    (``0 ≤ g ≤ dim``); the secret is the cell-index vector in that grid.

    Parameters
    ----------
    dim:
        Dimensionality; 2-D gives the classic 3-grid, 6r-cell scheme.
    r:
        Guaranteed minimum tolerance.  Use :meth:`for_grid_size` to build
        the scheme from a target cell side instead (r = side / (2(dim+1))).
    selection:
        Grid-selection policy (default: the paper's MOST_CENTERED).
    rng:
        Callable returning a float in [0, 1); required only for
        ``RANDOM_SAFE`` (e.g. ``numpy.random.Generator.random``).

    >>> from repro.geometry.point import Point
    >>> scheme = RobustDiscretization(dim=2, r=3)
    >>> scheme.cell_size, scheme.grid_count
    (18, 3)
    >>> enrolled = scheme.enroll(Point.xy(100, 100))
    >>> scheme.accepts(enrolled, Point.xy(102, 99))
    True
    """

    name = "robust"

    def __init__(
        self,
        dim: int,
        r: RealLike,
        selection: GridSelection = GridSelection.MOST_CENTERED,
        rng: Optional[Callable[[], float]] = None,
        exact: bool = True,
    ) -> None:
        super().__init__(dim)
        validate_positive(r, "r")
        if not isinstance(selection, GridSelection):
            raise ParameterError(
                f"selection must be a GridSelection, got {selection!r}"
            )
        if selection is GridSelection.RANDOM_SAFE and rng is None:
            raise ParameterError("RANDOM_SAFE selection requires an rng")
        self._r: RealLike = as_exact(r) if exact else r
        self._selection = selection
        self._rng = rng
        # dim + 1 grids of side 2(dim+1)r, diagonally offset by 2r each.
        # The family is LRU-cached: experiment sweeps and attack loops build
        # many schemes at the same tolerance and share one partition table.
        side = 2 * (dim + 1) * self._r
        step = 2 * self._r
        self._grids: Tuple[Grid, ...] = square_grid_family(
            dim, side, step, dim + 1
        )

    # -- constructors ------------------------------------------------------

    @classmethod
    def for_grid_size(
        cls,
        dim: int,
        grid_size: int,
        selection: GridSelection = GridSelection.MOST_CENTERED,
        rng: Optional[Callable[[], float]] = None,
    ) -> "RobustDiscretization":
        """Scheme whose cells have side ``grid_size``.

        In 2-D, r = grid_size / 6 — the "Robust Discr. r" column of the
        paper's Table 3 (e.g. 13×13 → r = 13/6 ≈ 2.17 px).
        """
        if dim == 2:
            r = robust_r_for_grid_size(grid_size)
        else:
            from fractions import Fraction

            if grid_size <= 0:
                raise ParameterError(f"grid_size must be > 0, got {grid_size}")
            r = Fraction(grid_size, 2 * (dim + 1))
        return cls(dim, r, selection=selection, rng=rng)

    @classmethod
    def for_pixel_tolerance(
        cls,
        dim: int,
        tolerance_px: int,
        selection: GridSelection = GridSelection.MOST_CENTERED,
        rng: Optional[Callable[[], float]] = None,
    ) -> "RobustDiscretization":
        """Scheme guaranteeing an integer pixel tolerance (r = t + ½)."""
        return cls(
            dim, r_for_pixel_tolerance(tolerance_px), selection=selection, rng=rng
        )

    # -- scheme interface ----------------------------------------------------

    @property
    def r(self) -> RealLike:
        """The guaranteed minimum tolerance parameter."""
        return self._r

    @property
    def guaranteed_tolerance(self) -> RealLike:
        """Any point within r (Chebyshev) of the original is accepted."""
        return self._r

    @property
    def cell_size(self) -> RealLike:
        """Cells have side 2(dim+1)·r — 6r in 2-D."""
        return 2 * (self.dim + 1) * self._r

    @property
    def r_max(self) -> RealLike:
        """Worst-case accepted distance: (2(dim+1) − 1)·r — 5r in 2-D.

        Beyond r_max, rejection is guaranteed (paper §2.2 objective (2)).
        """
        return (2 * (self.dim + 1) - 1) * self._r

    @property
    def grid_count(self) -> int:
        """Number of candidate grids: dim + 1."""
        return len(self._grids)

    @property
    def selection(self) -> GridSelection:
        """The grid-selection policy in force."""
        return self._selection

    def grid(self, identifier: int) -> Grid:
        """The candidate grid with the given identifier."""
        if not 0 <= identifier < len(self._grids):
            raise VerificationError(
                f"robust: grid identifier {identifier} out of range "
                f"[0, {len(self._grids) - 1}]"
            )
        return self._grids[identifier]

    # -- enrollment ----------------------------------------------------------

    def safe_grids(self, point: Point) -> Tuple[int, ...]:
        """Identifiers of every grid in which *point* is r-safe.

        By the Birget et al. guarantee this is never empty; the library
        property-tests that claim rather than assuming it.
        """
        self._check_point(point)
        return tuple(
            g
            for g, grid in enumerate(self._grids)
            if grid.margin(point) >= self._r
        )

    def _select_grid(self, point: Point, candidates: Tuple[int, ...]) -> int:
        """Apply the configured selection policy to the safe-grid set."""
        if self._selection is GridSelection.FIRST_SAFE:
            return candidates[0]
        if self._selection is GridSelection.RANDOM_SAFE:
            assert self._rng is not None  # guaranteed by __init__
            pick = int(self._rng() * len(candidates))
            return candidates[min(pick, len(candidates) - 1)]
        # MOST_CENTERED: maximize margin; ties -> lowest identifier.
        return max(candidates, key=lambda g: (self._grids[g].margin(point), -g))

    def enroll(self, point: Point) -> Discretization:
        """Pick an r-safe grid and discretize *point* in it."""
        candidates = self.safe_grids(point)
        if not candidates:
            # Mathematically unreachable (the 3-grid guarantee), but the
            # error path is kept honest rather than asserted away.
            raise EnrollmentError(
                f"robust: no r-safe grid for {point!r} with r={self._r!r}"
            )
        chosen = self._select_grid(point, candidates)
        index = self._grids[chosen].cell_of(point)
        return Discretization(public=(chosen,), secret=index)

    def locate(
        self, point: Point, public: Tuple[Encodable, ...]
    ) -> Tuple[int, ...]:
        """Cell index of *point* in the stored grid (verification side)."""
        self._check_point(point)
        if len(public) != 1:
            raise VerificationError(
                f"robust: expected 1 grid identifier, got {len(public)}"
            )
        identifier = public[0]
        if isinstance(identifier, bool) or not isinstance(identifier, int):
            raise VerificationError(
                f"robust: grid identifier must be an int, got {identifier!r}"
            )
        return self.grid(identifier).cell_of(point)

    def acceptance_region(self, discretization: Discretization) -> Box:
        """The stored grid-square: everything inside verifies."""
        identifier = discretization.public[0]
        if isinstance(identifier, bool) or not isinstance(identifier, int):
            raise VerificationError(
                f"robust: grid identifier must be an int, got {identifier!r}"
            )
        return self.grid(identifier).cell_box(discretization.secret)
