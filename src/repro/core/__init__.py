"""Core discretization schemes: the paper's contribution and its baselines.

* :class:`~repro.core.centered.CenteredDiscretization` — the paper's scheme
  (§3): per-axis offsets ``d = (x − r) mod 2r`` in the clear, segment
  indices ``i = ⌊(x − r)/2r⌋`` in the hash, acceptance region exactly
  centered on the original click-point.
* :class:`~repro.core.robust.RobustDiscretization` — the Birget et al. 2006
  baseline (§2.2): dim+1 offset grids of side 2(dim+1)r, r-safe grid chosen
  at enrollment.
* :class:`~repro.core.static.StaticGridScheme` — the naive single fixed
  grid, exhibiting the edge problem (§2).
* :mod:`~repro.core.tolerance` — centered-tolerance ground truth and the
  false-accept / false-reject classification (§2.2.1, Figure 1).
* :mod:`~repro.core.batch` — NumPy-vectorized batch kernels for all three
  schemes (``discretize_batch`` / ``verify_batch`` /
  ``acceptance_region_batch`` over ``(N, dim)`` arrays); the scalar
  methods above remain the exact-arithmetic reference implementation.
"""

from repro.core.batch import (
    BatchDiscretization,
    BatchKernel,
    acceptance_region_batch,
    as_point_array,
    discretize_batch,
    verify_batch,
)
from repro.core.centered import CenteredDiscretization, discretize_1d, locate_1d
from repro.core.robust import GridSelection, RobustDiscretization
from repro.core.scheme import Discretization, DiscretizationScheme
from repro.core.static import StaticGridScheme
from repro.core.tolerance import (
    Outcome,
    WorstCaseGeometry,
    centered_tolerance_region,
    classify,
    classify_attempt,
    classify_point,
    within_centered_tolerance,
    worst_case_geometry,
)

__all__ = [
    "BatchDiscretization",
    "BatchKernel",
    "CenteredDiscretization",
    "Discretization",
    "DiscretizationScheme",
    "GridSelection",
    "Outcome",
    "RobustDiscretization",
    "StaticGridScheme",
    "WorstCaseGeometry",
    "acceptance_region_batch",
    "as_point_array",
    "centered_tolerance_region",
    "classify",
    "classify_attempt",
    "classify_point",
    "discretize_1d",
    "discretize_batch",
    "locate_1d",
    "verify_batch",
    "within_centered_tolerance",
    "worst_case_geometry",
]
