"""Core discretization schemes: the paper's contribution and its baselines.

* :class:`~repro.core.centered.CenteredDiscretization` — the paper's scheme
  (§3): per-axis offsets ``d = (x − r) mod 2r`` in the clear, segment
  indices ``i = ⌊(x − r)/2r⌋`` in the hash, acceptance region exactly
  centered on the original click-point.
* :class:`~repro.core.robust.RobustDiscretization` — the Birget et al. 2006
  baseline (§2.2): dim+1 offset grids of side 2(dim+1)r, r-safe grid chosen
  at enrollment.
* :class:`~repro.core.static.StaticGridScheme` — the naive single fixed
  grid, exhibiting the edge problem (§2).
* :mod:`~repro.core.tolerance` — centered-tolerance ground truth and the
  false-accept / false-reject classification (§2.2.1, Figure 1).
"""

from repro.core.centered import CenteredDiscretization, discretize_1d, locate_1d
from repro.core.robust import GridSelection, RobustDiscretization
from repro.core.scheme import Discretization, DiscretizationScheme
from repro.core.static import StaticGridScheme
from repro.core.tolerance import (
    Outcome,
    WorstCaseGeometry,
    centered_tolerance_region,
    classify,
    classify_attempt,
    classify_point,
    within_centered_tolerance,
    worst_case_geometry,
)

__all__ = [
    "CenteredDiscretization",
    "Discretization",
    "DiscretizationScheme",
    "GridSelection",
    "Outcome",
    "RobustDiscretization",
    "StaticGridScheme",
    "WorstCaseGeometry",
    "centered_tolerance_region",
    "classify",
    "classify_attempt",
    "classify_point",
    "discretize_1d",
    "locate_1d",
    "within_centered_tolerance",
    "worst_case_geometry",
]
