"""NumPy-vectorized batch discretization kernels.

The scalar schemes in :mod:`repro.core` follow the paper in using exact
rational arithmetic, one click-point at a time.  That is the *reference
implementation*: always correct, never fast.  Dictionary and brute-force
attacks, experiment sweeps and password-space analyses are batch
workloads — the same scheme applied to 10⁵–10⁷ click-points — so this
module provides float64 kernels that operate on ``(N, dim)`` arrays and
answer "which of these N points verify?" in a handful of vector ops.

Three entry points mirror the scalar API:

* :func:`discretize_batch` — vectorized :meth:`~repro.core.scheme.DiscretizationScheme.enroll`
  over an ``(N, dim)`` array, returning a :class:`BatchDiscretization`;
* :func:`verify_batch` — vectorized
  :meth:`~repro.core.scheme.DiscretizationScheme.accepts`: one enrolled
  discretization against N candidates (the attack shape), or N enrollments
  against N candidates pairwise;
* :func:`acceptance_region_batch` — vectorized
  :meth:`~repro.core.scheme.DiscretizationScheme.acceptance_region`,
  returning ``(lo, hi)`` corner arrays.

Each is a thin wrapper over a per-scheme :class:`BatchKernel`, obtained
from :meth:`DiscretizationScheme.batch` (one kernel is cached per scheme
instance; grid partition tables are further LRU-cached per distinct grid
in :mod:`repro.geometry.grid`).

**Float exactness.**  The kernels compute in float64 rather than exact
rationals.  For the data this library handles that loses nothing: cell
boundaries of the paper's schemes are rationals with denominators in
{1, 2, 3, 6} while click-points are integer pixels, so the smallest
boundary-to-coordinate gap (1/6 px) exceeds accumulated float error by
~10 orders of magnitude, and comparisons land on the same side as exact
arithmetic (the same argument under which the attack code already used
float comparisons).  The one subtlety is Robust grid selection: two grids
can have *exactly* equal margins under exact arithmetic, and the two float
computations of that shared value may differ by 1 ulp.  The kernel treats
margins within a small epsilon (``1e-9·(1+r)``, far below the 1/6 minimum
spacing of genuinely distinct margins, far above float error) as tied and
breaks toward the lowest grid identifier — the same tie-break as the
scalar path, so enrollments agree bit-for-bit on pixel data; the property
tests in ``tests/test_core_batch.py`` assert exactly that.

**Array namespaces.**  Every kernel op goes through an injected array
namespace ``xp`` — any module or object duck-typing the NumPy API
(``asarray``, ``floor_divide``, ``mod``, …).  The default is NumPy, which
keeps the float64 exactness argument above and the Robust tie-break
epsilon byte-for-byte unchanged; ``cupy`` or ``jax.numpy`` drop in via
``scheme.batch(xp=cupy)`` or the ``REPRO_ARRAY_BACKEND`` environment
variable (``numpy`` / ``cupy`` / ``jax``, read when the default kernel is
first built) because the kernels are pure elementwise
floor-divide/mod/compare — exactly the shape accelerators execute well.
Host-side inputs (:class:`~repro.geometry.point.Point` sequences, numpy
arrays) are validated on the host and shipped through ``xp.asarray``;
device arrays pass straight through.  Accelerator backends remain
optional: nothing in this module imports them unless asked, and the smoke
tests skip cleanly when they are not installed.
"""

from __future__ import annotations

import abc
import importlib
import os
from dataclasses import dataclass
from typing import Sequence, Tuple, Union

import numpy as np

from repro.errors import (
    DimensionMismatchError,
    EnrollmentError,
    ParameterError,
    VerificationError,
)
from repro.geometry.grid import grid_float_table
from repro.geometry.point import Point
from repro.core.scheme import Discretization, DiscretizationScheme

__all__ = [
    "BatchDiscretization",
    "BatchKernel",
    "CenteredBatchKernel",
    "RobustBatchKernel",
    "StaticBatchKernel",
    "array_namespace_from_name",
    "as_point_array",
    "batch_kernel_for",
    "discretize_batch",
    "resolve_array_namespace",
    "verify_batch",
    "acceptance_region_batch",
]

#: Anything the batch API accepts as a set of points.
PointArrayLike = Union["np.ndarray", Sequence[Point], Sequence[Sequence[float]]]

#: Environment variable naming the default array backend.
ARRAY_BACKEND_ENV = "REPRO_ARRAY_BACKEND"

#: Recognized backend names → importable array-namespace modules.
_BACKEND_MODULES = {
    "numpy": "numpy",
    "cupy": "cupy",
    "jax": "jax.numpy",
    "jax.numpy": "jax.numpy",
}

#: Attributes a namespace must expose to drive the kernels (spot check —
#: the contract is "duck-types the NumPy API used by this module").
_REQUIRED_NAMESPACE_ATTRS = ("asarray", "floor_divide", "mod", "all", "tile")


def array_namespace_from_name(name: str):
    """Import the array namespace for a backend *name*.

    Accepts ``"numpy"``, ``"cupy"``, ``"jax"`` (→ ``jax.numpy``) or
    ``"jax.numpy"``; raises :class:`~repro.errors.ParameterError` for
    unknown names and for recognized backends that are not installed, so a
    typo'd or unavailable ``REPRO_ARRAY_BACKEND`` fails loudly instead of
    silently computing on the wrong device.
    """
    key = name.strip().lower()
    if key not in _BACKEND_MODULES:
        raise ParameterError(
            f"unknown array backend {name!r}; known: "
            f"{sorted(set(_BACKEND_MODULES))}"
        )
    try:
        if _BACKEND_MODULES[key] == "jax.numpy":
            # jax silently canonicalizes float64 down to float32 unless x64
            # is on — which would void the kernels' exactness contract (the
            # Robust tie-break epsilon sits far below float32 error at
            # pixel scale), so selecting jax by name opts into x64.
            jax = importlib.import_module("jax")
            jax.config.update("jax_enable_x64", True)
        return importlib.import_module(_BACKEND_MODULES[key])
    except ImportError as exc:
        raise ParameterError(
            f"array backend {name!r} is not installed ({exc})"
        ) from exc


def resolve_array_namespace(xp=None):
    """Resolve *xp* to a concrete array namespace.

    ``None`` consults ``REPRO_ARRAY_BACKEND`` and falls back to NumPy; a
    string goes through :func:`array_namespace_from_name`; anything else
    is validated to duck-type the NumPy surface the kernels use and
    returned as-is (this is how a custom or wrapped namespace injects).
    """
    if xp is None:
        name = os.environ.get(ARRAY_BACKEND_ENV, "").strip()
        return array_namespace_from_name(name) if name else np
    if isinstance(xp, str):
        return array_namespace_from_name(xp)
    missing = [a for a in _REQUIRED_NAMESPACE_ATTRS if not hasattr(xp, a)]
    if missing:
        raise ParameterError(
            f"object {xp!r} is not an array namespace (missing {missing})"
        )
    return xp


def as_point_array(points: PointArrayLike, dim: int | None = None) -> np.ndarray:
    """Coerce *points* to a C-contiguous float64 array of shape ``(N, dim)``.

    Accepts an ``(N, dim)`` array, a sequence of :class:`Point`, or a
    sequence of coordinate tuples.  A single :class:`Point` or 1-D array is
    promoted to one row.  Fraction coordinates go through ``float()``
    (correctly rounded).

    Parameters
    ----------
    points:
        The points to convert.
    dim:
        Expected dimensionality; when given, a mismatch raises
        :class:`~repro.errors.DimensionMismatchError`.
    """
    if isinstance(points, Point):
        array = np.array([points.as_floats()], dtype=np.float64)
    elif isinstance(points, np.ndarray):
        if points.size == 0:
            raise ParameterError("points must contain at least one point")
        array = np.ascontiguousarray(points, dtype=np.float64)
        if array.ndim == 1:
            array = array.reshape(1, -1)
    else:
        rows = [
            p.as_floats() if isinstance(p, Point) else [float(c) for c in p]
            for p in points
        ]
        if not rows:
            raise ParameterError("points must contain at least one point")
        if len({len(r) for r in rows}) > 1:
            raise ParameterError(
                "points have inconsistent dimensionality: "
                f"{sorted({len(r) for r in rows})}"
            )
        array = np.array(rows, dtype=np.float64).reshape(len(rows), -1)
    if array.ndim != 2:
        raise ParameterError(
            f"points must be an (N, dim) array, got shape {array.shape}"
        )
    if not np.isfinite(array).all():
        raise ParameterError("points contain non-finite coordinates")
    if dim is not None and array.shape[1] != dim:
        raise DimensionMismatchError(
            f"points are {array.shape[1]}-D, scheme is {dim}-D"
        )
    return array


@dataclass(frozen=True)
class BatchDiscretization:
    """N discretizations in columnar (structure-of-arrays) form.

    Attributes
    ----------
    scheme_name:
        Name of the scheme that produced the batch.
    public:
        Clear-text material, one row per point.  Centered: ``(N, dim)``
        float64 offsets ``d``; Robust: ``(N,)`` int64 grid identifiers;
        static: ``(N, 0)`` (nothing is stored in the clear).
    secret:
        ``(N, dim)`` int64 segment/cell index vectors (the hashed part).
    """

    scheme_name: str
    public: np.ndarray
    secret: np.ndarray

    def __post_init__(self) -> None:
        if self.secret.ndim != 2:
            raise ParameterError(
                f"secret must be (N, dim), got shape {self.secret.shape}"
            )
        if len(self.public) != len(self.secret):
            raise ParameterError(
                f"public has {len(self.public)} rows, secret has "
                f"{len(self.secret)}"
            )

    def __len__(self) -> int:
        return len(self.secret)

    @property
    def count(self) -> int:
        """Number of discretized points in the batch."""
        return len(self.secret)

    @property
    def dim(self) -> int:
        """Dimensionality of the discretized points."""
        return self.secret.shape[1]

    def row(self, index: int) -> Discretization:
        """The *index*-th entry as a scalar :class:`Discretization`.

        Centered offsets come back as floats (the batch engine's working
        precision), not the scalar path's exact rationals.
        """
        secret = tuple(int(v) for v in self.secret[index])
        public_row = self.public[index]
        if self.public.ndim == 1:  # robust: grid identifier
            public: Tuple = (int(public_row),)
        else:
            public = tuple(float(v) for v in public_row)
        return Discretization(public=public, secret=secret)


class BatchKernel(abc.ABC):
    """Vectorized counterpart of one :class:`DiscretizationScheme` instance.

    Obtained via :meth:`DiscretizationScheme.batch`; stateless beyond
    float64 copies of the scheme's parameters (held as arrays of the
    kernel's namespace), so one kernel serves any number of batches
    concurrently.  *xp* selects the array namespace — see the module
    docstring; the default (NumPy, or ``REPRO_ARRAY_BACKEND``) preserves
    the library's exactness guarantees unchanged.
    """

    def __init__(self, scheme: DiscretizationScheme, xp=None) -> None:
        self._scheme = scheme
        self._xp = resolve_array_namespace(xp)

    @property
    def scheme(self) -> DiscretizationScheme:
        """The scalar scheme this kernel mirrors."""
        return self._scheme

    @property
    def xp(self):
        """The array namespace every op of this kernel routes through."""
        return self._xp

    @property
    def dim(self) -> int:
        """Dimensionality of the underlying scheme."""
        return self._scheme.dim

    def _points(self, points: PointArrayLike):
        """Coerce *points* to an ``(N, dim)`` float64 array of this namespace.

        Host-side inputs (numpy arrays, :class:`Point`/coordinate
        sequences) run through :func:`as_point_array` for full validation,
        then ship to the namespace; anything else (a device array of the
        injected namespace) passes through ``xp.asarray`` with shape
        checks only, avoiding a device→host round trip.
        """
        xp = self._xp
        if xp is np or isinstance(points, (np.ndarray, Point, list, tuple)):
            host = as_point_array(points, self.dim)
            return host if xp is np else xp.asarray(host, dtype=xp.float64)
        array = xp.asarray(points, dtype=xp.float64)
        if array.ndim == 1:
            array = array.reshape(1, -1)
        if array.ndim != 2:
            raise ParameterError(
                f"points must be an (N, dim) array, got shape {array.shape}"
            )
        if array.shape[1] != self.dim:
            raise DimensionMismatchError(
                f"points are {array.shape[1]}-D, scheme is {self.dim}-D"
            )
        return array

    # -- abstract ----------------------------------------------------------

    @abc.abstractmethod
    def enroll(self, points: PointArrayLike) -> BatchDiscretization:
        """Vectorized enrollment of ``(N, dim)`` points."""

    @abc.abstractmethod
    def locate(self, points: PointArrayLike, public: np.ndarray) -> np.ndarray:
        """Vectorized verification-side index vectors.

        *public* must have one row (broadcast to all points) or one row
        per point.  Returns ``(N, dim)`` int64 indices.
        """

    @abc.abstractmethod
    def acceptance_bounds(
        self, discretization: Union[Discretization, BatchDiscretization]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized acceptance regions: ``(lo, hi)`` arrays of ``(N, dim)``.

        Regions are half-open boxes ``[lo, hi)``, matching the scalar
        :meth:`~repro.core.scheme.DiscretizationScheme.acceptance_region`.
        """

    # -- derived -----------------------------------------------------------

    def accepts(
        self,
        discretization: Union[Discretization, BatchDiscretization],
        candidates: PointArrayLike,
    ) -> np.ndarray:
        """Boolean mask of candidates that verify against *discretization*.

        A scalar :class:`Discretization` (or a 1-row batch) is tested
        against every candidate — the attack shape, "which of these N
        guesses falls in the stored cell?".  An N-row
        :class:`BatchDiscretization` is tested pairwise against N
        candidates.
        """
        public, secret = self._material(discretization)
        points = self._points(candidates)
        if len(secret) not in (1, len(points)):
            raise DimensionMismatchError(
                f"{len(secret)} discretizations cannot pair with "
                f"{len(points)} candidates"
            )
        located = self.locate(points, public)
        return self._xp.all(located == secret, axis=1)

    def _material(
        self, discretization: Union[Discretization, BatchDiscretization]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Normalize scalar or batch discretizations to (public, secret) arrays."""
        if isinstance(discretization, BatchDiscretization):
            return discretization.public, discretization.secret
        if isinstance(discretization, Discretization):
            return (
                self._to_xp(self._public_array(discretization.public)),
                self._to_xp(np.array([discretization.secret], dtype=np.int64)),
            )
        raise ParameterError(
            f"expected a Discretization or BatchDiscretization, got "
            f"{type(discretization).__name__}"
        )

    def public_rows(self, publics: Sequence[Tuple]) -> np.ndarray:
        """Stack scalar public tuples into one kernel-shaped public array.

        One row per input tuple, in order, shaped as :meth:`locate`
        expects for this scheme (Centered: ``(N, dim)`` float offsets;
        Robust: ``(N,)`` int identifiers; static: ``(N, 0)``).  This is
        how row-oriented stores (per-account
        :class:`~repro.passwords.system.StoredPassword` publics) feed the
        columnar batch engine.
        """
        if not publics:
            raise ParameterError("publics must contain at least one tuple")
        return self._to_xp(
            np.concatenate(
                [self._public_array(public) for public in publics], axis=0
            )
        )

    def _to_xp(self, host_array: np.ndarray):
        """Ship a host (numpy) array into the kernel's namespace."""
        return host_array if self._xp is np else self._xp.asarray(host_array)

    @abc.abstractmethod
    def _public_array(self, public: Tuple) -> np.ndarray:
        """Scheme-specific conversion of scalar public material to one row."""


class CenteredBatchKernel(BatchKernel):
    """Vectorized Centered Discretization (paper §3).

    Enrollment: ``i = ⌊(x − r)/2r⌋``, ``d = (x − r) mod 2r`` per axis, all
    N points at once.  Verification: ``⌊(x′ − d)/2r⌋ == i``.
    """

    def __init__(self, scheme: DiscretizationScheme, xp=None) -> None:
        super().__init__(scheme, xp)
        self._r = float(scheme.r)  # type: ignore[attr-defined]
        self._two_r = float(scheme.cell_size)

    def enroll(self, points: PointArrayLike) -> BatchDiscretization:
        """Vectorized centered enrollment: secrets ``i``, publics ``d``."""
        xp = self._xp
        pts = self._points(points)
        shifted = pts - self._r
        secret = xp.floor_divide(shifted, self._two_r).astype(xp.int64)
        public = xp.mod(shifted, self._two_r)
        return BatchDiscretization(
            scheme_name=self._scheme.name, public=public, secret=secret
        )

    def locate(self, points: PointArrayLike, public: np.ndarray) -> np.ndarray:
        """``⌊(x′ − d)/2r⌋`` per axis under stored offsets *public*."""
        xp = self._xp
        pts = self._points(points)
        offsets = xp.asarray(public, dtype=xp.float64)
        if offsets.ndim != 2 or offsets.shape[1] != self.dim:
            raise VerificationError(
                f"centered: offsets must be (N, {self.dim}), got shape "
                f"{offsets.shape}"
            )
        return xp.floor_divide(pts - offsets, self._two_r).astype(xp.int64)

    def acceptance_bounds(
        self, discretization: Union[Discretization, BatchDiscretization]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Half-open cubes of side 2r centered on the enrolled points."""
        xp = self._xp
        public, secret = self._material(discretization)
        lo = xp.asarray(public, dtype=xp.float64) + secret * self._two_r
        return lo, lo + self._two_r

    def _public_array(self, public: Tuple) -> np.ndarray:
        if len(public) != self.dim:
            raise VerificationError(
                f"centered: expected {self.dim} offsets, got {len(public)}"
            )
        return np.array([[float(d) for d in public]], dtype=np.float64)


class RobustBatchKernel(BatchKernel):
    """Vectorized Robust Discretization (Birget et al., paper §2.2).

    Margins of all N points in all ``dim + 1`` candidate grids are computed
    as one ``(N, G, dim)`` tensor; grid selection (FIRST_SAFE or
    MOST_CENTERED) reduces over the grid axis.  RANDOM_SAFE is supported by
    drawing one uniform per point from the scheme's rng.
    """

    def __init__(self, scheme: DiscretizationScheme, xp=None) -> None:
        super().__init__(scheme, xp)
        grids = [scheme.grid(g) for g in range(scheme.grid_count)]  # type: ignore[attr-defined]
        tables = [grid_float_table(g) for g in grids]
        self._sizes = self._to_xp(np.stack([t[0] for t in tables]))  # (G, dim)
        self._offsets = self._to_xp(np.stack([t[1] for t in tables]))  # (G, dim)
        self._r = float(scheme.r)  # type: ignore[attr-defined]
        # Margins of the paper's rational tolerances are >= 1/6 apart when
        # they differ at all, so an epsilon far below that (but far above
        # accumulated float64 error) lets exact-arithmetic ties be
        # recognized as ties and broken toward the lowest grid identifier,
        # matching the scalar reference bit-for-bit.
        self._eps = 1e-9 * (1.0 + self._r)

    @property
    def grid_count(self) -> int:
        """Number of candidate grids (dim + 1)."""
        return len(self._sizes)

    def margins(self, points: PointArrayLike) -> np.ndarray:
        """``(N, G)`` margins: distance of each point to its nearest cell
        edge in each candidate grid.  A point is r-safe in grid g iff
        ``margins[n, g] >= r``.
        """
        xp = self._xp
        pts = self._points(points)
        rel = pts[:, None, :] - self._offsets[None, :, :]
        frac = xp.mod(rel, self._sizes[None, :, :])
        return xp.minimum(frac, self._sizes[None, :, :] - frac).min(axis=2)

    def _choose(self, margins: np.ndarray) -> np.ndarray:
        """Apply the scheme's grid-selection policy to a margin matrix."""
        from repro.core.robust import GridSelection

        xp = self._xp
        safe = margins >= self._r - self._eps
        if not bool(safe.any(axis=1).all()):
            unsafe = int(xp.argmin(safe.any(axis=1)))
            raise EnrollmentError(
                f"robust: no r-safe grid for point row {unsafe} with "
                f"r={self._r!r}"
            )
        selection = self._scheme.selection  # type: ignore[attr-defined]
        if selection is GridSelection.FIRST_SAFE:
            return xp.argmax(safe, axis=1)
        if selection is GridSelection.RANDOM_SAFE:
            rng = self._scheme._rng  # type: ignore[attr-defined]
            counts = safe.sum(axis=1)
            draws = xp.asarray([rng() for _ in range(len(safe))])
            picks = xp.minimum((draws * counts).astype(xp.int64), counts - 1)
            rank = xp.cumsum(safe, axis=1) - 1
            return xp.argmax(safe & (rank == picks[:, None]), axis=1)
        # MOST_CENTERED: the global max-margin grid is necessarily safe
        # (its margin >= the best safe margin >= r).  Grids within eps of
        # the max are exact-arithmetic ties; pick the lowest identifier,
        # matching the scalar tie-break.
        max_margin = margins.max(axis=1, keepdims=True)
        return xp.argmax(margins >= max_margin - self._eps, axis=1)

    def enroll(self, points: PointArrayLike) -> BatchDiscretization:
        """Pick an r-safe grid per point and discretize all points in it."""
        xp = self._xp
        pts = self._points(points)
        chosen = self._choose(self.margins(pts))
        secret = xp.floor_divide(
            pts - self._offsets[chosen], self._sizes[chosen]
        ).astype(xp.int64)
        return BatchDiscretization(
            scheme_name=self._scheme.name,
            public=chosen.astype(xp.int64),
            secret=secret,
        )

    def _identifiers(self, public: np.ndarray) -> np.ndarray:
        identifiers = self._xp.asarray(public)
        if identifiers.ndim != 1:
            raise VerificationError(
                f"robust: grid identifiers must be a 1-D array, got shape "
                f"{identifiers.shape}"
            )
        if not np.issubdtype(identifiers.dtype, np.integer):
            raise VerificationError(
                f"robust: grid identifiers must be integers, got dtype "
                f"{identifiers.dtype}"
            )
        if identifiers.size and (
            identifiers.min() < 0 or identifiers.max() >= self.grid_count
        ):
            raise VerificationError(
                f"robust: grid identifier out of range [0, {self.grid_count - 1}]"
            )
        return identifiers

    def locate(self, points: PointArrayLike, public: np.ndarray) -> np.ndarray:
        """Cell indices of *points* in their stored grids."""
        xp = self._xp
        pts = self._points(points)
        identifiers = self._identifiers(public)
        return xp.floor_divide(
            pts - self._offsets[identifiers], self._sizes[identifiers]
        ).astype(xp.int64)

    def acceptance_bounds(
        self, discretization: Union[Discretization, BatchDiscretization]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """The stored grid-squares as ``(lo, hi)`` corner arrays."""
        public, secret = self._material(discretization)
        identifiers = self._identifiers(public)
        sizes = self._sizes[identifiers]
        lo = self._offsets[identifiers] + secret * sizes
        return lo, lo + sizes

    def _public_array(self, public: Tuple) -> np.ndarray:
        if len(public) != 1:
            raise VerificationError(
                f"robust: expected 1 grid identifier, got {len(public)}"
            )
        identifier = public[0]
        if isinstance(identifier, bool) or not isinstance(identifier, int):
            raise VerificationError(
                f"robust: grid identifier must be an int, got {identifier!r}"
            )
        return np.array([identifier], dtype=np.int64)


class StaticBatchKernel(BatchKernel):
    """Vectorized static-grid discretization (the edge-problem baseline)."""

    def __init__(self, scheme: DiscretizationScheme, xp=None) -> None:
        super().__init__(scheme, xp)
        sizes, offsets = grid_float_table(scheme.grid)  # type: ignore[attr-defined]
        self._cell_sizes = self._to_xp(sizes)
        self._offsets = self._to_xp(offsets)

    def enroll(self, points: PointArrayLike) -> BatchDiscretization:
        """Map every point to its fixed-grid cell; public stays empty."""
        xp = self._xp
        pts = self._points(points)
        secret = xp.floor_divide(pts - self._offsets, self._cell_sizes).astype(
            xp.int64
        )
        return BatchDiscretization(
            scheme_name=self._scheme.name,
            public=xp.empty((len(pts), 0), dtype=xp.float64),
            secret=secret,
        )

    def locate(self, points: PointArrayLike, public: np.ndarray) -> np.ndarray:
        """Fixed-grid cell indices; *public* must be empty per row."""
        xp = self._xp
        shape = xp.asarray(public).shape
        if shape[-1] != 0:
            raise VerificationError(
                f"static: expected no public material, got shape {shape}"
            )
        pts = self._points(points)
        return xp.floor_divide(pts - self._offsets, self._cell_sizes).astype(
            xp.int64
        )

    def acceptance_bounds(
        self, discretization: Union[Discretization, BatchDiscretization]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """The fixed cells the enrolled points fell into."""
        _, secret = self._material(discretization)
        lo = self._offsets + secret * self._cell_sizes
        return lo, lo + self._cell_sizes

    def _public_array(self, public: Tuple) -> np.ndarray:
        if public:
            raise VerificationError(
                f"static: expected no public material, got {public!r}"
            )
        return np.empty((1, 0), dtype=np.float64)


def batch_kernel_for(scheme: DiscretizationScheme, xp=None) -> BatchKernel:
    """Build the vectorized kernel matching *scheme*'s concrete type.

    *xp* selects the kernel's array namespace (see
    :func:`resolve_array_namespace`).  Prefer
    :meth:`DiscretizationScheme.batch`, which caches kernels on the
    scheme instance (one per namespace).
    """
    from repro.core.centered import CenteredDiscretization
    from repro.core.robust import RobustDiscretization
    from repro.core.static import StaticGridScheme

    if isinstance(scheme, CenteredDiscretization):
        return CenteredBatchKernel(scheme, xp)
    if isinstance(scheme, RobustDiscretization):
        return RobustBatchKernel(scheme, xp)
    if isinstance(scheme, StaticGridScheme):
        return StaticBatchKernel(scheme, xp)
    raise ParameterError(
        f"no batch kernel for scheme type {type(scheme).__name__}"
    )


def discretize_batch(
    scheme: DiscretizationScheme, points: PointArrayLike
) -> BatchDiscretization:
    """Vectorized enrollment of ``(N, dim)`` *points* under *scheme*.

    Equivalent to ``[scheme.enroll(p) for p in points]`` in columnar form
    (float64 working precision — see the module docstring's exactness
    note).
    """
    return scheme.batch().enroll(points)


def verify_batch(
    scheme: DiscretizationScheme,
    discretization: Union[Discretization, BatchDiscretization],
    candidates: PointArrayLike,
) -> np.ndarray:
    """Boolean mask: which *candidates* verify against *discretization*?

    *discretization* may be one scalar :class:`Discretization` (tested
    against every candidate — the attack shape) or an N-row
    :class:`BatchDiscretization` paired elementwise with N candidates.
    """
    return scheme.batch().accepts(discretization, candidates)


def acceptance_region_batch(
    scheme: DiscretizationScheme,
    discretization: Union[Discretization, BatchDiscretization],
) -> Tuple[np.ndarray, np.ndarray]:
    """Half-open acceptance boxes as ``(lo, hi)`` arrays of ``(N, dim)``."""
    return scheme.batch().acceptance_bounds(discretization)
