"""Centered-tolerance regions and false-accept / false-reject classification.

The paper's usability argument (§2.2.1, Figure 1) compares what a scheme
*accepts* against the **centered tolerance**: the evenly distributed buffer a
user plausibly expects around their click-point.  For a region of half-side
``ρ`` centered on the original point:

* a **false reject** is a candidate *within* centered tolerance that the
  scheme nevertheless rejects;
* a **false accept** is a candidate *outside* centered tolerance that the
  scheme nevertheless accepts.

Centered Discretization's acceptance region *is* the centered-tolerance
region, so both rates are identically zero; Robust Discretization's region
is an off-center cell up to three times wider per axis, producing both kinds
of errors.  This module provides the per-point classification machinery plus
closed-form worst-case geometry (the numbers behind Figure 1).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Sequence

from repro.errors import DimensionMismatchError, ParameterError
from repro.geometry.numbers import RealLike, validate_positive
from repro.geometry.point import Point
from repro.geometry.region import Box, centered_box
from repro.core.scheme import Discretization, DiscretizationScheme

__all__ = [
    "Outcome",
    "centered_tolerance_region",
    "within_centered_tolerance",
    "classify",
    "classify_point",
    "classify_attempt",
    "WorstCaseGeometry",
    "worst_case_geometry",
]


class Outcome(enum.Enum):
    """Joint classification of (scheme decision, centered-tolerance truth)."""

    TRUE_ACCEPT = "true_accept"
    FALSE_ACCEPT = "false_accept"
    FALSE_REJECT = "false_reject"
    TRUE_REJECT = "true_reject"

    @property
    def accepted(self) -> bool:
        """Whether the scheme accepted the candidate."""
        return self in (Outcome.TRUE_ACCEPT, Outcome.FALSE_ACCEPT)

    @property
    def erroneous(self) -> bool:
        """Whether the scheme disagreed with centered tolerance."""
        return self in (Outcome.FALSE_ACCEPT, Outcome.FALSE_REJECT)


def centered_tolerance_region(original: Point, rho: RealLike) -> Box:
    """The centered-tolerance box of half-side *rho* around *original*.

    Half-open like every region in this library, so with the pixel
    convention (ρ = t + ½, integer clicks) membership is exactly
    Chebyshev distance ≤ t.
    """
    validate_positive(rho, "rho")
    return centered_box(original, rho)


def within_centered_tolerance(
    original: Point, candidate: Point, rho: RealLike
) -> bool:
    """Whether *candidate* lies in the centered-tolerance box of *original*."""
    return centered_tolerance_region(original, rho).contains(candidate)


def classify(accepted: bool, within: bool) -> Outcome:
    """Combine a scheme decision with the centered-tolerance ground truth."""
    if accepted:
        return Outcome.TRUE_ACCEPT if within else Outcome.FALSE_ACCEPT
    return Outcome.FALSE_REJECT if within else Outcome.TRUE_REJECT


def classify_point(
    scheme: DiscretizationScheme,
    enrolled: Discretization,
    original: Point,
    candidate: Point,
    rho: RealLike,
) -> Outcome:
    """Classify a single candidate click against one enrolled click-point.

    *rho* is the centered-tolerance half-side used as ground truth; for the
    paper's Table 1 it is half the scheme's cell size (equal-square-size
    framing), for Table 2 it is the scheme's guaranteed r (equal-r framing).
    """
    accepted = scheme.accepts(enrolled, candidate)
    within = within_centered_tolerance(original, candidate, rho)
    return classify(accepted, within)


def classify_attempt(
    scheme: DiscretizationScheme,
    enrollments: Sequence[Discretization],
    originals: Sequence[Point],
    candidates: Sequence[Point],
    rho: RealLike,
) -> Outcome:
    """Classify a full login attempt (all click-points, e.g. 5 for PassPoints).

    The attempt is *accepted* iff every candidate point verifies (this is
    what the single concatenated hash enforces) and *within tolerance* iff
    every candidate is inside its centered-tolerance box.  The paper's
    Tables 1–2 count attempts, not points; footnote 3 explains why
    attempt-level false-accept rates look low (users click accurately, so
    few attempts are outside centered tolerance at all).
    """
    if not (len(enrollments) == len(originals) == len(candidates)):
        raise DimensionMismatchError(
            "enrollments, originals and candidates must have equal length: "
            f"{len(enrollments)}/{len(originals)}/{len(candidates)}"
        )
    if not enrollments:
        raise ParameterError("an attempt needs at least one click-point")
    accepted = all(
        scheme.accepts(enrolled, candidate)
        for enrolled, candidate in zip(enrollments, candidates)
    )
    within = all(
        within_centered_tolerance(original, candidate, rho)
        for original, candidate in zip(originals, candidates)
    )
    return classify(accepted, within)


@dataclass(frozen=True, slots=True)
class WorstCaseGeometry:
    """Closed-form worst-case comparison of a Robust cell vs centered box.

    Reproduces Figure 1 quantitatively for a given r (2-D unless *dim*
    says otherwise).  The worst case places the original point exactly r
    from the low edge of its cell on every axis.

    Attributes
    ----------
    r: guaranteed tolerance.
    r_max: farthest accepted distance from the original point (5r in 2-D).
    cell_volume: volume of the Robust cell ((6r)^dim in 2-D terms).
    centered_volume: volume of the same-size centered-tolerance box.
    overlap_volume: worst-case overlap between the two.
    false_accept_volume: accepted-but-outside-centered volume.
    false_reject_volume: inside-centered-but-rejected volume.
    overlap_fraction: overlap / cell volume — (2/3)^dim at worst case.
    """

    r: RealLike
    dim: int
    r_max: RealLike
    cell_volume: RealLike
    centered_volume: RealLike
    overlap_volume: RealLike
    false_accept_volume: RealLike
    false_reject_volume: RealLike

    @property
    def overlap_fraction(self) -> float:
        """Worst-case fraction of the Robust cell that matches expectations."""
        return float(self.overlap_volume) / float(self.cell_volume)


def worst_case_geometry(r: RealLike, dim: int = 2) -> WorstCaseGeometry:
    """Compute the Figure-1 worst case for tolerance *r* in *dim* dimensions.

    The Robust cell has side ``2(dim+1)r``; the equally sized centered box
    around the original point overlaps it on ``[x − r, x + (2(dim+1) − 3)r +
    2r)``... concretely in 2-D: cell ``[x − r, x + 5r)`` vs centered
    ``[x − 3r, x + 3r)``, overlapping on ``[x − r, x + 3r)`` per axis.

    >>> geometry = worst_case_geometry(1, dim=2)
    >>> geometry.cell_volume, geometry.overlap_volume
    (36, 16)
    """
    from fractions import Fraction

    validate_positive(r, "r")
    if dim < 1:
        raise DimensionMismatchError(f"dim must be >= 1, got {dim}")
    side = 2 * (dim + 1) * r
    half = side * Fraction(1, 2)  # exact for int/Fraction, float for float
    origin = Point((0,) * dim)
    # Worst case: the point sits r above the low edge on every axis.
    cell = Box(
        Point((-r,) * dim),
        Point((side - r,) * dim),
    )
    centered = centered_box(origin, half)
    overlap = cell.overlap_volume(centered)

    def norm(value: RealLike) -> RealLike:
        # Reduce integral Fractions to plain ints for readable reporting.
        if isinstance(value, float):
            return value
        from repro.geometry.numbers import as_exact

        return as_exact(value)

    return WorstCaseGeometry(
        r=norm(r),
        dim=dim,
        r_max=norm(side - r),
        cell_volume=norm(cell.volume()),
        centered_volume=norm(centered.volume()),
        overlap_volume=norm(overlap),
        false_accept_volume=norm(cell.volume() - overlap),
        false_reject_volume=norm(centered.volume() - overlap),
    )
