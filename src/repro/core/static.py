"""Naive static-grid discretization — exhibits the paper's "edge problem".

The simplest hashable discretization (paper §2): overlay one fixed grid on
the image and map every point to its cell.  It needs no public material at
all, but it gives **no tolerance guarantee**: an original click-point right
next to a grid line is rejected for re-entry clicks a single pixel away on
the wrong side, while clicks almost a full cell away on the right side are
accepted.  Robust Discretization exists precisely to fix this, and Centered
Discretization fixes it without giving up centering.

The scheme is included as a baseline so the edge problem can be measured
(see ``examples/quickstart.py`` and the ablation benchmarks) rather than
just asserted.
"""

from __future__ import annotations

from typing import Tuple

from repro.crypto.encoding import Encodable
from repro.errors import VerificationError
from repro.geometry.grid import Grid
from repro.geometry.numbers import RealLike, as_exact, validate_positive
from repro.geometry.point import Point
from repro.geometry.region import Box
from repro.core.scheme import Discretization, DiscretizationScheme

__all__ = ["StaticGridScheme"]


class StaticGridScheme(DiscretizationScheme):
    """One fixed grid of square cells; no per-point public material.

    Parameters
    ----------
    dim:
        Dimensionality.
    cell_size:
        Side of the square cells.
    offset:
        Optional global translation of the grid (same on every axis).

    >>> from repro.geometry.point import Point
    >>> scheme = StaticGridScheme(dim=2, cell_size=10)
    >>> enrolled = scheme.enroll(Point.xy(19, 5))
    >>> scheme.accepts(enrolled, Point.xy(20, 5))  # 1 px away, next cell
    False
    >>> scheme.accepts(enrolled, Point.xy(10, 5))  # 9 px away, same cell
    True
    """

    name = "static"

    def __init__(
        self, dim: int, cell_size: RealLike, offset: RealLike = 0, exact: bool = True
    ) -> None:
        super().__init__(dim)
        validate_positive(cell_size, "cell_size")
        size = as_exact(cell_size) if exact else cell_size
        off = as_exact(offset) if exact else offset
        self._grid = Grid.square(dim, size, offset=off)

    # -- scheme interface ----------------------------------------------------

    @property
    def guaranteed_tolerance(self) -> RealLike:
        """Zero: a click-point may lie arbitrarily close to a cell edge."""
        return 0

    @property
    def cell_size(self) -> RealLike:
        """Side of the fixed grid's cells."""
        return self._grid.cell_sizes[0]

    @property
    def grid(self) -> Grid:
        """The underlying fixed grid."""
        return self._grid

    def enroll(self, point: Point) -> Discretization:
        """Map the point to its cell; nothing is stored in the clear."""
        self._check_point(point)
        return Discretization(public=(), secret=self._grid.cell_of(point))

    def locate(
        self, point: Point, public: Tuple[Encodable, ...]
    ) -> Tuple[int, ...]:
        """Cell index of *point*; *public* must be empty."""
        self._check_point(point)
        if public:
            raise VerificationError(
                f"static: expected no public material, got {public!r}"
            )
        return self._grid.cell_of(point)

    def acceptance_region(self, discretization: Discretization) -> Box:
        """The fixed cell the original point fell into."""
        return self._grid.cell_box(discretization.secret)

    def worst_case_margin(self, point: Point) -> RealLike:
        """Distance from *point* to the nearest edge of its cell.

        This is the *actual* tolerance the point gets in its worst
        direction; it can be arbitrarily close to zero, which is the edge
        problem in one number.
        """
        self._check_point(point)
        return self._grid.margin(point)
