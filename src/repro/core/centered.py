"""Centered Discretization — the paper's contribution (§3).

For tolerance ``r`` and a coordinate ``x``, enrollment computes

* segment index  ``i = ⌊(x − r) / 2r⌋``  (secret, goes in the hash), and
* offset         ``d = (x − r) mod 2r``  (public, stored in the clear),

which places ``x`` *exactly* in the center of segment ``i`` of the grid with
offset ``d`` and cell size ``2r``: the segment is ``[x − r, x + r)``.
Verification of a candidate ``x′`` computes ``i′ = ⌊(x′ − d) / 2r⌋`` and
accepts iff ``i′ = i`` — i.e. iff ``x′ ∈ [x − r, x + r)``.

Consequences proved in the paper and enforced by tests here:

* **zero false accepts / false rejects** with respect to centered tolerance
  (acceptance ⟺ per-axis distance < r);
* cells are ``2r`` wide instead of Robust Discretization's ``6r`` for the
  same guaranteed tolerance, so at equal r there are ``3^dim`` times as many
  cells — the theoretical password space grows by ``dim · log2(3)`` bits per
  click-point (≈ 3.17 bits per click in 2-D);
* the scheme extends to n dimensions coordinate-wise (§3.2).

Worked example from the paper (§3.1): x = 13, r = 5.5 gives i = 0, d = 7.5;
a login x′ = 10 locates to i′ = 0 and is accepted.

>>> from fractions import Fraction
>>> from repro.geometry.point import Point
>>> scheme = CenteredDiscretization(dim=1, r=Fraction(11, 2))
>>> enrolled = scheme.enroll(Point.of(13))
>>> enrolled.secret, enrolled.public
((0,), (Fraction(15, 2),))
>>> scheme.locate(Point.of(10), enrolled.public)
(0,)
"""

from __future__ import annotations

from typing import Tuple

from repro.crypto.encoding import Encodable
from repro.errors import VerificationError
from repro.geometry.numbers import (
    RealLike,
    as_exact,
    floor_div,
    floor_mod,
    r_for_pixel_tolerance,
    validate_positive,
)
from repro.geometry.point import Point
from repro.geometry.region import Box
from repro.core.scheme import Discretization, DiscretizationScheme

__all__ = [
    "CenteredDiscretization",
    "discretize_1d",
    "locate_1d",
]


def discretize_1d(x: RealLike, r: RealLike) -> Tuple[int, RealLike]:
    """1-D Centered Discretization of a coordinate: returns ``(i, d)``.

    ``i = ⌊(x − r)/2r⌋`` is the secret segment index, ``d = (x − r) mod 2r``
    the clear offset.  Exact when inputs are exact.

    >>> discretize_1d(13, 5.5)
    (0, 7.5)
    """
    validate_positive(r, "r")
    two_r = 2 * r
    i = floor_div(x - r, two_r)
    d = floor_mod(x - r, two_r)
    return i, d


def locate_1d(x_prime: RealLike, d: RealLike, r: RealLike) -> int:
    """Verification-side segment index: ``i′ = ⌊(x′ − d)/2r⌋``.

    >>> locate_1d(10, 7.5, 5.5)
    0
    """
    validate_positive(r, "r")
    return floor_div(x_prime - d, 2 * r)


class CenteredDiscretization(DiscretizationScheme):
    """Centered Discretization in ``dim`` dimensions with tolerance ``r``.

    Public material is the per-axis offset vector ``(d₁, …, d_dim)``; the
    secret is the segment-index vector ``(i₁, …, i_dim)``.  The acceptance
    region of an enrolled point is the half-open cube of side ``2r``
    centered exactly on it.

    Parameters
    ----------
    dim:
        Dimensionality (1 for the line, 2 for images, ≥3 for 3-D schemes).
    r:
        Tolerance.  For pixel data use :meth:`for_pixel_tolerance` (r = t+½,
        paper footnote 2) so integer clicks sit centered in odd-width cells.
    exact:
        When true (default), ``r`` is converted to an exact rational so all
        boundary comparisons are exact.
    """

    name = "centered"

    def __init__(self, dim: int, r: RealLike, exact: bool = True) -> None:
        super().__init__(dim)
        validate_positive(r, "r")
        self._r: RealLike = as_exact(r) if exact else r

    # -- constructors ------------------------------------------------------

    @classmethod
    def for_pixel_tolerance(cls, dim: int, tolerance_px: int) -> "CenteredDiscretization":
        """Scheme with r = tolerance_px + ½ (odd cells, centered pixel).

        >>> CenteredDiscretization.for_pixel_tolerance(2, 9).cell_size
        19
        """
        return cls(dim, r_for_pixel_tolerance(tolerance_px))

    @classmethod
    def for_grid_size(cls, dim: int, grid_size: int) -> "CenteredDiscretization":
        """Scheme whose cells have side ``grid_size`` (r = grid_size / 2)."""
        from repro.geometry.numbers import centered_r_for_grid_size

        return cls(dim, centered_r_for_grid_size(grid_size))

    # -- scheme interface ---------------------------------------------------

    @property
    def r(self) -> RealLike:
        """The tolerance parameter."""
        return self._r

    @property
    def guaranteed_tolerance(self) -> RealLike:
        """Centered tolerance: any point strictly within r is accepted."""
        return self._r

    @property
    def cell_size(self) -> RealLike:
        """Segments are 2r wide."""
        return 2 * self._r

    def enroll(self, point: Point) -> Discretization:
        """Discretize an original click-point; the point ends up centered."""
        self._check_point(point)
        indices = []
        offsets = []
        for coord in point:
            i, d = discretize_1d(coord, self._r)
            indices.append(i)
            offsets.append(d)
        return Discretization(public=tuple(offsets), secret=tuple(indices))

    def locate(
        self, point: Point, public: Tuple[Encodable, ...]
    ) -> Tuple[int, ...]:
        """Index vector of *point* under stored offsets (verification side)."""
        self._check_point(point)
        if len(public) != self.dim:
            raise VerificationError(
                f"centered: expected {self.dim} offsets, got {len(public)}"
            )
        return tuple(
            locate_1d(coord, d, self._r)  # type: ignore[arg-type]
            for coord, d in zip(point, public)
        )

    def acceptance_region(self, discretization: Discretization) -> Box:
        """The cube ``[x − r, x + r)`` around the enrolled point.

        Reconstructed from stored material only: the segment's left edge is
        ``d + i·2r``.
        """
        two_r = 2 * self._r
        lo = Point(
            tuple(
                d + i * two_r  # type: ignore[operator]
                for d, i in zip(discretization.public, discretization.secret)
            )
        )
        hi = Point(tuple(c + two_r for c in lo))
        return Box(lo, hi)

    def original_point(self, discretization: Discretization) -> Point:
        """Recover the enrolled point (= region center).

        Only possible because this is the *unhashed* research object; a
        deployed system stores the secret inside a hash.  Paper §5.2 notes
        this centering reveals one pixel per cell if the secret ever leaks —
        see :mod:`repro.attacks.leakage`.
        """
        return self.acceptance_region(discretization).center()

    def offset_space_size(self) -> int:
        """Number of distinct offset (grid-identifier) vectors: ``(2r)^dim``.

        Paper §5.2: Centered Discretization's clear grid identifier needs
        ``log2(2r × 2r)`` bits in 2-D, versus 2 bits for Robust's three
        grids.  Only integral for integer 2r; callers needing bits should
        use :func:`repro.attacks.leakage.identifier_bits`.
        """
        size = self.cell_size**self.dim
        return int(size)
