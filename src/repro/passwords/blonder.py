"""Blonder-style predefined-region graphical passwords.

The original click-based scheme (Blonder 1996, the paper's [3]): the image
carries a fixed set of predefined clickable regions, and a password is a
sequence of clicks on those regions.  No discretization is needed — a click
is resolved to the region containing it — but the password space is capped
by the number of regions, which is precisely the limitation PassPoints-style
arbitrary-pixel schemes (and therefore discretization) exist to remove
(paper §2).

Included as the historical baseline for the password-space comparisons: the
region count plays the role the per-grid square count plays for the
discretizing schemes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.crypto.hashing import Hasher
from repro.crypto.records import VerificationRecord, make_record
from repro.errors import DomainError, ParameterError, VerificationError
from repro.geometry.point import Point
from repro.geometry.region import Box
from repro.study.image import StudyImage

__all__ = ["BlonderSystem"]


@dataclass(frozen=True)
class BlonderSystem:
    """A predefined-region click scheme.

    Parameters
    ----------
    image:
        The background image (defines the click domain).
    regions:
        Disjoint clickable boxes.  Disjointness is validated so every click
        resolves to at most one region.
    clicks:
        Sequence length of a password.
    hasher:
        Hashing configuration for stored records.
    """

    image: StudyImage
    regions: Tuple[Box, ...]
    clicks: int = 5
    hasher: Hasher = Hasher()

    def __post_init__(self) -> None:
        if not self.regions:
            raise ParameterError("BlonderSystem needs at least one region")
        if self.clicks < 1:
            raise ParameterError(f"clicks must be >= 1, got {self.clicks}")
        for index, box in enumerate(self.regions):
            if box.dim != 2:
                raise ParameterError(f"region {index} is not 2-D")
            for other_index in range(index + 1, len(self.regions)):
                if box.intersects(self.regions[other_index]):
                    raise ParameterError(
                        f"regions {index} and {other_index} overlap"
                    )

    # -- resolution ---------------------------------------------------------

    def region_of(self, point: Point) -> Optional[int]:
        """Index of the region containing *point*, or ``None``."""
        if not self.image.contains(point):
            raise DomainError(f"click {point!r} outside image {self.image.name!r}")
        for index, box in enumerate(self.regions):
            if box.contains(point):
                return index
        return None

    # -- enrollment / verification ---------------------------------------------

    def enroll(self, points: Sequence[Point]) -> VerificationRecord:
        """Create a password; every click must hit a region."""
        if len(points) != self.clicks:
            raise VerificationError(
                f"expected {self.clicks} clicks, got {len(points)}"
            )
        indices = []
        for point in points:
            region = self.region_of(point)
            if region is None:
                raise DomainError(
                    f"click {point!r} does not hit any predefined region"
                )
            indices.append(region)
        return make_record((), tuple(indices), self.hasher)

    def verify(self, record: VerificationRecord, points: Sequence[Point]) -> bool:
        """Check a login attempt; clicks off-region simply fail."""
        if len(points) != self.clicks:
            raise VerificationError(
                f"expected {self.clicks} clicks, got {len(points)}"
            )
        indices = []
        for point in points:
            region = self.region_of(point)
            if region is None:
                return False
            indices.append(region)
        return record.matches(tuple(indices))

    # -- analytics -----------------------------------------------------------

    def password_space_bits(self) -> float:
        """Theoretical full password space in bits: clicks · log2(regions).

        Directly comparable to the per-scheme numbers of the paper's
        Table 3; with realistic region counts (dozens) this is far below
        what discretized arbitrary-pixel schemes reach.
        """
        return self.clicks * math.log2(len(self.regions))

    @classmethod
    def uniform_partition(
        cls,
        image: StudyImage,
        rows: int,
        columns: int,
        clicks: int = 5,
        hasher: Hasher = Hasher(),
    ) -> "BlonderSystem":
        """A system whose regions tile the image in a rows×columns grid."""
        if rows < 1 or columns < 1:
            raise ParameterError("rows and columns must be >= 1")
        from fractions import Fraction

        cell_w = Fraction(image.width, columns)
        cell_h = Fraction(image.height, rows)
        regions = []
        for row in range(rows):
            for column in range(columns):
                lo = Point.xy(column * cell_w, row * cell_h)
                hi = Point.xy((column + 1) * cell_w, (row + 1) * cell_h)
                regions.append(Box(lo, hi))
        return cls(image=image, regions=tuple(regions), clicks=clicks, hasher=hasher)
