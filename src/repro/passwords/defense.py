"""Deployment defense knobs: the server-side countermeasure matrix.

The paper's security analysis (§5.1) treats the verifier as a fixed
fast-hash oracle guarded by a lockout policy.  Real deployments turn more
knobs, and each knob changes the *attack economics* rather than the
scheme: slow hashes multiply the per-guess cost of a stolen-file grind,
a pepper makes the stolen file useless on its own, CAPTCHAs and rate
limits throttle the online guessing channel.  :class:`DefenseConfig`
names those knobs in one frozen, serializable object so a deployment —
and every attack simulation against it — can be described as a single
cell of a defense/attack matrix (see
:func:`repro.attacks.economics.defense_matrix_sweep`).

Enforcement points (each knob is enforced exactly once):

=====================  ====================================================
knob                   enforcement point
=====================  ====================================================
``hash_cost_factor``   enrollment: the per-user hasher's iteration count is
                       multiplied, so every verification *and* every
                       attacker guess pays the factor (the record
                       self-describes its cost, like a bcrypt cost prefix)
``pepper``             enrollment/verification: an outer keyed hash over
                       the inner digest
                       (:func:`repro.crypto.records.peppered_record`); the
                       pepper is **never** written to the password file, so
                       a stolen dump fails closed
``captcha_after``      serving: attempts on an account with that many
                       consecutive failures are flagged as
                       CAPTCHA-challenged; automated attackers stall or pay
                       a human-solver cost (:mod:`repro.attacks.online`)
``rate_limit_*``       store/serving: a sliding per-account window refuses
                       attempts over the cap with
                       :class:`~repro.errors.RateLimitError` (scalar) or a
                       ``"throttled"`` outcome (batched)
``lockout_policy``     store: overrides the store's
                       :class:`~repro.passwords.policy.LockoutPolicy`
=====================  ====================================================

``DefenseConfig.none()`` is the **neutral cell**: every knob off, and the
store/service behavior bit-identical to the undefended deployment —
property-tested in ``tests/test_defense_matrix.py`` across all schemes,
backends and serving paths, so every other cell is an auditable delta
from the reproduced paper rather than a fork of it.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional

from repro.crypto.records import peppered_record
from repro.errors import ParameterError
from repro.passwords.policy import LockoutPolicy
from repro.passwords.system import StoredPassword

__all__ = ["DefenseConfig", "RateLimiter", "VirtualClock", "apply_pepper"]


@dataclass(frozen=True)
class DefenseConfig:
    """One cell of the defense matrix: a deployment's countermeasures.

    Parameters
    ----------
    hash_cost_factor:
        Multiplier on the system hasher's iteration count — the
        bcrypt/argon2-style "slow hash" knob.  ``1`` is the paper's fast
        salted hash.
    pepper:
        Site-wide secret bound into every stored digest through an outer
        keyed hash.  Lives in server configuration, never in the password
        file: a stolen dump cannot verify guesses without it.
    captcha_after:
        Consecutive failures after which further attempts on the account
        are CAPTCHA-challenged (``None`` disables).
    rate_limit_window / rate_limit_max:
        Sliding-window online rate limit: at most ``rate_limit_max``
        evaluated attempts per account per ``rate_limit_window`` seconds.
        Both set or both ``None``.
    lockout_policy:
        Overrides the store's lockout policy for this deployment
        (``None`` keeps the store's own policy — the neutral setting).
    """

    hash_cost_factor: int = 1
    pepper: bytes = b""
    captcha_after: Optional[int] = None
    rate_limit_window: Optional[float] = None
    rate_limit_max: Optional[int] = None
    lockout_policy: Optional[LockoutPolicy] = None

    def __post_init__(self) -> None:
        if not isinstance(self.hash_cost_factor, int) or self.hash_cost_factor < 1:
            raise ParameterError(
                f"hash_cost_factor must be an int >= 1, got {self.hash_cost_factor!r}"
            )
        if not isinstance(self.pepper, bytes):
            raise ParameterError(
                f"pepper must be bytes, got {type(self.pepper).__name__}"
            )
        if self.captcha_after is not None and self.captcha_after < 1:
            raise ParameterError(
                f"captcha_after must be >= 1 or None, got {self.captcha_after}"
            )
        if (self.rate_limit_window is None) != (self.rate_limit_max is None):
            raise ParameterError(
                "rate_limit_window and rate_limit_max must be set together"
            )
        if self.rate_limit_window is not None and self.rate_limit_window <= 0:
            raise ParameterError(
                f"rate_limit_window must be > 0, got {self.rate_limit_window}"
            )
        if self.rate_limit_max is not None and self.rate_limit_max < 1:
            raise ParameterError(
                f"rate_limit_max must be >= 1, got {self.rate_limit_max}"
            )

    # -- classification ------------------------------------------------------

    @classmethod
    def none(cls) -> "DefenseConfig":
        """The neutral cell: no defenses beyond the store's own policy."""
        return cls()

    @property
    def is_neutral(self) -> bool:
        """Whether every knob is off (bit-identical to the undefended store)."""
        return (
            self.hash_cost_factor == 1
            and not self.pepper
            and self.captcha_after is None
            and self.rate_limit_window is None
            and self.lockout_policy is None
        )

    @property
    def rate_limited(self) -> bool:
        """Whether the sliding-window rate limit is enabled."""
        return self.rate_limit_window is not None

    # -- reporting -----------------------------------------------------------

    def describe(self) -> dict:
        """JSON-safe summary for stats endpoints (the pepper is redacted)."""
        if self.lockout_policy is None:
            lockout: object = "default"
        else:
            lockout = {"max_failures": self.lockout_policy.max_failures}
        return {
            "neutral": self.is_neutral,
            "hash_cost_factor": self.hash_cost_factor,
            "pepper": bool(self.pepper),
            "captcha_after": self.captcha_after,
            "rate_limit_window": self.rate_limit_window,
            "rate_limit_max": self.rate_limit_max,
            "lockout": lockout,
        }

    # -- spec round-trip -----------------------------------------------------

    def to_spec(self) -> str:
        """Canonical ``key=value,...`` string (inverse of :meth:`from_spec`).

        The neutral config serializes to the empty string; the pepper is
        hex-encoded so arbitrary bytes survive the round trip.  This is
        the form the CLI persists in storage meta, so a reopened backend
        is served under the defenses it was enrolled with.
        """
        parts = []
        if self.hash_cost_factor != 1:
            parts.append(f"hash_cost={self.hash_cost_factor}")
        if self.pepper:
            parts.append(f"pepper=hex:{self.pepper.hex()}")
        if self.captcha_after is not None:
            parts.append(f"captcha_after={self.captcha_after}")
        if self.rate_limit_window is not None:
            parts.append(
                f"rate_limit={self.rate_limit_window:g}:{self.rate_limit_max}"
            )
        if self.lockout_policy is not None:
            cap = self.lockout_policy.max_failures
            parts.append(f"lockout={'none' if cap is None else cap}")
        return ",".join(parts)

    @classmethod
    def from_spec(cls, spec: str) -> "DefenseConfig":
        """Parse a ``key=value,...`` spec (empty/blank = neutral).

        Keys: ``hash_cost=K``, ``pepper=TEXT`` (or ``pepper=hex:HEX``),
        ``captcha_after=N``, ``rate_limit=WINDOW:MAX``, ``lockout=N|none``.
        """
        spec = (spec or "").strip()
        if not spec:
            return cls()
        kwargs: dict = {}
        try:
            for part in spec.split(","):
                key, _, value = part.strip().partition("=")
                if not value:
                    raise ValueError(f"missing value in {part!r}")
                if key == "hash_cost":
                    kwargs["hash_cost_factor"] = int(value)
                elif key == "pepper":
                    if value.startswith("hex:"):
                        kwargs["pepper"] = bytes.fromhex(value[4:])
                    else:
                        kwargs["pepper"] = value.encode("utf-8")
                elif key == "captcha_after":
                    kwargs["captcha_after"] = int(value)
                elif key == "rate_limit":
                    window, _, cap = value.partition(":")
                    kwargs["rate_limit_window"] = float(window)
                    kwargs["rate_limit_max"] = int(cap)
                elif key == "lockout":
                    cap_value = None if value == "none" else int(value)
                    kwargs["lockout_policy"] = LockoutPolicy(max_failures=cap_value)
                else:
                    raise ValueError(f"unknown defense knob {key!r}")
        except (ValueError, TypeError) as exc:
            raise ParameterError(f"malformed defense spec {spec!r}: {exc}") from exc
        return cls(**kwargs)


class VirtualClock:
    """A deterministic, manually-advanced clock for rate-limit simulation.

    The store's rate limiter reads time through an injectable ``clock``
    callable; tests and attack simulations inject a ``VirtualClock`` so
    sliding windows roll deterministically (the online attack *advances*
    it to model the time an attacker spends waiting out the limit).

    >>> clock = VirtualClock()
    >>> clock(); clock.advance(2.5); clock()
    0.0
    2.5
    """

    def __init__(self, start: float = 0.0) -> None:
        self.now = float(start)

    def __call__(self) -> float:
        """The current virtual time, in seconds."""
        return self.now

    def advance(self, seconds: float) -> float:
        """Move time forward; returns the new reading."""
        if seconds < 0:
            raise ParameterError(f"cannot advance by {seconds} (< 0) seconds")
        self.now += seconds
        return self.now


class RateLimiter:
    """Sliding-window admission control for one account.

    Tracks the timestamps of *evaluated* attempts; an attempt arriving
    when ``max_attempts`` timestamps sit inside the trailing ``window``
    seconds is refused without being evaluated (and without consuming a
    slot).  Refusals report how long until the oldest slot frees.
    """

    __slots__ = ("window", "max_attempts", "_stamps")

    def __init__(self, window: float, max_attempts: int) -> None:
        if window <= 0:
            raise ParameterError(f"window must be > 0, got {window}")
        if max_attempts < 1:
            raise ParameterError(f"max_attempts must be >= 1, got {max_attempts}")
        self.window = float(window)
        self.max_attempts = int(max_attempts)
        self._stamps: Deque[float] = deque()

    def admit(self, now: float) -> Optional[float]:
        """Admit an attempt at time *now*, or refuse it.

        Returns ``None`` when admitted (the slot is consumed), else the
        seconds until the next slot frees (``retry_after``).
        """
        stamps = self._stamps
        horizon = now - self.window
        while stamps and stamps[0] <= horizon:
            stamps.popleft()
        if len(stamps) >= self.max_attempts:
            return stamps[0] + self.window - now
        stamps.append(now)
        return None

    @property
    def in_window(self) -> int:
        """Attempts currently counted against the window (may include stale)."""
        return len(self._stamps)


def apply_pepper(stored: StoredPassword, pepper: bytes) -> StoredPassword:
    """Re-bind an enrolled record's digest under a server-side pepper.

    The returned record stores ``H(pepper || inner_digest)`` in place of
    the inner digest; the salt, public material and hashing parameters are
    untouched, so the password file reveals nothing about the pepper and
    cannot be ground offline without it (preimage resistance).
    """
    if not pepper:
        raise ParameterError("apply_pepper needs a non-empty pepper")
    return StoredPassword(
        scheme_name=stored.scheme_name,
        publics=stored.publics,
        record=peppered_record(stored.record, pepper),
    )
