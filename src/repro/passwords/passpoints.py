"""PassPoints: the click-based graphical password system the paper evaluates.

PassPoints (Wiedenbeck et al. 2005) passwords are ordered sequences of five
click-points on a single image; login requires re-entering all five within
tolerance, in order.  The discretization scheme is pluggable — the whole
point of the paper is comparing PassPoints-over-Robust against
PassPoints-over-Centered.

:class:`PassPointsSystem` enforces the image domain, click count, and the
storage flow; it delegates geometry to the scheme and hashing to the crypto
layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.scheme import DiscretizationScheme
from repro.crypto.hashing import Hasher
from repro.errors import DomainError, ParameterError, VerificationError
from repro.geometry.point import Point
from repro.passwords.system import StoredPassword, enroll_password, verify_password
from repro.study.dataset import PasswordSample
from repro.study.image import StudyImage

__all__ = ["PassPointsSystem"]

#: Classic PassPoints click count (paper §4: 5-click passwords).
DEFAULT_CLICKS = 5


@dataclass(frozen=True)
class PassPointsSystem:
    """A PassPoints deployment: one image, one scheme, one hasher.

    Parameters
    ----------
    image:
        The background image defining the click domain.
    scheme:
        Any 2-D discretization scheme.
    hasher:
        Hashing configuration; per-user salts are applied by the store via
        :meth:`with_salt` at account-creation time.
    clicks:
        Number of click-points per password (default 5).
    """

    image: StudyImage
    scheme: DiscretizationScheme
    hasher: Hasher = Hasher()
    clicks: int = DEFAULT_CLICKS

    def __post_init__(self) -> None:
        if self.scheme.dim != 2:
            raise ParameterError(
                f"PassPoints needs a 2-D scheme, got {self.scheme.dim}-D"
            )
        if self.clicks < 1:
            raise ParameterError(f"clicks must be >= 1, got {self.clicks}")

    def _validate_points(self, points: Sequence[Point]) -> None:
        if len(points) != self.clicks:
            raise VerificationError(
                f"expected {self.clicks} click-points, got {len(points)}"
            )
        for point in points:
            if not self.image.contains(point):
                raise DomainError(
                    f"click-point {point!r} outside image "
                    f"{self.image.name!r} ({self.image.width}x{self.image.height})"
                )

    def enroll(self, points: Sequence[Point]) -> StoredPassword:
        """Create a password from ordered click-points on the image."""
        self._validate_points(points)
        return enroll_password(self.scheme, points, self.hasher)

    def enroll_sample(self, sample: PasswordSample) -> StoredPassword:
        """Enroll a study-dataset password sample."""
        if sample.image_name != self.image.name:
            raise DomainError(
                f"sample is for image {sample.image_name!r}, system uses "
                f"{self.image.name!r}"
            )
        return self.enroll(sample.points)

    def verify(
        self, stored: StoredPassword, points: Sequence[Point], pepper: bytes = b""
    ) -> bool:
        """Check a login attempt; ``False`` on mismatch.

        *pepper* is required for records enrolled under a peppered
        deployment (see :class:`~repro.passwords.defense.DefenseConfig`).
        """
        self._validate_points(points)
        return verify_password(self.scheme, stored, points, pepper=pepper)

    def with_salt(self, salt: bytes) -> "PassPointsSystem":
        """A copy of the system salted for one user account."""
        return PassPointsSystem(
            image=self.image,
            scheme=self.scheme,
            hasher=self.hasher.with_salt(salt),
            clicks=self.clicks,
        )
