"""Pluggable storage backends for the password store.

The paper's deployment story (§3.1–3.2, §5.1) is a server holding salted
hash records and throttling logins.  This module makes that server state a
real, swappable subsystem: a :class:`StorageBackend` holds, per account,

* the :class:`~repro.passwords.system.StoredPassword` record (clear public
  material + salted digest — exactly what an offline attacker steals), and
* the account's throttle state (§5.1 lockout counters), persisted so that
  lockout survives a process restart.

Four implementations ship:

* :class:`MemoryBackend` — the original in-process dict (tests, simulations);
* :class:`SQLiteBackend` — a durable single-file database in WAL journal
  mode, so enrolled populations survive across attack/experiment runs and
  concurrent readers (attack grinds against a live store) never block the
  login writer;
* :class:`JsonlBackend` — an append-only JSON-lines log replayed at open,
  the "flat password file" deployment shape;
* :class:`ShardedBackend` — a consistent-hash router spreading usernames
  across N child backends, the multi-process serving shape.

Backends are addressed by URI — ``memory:``, ``sqlite:PATH``,
``jsonl:PATH``, ``shards:CHILD{A..B}`` — via :func:`backend_from_uri`; the
CLI ``repro store`` / ``repro serve`` / ``repro flood`` subcommands operate
on these URIs.

Every backend also speaks the **group-commit** protocol —
:meth:`~StorageBackend.put_many`, :meth:`~StorageBackend.put_throttle_many`
and the :meth:`~StorageBackend.write_batch` context — which coalesces many
writes into one durable commit (one SQLite transaction, one buffered JSONL
write + flush, a per-ring-slice fan-out for shards).  The serving hot
paths (``VerificationService.flush`` throttle persists, bulk enrollment)
ride this protocol; :func:`commit_mode` / ``$REPRO_STORE_COMMIT`` can
force them back to one commit per record, which is what the durable
benchmark compares against.  A backend's :meth:`~StorageBackend.dump` is the portable
password-file artifact (same JSON for every backend, shards merged): the
offline attacks in :mod:`repro.attacks.offline` consume it directly, so
stealing a sharded deployment still yields one file.
"""

from __future__ import annotations

import abc
import bisect
import contextlib
import hashlib
import heapq
import json
import os
import re
import sqlite3
import weakref
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import StoreError
from repro.passwords.system import StoredPassword

__all__ = [
    "StorageBackend",
    "MemoryBackend",
    "SQLiteBackend",
    "JsonlBackend",
    "ShardedBackend",
    "backend_from_uri",
    "commit_mode",
    "rebalance",
]


def commit_mode() -> str:
    """The process-wide storage commit mode: ``"group"`` or ``"per-record"``.

    Controlled by ``$REPRO_STORE_COMMIT``.  ``"group"`` (the default) lets
    the hot paths — :meth:`~repro.passwords.service.VerificationService.flush`
    throttle persists, :meth:`~repro.passwords.store.PasswordStore.enroll_many`
    — coalesce their durable writes through :meth:`StorageBackend.put_many`
    / :meth:`StorageBackend.put_throttle_many` /
    :meth:`StorageBackend.write_batch`; ``"per-record"`` forces one commit
    per write, the pre-group-commit behaviour the durable benchmark gates
    against.  An explicit ``PasswordStore(group_commit=...)`` overrides
    this for that store.
    """
    value = os.environ.get("REPRO_STORE_COMMIT", "group").strip().lower()
    if value in ("per-record", "per_record", "record"):
        return "per-record"
    return "group"


class StorageBackend(abc.ABC):
    """Persistence contract between :class:`~repro.passwords.store.PasswordStore`
    and its storage medium.

    Implementations store three kinds of state:

    * **records** — ``username -> StoredPassword`` (the password file);
    * **throttle state** — ``username -> dict`` (§5.1 lockout counters,
      shaped by :meth:`~repro.passwords.policy.AccountThrottle.state`);
    * **meta** — small string key/values describing the deployment
      (scheme, image, tolerance) so a reopened backend can reconstruct
      its verifier.

    All usernames are unicode strings; all writes must be visible to a
    subsequent read through the same backend instance, and — for durable
    backends — through a new instance opened on the same location.
    """

    #: The URI this backend was constructed from (for display/round-trips).
    uri: str = "memory:"

    # -- records ------------------------------------------------------------

    @abc.abstractmethod
    def put(self, username: str, stored: StoredPassword) -> None:
        """Insert or replace the record for *username*."""

    @abc.abstractmethod
    def get(self, username: str) -> Optional[StoredPassword]:
        """The record for *username*, or ``None`` when unknown."""

    @abc.abstractmethod
    def delete(self, username: str) -> None:
        """Remove an account's record and throttle state.

        Raises :class:`~repro.errors.StoreError` for unknown accounts.
        """

    @abc.abstractmethod
    def usernames(self) -> Tuple[str, ...]:
        """All account names, sorted for determinism."""

    @abc.abstractmethod
    def clear(self) -> None:
        """Drop every record and all throttle state (meta survives)."""

    def iter_records(self) -> Iterator[Tuple[str, StoredPassword]]:
        """Yield ``(username, record)`` pairs in sorted username order."""
        for username in self.usernames():
            record = self.get(username)
            if record is not None:
                yield username, record

    def __contains__(self, username: str) -> bool:
        return self.get(username) is not None

    def __len__(self) -> int:
        return len(self.usernames())

    # -- throttle state -----------------------------------------------------

    @abc.abstractmethod
    def put_throttle(self, username: str, state: dict) -> None:
        """Persist an account's throttle state (JSON-serializable dict)."""

    @abc.abstractmethod
    def get_throttle(self, username: str) -> Optional[dict]:
        """The persisted throttle state, or ``None`` when never recorded."""

    # -- group commit -------------------------------------------------------

    def put_many(self, items: Iterable[Tuple[str, StoredPassword]]) -> None:
        """Insert or replace many records in one group commit.

        Equivalent to calling :meth:`put` per pair — same final state,
        same read-back bytes — but durable backends coalesce the batch
        into a single commit (one SQLite transaction, one buffered JSONL
        write + flush).  This base implementation loops per-record, so
        minimal third-party backends keep working unchanged.
        """
        for username, stored in items:
            self.put(username, stored)

    def put_throttle_many(self, items: Iterable[Tuple[str, dict]]) -> None:
        """Persist many accounts' throttle states in one group commit.

        The batched counterpart of :meth:`put_throttle`, with the same
        per-backend coalescing contract as :meth:`put_many`; the base
        implementation loops per-record.
        """
        for username, state in items:
            self.put_throttle(username, state)

    @contextlib.contextmanager
    def write_batch(self) -> Iterator["StorageBackend"]:
        """Coalesce mixed record/throttle/meta writes into one commit.

        Inside the ``with`` block every mutation through this backend —
        ``put``, ``put_throttle``, ``put_meta``, ``delete``, ``clear``,
        and the ``*_many`` bulk forms — is deferred into a single commit
        applied at successful exit.  Atomicity on failure is per-backend
        (see each implementation's docstring and the batching-contract
        table in ``docs/architecture.md``): SQLite and JSONL roll the
        whole batch back, memory applies writes immediately, a sharded
        batch is atomic per shard only.  Reads of a single account
        (``get`` / ``get_throttle`` / ``get_meta``) observe the batch's
        own writes; population scans may not until it commits.

        This base implementation applies writes immediately (the
        per-record path), so third-party backends inherit correct —
        just uncoalesced — behaviour.
        """
        yield self

    # -- meta ---------------------------------------------------------------

    @abc.abstractmethod
    def put_meta(self, key: str, value: str) -> None:
        """Persist one deployment-metadata string."""

    @abc.abstractmethod
    def get_meta(self, key: str) -> Optional[str]:
        """Read one deployment-metadata string, or ``None``."""

    def meta_items(self) -> Tuple[Tuple[str, str], ...]:
        """All persisted metadata pairs, sorted by key.

        Used by :func:`rebalance` to carry the deployment description to a
        new shard layout; the base implementation returns nothing, so
        minimal third-party backends stay valid.
        """
        return ()

    # -- password file ------------------------------------------------------

    def dump(self) -> str:
        """Serialize the *password file* (records only) to JSON.

        This is the artifact offline attacks assume stolen: public
        material, digests, salts and hashing parameters — no throttle
        state and, of course, no click-points.  The format is identical
        across backends, so a population enrolled into SQLite can be
        attacked from a JSONL steal and vice versa.
        """
        payload = {
            username: stored.to_json() for username, stored in self.iter_records()
        }
        return json.dumps(payload, sort_keys=True)

    def load(self, payload: str) -> None:
        """Replace all records with a password file produced by :meth:`dump`.

        Existing accounts are dropped; throttle states reset.
        """
        try:
            data = json.loads(payload)
        except json.JSONDecodeError as exc:
            raise StoreError(f"malformed password file: {exc}") from exc
        records = {
            username: StoredPassword.from_json(stored)
            for username, stored in data.items()
        }
        self.clear()
        self.put_many(records.items())

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Release any underlying resources (no-op for memory)."""


class MemoryBackend(StorageBackend):
    """The original in-process dict backend (nothing survives the process)."""

    def __init__(self) -> None:
        self.uri = "memory:"
        self._records: Dict[str, StoredPassword] = {}
        self._throttles: Dict[str, dict] = {}
        self._meta: Dict[str, str] = {}

    def put(self, username: str, stored: StoredPassword) -> None:
        """Insert or replace the record for *username*."""
        self._records[username] = stored

    def get(self, username: str) -> Optional[StoredPassword]:
        """The record for *username*, or ``None`` when unknown."""
        return self._records.get(username)

    def delete(self, username: str) -> None:
        """Remove an account's record and throttle state."""
        if username not in self._records:
            raise StoreError(f"unknown account {username!r}")
        del self._records[username]
        self._throttles.pop(username, None)

    def usernames(self) -> Tuple[str, ...]:
        """All account names, sorted."""
        return tuple(sorted(self._records))

    def clear(self) -> None:
        """Drop every record and all throttle state."""
        self._records.clear()
        self._throttles.clear()

    def put_many(self, items: Iterable[Tuple[str, StoredPassword]]) -> None:
        """Insert or replace many records (one dict update)."""
        self._records.update(items)

    def put_throttle(self, username: str, state: dict) -> None:
        """Persist an account's throttle state."""
        self._throttles[username] = dict(state)

    def put_throttle_many(self, items: Iterable[Tuple[str, dict]]) -> None:
        """Persist many accounts' throttle states (one dict update)."""
        self._throttles.update((username, dict(state)) for username, state in items)

    def get_throttle(self, username: str) -> Optional[dict]:
        """The persisted throttle state, or ``None``."""
        state = self._throttles.get(username)
        return dict(state) if state is not None else None

    def put_meta(self, key: str, value: str) -> None:
        """Persist one metadata string."""
        self._meta[key] = value

    def get_meta(self, key: str) -> Optional[str]:
        """Read one metadata string, or ``None``."""
        return self._meta.get(key)

    def meta_items(self) -> Tuple[Tuple[str, str], ...]:
        """All persisted metadata pairs, sorted by key."""
        return tuple(sorted(self._meta.items()))


class SQLiteBackend(StorageBackend):
    """Durable single-file backend on the stdlib :mod:`sqlite3`.

    Three tables — ``records``, ``throttles``, ``meta`` — each keyed by
    name with a JSON payload column.  Every write commits, so enrolled
    populations and lockout state survive process restarts; the database
    file *is* the stolen password file of the paper's offline-attack
    model (modulo the throttle/meta tables, which :meth:`dump` excludes).

    The connection runs in WAL journal mode with a busy timeout, and
    :meth:`dump` / :meth:`iter_records` / :meth:`usernames` read through
    a *fresh read-only connection*: an offline attack grinding a live
    store snapshots the password file without ever blocking the login
    writer (and cannot mutate it — the reader connection is opened
    ``mode=ro``).

    Group commit: :meth:`put_many` / :meth:`put_throttle_many` are one
    ``executemany`` transaction each, and :meth:`write_batch` wraps all
    enclosed writes in a single transaction that commits at exit — or
    rolls back *entirely* if any write inside it raises, which is the
    strongest atomicity in the backend family.
    """

    #: Milliseconds a connection waits on a locked database before failing.
    BUSY_TIMEOUT_MS = 5_000

    #: Rows fetched per cursor step while streaming :meth:`iter_records`.
    READ_CHUNK_ROWS = 1_024

    def __init__(self, path: str) -> None:
        self._path = str(path)
        self._batch_depth = 0
        self.uri = f"sqlite:{self._path}"
        self._conn = sqlite3.connect(self._path)
        self._conn.execute(f"PRAGMA busy_timeout={self.BUSY_TIMEOUT_MS}")
        # WAL lets readers proceed against a committed snapshot while a
        # writer holds the write lock; some filesystems refuse it, in
        # which case SQLite stays on its default rollback journal.
        row = self._conn.execute("PRAGMA journal_mode=WAL").fetchone()
        self._journal_mode = str(row[0]).lower() if row else "unknown"
        with self._conn:
            self._conn.execute(
                "CREATE TABLE IF NOT EXISTS records "
                "(username TEXT PRIMARY KEY, payload TEXT NOT NULL)"
            )
            self._conn.execute(
                "CREATE TABLE IF NOT EXISTS throttles "
                "(username TEXT PRIMARY KEY, payload TEXT NOT NULL)"
            )
            self._conn.execute(
                "CREATE TABLE IF NOT EXISTS meta "
                "(key TEXT PRIMARY KEY, value TEXT NOT NULL)"
            )

    @property
    def path(self) -> str:
        """Filesystem location of the database."""
        return self._path

    @property
    def journal_mode(self) -> str:
        """The journal mode actually in effect (``"wal"`` when supported)."""
        return self._journal_mode

    def _reader(self) -> Optional[sqlite3.Connection]:
        """A fresh read-only connection, or ``None`` when unavailable.

        Opened with SQLite's URI ``mode=ro``, so bulk reads (password-file
        theft, shard scans) run on their own snapshot and cannot write.
        """
        try:
            conn = sqlite3.connect(f"file:{self._path}?mode=ro", uri=True)
            conn.execute(f"PRAGMA busy_timeout={self.BUSY_TIMEOUT_MS}")
            return conn
        except sqlite3.Error:
            return None

    def _txn(self):
        """The commit scope for one write: a transaction, or the open batch.

        Outside a :meth:`write_batch` this is the connection itself
        (``with conn:`` commits on exit, rolls back on exception — the
        historical one-commit-per-write behaviour).  Inside a batch the
        enclosing ``write_batch`` transaction owns the commit, so writes
        just execute into it.
        """
        if self._batch_depth:
            return contextlib.nullcontext(self._conn)
        return self._conn

    def iter_records(self) -> Iterator[Tuple[str, StoredPassword]]:
        """Yield ``(username, record)`` pairs in sorted username order.

        Streams through a dedicated read-only connection in
        ``fetchmany`` chunks of :data:`READ_CHUNK_ROWS` rows, so a
        10⁶-account dump or reshard scan never materializes the whole
        table and never blocks a concurrent writer; falls back to the
        writer connection if a reader cannot be opened.
        """
        reader = self._reader()
        conn = reader if reader is not None else self._conn
        try:
            cursor = conn.execute(
                "SELECT username, payload FROM records ORDER BY username"
            )
            while True:
                rows = cursor.fetchmany(self.READ_CHUNK_ROWS)
                if not rows:
                    break
                for username, payload in rows:
                    yield username, StoredPassword.from_json(json.loads(payload))
        finally:
            if reader is not None:
                reader.close()

    def put(self, username: str, stored: StoredPassword) -> None:
        """Insert or replace the record for *username* (committed)."""
        with self._txn():
            self._conn.execute(
                "INSERT OR REPLACE INTO records (username, payload) VALUES (?, ?)",
                (username, json.dumps(stored.to_json(), sort_keys=True)),
            )

    def put_many(self, items: Iterable[Tuple[str, StoredPassword]]) -> None:
        """Insert or replace many records in one ``executemany`` transaction."""
        rows = [
            (username, json.dumps(stored.to_json(), sort_keys=True))
            for username, stored in items
        ]
        with self._txn():
            self._conn.executemany(
                "INSERT OR REPLACE INTO records (username, payload) VALUES (?, ?)",
                rows,
            )

    def get(self, username: str) -> Optional[StoredPassword]:
        """The record for *username*, or ``None`` when unknown."""
        row = self._conn.execute(
            "SELECT payload FROM records WHERE username = ?", (username,)
        ).fetchone()
        if row is None:
            return None
        return StoredPassword.from_json(json.loads(row[0]))

    def delete(self, username: str) -> None:
        """Remove an account's record and throttle state (committed)."""
        with self._txn():
            cursor = self._conn.execute(
                "DELETE FROM records WHERE username = ?", (username,)
            )
            self._conn.execute(
                "DELETE FROM throttles WHERE username = ?", (username,)
            )
            if cursor.rowcount == 0:
                raise StoreError(f"unknown account {username!r}")

    def usernames(self) -> Tuple[str, ...]:
        """All account names, sorted (read off a snapshot connection).

        Routed through the same read-only reader as :meth:`iter_records`
        so a population listing during a login flood never contends with
        the writer; falls back to the writer connection when a reader
        cannot be opened (e.g. the database file does not exist yet).
        """
        reader = self._reader()
        conn = reader if reader is not None else self._conn
        try:
            rows = conn.execute(
                "SELECT username FROM records ORDER BY username"
            ).fetchall()
        finally:
            if reader is not None:
                reader.close()
        return tuple(row[0] for row in rows)

    def clear(self) -> None:
        """Drop every record and all throttle state (committed)."""
        with self._txn():
            self._conn.execute("DELETE FROM records")
            self._conn.execute("DELETE FROM throttles")

    def put_throttle(self, username: str, state: dict) -> None:
        """Persist an account's throttle state (committed)."""
        with self._txn():
            self._conn.execute(
                "INSERT OR REPLACE INTO throttles (username, payload) VALUES (?, ?)",
                (username, json.dumps(state, sort_keys=True)),
            )

    def put_throttle_many(self, items: Iterable[Tuple[str, dict]]) -> None:
        """Persist many throttle states in one ``executemany`` transaction."""
        rows = [
            (username, json.dumps(state, sort_keys=True))
            for username, state in items
        ]
        with self._txn():
            self._conn.executemany(
                "INSERT OR REPLACE INTO throttles (username, payload) VALUES (?, ?)",
                rows,
            )

    @contextlib.contextmanager
    def write_batch(self) -> Iterator["SQLiteBackend"]:
        """One transaction over every enclosed write — all or nothing.

        Commits at successful exit; any exception inside the block rolls
        the *whole* batch back (the atomicity test in
        ``tests/test_group_commit.py`` pins this down).  Nested batches
        join the outermost transaction.  Point reads through the writer
        connection (``get`` / ``get_throttle`` / ``get_meta``) see the
        batch's own uncommitted writes; snapshot reads
        (``iter_records`` / ``usernames`` / ``dump``) see the pre-batch
        state until commit.
        """
        if self._batch_depth:
            self._batch_depth += 1
            try:
                yield self
            finally:
                self._batch_depth -= 1
            return
        self._batch_depth = 1
        try:
            with self._conn:
                yield self
        finally:
            self._batch_depth = 0

    def get_throttle(self, username: str) -> Optional[dict]:
        """The persisted throttle state, or ``None``."""
        row = self._conn.execute(
            "SELECT payload FROM throttles WHERE username = ?", (username,)
        ).fetchone()
        return json.loads(row[0]) if row is not None else None

    def put_meta(self, key: str, value: str) -> None:
        """Persist one metadata string (committed)."""
        with self._txn():
            self._conn.execute(
                "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
                (key, value),
            )

    def get_meta(self, key: str) -> Optional[str]:
        """Read one metadata string, or ``None``."""
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key = ?", (key,)
        ).fetchone()
        return row[0] if row is not None else None

    def meta_items(self) -> Tuple[Tuple[str, str], ...]:
        """All persisted metadata pairs, sorted by key."""
        rows = self._conn.execute(
            "SELECT key, value FROM meta ORDER BY key"
        ).fetchall()
        return tuple((key, value) for key, value in rows)

    def close(self) -> None:
        """Close the database connection."""
        self._conn.close()


class JsonlBackend(StorageBackend):
    """Append-only JSON-lines event log, replayed into memory at open.

    Every mutation appends one event line — ``put``, ``delete``,
    ``throttle``, ``meta``, ``clear`` — and flushes, so the file on disk
    is always a valid history and the latest state is recovered by a
    linear replay.  This is the "flat password file" deployment shape,
    and doubles as an audit log of the account lifecycle.

    Group commit: :meth:`put_many` / :meth:`put_throttle_many` buffer
    their event lines and issue **one** multi-line write + one flush;
    :meth:`write_batch` extends that to mixed writes, and keeps an undo
    log so an exception inside the batch restores the in-memory state
    and writes nothing — the log never diverges from memory.  Because a
    log grows one event per mutation forever, :meth:`compact` rewrites
    it down to one event per live fact.
    """

    #: Live instances per absolute log path — the refuse-on-live-handle
    #: guard :meth:`compact` checks before swapping the file out from
    #: under a concurrent writer.  Weak references, so leaked (never
    #: closed, garbage-collected) backends do not pin the guard forever.
    _open_logs: Dict[str, "weakref.WeakSet"] = {}

    def __init__(self, path: str) -> None:
        self._path = str(path)
        self.uri = f"jsonl:{self._path}"
        self._records: Dict[str, StoredPassword] = {}
        self._throttles: Dict[str, dict] = {}
        self._meta: Dict[str, str] = {}
        self._buffer: Optional[List[str]] = None
        self._undo: List[tuple] = []
        if os.path.exists(self._path):
            self._replay()
        self._handle = open(self._path, "a", encoding="utf-8")
        self._abspath = os.path.abspath(self._path)
        self._open_logs.setdefault(self._abspath, weakref.WeakSet()).add(self)

    @property
    def path(self) -> str:
        """Filesystem location of the log."""
        return self._path

    def _replay(self) -> None:
        with open(self._path, "r", encoding="utf-8") as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    event = json.loads(line)
                    self._apply(event)
                except (json.JSONDecodeError, KeyError, TypeError) as exc:
                    raise StoreError(
                        f"{self._path}:{line_number}: malformed log event: {exc}"
                    ) from exc

    def _apply(self, event: dict) -> None:
        op = event["op"]
        if op == "put":
            self._records[event["username"]] = StoredPassword.from_json(
                event["record"]
            )
        elif op == "delete":
            self._records.pop(event["username"], None)
            self._throttles.pop(event["username"], None)
        elif op == "throttle":
            self._throttles[event["username"]] = event["state"]
        elif op == "meta":
            self._meta[event["key"]] = event["value"]
        elif op == "clear":
            self._records.clear()
            self._throttles.clear()
        else:
            raise StoreError(f"unknown log op {op!r}")

    def _emit(self, events: Sequence[dict]) -> None:
        """Write *events* as one buffered multi-line write + one flush.

        Inside an open :meth:`write_batch` the lines are deferred into
        the batch buffer instead, to be written at commit.
        """
        lines = [json.dumps(event, sort_keys=True) + "\n" for event in events]
        if self._buffer is not None:
            self._buffer.extend(lines)
            return
        self._handle.write("".join(lines))
        self._handle.flush()

    def _append(self, event: dict) -> None:
        self._emit((event,))

    def _note_record(self, username: str) -> None:
        """Record the undo entry for an imminent record mutation."""
        if self._buffer is not None:
            self._undo.append(("record", username, self._records.get(username)))

    def _note_throttle(self, username: str) -> None:
        """Record the undo entry for an imminent throttle mutation."""
        if self._buffer is not None:
            self._undo.append(("throttle", username, self._throttles.get(username)))

    def put(self, username: str, stored: StoredPassword) -> None:
        """Insert or replace the record for *username* (appended + flushed)."""
        self._note_record(username)
        self._records[username] = stored
        self._append({"op": "put", "username": username, "record": stored.to_json()})

    def put_many(self, items: Iterable[Tuple[str, StoredPassword]]) -> None:
        """Insert or replace many records: one buffered write, one flush."""
        events = []
        for username, stored in items:
            self._note_record(username)
            self._records[username] = stored
            events.append(
                {"op": "put", "username": username, "record": stored.to_json()}
            )
        if events:
            self._emit(events)

    def get(self, username: str) -> Optional[StoredPassword]:
        """The record for *username*, or ``None`` when unknown."""
        return self._records.get(username)

    def delete(self, username: str) -> None:
        """Remove an account (a ``delete`` event; the log keeps history)."""
        if username not in self._records:
            raise StoreError(f"unknown account {username!r}")
        self._note_record(username)
        self._note_throttle(username)
        del self._records[username]
        self._throttles.pop(username, None)
        self._append({"op": "delete", "username": username})

    def usernames(self) -> Tuple[str, ...]:
        """All account names, sorted."""
        return tuple(sorted(self._records))

    def clear(self) -> None:
        """Drop every record and all throttle state (a ``clear`` event)."""
        if self._buffer is not None:
            self._undo.append(
                ("snapshot", dict(self._records), dict(self._throttles))
            )
        self._records.clear()
        self._throttles.clear()
        self._append({"op": "clear"})

    def put_throttle(self, username: str, state: dict) -> None:
        """Persist an account's throttle state (appended + flushed)."""
        self._note_throttle(username)
        self._throttles[username] = dict(state)
        self._append({"op": "throttle", "username": username, "state": dict(state)})

    def put_throttle_many(self, items: Iterable[Tuple[str, dict]]) -> None:
        """Persist many throttle states: one buffered write, one flush."""
        events = []
        for username, state in items:
            self._note_throttle(username)
            state = dict(state)
            self._throttles[username] = state
            events.append({"op": "throttle", "username": username, "state": state})
        if events:
            self._emit(events)

    def get_throttle(self, username: str) -> Optional[dict]:
        """The persisted throttle state, or ``None``."""
        state = self._throttles.get(username)
        return dict(state) if state is not None else None

    def put_meta(self, key: str, value: str) -> None:
        """Persist one metadata string (appended + flushed)."""
        if self._buffer is not None:
            self._undo.append(("meta", key, self._meta.get(key)))
        self._meta[key] = value
        self._append({"op": "meta", "key": key, "value": value})

    def get_meta(self, key: str) -> Optional[str]:
        """Read one metadata string, or ``None``."""
        return self._meta.get(key)

    def meta_items(self) -> Tuple[Tuple[str, str], ...]:
        """All persisted metadata pairs, sorted by key."""
        return tuple(sorted(self._meta.items()))

    def _rollback(self, undo: Sequence[tuple]) -> None:
        """Rewind the in-memory state of an abandoned :meth:`write_batch`."""
        for entry in reversed(undo):
            kind = entry[0]
            if kind == "record":
                _, username, previous = entry
                if previous is None:
                    self._records.pop(username, None)
                else:
                    self._records[username] = previous
            elif kind == "throttle":
                _, username, previous = entry
                if previous is None:
                    self._throttles.pop(username, None)
                else:
                    self._throttles[username] = previous
            elif kind == "meta":
                _, key, previous = entry
                if previous is None:
                    self._meta.pop(key, None)
                else:
                    self._meta[key] = previous
            else:  # snapshot (clear inside a batch)
                _, records, throttles = entry
                self._records = records
                self._throttles = throttles

    @contextlib.contextmanager
    def write_batch(self) -> Iterator["JsonlBackend"]:
        """Defer every enclosed event into one multi-line write + flush.

        On success the buffered lines hit the log in one write; on
        failure *nothing* is written and the in-memory dicts are rewound
        through the undo log, so replaying the file still reconstructs
        exactly the live state.  Nested batches join the outer one.
        """
        if self._buffer is not None:
            yield self
            return
        self._buffer = []
        self._undo = []
        try:
            yield self
        except BaseException:
            self._buffer = None
            self._rollback(self._undo)
            self._undo = []
            raise
        buffer, self._buffer = self._buffer, None
        self._undo = []
        if buffer:
            self._handle.write("".join(buffer))
            self._handle.flush()

    def compact(self) -> Tuple[int, int]:
        """Rewrite the append-only log to one event per live fact.

        A served log accrues one ``throttle`` event per login forever;
        compaction rewrites it to the current state — every ``meta``
        pair, then one ``put`` and (when present) one ``throttle`` event
        per live account, in sorted order — via an atomic
        ``os.replace`` of a sibling temp file.  Returns ``(before,
        after)`` sizes in bytes.

        Refuses (:class:`~repro.errors.StoreError`) while a write batch
        is open or while any *other* live :class:`JsonlBackend` in this
        process holds the same log open — swapping the inode under a
        concurrent writer would silently fork the history.
        """
        if self._buffer is not None:
            raise StoreError(
                f"cannot compact {self._path!r} inside an open write_batch"
            )
        others = [
            backend
            for backend in self._open_logs.get(self._abspath, ())
            if backend is not self
        ]
        if others:
            raise StoreError(
                f"refusing to compact {self._path!r}: "
                f"{len(others)} other live handle(s) hold this log open"
            )
        self._handle.flush()
        before = os.path.getsize(self._path)
        events: List[dict] = [
            {"op": "meta", "key": key, "value": value}
            for key, value in sorted(self._meta.items())
        ]
        for username in sorted(self._records):
            events.append(
                {
                    "op": "put",
                    "username": username,
                    "record": self._records[username].to_json(),
                }
            )
        for username in sorted(self._throttles):
            events.append(
                {
                    "op": "throttle",
                    "username": username,
                    "state": self._throttles[username],
                }
            )
        temp_path = self._path + ".compact"
        with open(temp_path, "w", encoding="utf-8") as handle:
            handle.write(
                "".join(json.dumps(event, sort_keys=True) + "\n" for event in events)
            )
            handle.flush()
            os.fsync(handle.fileno())
        self._handle.close()
        os.replace(temp_path, self._path)
        self._handle = open(self._path, "a", encoding="utf-8")
        return before, os.path.getsize(self._path)

    def close(self) -> None:
        """Close the log file handle (and drop the live-handle guard entry)."""
        open_set = self._open_logs.get(self._abspath)
        if open_set is not None:
            open_set.discard(self)
        self._handle.close()


def _ring_position(key: str) -> int:
    """Deterministic 64-bit position of *key* on the consistent-hash ring.

    Python's builtin ``hash`` is salted per process, so routing is pinned
    to a keyed-less blake2b instead: the same username lands on the same
    shard in every process that opens the store.
    """
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class ConsistentHashRing:
    """Blake2b consistent-hash ring mapping string keys to shard indices.

    This is the routing brain shared by :class:`ShardedBackend` and the
    multi-process serving cluster's router: both sides build the ring from
    ``(shard_count, replicas)`` alone, so a router process and a backend
    opened elsewhere agree on every username's shard without exchanging
    any state.  Each shard contributes ``replicas`` virtual nodes at
    positions ``_ring_position(f"shard:{index}:{replica}")``; a key is
    owned by the first virtual node clockwise from its own position.
    """

    def __init__(self, shard_count: int, replicas: int = 64) -> None:
        if shard_count < 1:
            raise StoreError(f"ring needs at least one shard, got {shard_count}")
        if replicas < 1:
            raise StoreError(f"replicas must be >= 1, got {replicas}")
        self.shard_count = shard_count
        self.replicas = replicas
        ring = sorted(
            (_ring_position(f"shard:{index}:{replica}"), index)
            for index in range(shard_count)
            for replica in range(replicas)
        )
        self._keys = [position for position, _ in ring]
        self._values = [index for _, index in ring]

    def index_for(self, key: str) -> int:
        """The shard index that owns *key*."""
        position = _ring_position(key)
        slot = bisect.bisect_right(self._keys, position)
        return self._values[slot % len(self._values)]


class ShardedBackend(StorageBackend):
    """Consistent-hash router over N child backends.

    Usernames are routed to shards through a hash ring with
    ``replicas`` virtual nodes per shard, so the assignment is stable,
    deterministic across processes (blake2b, not the salted builtin
    ``hash``), and roughly balanced.  Per-account operations touch
    exactly one child; population-level operations (``usernames``,
    ``iter_records``, ``dump``, ``load``, ``clear``) merge or fan out
    across all of them, so a sharded deployment still produces the single
    portable password file the offline attacks consume — stealing the
    shards is stealing one artifact.

    Metadata writes replicate to every shard (each child must be able to
    describe the deployment on its own); reads take the first answer.
    """

    def __init__(
        self, shards: Sequence[StorageBackend], uri: Optional[str] = None,
        replicas: int = 64,
    ) -> None:
        if not shards:
            raise StoreError("ShardedBackend needs at least one child backend")
        if replicas < 1:
            raise StoreError(f"replicas must be >= 1, got {replicas}")
        self._shards: List[StorageBackend] = list(shards)
        self.uri = uri or f"shards[{','.join(s.uri for s in self._shards)}]"
        self._ring = ConsistentHashRing(len(self._shards), replicas)

    @property
    def shards(self) -> Tuple[StorageBackend, ...]:
        """The child backends, in shard-index order."""
        return tuple(self._shards)

    @property
    def ring(self) -> ConsistentHashRing:
        """The consistent-hash ring that routes usernames to shards."""
        return self._ring

    def shard_index_for(self, username: str) -> int:
        """The index of the child backend that owns *username*."""
        return self._ring.index_for(username)

    def shard_for(self, username: str) -> StorageBackend:
        """The child backend that owns *username*."""
        return self._shards[self.shard_index_for(username)]

    def _group_by_shard(self, items: Iterable[Tuple[str, object]]) -> Dict[int, list]:
        """Split ``(username, payload)`` pairs into per-shard slices."""
        grouped: Dict[int, list] = {}
        index_for = self._ring.index_for
        for username, payload in items:
            grouped.setdefault(index_for(username), []).append((username, payload))
        return grouped

    def put(self, username: str, stored: StoredPassword) -> None:
        """Insert or replace the record on the owning shard."""
        self.shard_for(username).put(username, stored)

    def put_many(self, items: Iterable[Tuple[str, StoredPassword]]) -> None:
        """Group records by ring slice; one batched put per touched shard."""
        for index, group in self._group_by_shard(items).items():
            self._shards[index].put_many(group)

    def get(self, username: str) -> Optional[StoredPassword]:
        """The record from the owning shard, or ``None`` when unknown."""
        return self.shard_for(username).get(username)

    def delete(self, username: str) -> None:
        """Remove an account from its owning shard."""
        self.shard_for(username).delete(username)

    def usernames(self) -> Tuple[str, ...]:
        """All account names across every shard, sorted."""
        merged: List[str] = []
        for shard in self._shards:
            merged.extend(shard.usernames())
        return tuple(sorted(merged))

    def clear(self) -> None:
        """Drop every record and all throttle state on every shard."""
        for shard in self._shards:
            shard.clear()

    def iter_records(self) -> Iterator[Tuple[str, StoredPassword]]:
        """Yield ``(username, record)`` pairs merged across shards, sorted.

        Each shard already yields in sorted username order (and shards are
        disjoint by routing), so this is a streaming k-way merge — S table
        scans, not one routed point query per account.
        """
        return heapq.merge(
            *(shard.iter_records() for shard in self._shards),
            key=lambda pair: pair[0],
        )

    def put_throttle(self, username: str, state: dict) -> None:
        """Persist throttle state on the owning shard."""
        self.shard_for(username).put_throttle(username, state)

    def put_throttle_many(self, items: Iterable[Tuple[str, dict]]) -> None:
        """Group throttle states by ring slice; one batched put per shard."""
        for index, group in self._group_by_shard(items).items():
            self._shards[index].put_throttle_many(group)

    @contextlib.contextmanager
    def write_batch(self) -> Iterator["ShardedBackend"]:
        """Open every child's write batch and fan enclosed writes out.

        Atomicity is **per shard**: each child commits (or rolls back)
        its own slice of the batch, and the commits land sequentially at
        exit — an exception raised while one shard commits can leave
        earlier shards committed.  Cross-shard writes are disjoint by
        routing, so this is the same consistency a per-record fan-out
        gives, minus N-1 commits per shard.
        """
        with contextlib.ExitStack() as stack:
            for shard in self._shards:
                stack.enter_context(shard.write_batch())
            yield self

    def get_throttle(self, username: str) -> Optional[dict]:
        """Throttle state from the owning shard, or ``None``."""
        return self.shard_for(username).get_throttle(username)

    def put_meta(self, key: str, value: str) -> None:
        """Replicate one metadata string to every shard."""
        for shard in self._shards:
            shard.put_meta(key, value)

    def get_meta(self, key: str) -> Optional[str]:
        """Read one metadata string (first shard that has it)."""
        for shard in self._shards:
            value = shard.get_meta(key)
            if value is not None:
                return value
        return None

    def meta_items(self) -> Tuple[Tuple[str, str], ...]:
        """Metadata pairs merged across shards (first writer wins per key)."""
        merged: Dict[str, str] = {}
        for shard in self._shards:
            for key, value in shard.meta_items():
                merged.setdefault(key, value)
        return tuple(sorted(merged.items()))

    def close(self) -> None:
        """Close every child backend."""
        for shard in self._shards:
            shard.close()


#: Accounts moved per batched commit while rebalancing between layouts —
#: bounds both the destination's transaction size and the JSONL batch
#: buffer, so migrating 10⁶ accounts never builds a 10⁶-line buffer.
REBALANCE_CHUNK = 1_024


def rebalance(source: StorageBackend, dest: StorageBackend, clear: bool = True) -> int:
    """Copy every account — record, throttle state, meta — into *dest*.

    By default *dest* is cleared first, then repopulated through its own
    routing, so moving a population between shard layouts (4 shards → 2,
    single file → sharded, …) preserves lockout state: an account locked
    on the old layout is still locked on the new one.  Pass
    ``clear=False`` for *incremental* migration — the online reshard drill
    drains one old shard at a time into an already-live destination
    layout, and clearing would drop the shards migrated earlier.  Returns
    the number of accounts moved.

    Writes land through the destination's group-commit path in chunks of
    :data:`REBALANCE_CHUNK` accounts — one batched commit per chunk
    instead of one per record — which is what keeps the live reshard
    drill's per-shard cutover window short on durable destinations.
    """
    if clear:
        dest.clear()
    moved = 0
    records: List[Tuple[str, StoredPassword]] = []
    throttles: List[Tuple[str, dict]] = []

    def _flush_chunk() -> None:
        nonlocal records, throttles
        with dest.write_batch():
            dest.put_many(records)
            dest.put_throttle_many(throttles)
        records = []
        throttles = []

    for username, record in source.iter_records():
        records.append((username, record))
        state = source.get_throttle(username)
        if state is not None:
            throttles.append((username, state))
        moved += 1
        if len(records) >= REBALANCE_CHUNK:
            _flush_chunk()
    if records or throttles:
        _flush_chunk()
    for key, value in source.meta_items():
        dest.put_meta(key, value)
    return moved


#: ``{A..B}`` range template inside a ``shards:`` URI.
_SHARD_RANGE = re.compile(r"\{(\d+)\.\.(\d+)\}")


def _expand_shard_uris(template: str) -> List[str]:
    """Expand one ``{A..B}`` range in a child-URI template.

    >>> _expand_shard_uris("sqlite:/tmp/s{0..2}.db")
    ['sqlite:/tmp/s0.db', 'sqlite:/tmp/s1.db', 'sqlite:/tmp/s2.db']
    """
    matches = list(_SHARD_RANGE.finditer(template))
    if len(matches) != 1:
        raise StoreError(
            f"shards: template needs exactly one {{A..B}} range, got {template!r}"
        )
    match = matches[0]
    lo, hi = int(match.group(1)), int(match.group(2))
    if hi < lo:
        raise StoreError(f"empty shard range {match.group(0)!r} in {template!r}")
    return [
        template[: match.start()] + str(index) + template[match.end() :]
        for index in range(lo, hi + 1)
    ]


def backend_from_uri(uri: str) -> StorageBackend:
    """Construct a backend from a ``scheme:location`` URI.

    Supported schemes: ``memory:`` (location ignored), ``sqlite:PATH``,
    ``jsonl:PATH``, and ``shards:TEMPLATE`` where TEMPLATE is any other
    backend URI containing one ``{A..B}`` range — e.g.
    ``shards:sqlite:/tmp/s{0..3}.db`` routes usernames across four SQLite
    files by consistent hashing.

    >>> backend_from_uri("memory:").uri
    'memory:'
    """
    scheme, _, location = uri.partition(":")
    if scheme == "memory":
        return MemoryBackend()
    if scheme == "sqlite":
        if not location:
            raise StoreError(f"sqlite backend needs a path: {uri!r}")
        return SQLiteBackend(location)
    if scheme == "jsonl":
        if not location:
            raise StoreError(f"jsonl backend needs a path: {uri!r}")
        return JsonlBackend(location)
    if scheme == "shards":
        if not location:
            raise StoreError(f"shards backend needs a child template: {uri!r}")
        children = [backend_from_uri(child) for child in _expand_shard_uris(location)]
        return ShardedBackend(children, uri=uri)
    raise StoreError(
        f"unknown storage backend URI {uri!r} "
        "(expected memory:, sqlite:PATH, jsonl:PATH, or shards:TEMPLATE)"
    )
