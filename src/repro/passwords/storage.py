"""Pluggable storage backends for the password store.

The paper's deployment story (§3.1–3.2, §5.1) is a server holding salted
hash records and throttling logins.  This module makes that server state a
real, swappable subsystem: a :class:`StorageBackend` holds, per account,

* the :class:`~repro.passwords.system.StoredPassword` record (clear public
  material + salted digest — exactly what an offline attacker steals), and
* the account's throttle state (§5.1 lockout counters), persisted so that
  lockout survives a process restart.

Three implementations ship:

* :class:`MemoryBackend` — the original in-process dict (tests, simulations);
* :class:`SQLiteBackend` — a durable single-file database, so enrolled
  populations survive across attack/experiment runs;
* :class:`JsonlBackend` — an append-only JSON-lines log replayed at open,
  the "flat password file" deployment shape.

Backends are addressed by URI — ``memory:``, ``sqlite:PATH``,
``jsonl:PATH`` — via :func:`backend_from_uri`; the CLI ``repro store``
subcommands operate on these URIs.  A backend's :meth:`~StorageBackend.dump`
is the portable password-file artifact (same JSON for every backend): the
offline attacks in :mod:`repro.attacks.offline` consume it directly.
"""

from __future__ import annotations

import abc
import json
import os
import sqlite3
from typing import Dict, Iterator, Optional, Tuple

from repro.errors import StoreError
from repro.passwords.system import StoredPassword

__all__ = [
    "StorageBackend",
    "MemoryBackend",
    "SQLiteBackend",
    "JsonlBackend",
    "backend_from_uri",
]


class StorageBackend(abc.ABC):
    """Persistence contract between :class:`~repro.passwords.store.PasswordStore`
    and its storage medium.

    Implementations store three kinds of state:

    * **records** — ``username -> StoredPassword`` (the password file);
    * **throttle state** — ``username -> dict`` (§5.1 lockout counters,
      shaped by :meth:`~repro.passwords.policy.AccountThrottle.state`);
    * **meta** — small string key/values describing the deployment
      (scheme, image, tolerance) so a reopened backend can reconstruct
      its verifier.

    All usernames are unicode strings; all writes must be visible to a
    subsequent read through the same backend instance, and — for durable
    backends — through a new instance opened on the same location.
    """

    #: The URI this backend was constructed from (for display/round-trips).
    uri: str = "memory:"

    # -- records ------------------------------------------------------------

    @abc.abstractmethod
    def put(self, username: str, stored: StoredPassword) -> None:
        """Insert or replace the record for *username*."""

    @abc.abstractmethod
    def get(self, username: str) -> Optional[StoredPassword]:
        """The record for *username*, or ``None`` when unknown."""

    @abc.abstractmethod
    def delete(self, username: str) -> None:
        """Remove an account's record and throttle state.

        Raises :class:`~repro.errors.StoreError` for unknown accounts.
        """

    @abc.abstractmethod
    def usernames(self) -> Tuple[str, ...]:
        """All account names, sorted for determinism."""

    @abc.abstractmethod
    def clear(self) -> None:
        """Drop every record and all throttle state (meta survives)."""

    def iter_records(self) -> Iterator[Tuple[str, StoredPassword]]:
        """Yield ``(username, record)`` pairs in sorted username order."""
        for username in self.usernames():
            record = self.get(username)
            if record is not None:
                yield username, record

    def __contains__(self, username: str) -> bool:
        return self.get(username) is not None

    def __len__(self) -> int:
        return len(self.usernames())

    # -- throttle state -----------------------------------------------------

    @abc.abstractmethod
    def put_throttle(self, username: str, state: dict) -> None:
        """Persist an account's throttle state (JSON-serializable dict)."""

    @abc.abstractmethod
    def get_throttle(self, username: str) -> Optional[dict]:
        """The persisted throttle state, or ``None`` when never recorded."""

    # -- meta ---------------------------------------------------------------

    @abc.abstractmethod
    def put_meta(self, key: str, value: str) -> None:
        """Persist one deployment-metadata string."""

    @abc.abstractmethod
    def get_meta(self, key: str) -> Optional[str]:
        """Read one deployment-metadata string, or ``None``."""

    # -- password file ------------------------------------------------------

    def dump(self) -> str:
        """Serialize the *password file* (records only) to JSON.

        This is the artifact offline attacks assume stolen: public
        material, digests, salts and hashing parameters — no throttle
        state and, of course, no click-points.  The format is identical
        across backends, so a population enrolled into SQLite can be
        attacked from a JSONL steal and vice versa.
        """
        payload = {
            username: stored.to_json() for username, stored in self.iter_records()
        }
        return json.dumps(payload, sort_keys=True)

    def load(self, payload: str) -> None:
        """Replace all records with a password file produced by :meth:`dump`.

        Existing accounts are dropped; throttle states reset.
        """
        try:
            data = json.loads(payload)
        except json.JSONDecodeError as exc:
            raise StoreError(f"malformed password file: {exc}") from exc
        records = {
            username: StoredPassword.from_json(stored)
            for username, stored in data.items()
        }
        self.clear()
        for username, stored in records.items():
            self.put(username, stored)

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Release any underlying resources (no-op for memory)."""


class MemoryBackend(StorageBackend):
    """The original in-process dict backend (nothing survives the process)."""

    def __init__(self) -> None:
        self.uri = "memory:"
        self._records: Dict[str, StoredPassword] = {}
        self._throttles: Dict[str, dict] = {}
        self._meta: Dict[str, str] = {}

    def put(self, username: str, stored: StoredPassword) -> None:
        """Insert or replace the record for *username*."""
        self._records[username] = stored

    def get(self, username: str) -> Optional[StoredPassword]:
        """The record for *username*, or ``None`` when unknown."""
        return self._records.get(username)

    def delete(self, username: str) -> None:
        """Remove an account's record and throttle state."""
        if username not in self._records:
            raise StoreError(f"unknown account {username!r}")
        del self._records[username]
        self._throttles.pop(username, None)

    def usernames(self) -> Tuple[str, ...]:
        """All account names, sorted."""
        return tuple(sorted(self._records))

    def clear(self) -> None:
        """Drop every record and all throttle state."""
        self._records.clear()
        self._throttles.clear()

    def put_throttle(self, username: str, state: dict) -> None:
        """Persist an account's throttle state."""
        self._throttles[username] = dict(state)

    def get_throttle(self, username: str) -> Optional[dict]:
        """The persisted throttle state, or ``None``."""
        state = self._throttles.get(username)
        return dict(state) if state is not None else None

    def put_meta(self, key: str, value: str) -> None:
        """Persist one metadata string."""
        self._meta[key] = value

    def get_meta(self, key: str) -> Optional[str]:
        """Read one metadata string, or ``None``."""
        return self._meta.get(key)


class SQLiteBackend(StorageBackend):
    """Durable single-file backend on the stdlib :mod:`sqlite3`.

    Three tables — ``records``, ``throttles``, ``meta`` — each keyed by
    name with a JSON payload column.  Every write commits, so enrolled
    populations and lockout state survive process restarts; the database
    file *is* the stolen password file of the paper's offline-attack
    model (modulo the throttle/meta tables, which :meth:`dump` excludes).
    """

    def __init__(self, path: str) -> None:
        self._path = str(path)
        self.uri = f"sqlite:{self._path}"
        self._conn = sqlite3.connect(self._path)
        with self._conn:
            self._conn.execute(
                "CREATE TABLE IF NOT EXISTS records "
                "(username TEXT PRIMARY KEY, payload TEXT NOT NULL)"
            )
            self._conn.execute(
                "CREATE TABLE IF NOT EXISTS throttles "
                "(username TEXT PRIMARY KEY, payload TEXT NOT NULL)"
            )
            self._conn.execute(
                "CREATE TABLE IF NOT EXISTS meta "
                "(key TEXT PRIMARY KEY, value TEXT NOT NULL)"
            )

    @property
    def path(self) -> str:
        """Filesystem location of the database."""
        return self._path

    def put(self, username: str, stored: StoredPassword) -> None:
        """Insert or replace the record for *username* (committed)."""
        with self._conn:
            self._conn.execute(
                "INSERT OR REPLACE INTO records (username, payload) VALUES (?, ?)",
                (username, json.dumps(stored.to_json(), sort_keys=True)),
            )

    def get(self, username: str) -> Optional[StoredPassword]:
        """The record for *username*, or ``None`` when unknown."""
        row = self._conn.execute(
            "SELECT payload FROM records WHERE username = ?", (username,)
        ).fetchone()
        if row is None:
            return None
        return StoredPassword.from_json(json.loads(row[0]))

    def delete(self, username: str) -> None:
        """Remove an account's record and throttle state (committed)."""
        with self._conn:
            cursor = self._conn.execute(
                "DELETE FROM records WHERE username = ?", (username,)
            )
            self._conn.execute(
                "DELETE FROM throttles WHERE username = ?", (username,)
            )
        if cursor.rowcount == 0:
            raise StoreError(f"unknown account {username!r}")

    def usernames(self) -> Tuple[str, ...]:
        """All account names, sorted."""
        rows = self._conn.execute(
            "SELECT username FROM records ORDER BY username"
        ).fetchall()
        return tuple(row[0] for row in rows)

    def clear(self) -> None:
        """Drop every record and all throttle state (committed)."""
        with self._conn:
            self._conn.execute("DELETE FROM records")
            self._conn.execute("DELETE FROM throttles")

    def put_throttle(self, username: str, state: dict) -> None:
        """Persist an account's throttle state (committed)."""
        with self._conn:
            self._conn.execute(
                "INSERT OR REPLACE INTO throttles (username, payload) VALUES (?, ?)",
                (username, json.dumps(state, sort_keys=True)),
            )

    def get_throttle(self, username: str) -> Optional[dict]:
        """The persisted throttle state, or ``None``."""
        row = self._conn.execute(
            "SELECT payload FROM throttles WHERE username = ?", (username,)
        ).fetchone()
        return json.loads(row[0]) if row is not None else None

    def put_meta(self, key: str, value: str) -> None:
        """Persist one metadata string (committed)."""
        with self._conn:
            self._conn.execute(
                "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
                (key, value),
            )

    def get_meta(self, key: str) -> Optional[str]:
        """Read one metadata string, or ``None``."""
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key = ?", (key,)
        ).fetchone()
        return row[0] if row is not None else None

    def close(self) -> None:
        """Close the database connection."""
        self._conn.close()


class JsonlBackend(StorageBackend):
    """Append-only JSON-lines event log, replayed into memory at open.

    Every mutation appends one event line — ``put``, ``delete``,
    ``throttle``, ``meta``, ``clear`` — and flushes, so the file on disk
    is always a valid history and the latest state is recovered by a
    linear replay.  This is the "flat password file" deployment shape,
    and doubles as an audit log of the account lifecycle.
    """

    def __init__(self, path: str) -> None:
        self._path = str(path)
        self.uri = f"jsonl:{self._path}"
        self._records: Dict[str, StoredPassword] = {}
        self._throttles: Dict[str, dict] = {}
        self._meta: Dict[str, str] = {}
        if os.path.exists(self._path):
            self._replay()
        self._handle = open(self._path, "a", encoding="utf-8")

    @property
    def path(self) -> str:
        """Filesystem location of the log."""
        return self._path

    def _replay(self) -> None:
        with open(self._path, "r", encoding="utf-8") as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    event = json.loads(line)
                    self._apply(event)
                except (json.JSONDecodeError, KeyError, TypeError) as exc:
                    raise StoreError(
                        f"{self._path}:{line_number}: malformed log event: {exc}"
                    ) from exc

    def _apply(self, event: dict) -> None:
        op = event["op"]
        if op == "put":
            self._records[event["username"]] = StoredPassword.from_json(
                event["record"]
            )
        elif op == "delete":
            self._records.pop(event["username"], None)
            self._throttles.pop(event["username"], None)
        elif op == "throttle":
            self._throttles[event["username"]] = event["state"]
        elif op == "meta":
            self._meta[event["key"]] = event["value"]
        elif op == "clear":
            self._records.clear()
            self._throttles.clear()
        else:
            raise StoreError(f"unknown log op {op!r}")

    def _append(self, event: dict) -> None:
        self._handle.write(json.dumps(event, sort_keys=True) + "\n")
        self._handle.flush()

    def put(self, username: str, stored: StoredPassword) -> None:
        """Insert or replace the record for *username* (appended + flushed)."""
        self._records[username] = stored
        self._append({"op": "put", "username": username, "record": stored.to_json()})

    def get(self, username: str) -> Optional[StoredPassword]:
        """The record for *username*, or ``None`` when unknown."""
        return self._records.get(username)

    def delete(self, username: str) -> None:
        """Remove an account (a ``delete`` event; the log keeps history)."""
        if username not in self._records:
            raise StoreError(f"unknown account {username!r}")
        del self._records[username]
        self._throttles.pop(username, None)
        self._append({"op": "delete", "username": username})

    def usernames(self) -> Tuple[str, ...]:
        """All account names, sorted."""
        return tuple(sorted(self._records))

    def clear(self) -> None:
        """Drop every record and all throttle state (a ``clear`` event)."""
        self._records.clear()
        self._throttles.clear()
        self._append({"op": "clear"})

    def put_throttle(self, username: str, state: dict) -> None:
        """Persist an account's throttle state (appended + flushed)."""
        self._throttles[username] = dict(state)
        self._append({"op": "throttle", "username": username, "state": dict(state)})

    def get_throttle(self, username: str) -> Optional[dict]:
        """The persisted throttle state, or ``None``."""
        state = self._throttles.get(username)
        return dict(state) if state is not None else None

    def put_meta(self, key: str, value: str) -> None:
        """Persist one metadata string (appended + flushed)."""
        self._meta[key] = value
        self._append({"op": "meta", "key": key, "value": value})

    def get_meta(self, key: str) -> Optional[str]:
        """Read one metadata string, or ``None``."""
        return self._meta.get(key)

    def close(self) -> None:
        """Close the log file handle."""
        self._handle.close()


def backend_from_uri(uri: str) -> StorageBackend:
    """Construct a backend from a ``scheme:location`` URI.

    Supported schemes: ``memory:`` (location ignored), ``sqlite:PATH``,
    ``jsonl:PATH``.

    >>> backend_from_uri("memory:").uri
    'memory:'
    """
    scheme, _, location = uri.partition(":")
    if scheme == "memory":
        return MemoryBackend()
    if scheme == "sqlite":
        if not location:
            raise StoreError(f"sqlite backend needs a path: {uri!r}")
        return SQLiteBackend(location)
    if scheme == "jsonl":
        if not location:
            raise StoreError(f"jsonl backend needs a path: {uri!r}")
        return JsonlBackend(location)
    raise StoreError(
        f"unknown storage backend URI {uri!r} "
        "(expected memory:, sqlite:PATH, or jsonl:PATH)"
    )
