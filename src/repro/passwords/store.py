"""Server-side password store: accounts, salted records, throttled login.

Binds together everything the paper says about deployment:

* each account stores clear public material + one salted hash
  (§2.2, §3.1–3.2) — the store is exactly what an offline attacker steals;
* per-user salts ("a user identifier could be added to the hash … stored in
  clear-text, essentially serving as a salt", §3.2);
* online login throttling (§5.1).

The store is scheme-agnostic: it is constructed around a
:class:`~repro.passwords.passpoints.PassPointsSystem` (or any object with
``enroll``/``verify`` and ``with_salt``), and storage-agnostic: records and
throttle state live in a pluggable
:class:`~repro.passwords.storage.StorageBackend` (in-memory dict, durable
SQLite, or append-only JSONL log), so enrolled populations can survive
across attack/experiment runs.  The batched counterpart of :meth:`login`
is :class:`~repro.passwords.service.VerificationService`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Optional, Sequence

from repro.crypto.hashing import Hasher
from repro.errors import LockoutError, RateLimitError, StoreError
from repro.geometry.point import Point
from repro.obs import SIZE_BUCKETS, MetricsRegistry, get_registry
from repro.passwords.defense import DefenseConfig, RateLimiter, apply_pepper
from repro.passwords.passpoints import PassPointsSystem
from repro.passwords.policy import AccountThrottle, LockoutPolicy
from repro.passwords.storage import MemoryBackend, StorageBackend, commit_mode
from repro.passwords.system import StoredPassword

__all__ = ["PasswordStore", "deployed_store", "scheme_named"]


def scheme_named(name: str, tolerance: int):
    """Construct a 2-D scheme from its deployment name and pixel tolerance.

    The inverse of the ``scheme`` metadata string a created store
    persists: ``"centered"``, ``"robust"``, or anything else for the
    static-grid baseline.  Imports lazily so the storage layer stays
    importable without the scheme modules.
    """
    from repro.core.centered import CenteredDiscretization
    from repro.core.robust import RobustDiscretization
    from repro.core.static import StaticGridScheme

    if name == "centered":
        return CenteredDiscretization.for_pixel_tolerance(2, tolerance)
    if name == "robust":
        return RobustDiscretization.for_pixel_tolerance(2, tolerance)
    return StaticGridScheme(dim=2, cell_size=2 * tolerance + 1)


def deployed_store(
    backend: StorageBackend,
    defense_spec: Optional[str] = None,
    registry: Optional[MetricsRegistry] = None,
) -> "PasswordStore":
    """Reconstruct the deployed store from a backend's persisted meta.

    Every process that opens a durable backend — the CLI, a cluster
    worker owning one shard — must resume it under the deployment it was
    created with (scheme, tolerance, image, defense), so that machinery
    lives here rather than in any one front end.  The persisted
    ``defense`` spec (if any) is re-applied so records enrolled under a
    pepper / slow-hash deployment verify correctly; a non-``None``
    *defense_spec* overrides it for this process.
    """
    from repro.study.image import cars_image, pool_image

    scheme_name = backend.get_meta("scheme")
    if scheme_name is None:
        raise StoreError(
            f"backend {backend.uri!r} holds no deployment meta; "
            "run 'repro store create' first"
        )
    scheme = scheme_named(scheme_name, int(backend.get_meta("tolerance_px")))
    image = {"cars": cars_image, "pool": pool_image}[backend.get_meta("image")]()
    if defense_spec is None:
        defense_spec = backend.get_meta("defense") or ""
    defense = DefenseConfig.from_spec(defense_spec)
    system = PassPointsSystem(image=image, scheme=scheme)
    return PasswordStore(
        system=system, backend=backend, defense=defense, registry=registry
    )


@dataclass
class PasswordStore:
    """A multi-account graphical-password service.

    Parameters
    ----------
    system:
        The (unsalted) deployment; each account gets a per-user salted copy.
    policy:
        Online throttling policy applied to every account.
    backend:
        Where records and throttle state live (default: in-memory dict).
        Pass a :class:`~repro.passwords.storage.SQLiteBackend` or
        :class:`~repro.passwords.storage.JsonlBackend` — or anything from
        :func:`~repro.passwords.storage.backend_from_uri` — for a store
        that survives the process; accounts already present in a reopened
        backend are served immediately, lockout state included.
    """

    system: PassPointsSystem
    policy: LockoutPolicy = LockoutPolicy()
    backend: StorageBackend = field(default_factory=MemoryBackend)
    # Deployment countermeasures; DefenseConfig() is the neutral cell
    # (bit-identical to the undefended store, property-tested in
    # tests/test_defense_matrix.py).  The clock feeds the rate-limit
    # windows only — inject a VirtualClock for deterministic simulation.
    defense: DefenseConfig = field(default_factory=DefenseConfig)
    clock: Callable[[], float] = time.monotonic
    # Telemetry: scalar login decisions, verification timing and
    # defense-knob refusals publish here (None = the process default
    # registry; a disabled registry makes every publish a no-op).  The
    # batched VerificationService uses the *same* counter names, so both
    # paths fold into one vocabulary.
    registry: Optional[MetricsRegistry] = field(default=None, repr=False)
    # Group-commit switch for the bulk write paths (enroll_many, the
    # verification service's flush-coalesced throttle persists).  None
    # (default) follows the process-wide storage commit mode
    # ($REPRO_STORE_COMMIT via repro.passwords.storage.commit_mode);
    # True/False pins this store — the durable benchmark pins one store
    # per mode to measure the batching win in isolation.  Decisions,
    # lockout sequences and dump() bytes are identical either way
    # (property-tested in tests/test_group_commit.py); only how many
    # durable commits carry them differs.
    group_commit: Optional[bool] = None
    # In-process caches over the backend.  The store assumes it is the
    # sole writer of its backend while open (same assumption the
    # throttle cache already makes); durable backends are re-read only
    # on first access after open, so a login flood against SQLite/JSONL
    # does not re-parse records per attempt.
    _throttles: Dict[str, AccountThrottle] = field(default_factory=dict)
    _record_cache: Dict[str, StoredPassword] = field(default_factory=dict)
    _rate_limiters: Dict[str, RateLimiter] = field(default_factory=dict)
    _hardened_cache: Optional[PassPointsSystem] = field(default=None, repr=False)

    # -- telemetry -----------------------------------------------------------

    def _obs(self) -> Optional[dict]:
        """Cached scalar-login instruments, or ``None`` when disabled.

        Resolved on first use (stores are built in bulk by tests and
        experiments that never log in); a disabled registry resolves to
        ``None`` so :meth:`login` skips every telemetry branch with one
        cheap identity check.
        """
        cached = self.__dict__.get("_obs_instruments", False)
        if cached is not False:
            return cached
        registry = self.registry if self.registry is not None else get_registry()
        if not registry.enabled:
            instruments = None
        else:
            instruments = {
                "accept": registry.counter(
                    "store_logins_total",
                    help="scalar login decisions by status",
                    status="accept",
                ),
                "reject": registry.counter("store_logins_total", status="reject"),
                "locked": registry.counter("store_logins_total", status="locked"),
                "throttled": registry.counter(
                    "store_logins_total", status="throttled"
                ),
                "lockout_refusals": registry.counter(
                    "defense_refusals_total",
                    help="attempts refused by a defense knob",
                    knob="lockout",
                ),
                "rate_limit_refusals": registry.counter(
                    "defense_refusals_total", knob="rate_limit"
                ),
                "captcha": registry.counter(
                    "defense_challenges_total",
                    help="attempts carrying a CAPTCHA challenge",
                    knob="captcha",
                ),
                "verify_seconds": registry.histogram(
                    "store_verify_seconds",
                    help="scalar per-login verification (hash) time",
                ),
            }
        self.__dict__["_obs_instruments"] = instruments
        return instruments

    # -- defense -------------------------------------------------------------

    @property
    def effective_policy(self) -> LockoutPolicy:
        """The lockout policy in force: the defense override, else the store's."""
        return self.defense.lockout_policy or self.policy

    def _hardened_system(self) -> PassPointsSystem:
        """The system with the slow-hash cost factor applied (cached).

        ``hash_cost_factor`` multiplies the hasher's iteration count at
        enrollment time, so the stored record self-describes its cost
        (like a bcrypt cost prefix) and every verification *and* attacker
        guess pays the factor.  Factor 1 returns the system untouched —
        the neutral path allocates nothing.
        """
        factor = self.defense.hash_cost_factor
        if factor == 1:
            return self.system
        if self._hardened_cache is None:
            hasher = self.system.hasher
            self._hardened_cache = replace(
                self.system,
                hasher=Hasher(
                    hasher.algorithm, hasher.iterations * factor, hasher.salt
                ),
            )
        return self._hardened_cache

    def rate_limit_admit(self, username: str) -> Optional[float]:
        """Consume one rate-limit slot, or report the wait until one frees.

        Returns ``None`` when the attempt is admitted (or the deployment
        has no rate limit); otherwise the ``retry_after`` seconds.  Shared
        by the scalar :meth:`login` path and the batched
        :class:`~repro.passwords.service.VerificationService`, so both
        enforce the identical sliding window.
        """
        defense = self.defense
        if defense.rate_limit_window is None:
            return None
        limiter = self._rate_limiters.get(username)
        if limiter is None:
            limiter = self._rate_limiters[username] = RateLimiter(
                defense.rate_limit_window, defense.rate_limit_max
            )
        return limiter.admit(self.clock())

    def captcha_required(self, username: str) -> bool:
        """Whether the account's next attempt is CAPTCHA-challenged.

        True once ``captcha_after`` consecutive failures have accrued (and
        the knob is enabled).  The store still evaluates challenged
        attempts — a human solves the CAPTCHA and proceeds — but automated
        attackers stall here (see :mod:`repro.attacks.online`).
        """
        after = self.defense.captcha_after
        if after is None:
            return False
        return self.throttle_for(username).failures >= after

    # -- accounts -----------------------------------------------------------

    @staticmethod
    def salt_for(username: str) -> bytes:
        """The per-user salt: the user identifier itself (paper §3.2)."""
        return username.encode("utf-8")

    def _salted_system(self, username: str) -> PassPointsSystem:
        return self._hardened_system().with_salt(self.salt_for(username))

    def create_account(self, username: str, points: Sequence[Point]) -> None:
        """Register an account with a graphical password."""
        if username in self.backend:
            raise StoreError(f"account {username!r} already exists")
        stored = self._salted_system(username).enroll(points)
        if self.defense.pepper:
            stored = apply_pepper(stored, self.defense.pepper)
        self.backend.put(username, stored)
        self._record_cache[username] = stored
        throttle = AccountThrottle(self.effective_policy)
        self._throttles[username] = throttle
        self.backend.put_throttle(username, throttle.state())

    def delete_account(self, username: str) -> None:
        """Remove an account."""
        self.backend.delete(username)
        self._throttles.pop(username, None)
        self._record_cache.pop(username, None)
        self._rate_limiters.pop(username, None)

    @property
    def usernames(self) -> tuple:
        """All registered account names (sorted for determinism)."""
        return tuple(self.backend.usernames())

    def record_for(self, username: str) -> StoredPassword:
        """The stored record — what an offline attacker exfiltrates."""
        stored = self._record_cache.get(username)
        if stored is None:
            stored = self.backend.get(username)
            if stored is None:
                raise StoreError(f"unknown account {username!r}")
            self._record_cache[username] = stored
        return stored

    def throttle_for(self, username: str) -> AccountThrottle:
        """The account's throttle state (for inspection and attacks).

        Hydrated from the backend on first access, so lockout persisted
        by a previous process (durable backends) is still enforced.
        """
        throttle = self._throttles.get(username)
        if throttle is not None:
            return throttle
        if username not in self.backend:
            raise StoreError(f"unknown account {username!r}")
        state = self.backend.get_throttle(username)
        if state is None:
            throttle = AccountThrottle(self.effective_policy)
        else:
            throttle = AccountThrottle.from_state(self.effective_policy, state)
        self._throttles[username] = throttle
        return throttle

    def _persist_throttle(self, username: str) -> None:
        """Write an account's current throttle state through the backend."""
        self.backend.put_throttle(username, self.throttle_for(username).state())

    # -- group commit --------------------------------------------------------

    @property
    def batched_writes(self) -> bool:
        """Whether bulk paths group-commit (vs. one commit per record).

        The explicit ``group_commit`` field wins; otherwise the
        process-wide :func:`~repro.passwords.storage.commit_mode`
        (``$REPRO_STORE_COMMIT``) decides.
        """
        if self.group_commit is not None:
            return self.group_commit
        return commit_mode() == "group"

    def _batch_obs(self) -> Optional[dict]:
        """Cached group-commit instruments, or ``None`` when disabled.

        ``store_write_batch_size`` (writes coalesced per commit) and
        ``store_write_batch_seconds`` (wall time of the commit) — the
        registry surface that shows whether serving durability is riding
        the batched path or degrading to per-record commits.
        """
        cached = self.__dict__.get("_batch_instruments", False)
        if cached is not False:
            return cached
        registry = self.registry if self.registry is not None else get_registry()
        if not registry.enabled:
            instruments = None
        else:
            instruments = {
                "size": registry.histogram(
                    "store_write_batch_size",
                    help="records+throttles coalesced into one group commit",
                    buckets=SIZE_BUCKETS,
                ),
                "seconds": registry.histogram(
                    "store_write_batch_seconds",
                    help="wall time of one group commit",
                ),
            }
        self.__dict__["_batch_instruments"] = instruments
        return instruments

    def persist_throttles(self, usernames: Sequence[str]) -> None:
        """Group-commit the current throttle state of many accounts.

        The batched counterpart of :meth:`_persist_throttle`: one
        :meth:`~repro.passwords.storage.StorageBackend.put_throttle_many`
        call (one SQLite transaction / one JSONL write) instead of one
        commit per account.  The in-memory throttle objects are
        authoritative — this only batches durability, which is why
        :meth:`~repro.passwords.service.VerificationService.flush` can
        defer all of a flush's persists to its end without changing a
        single decision.
        """
        items = [
            (username, self.throttle_for(username).state())
            for username in usernames
        ]
        if not items:
            return
        obs = self._batch_obs()
        if obs is None:
            self.backend.put_throttle_many(items)
            return
        started = time.perf_counter()
        self.backend.put_throttle_many(items)
        obs["seconds"].observe(time.perf_counter() - started)
        obs["size"].observe(len(items))

    def enroll_many(
        self, accounts: Sequence[tuple]
    ) -> int:
        """Bulk-enroll ``(username, points)`` accounts through ``put_many``.

        Semantically a loop of :meth:`create_account` — same records,
        same salts, same fresh throttle per account — but all durable
        writes land as **one** group commit: every record through
        :meth:`~repro.passwords.storage.StorageBackend.put_many` and
        every initial throttle state through ``put_throttle_many``,
        inside one ``write_batch``.  Validation (duplicate within the
        batch, already enrolled) raises *before* any write, so a refused
        batch leaves the backend untouched.  Returns the number of
        accounts enrolled.

        With :attr:`batched_writes` off this degrades to the per-record
        loop, which is exactly what the durable benchmark's bulk
        enrollment gate compares against.
        """
        accounts = list(accounts)
        seen = set()
        for username, _ in accounts:
            if username in seen:
                raise StoreError(
                    f"duplicate account {username!r} in enrollment batch"
                )
            seen.add(username)
            if username in self.backend:
                raise StoreError(f"account {username!r} already exists")
        pepper = self.defense.pepper
        policy = self.effective_policy
        records = []
        throttles = []
        for username, points in accounts:
            stored = self._salted_system(username).enroll(points)
            if pepper:
                stored = apply_pepper(stored, pepper)
            records.append((username, stored))
            throttles.append((username, AccountThrottle(policy)))
        if not self.batched_writes:
            for (username, stored), (_, throttle) in zip(records, throttles):
                self.backend.put(username, stored)
                self.backend.put_throttle(username, throttle.state())
        else:
            obs = self._batch_obs()
            started = time.perf_counter() if obs is not None else 0.0
            with self.backend.write_batch():
                self.backend.put_many(records)
                self.backend.put_throttle_many(
                    [(username, throttle.state()) for username, throttle in throttles]
                )
            if obs is not None:
                obs["seconds"].observe(time.perf_counter() - started)
                obs["size"].observe(2 * len(records))
        for username, stored in records:
            self._record_cache[username] = stored
        for username, throttle in throttles:
            self._throttles[username] = throttle
        return len(records)

    # -- login ---------------------------------------------------------------

    def login(self, username: str, points: Sequence[Point]) -> bool:
        """One throttled login attempt.

        Raises :class:`~repro.errors.LockoutError` when the account is
        locked and :class:`~repro.errors.RateLimitError` when the defense's
        rate-limit window is exhausted (a refused attempt consumes no slot
        and is never evaluated); otherwise records the outcome with the
        throttle and returns the verification result.
        """
        stored = self.record_for(username)
        throttle = self.throttle_for(username)
        obs = self._obs()
        if obs is not None and self.captcha_required(username):
            obs["captcha"].inc()
        try:
            throttle.check()
        except LockoutError:
            if obs is not None:
                obs["locked"].inc()
                obs["lockout_refusals"].inc()
            raise
        retry = self.rate_limit_admit(username)
        if retry is not None:
            if obs is not None:
                obs["throttled"].inc()
                obs["rate_limit_refusals"].inc()
            raise RateLimitError(
                f"account {username!r} rate-limited", retry_after=retry
            )
        if obs is None:
            ok = self._verify(username, stored, points)
        else:
            started = time.perf_counter()
            ok = self._verify(username, stored, points)
            obs["verify_seconds"].observe(time.perf_counter() - started)
            obs["accept" if ok else "reject"].inc()
        throttle.record(ok)
        self._persist_throttle(username)
        return ok

    def _verify(
        self, username: str, stored: StoredPassword, points: Sequence[Point]
    ) -> bool:
        """Pepper-aware verification against one account's record."""
        system = self._salted_system(username)
        if self.defense.pepper:
            return system.verify(stored, points, pepper=self.defense.pepper)
        return system.verify(stored, points)

    def is_locked(self, username: str) -> bool:
        """Whether the account is currently locked out."""
        return self.throttle_for(username).locked

    # -- serialization ----------------------------------------------------------

    def dump_records(self) -> str:
        """Serialize the *password file* (records only) to JSON.

        This is the artifact offline attacks assume stolen: public
        material, digests, salts and hashing parameters — but no throttle
        state and, of course, no click-points.  Identical across backends
        (it delegates to :meth:`~repro.passwords.storage.StorageBackend.dump`).
        """
        return self.backend.dump()

    def load_records(self, payload: str) -> None:
        """Load a password file dumped by :meth:`dump_records`.

        Existing accounts are replaced; throttle states reset.
        """
        self.backend.load(payload)
        self._throttles = {}
        self._record_cache = {}
        self._rate_limiters = {}
        policy = self.effective_policy
        for username in self.backend.usernames():
            self._throttles[username] = AccountThrottle(policy)
        # One group commit for the reset throttle states (the records
        # already landed batched through the backend's load()).
        self.backend.put_throttle_many(
            [
                (username, throttle.state())
                for username, throttle in self._throttles.items()
            ]
        )
