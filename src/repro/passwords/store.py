"""Server-side password store: accounts, salted records, throttled login.

Binds together everything the paper says about deployment:

* each account stores clear public material + one salted hash
  (§2.2, §3.1–3.2) — the store is exactly what an offline attacker steals;
* per-user salts ("a user identifier could be added to the hash … stored in
  clear-text, essentially serving as a salt", §3.2);
* online login throttling (§5.1).

The store is scheme-agnostic: it is constructed around a
:class:`~repro.passwords.passpoints.PassPointsSystem` (or any object with
``enroll``/``verify`` and ``with_salt``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Sequence

from repro.errors import StoreError
from repro.geometry.point import Point
from repro.passwords.passpoints import PassPointsSystem
from repro.passwords.policy import AccountThrottle, LockoutPolicy
from repro.passwords.system import StoredPassword

__all__ = ["PasswordStore"]


@dataclass
class PasswordStore:
    """A multi-account graphical-password service.

    Parameters
    ----------
    system:
        The (unsalted) deployment; each account gets a per-user salted copy.
    policy:
        Online throttling policy applied to every account.
    """

    system: PassPointsSystem
    policy: LockoutPolicy = LockoutPolicy()
    _records: Dict[str, StoredPassword] = field(default_factory=dict)
    _throttles: Dict[str, AccountThrottle] = field(default_factory=dict)

    # -- accounts -----------------------------------------------------------

    @staticmethod
    def salt_for(username: str) -> bytes:
        """The per-user salt: the user identifier itself (paper §3.2)."""
        return username.encode("utf-8")

    def _salted_system(self, username: str) -> PassPointsSystem:
        return self.system.with_salt(self.salt_for(username))

    def create_account(self, username: str, points: Sequence[Point]) -> None:
        """Register an account with a graphical password."""
        if username in self._records:
            raise StoreError(f"account {username!r} already exists")
        stored = self._salted_system(username).enroll(points)
        self._records[username] = stored
        self._throttles[username] = AccountThrottle(self.policy)

    def delete_account(self, username: str) -> None:
        """Remove an account."""
        if username not in self._records:
            raise StoreError(f"unknown account {username!r}")
        del self._records[username]
        del self._throttles[username]

    @property
    def usernames(self) -> tuple:
        """All registered account names (sorted for determinism)."""
        return tuple(sorted(self._records))

    def record_for(self, username: str) -> StoredPassword:
        """The stored record — what an offline attacker exfiltrates."""
        try:
            return self._records[username]
        except KeyError:
            raise StoreError(f"unknown account {username!r}") from None

    def throttle_for(self, username: str) -> AccountThrottle:
        """The account's throttle state (for inspection and attacks)."""
        try:
            return self._throttles[username]
        except KeyError:
            raise StoreError(f"unknown account {username!r}") from None

    # -- login ---------------------------------------------------------------

    def login(self, username: str, points: Sequence[Point]) -> bool:
        """One throttled login attempt.

        Raises :class:`~repro.errors.LockoutError` when the account is
        locked; otherwise records the outcome with the throttle and returns
        the verification result.
        """
        stored = self.record_for(username)
        throttle = self.throttle_for(username)
        throttle.check()
        ok = self._salted_system(username).verify(stored, points)
        throttle.record(ok)
        return ok

    def is_locked(self, username: str) -> bool:
        """Whether the account is currently locked out."""
        return self.throttle_for(username).locked

    # -- serialization ----------------------------------------------------------

    def dump_records(self) -> str:
        """Serialize the *password file* (records only) to JSON.

        This is the artifact offline attacks assume stolen: public
        material, digests, salts and hashing parameters — but no throttle
        state and, of course, no click-points.
        """
        payload = {
            username: stored.to_json()
            for username, stored in self._records.items()
        }
        return json.dumps(payload, sort_keys=True)

    def load_records(self, payload: str) -> None:
        """Load a password file dumped by :meth:`dump_records`.

        Existing accounts are replaced; throttle states reset.
        """
        data = json.loads(payload)
        self._records = {
            username: StoredPassword.from_json(stored)
            for username, stored in data.items()
        }
        self._throttles = {
            username: AccountThrottle(self.policy) for username in self._records
        }
