"""Persuasive Cued Click-Points (PCCP) — viewport-constrained selection.

PCCP (Chiasson, Forget, Biddle, van Oorschot — cited as [7] by the paper)
is CCP plus a *persuasion* mechanism at password-creation time: the system
darkens the image except for a small randomly positioned **viewport**; the
user must click inside it (or press "shuffle" for a new random viewport).
Login is unchanged.  The effect is to flatten hotspot concentration — the
paper (§2.1) notes such systems "reduce the likelihood that users select
click-points that fall within hotspots", directly weakening human-seeded
dictionaries.

Two pieces live here:

* :class:`ViewportSelectionModel` — the creation-time behaviour, usable
  anywhere a :class:`~repro.study.clickmodel.SelectionModel` is (it changes
  the *distribution* of chosen points; the hotspot-flattening ablation in
  ``benchmarks/`` quantifies the attack impact);
* :class:`PCCPSystem` — a thin composition: CCP verification plus
  viewport-driven selection for simulated users.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.errors import ParameterError
from repro.geometry.point import Point
from repro.passwords.ccp import CCPSystem
from repro.study.clickmodel import SelectionModel
from repro.study.image import StudyImage

__all__ = ["ViewportSelectionModel", "PCCPSystem"]


@dataclass(frozen=True, slots=True)
class ViewportSelectionModel:
    """Creation-time click selection constrained to a random viewport.

    Attributes
    ----------
    viewport_size:
        Side of the square viewport in pixels (PCCP's prototype used 75).
    shuffle_rate:
        Probability that a simulated user presses "shuffle" at least once,
        re-rolling the viewport toward a more salient area (users shuffling
        to reach hotspots is the behaviour PCCP tries to discourage; a low
        rate models compliant users).
    max_shuffles:
        Upper bound on shuffles for a shuffling user.
    """

    viewport_size: int = 75
    shuffle_rate: float = 0.2
    max_shuffles: int = 3

    def __post_init__(self) -> None:
        if self.viewport_size < 3:
            raise ParameterError(
                f"viewport_size must be >= 3, got {self.viewport_size}"
            )
        if not 0 <= self.shuffle_rate <= 1:
            raise ParameterError(
                f"shuffle_rate must be in [0, 1], got {self.shuffle_rate}"
            )
        if self.max_shuffles < 0:
            raise ParameterError(
                f"max_shuffles must be >= 0, got {self.max_shuffles}"
            )

    def _random_viewport(
        self, image: StudyImage, rng: np.random.Generator
    ) -> Tuple[int, int]:
        """Top-left corner of a uniformly random viewport inside the image."""
        size = min(self.viewport_size, image.width, image.height)
        x0 = int(rng.integers(0, image.width - size + 1))
        y0 = int(rng.integers(0, image.height - size + 1))
        return x0, y0

    def _viewport_salience(
        self, image: StudyImage, corner: Tuple[int, int]
    ) -> float:
        """Total hotspot weight reachable inside a viewport (cheap proxy)."""
        size = min(self.viewport_size, image.width, image.height)
        x0, y0 = corner
        total = 0.0
        for spot in image.hotspots:
            if x0 <= spot.x < x0 + size and y0 <= spot.y < y0 + size:
                total += spot.weight
        return total

    def sample_click(
        self, image: StudyImage, rng: np.random.Generator
    ) -> Point:
        """One creation-time click under the viewport mechanism.

        A compliant user clicks near the most salient feature inside the
        viewport (or roughly centrally when the viewport is featureless);
        a shuffling user re-rolls up to ``max_shuffles`` times and keeps the
        most salient viewport seen.
        """
        size = min(self.viewport_size, image.width, image.height)
        corner = self._random_viewport(image, rng)
        if rng.random() < self.shuffle_rate:
            for _ in range(self.max_shuffles):
                candidate = self._random_viewport(image, rng)
                if self._viewport_salience(image, candidate) > self._viewport_salience(
                    image, corner
                ):
                    corner = candidate
        x0, y0 = corner
        inside = [
            spot
            for spot in image.hotspots
            if x0 <= spot.x < x0 + size and y0 <= spot.y < y0 + size
        ]
        if inside:
            weights = np.array([s.weight for s in inside], dtype=float)
            weights /= weights.sum()
            spot = inside[int(rng.choice(len(inside), p=weights))]
            x, y = image.clamp(
                rng.normal(spot.x, spot.spread), rng.normal(spot.y, spot.spread)
            )
            # The click must stay inside the viewport.
            x = min(max(x, x0), x0 + size - 1)
            y = min(max(y, y0), y0 + size - 1)
        else:
            x = int(rng.integers(x0, x0 + size))
            y = int(rng.integers(y0, y0 + size))
        return Point.xy(x, y)

    def sample_password(
        self,
        images: Sequence[StudyImage],
        rng: np.random.Generator,
    ) -> Tuple[Point, ...]:
        """One click per image, each under a fresh random viewport."""
        return tuple(self.sample_click(image, rng) for image in images)

    def as_selection_model(self) -> SelectionModel:
        """A plain :class:`SelectionModel` for APIs that expect one.

        Viewport placement already spreads points; the wrapper only carries
        the minimum-separation convention for single-image use.
        """
        return SelectionModel(min_separation=0)


@dataclass(frozen=True)
class PCCPSystem:
    """Persuasive Cued Click-Points: CCP verification + viewport creation.

    Login-time behaviour is identical to :class:`~repro.passwords.ccp.CCPSystem`
    (the persuasion only exists during password creation), so this class
    wraps one and adds the simulated-user creation flow.
    """

    ccp: CCPSystem
    viewport: ViewportSelectionModel = ViewportSelectionModel()

    def create_password(
        self, rng: np.random.Generator
    ) -> Tuple[Tuple[Point, ...], "object"]:
        """Simulate a user creating a PCCP password.

        Returns ``(points, stored)``: the creation-time clicks (needed by
        study simulations to model later re-entry) and the stored record.
        The image sequence is path-dependent, so each round's click is
        sampled on the image the previous click leads to.
        """
        points: list[Point] = []
        image_index = self.ccp.start_index
        from repro.passwords.ccp import next_image_index

        for round_index in range(self.ccp.rounds):
            image = self.ccp.images[image_index]
            point = self.viewport.sample_click(image, rng)
            points.append(point)
            enrollment = self.ccp.scheme.enroll(point)
            image_index = next_image_index(
                round_index,
                enrollment.secret,
                enrollment.public,
                len(self.ccp.images),
            )
        stored = self.ccp.enroll(points)
        return tuple(points), stored

    def verify(self, stored: "object", points: Sequence[Point]) -> bool:
        """Login-time check; identical to CCP."""
        return self.ccp.verify(stored, points)  # type: ignore[arg-type]
