"""Login throttling policies for online-attack resistance.

The paper's online-attack discussion (§5.1) notes "the system may limit the
number of incorrect login attempts for individual accounts, slowing or
stopping the attack".  :class:`LockoutPolicy` models the standard
mechanisms: a hard failure cap and/or exponentially growing delays.  The
online attack (:mod:`repro.attacks.online`) runs against these policies to
measure how many guesses an attacker actually gets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import LockoutError, ParameterError

__all__ = ["LockoutPolicy", "AccountThrottle"]


@dataclass(frozen=True, slots=True)
class LockoutPolicy:
    """Parameters of a per-account throttling policy.

    Attributes
    ----------
    max_failures:
        Consecutive failures after which the account locks permanently
        (``None`` disables hard lockout).
    delay_base_seconds:
        First-retry delay for exponential backoff (0 disables delays).
    delay_growth:
        Multiplicative delay growth per failure.
    """

    max_failures: Optional[int] = 3
    delay_base_seconds: float = 0.0
    delay_growth: float = 2.0

    def __post_init__(self) -> None:
        if self.max_failures is not None and self.max_failures < 1:
            raise ParameterError(
                f"max_failures must be >= 1 or None, got {self.max_failures}"
            )
        if self.delay_base_seconds < 0:
            raise ParameterError(
                f"delay_base_seconds must be >= 0, got {self.delay_base_seconds}"
            )
        if self.delay_growth < 1:
            raise ParameterError(
                f"delay_growth must be >= 1, got {self.delay_growth}"
            )

    def delay_after(self, failures: int) -> float:
        """Enforced delay (seconds) after the given failure count."""
        if failures < 0:
            raise ParameterError(f"failures must be >= 0, got {failures}")
        if failures == 0 or self.delay_base_seconds == 0:
            return 0.0
        return self.delay_base_seconds * self.delay_growth ** (failures - 1)

    def guesses_allowed(self) -> Optional[int]:
        """Total guesses an attacker gets before hard lockout (None = ∞)."""
        return self.max_failures


@dataclass
class AccountThrottle:
    """Mutable per-account throttle state driven by a policy.

    The live system calls :meth:`check` before each attempt and
    :meth:`record` after; the online attack simulation uses the same object,
    so the attacker faces exactly the defender's rules.
    """

    policy: LockoutPolicy
    failures: int = 0
    locked: bool = False
    accumulated_delay: float = 0.0

    def check(self) -> None:
        """Raise :class:`~repro.errors.LockoutError` when locked."""
        if self.locked:
            raise LockoutError(
                f"account locked after {self.failures} consecutive failures"
            )

    def record(self, success: bool) -> None:
        """Update state after an attempt."""
        self.check()
        if success:
            self.failures = 0
            return
        self.failures += 1
        self.accumulated_delay += self.policy.delay_after(self.failures)
        cap = self.policy.max_failures
        if cap is not None and self.failures >= cap:
            self.locked = True

    def state(self) -> dict:
        """JSON-serializable mutable state (policy parameters excluded).

        Storage backends persist this next to the password record so
        lockout survives a process restart — an attacker cannot reset the
        failure counter by bouncing the server.
        """
        return {
            "failures": self.failures,
            "locked": self.locked,
            "accumulated_delay": self.accumulated_delay,
        }

    @classmethod
    def from_state(cls, policy: LockoutPolicy, state: dict) -> "AccountThrottle":
        """Rehydrate a throttle persisted via :meth:`state`."""
        return cls(
            policy=policy,
            failures=int(state.get("failures", 0)),
            locked=bool(state.get("locked", False)),
            accumulated_delay=float(state.get("accumulated_delay", 0.0)),
        )


@dataclass
class _Registry:
    """Internal: maps account names to throttle state (used by the store)."""

    policy: LockoutPolicy
    accounts: Dict[str, AccountThrottle] = field(default_factory=dict)

    def for_account(self, name: str) -> AccountThrottle:
        if name not in self.accounts:
            self.accounts[name] = AccountThrottle(self.policy)
        return self.accounts[name]
