"""Graphical password systems built on pluggable discretization schemes.

PassPoints (the paper's evaluation target), Cued Click-Points and
Persuasive Cued Click-Points (the successor systems the paper discusses),
the Blonder predefined-region baseline, plus the server-side store with
per-user salting and online throttling.
"""

from repro.passwords.blonder import BlonderSystem
from repro.passwords.ccp import CCPSystem, next_image_index
from repro.passwords.defense import (
    DefenseConfig,
    RateLimiter,
    VirtualClock,
    apply_pepper,
)
from repro.passwords.passpoints import PassPointsSystem
from repro.passwords.pccp import PCCPSystem, ViewportSelectionModel
from repro.passwords.policy import AccountThrottle, LockoutPolicy
from repro.passwords.service import LoginOutcome, VerificationService
from repro.passwords.space3d import ClickSpace3D, Space3DSystem, space3d_password_bits
from repro.passwords.storage import (
    ConsistentHashRing,
    JsonlBackend,
    MemoryBackend,
    ShardedBackend,
    SQLiteBackend,
    StorageBackend,
    backend_from_uri,
    rebalance,
)
from repro.passwords.store import PasswordStore
from repro.passwords.system import (
    StoredPassword,
    enroll_password,
    locate_secrets,
    verify_password,
)

__all__ = [
    "AccountThrottle",
    "BlonderSystem",
    "CCPSystem",
    "ClickSpace3D",
    "ConsistentHashRing",
    "DefenseConfig",
    "JsonlBackend",
    "LockoutPolicy",
    "LoginOutcome",
    "MemoryBackend",
    "PCCPSystem",
    "PassPointsSystem",
    "PasswordStore",
    "RateLimiter",
    "SQLiteBackend",
    "ShardedBackend",
    "Space3DSystem",
    "StorageBackend",
    "StoredPassword",
    "VerificationService",
    "ViewportSelectionModel",
    "VirtualClock",
    "apply_pepper",
    "backend_from_uri",
    "enroll_password",
    "locate_secrets",
    "next_image_index",
    "rebalance",
    "space3d_password_bits",
    "verify_password",
]
