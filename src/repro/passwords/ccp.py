"""Cued Click-Points (CCP) — one click on each of several images.

CCP (Chiasson, van Oorschot, Biddle; ESORICS 2007 — cited as [6] by the
paper) replaces PassPoints' five clicks on one image with one click on each
of five images, where **the next image displayed is a deterministic function
of the current click's grid cell**.  Correct-but-tolerant clicks land in the
same cell, so the user sees their familiar image sequence (implicit
feedback); a wrong click silently diverts to an unfamiliar image path.

The paper discusses CCP as one of the systems whose discretization layer
Centered Discretization improves (§2, §6); this implementation makes the
claim concrete: any :class:`~repro.core.scheme.DiscretizationScheme` plugs
in, and the image-path function keys off the scheme's located cell.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.core.scheme import DiscretizationScheme
from repro.crypto.encoding import encode_scalars
from repro.crypto.hashing import Hasher
from repro.crypto.records import make_record
from repro.errors import DomainError, ParameterError, VerificationError
from repro.geometry.point import Point
from repro.passwords.system import StoredPassword, _flatten
from repro.study.image import StudyImage

__all__ = ["CCPSystem", "next_image_index"]


def next_image_index(
    round_index: int,
    located_cell: Tuple[int, ...],
    public: Tuple,
    image_count: int,
) -> int:
    """Deterministic next-image function of CCP.

    Hashes (round, cell, per-point public material) and reduces modulo the
    image-pool size.  Any click in the same cell — i.e. any click the
    discretization scheme accepts — follows the same path; a click in a
    different cell diverts.
    """
    if image_count < 1:
        raise ParameterError(f"image_count must be >= 1, got {image_count}")
    material = encode_scalars(
        [round_index, *[int(c) for c in located_cell], *public]
    )
    digest = hashlib.sha256(material).digest()
    return int.from_bytes(digest[:8], "big") % image_count


@dataclass(frozen=True)
class CCPSystem:
    """A Cued Click-Points deployment.

    Parameters
    ----------
    images:
        The image pool.  The first image of every password is
        ``images[start_index]``; subsequent images follow the click-dependent
        path.
    scheme:
        Any 2-D discretization scheme.
    hasher:
        Hashing configuration for the final stored record.
    rounds:
        Number of images/clicks per password (default 5).
    start_index:
        Index of the first image in the pool.
    """

    images: Tuple[StudyImage, ...]
    scheme: DiscretizationScheme
    hasher: Hasher = Hasher()
    rounds: int = 5
    start_index: int = 0

    def __post_init__(self) -> None:
        if not self.images:
            raise ParameterError("CCP needs a non-empty image pool")
        if self.scheme.dim != 2:
            raise ParameterError(
                f"CCP needs a 2-D scheme, got {self.scheme.dim}-D"
            )
        if self.rounds < 1:
            raise ParameterError(f"rounds must be >= 1, got {self.rounds}")
        if not 0 <= self.start_index < len(self.images):
            raise ParameterError(
                f"start_index {self.start_index} out of range for "
                f"{len(self.images)} images"
            )

    # -- enrollment -------------------------------------------------------------

    def enroll(self, points: Sequence[Point]) -> StoredPassword:
        """Create a CCP password from one click per round.

        Raises :class:`~repro.errors.DomainError` when a click falls outside
        the image shown at its round (image identity is path-dependent).
        """
        if len(points) != self.rounds:
            raise VerificationError(
                f"expected {self.rounds} click-points, got {len(points)}"
            )
        publics = []
        secrets = []
        image_index = self.start_index
        for round_index, point in enumerate(points):
            image = self.images[image_index]
            if not image.contains(point):
                raise DomainError(
                    f"round {round_index}: click {point!r} outside image "
                    f"{image.name!r}"
                )
            enrollment = self.scheme.enroll(point)
            publics.append(enrollment.public)
            secrets.append(tuple(int(i) for i in enrollment.secret))
            image_index = next_image_index(
                round_index, enrollment.secret, enrollment.public, len(self.images)
            )
        record = make_record(
            _flatten(tuple(publics)), _flatten(tuple(secrets)), self.hasher
        )
        return StoredPassword(
            scheme_name=f"ccp-{self.scheme.name}",
            publics=tuple(publics),
            record=record,
        )

    # -- verification -------------------------------------------------------------

    def image_path(
        self, stored: StoredPassword, points: Sequence[Point]
    ) -> Tuple[int, ...]:
        """The image indices a login attempt would be shown.

        Computed from the *located* cells of the attempted clicks — this is
        the implicit-feedback path, which diverges as soon as a click lands
        in a wrong cell.
        """
        if len(points) != self.rounds:
            raise VerificationError(
                f"expected {self.rounds} click-points, got {len(points)}"
            )
        path = [self.start_index]
        for round_index, (point, public) in enumerate(zip(points, stored.publics)):
            located = self.scheme.locate(point, public)
            path.append(
                next_image_index(round_index, located, public, len(self.images))
            )
        return tuple(path[:-1])

    def verify(self, stored: StoredPassword, points: Sequence[Point]) -> bool:
        """Check a login attempt (final-hash comparison, as deployed)."""
        if len(points) != self.rounds:
            raise VerificationError(
                f"expected {self.rounds} click-points, got {len(points)}"
            )
        secrets = []
        for point, public in zip(points, stored.publics):
            secrets.append(tuple(int(i) for i in self.scheme.locate(point, public)))
        return stored.record.matches(_flatten(tuple(secrets)))
