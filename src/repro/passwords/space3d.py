"""3-D graphical passwords: the paper's §3.2 extension, made concrete.

The paper notes that 3-D graphical password schemes (Alsulaiman & El
Saddik's virtual rooms, its reference [1]) "currently allow users to select
predefined objects … limiting the password space", and that discretizing
the *entire* 3-D space with Centered Discretization "could significantly
enlarge the password space".  This module builds that system:

* :class:`ClickSpace3D` — a W×H×D voxel space (a room) with optional
  salient objects for simulated users;
* :class:`Space3DSystem` — a click-sequence password over the space, on
  top of any 3-D discretization scheme (Centered stays 2r per axis;
  Robust needs 4 grids of 8r cells in 3-D);
* password-space accounting mirroring Table 3 in three dimensions.

Centered Discretization's advantage *grows* with dimension —
dim·log2(dim+1) bits per click: ≈3.17 bits in 2-D, 6 bits per click in 3-D.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.core.scheme import DiscretizationScheme
from repro.crypto.hashing import Hasher
from repro.errors import DomainError, ParameterError, VerificationError
from repro.geometry.point import Point
from repro.passwords.system import StoredPassword, enroll_password, verify_password

__all__ = ["ClickSpace3D", "Space3DSystem", "space3d_password_bits"]


@dataclass(frozen=True, slots=True)
class ClickSpace3D:
    """A 3-D click domain: a W×H×D voxel room with salient objects.

    ``objects`` are (x, y, z, spread, weight) tuples — the 3-D analogue of
    2-D hotspots — used only by the simulated selection model.
    """

    name: str
    width: int
    height: int
    depth: int
    objects: Tuple[Tuple[float, float, float, float, float], ...] = ()

    def __post_init__(self) -> None:
        if min(self.width, self.height, self.depth) < 1:
            raise ParameterError(
                f"room dimensions must be positive, got "
                f"{self.width}x{self.height}x{self.depth}"
            )
        for obj in self.objects:
            if len(obj) != 5:
                raise ParameterError(f"object must be 5-tuple, got {obj!r}")
            if obj[3] <= 0 or obj[4] <= 0:
                raise ParameterError(
                    f"object spread and weight must be > 0, got {obj!r}"
                )

    def contains(self, point: Point) -> bool:
        """Whether a 3-D point lies inside the room."""
        if point.dim != 3:
            raise DomainError(f"expected a 3-D point, got {point.dim}-D")
        return (
            0 <= point.x < self.width
            and 0 <= point.y < self.height
            and 0 <= point.z < self.depth
        )

    def clamp(self, x: float, y: float, z: float) -> Tuple[int, int, int]:
        """Round to the nearest valid integer voxel."""
        return (
            min(max(int(round(x)), 0), self.width - 1),
            min(max(int(round(y)), 0), self.height - 1),
            min(max(int(round(z)), 0), self.depth - 1),
        )

    @property
    def voxel_count(self) -> int:
        """Number of selectable voxels."""
        return self.width * self.height * self.depth

    def sample_click(self, rng: np.random.Generator) -> Point:
        """One simulated click: object-seeking with uniform fallback."""
        if self.objects:
            weights = np.array([o[4] for o in self.objects], dtype=float)
            weights /= weights.sum()
            if rng.random() < 0.85:
                ox, oy, oz, spread, _ = self.objects[
                    int(rng.choice(len(self.objects), p=weights))
                ]
                x, y, z = self.clamp(
                    rng.normal(ox, spread),
                    rng.normal(oy, spread),
                    rng.normal(oz, spread),
                )
                return Point.of(x, y, z)
        return Point.of(
            int(rng.integers(0, self.width)),
            int(rng.integers(0, self.height)),
            int(rng.integers(0, self.depth)),
        )


def space3d_password_bits(
    space: ClickSpace3D, cell_size: float, clicks: int = 5
) -> float:
    """Theoretical password space of a discretized 3-D room.

    The 3-D analogue of Table 3: ``clicks · log2(⌈W/s⌉·⌈H/s⌉·⌈D/s⌉)``.
    """
    if cell_size <= 0:
        raise ParameterError(f"cell_size must be > 0, got {cell_size}")
    if clicks < 1:
        raise ParameterError(f"clicks must be >= 1, got {clicks}")
    cells = (
        math.ceil(space.width / cell_size)
        * math.ceil(space.height / cell_size)
        * math.ceil(space.depth / cell_size)
    )
    return clicks * math.log2(cells)


@dataclass(frozen=True)
class Space3DSystem:
    """A click-sequence password system over a 3-D space.

    Same storage flow as PassPoints (clear per-point public material + one
    hash) with a 3-D scheme underneath.
    """

    space: ClickSpace3D
    scheme: DiscretizationScheme
    hasher: Hasher = Hasher()
    clicks: int = 5

    def __post_init__(self) -> None:
        if self.scheme.dim != 3:
            raise ParameterError(
                f"Space3DSystem needs a 3-D scheme, got {self.scheme.dim}-D"
            )
        if self.clicks < 1:
            raise ParameterError(f"clicks must be >= 1, got {self.clicks}")

    def _validate(self, points: Sequence[Point]) -> None:
        if len(points) != self.clicks:
            raise VerificationError(
                f"expected {self.clicks} clicks, got {len(points)}"
            )
        for point in points:
            if not self.space.contains(point):
                raise DomainError(
                    f"click {point!r} outside room {self.space.name!r}"
                )

    def enroll(self, points: Sequence[Point]) -> StoredPassword:
        """Create a 3-D password."""
        self._validate(points)
        return enroll_password(self.scheme, points, self.hasher)

    def verify(self, stored: StoredPassword, points: Sequence[Point]) -> bool:
        """Check a 3-D login attempt."""
        self._validate(points)
        return verify_password(self.scheme, stored, points)

    def password_space_bits(self) -> float:
        """Theoretical space under this system's scheme cell size."""
        return space3d_password_bits(
            self.space, float(self.scheme.cell_size), self.clicks
        )
