"""Batched verification service: the "millions of users" login front-end.

:class:`~repro.passwords.store.PasswordStore` verifies one click-point at a
time through the scalar schemes — exact, never fast.  This module is the
serving shape the ROADMAP calls for: a :class:`VerificationService` accepts
enrollment and login attempts, groups pending logins into micro-batches,
and verifies each micro-batch through the NumPy batch engine
(:meth:`~repro.core.scheme.DiscretizationScheme.batch`) — one vectorized
``locate`` call answers the geometric half of every pending attempt at
once, and a per-account precomputed hash prefix reduces the crypto half to
one digest per attempt.

Semantics are preserved bit-for-bit relative to the scalar path:

* **decisions** — the batch kernels agree with the exact-rational scalar
  schemes on integer-pixel click-points (the float-exactness argument in
  :mod:`repro.core.batch`), and the digest bytes hashed here are
  byte-identical to :meth:`~repro.crypto.records.VerificationRecord.matches`;
* **lockout ordering** (§5.1) — attempts are *decided* sequentially in
  submission order against the same
  :class:`~repro.passwords.policy.AccountThrottle` objects the store uses,
  so a failure streak inside one micro-batch locks the account for the
  very next attempt, exactly as scalar :meth:`PasswordStore.login` would.
  ``tests/test_verification_service.py`` property-tests this equivalence
  across all three schemes and all three storage backends.

The one intentional divergence: structural validation happens in bulk —
unknown accounts and wrong click counts raise at :meth:`submit`,
out-of-image points raise when their micro-batch is converted (before any
of that batch's decisions) — rather than interleaved attempt-by-attempt.

Throughput is gated in ``benchmarks/test_bench_store.py``: the service
must beat the scalar login loop by ≥10x on a 10,000-attempt stream for
every scheme (see ``benchmarks/reports/store_throughput.txt``).
"""

from __future__ import annotations

import hashlib
import hmac
import time
from collections import Counter as _TallyCounter
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.batch import as_point_array
from repro.crypto.encoding import encode_scalar
from repro.errors import DomainError, ParameterError, VerificationError
from repro.geometry.point import Point
from repro.obs import LATENCY_BUCKETS, SIZE_BUCKETS, MetricsRegistry, get_registry
from repro.passwords.store import PasswordStore

__all__ = ["LoginOutcome", "VerificationService"]

#: Attempt statuses, in the vocabulary of the scalar path: ``accept`` /
#: ``reject`` mirror ``PasswordStore.login`` returning True/False;
#: ``locked`` mirrors it raising ``LockoutError``; ``throttled`` mirrors
#: it raising ``RateLimitError`` (refused by the defense's rate-limit
#: window, not evaluated, no slot consumed).
ACCEPT, REJECT, LOCKED, THROTTLED = "accept", "reject", "locked", "throttled"

#: Cache of canonical byte encodings for small secret indices (cell
#: indices are tiny ints, so the hit rate in a login flood is ~100%).
_INT_ENCODINGS: Dict[int, bytes] = {}


def _encode_int(value: int) -> bytes:
    """Cached :func:`~repro.crypto.encoding.encode_scalar` for an int."""
    cached = _INT_ENCODINGS.get(value)
    if cached is None:
        cached = encode_scalar(value)
        _INT_ENCODINGS[value] = cached
    return cached


@dataclass(frozen=True, slots=True)
class LoginOutcome:
    """Decision for one submitted login attempt.

    Attributes
    ----------
    username:
        The account the attempt targeted.
    status:
        ``"accept"``, ``"reject"``, ``"locked"`` (refused without being
        evaluated, as the scalar path's
        :class:`~repro.errors.LockoutError`), or ``"throttled"`` (refused
        by the defense rate limit, as the scalar path's
        :class:`~repro.errors.RateLimitError`).
    captcha:
        Whether the attempt was CAPTCHA-challenged — the account had
        accrued ``captcha_after`` consecutive failures *before* this
        attempt (see :class:`~repro.passwords.defense.DefenseConfig`).
        Advisory for human clients; a hard wall for the automated
        attackers in :mod:`repro.attacks.online`.
    """

    username: str
    status: str
    captcha: bool = False

    @property
    def accepted(self) -> bool:
        """Whether the attempt was verified successfully."""
        return self.status == ACCEPT

    @property
    def locked(self) -> bool:
        """Whether the attempt was refused because the account is locked."""
        return self.status == LOCKED

    @property
    def throttled(self) -> bool:
        """Whether the attempt was refused by the rate-limit window."""
        return self.status == THROTTLED


@dataclass(frozen=True)
class _AccountMaterial:
    """Per-account precomputation shared by every attempt on the account.

    ``prefix`` is the exact byte prefix of
    :func:`~repro.crypto.encoding.encode_scalars` over the record's hash
    material — count header plus encoded public scalars — so each attempt
    only encodes its candidate secret indices and hashes once.  ``rounds``
    and ``hash_new`` replicate
    :meth:`~repro.crypto.hashing.Hasher.digest` with the algorithm
    constructor resolved once instead of per call.
    """

    public_rows: np.ndarray
    prefix: bytes
    salt: bytes
    hash_new: Callable
    rounds: int
    digest: str
    clicks: int


class VerificationService:
    """Micro-batching front-end over a :class:`PasswordStore`.

    Parameters
    ----------
    store:
        The store to serve (its system, policy, and storage backend all
        apply unchanged; throttle state written by the service is the
        same state scalar logins read, and vice versa).
    max_batch:
        Micro-batch size: pending attempts are verified through the batch
        engine in groups of at most this many attempts per vectorized
        ``locate`` call.
    registry:
        :class:`~repro.obs.MetricsRegistry` receiving the service's
        telemetry — per-micro-batch kernel and hash/decision timings
        (``service_kernel_seconds`` / ``service_hash_seconds`` /
        ``service_flush_seconds``), batch-size histogram, per-status
        decision counters and defense-knob counters.  ``None`` (default)
        publishes into the process registry
        (:func:`repro.obs.get_registry`); pass
        :data:`~repro.obs.NULL_REGISTRY` for the uninstrumented no-op
        path (gated within 5% in ``benchmarks/test_bench_obs.py``).

    >>> # end-to-end usage lives in examples/storage_backends.py
    """

    def __init__(
        self,
        store: PasswordStore,
        max_batch: int = 1024,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if max_batch < 1:
            raise ParameterError(f"max_batch must be >= 1, got {max_batch}")
        self._store = store
        self._max_batch = max_batch
        self._pending: List[Tuple[str, Sequence[Point], _AccountMaterial]] = []
        self._materials: Dict[str, _AccountMaterial] = {}
        # Pinned to numpy: flush interleaves kernel output with per-row
        # hashing and throttle bookkeeping on the host.
        self._kernel = store.system.scheme.batch(xp=np)
        # Instruments are resolved once; on a disabled registry they are
        # shared no-ops and the timed branches below are skipped outright.
        registry = registry if registry is not None else get_registry()
        self._registry = registry
        self._obs_enabled = registry.enabled
        self._obs_kernel = registry.histogram(
            "service_kernel_seconds",
            help="vectorized locate() time per micro-batch",
        )
        self._obs_hash = registry.histogram(
            "service_hash_seconds",
            help="decision-loop (hash + throttle) time per micro-batch",
        )
        self._obs_flush = registry.histogram(
            "service_flush_seconds", help="whole flush() call time",
        )
        self._obs_batch = registry.histogram(
            "service_batch_size",
            help="attempts per micro-batch",
            buckets=SIZE_BUCKETS,
        )
        self._obs_status = {
            status: registry.counter(
                "service_logins_total",
                help="batched login decisions by status",
                status=status,
            )
            for status in (ACCEPT, REJECT, LOCKED, THROTTLED)
        }
        self._obs_defense = {
            LOCKED: registry.counter(
                "defense_refusals_total",
                help="attempts refused by a defense knob",
                knob="lockout",
            ),
            THROTTLED: registry.counter(
                "defense_refusals_total", knob="rate_limit",
            ),
        }
        self._obs_captcha = registry.counter(
            "defense_challenges_total",
            help="attempts carrying a CAPTCHA challenge",
            knob="captcha",
        )

    @property
    def registry(self) -> MetricsRegistry:
        """The metrics registry this service publishes into."""
        return self._registry

    @property
    def last_flush_timings(self) -> Optional[dict]:
        """Timing breakdown of the most recent flush (``None`` when the
        registry is disabled or before the first flush).

        Keys: ``kernel_seconds``, ``hash_seconds``, ``batches``,
        ``attempts`` — the numbers the async front-end copies onto its
        per-flush trace span.
        """
        return self.__dict__.get("_last_flush_timings")

    @property
    def store(self) -> PasswordStore:
        """The underlying password store."""
        return self._store

    @property
    def pending_count(self) -> int:
        """Number of submitted attempts not yet flushed."""
        return len(self._pending)

    # -- enrollment ---------------------------------------------------------

    def enroll(self, username: str, points: Sequence[Point]) -> None:
        """Register an account (delegates to the store's scalar path).

        Enrollment is rare and correctness-critical, so it stays on the
        exact-rational scalar scheme; only the login flood is batched.
        """
        self._store.create_account(username, points)

    # -- login intake -------------------------------------------------------

    def _material_for(self, username: str) -> _AccountMaterial:
        material = self._materials.get(username)
        stored = self._store.record_for(username)
        if material is not None and material.digest == stored.record.digest:
            return material
        record = stored.record
        hasher = record.hasher
        scalar_count = len(record.public) + stored.clicks * self._kernel.dim
        prefix = f"n:{scalar_count};".encode("ascii") + b"".join(
            encode_scalar(value) for value in record.public
        )
        material = _AccountMaterial(
            public_rows=self._kernel.public_rows(stored.publics),
            prefix=prefix,
            salt=hasher.salt,
            hash_new=getattr(hashlib, hasher.algorithm, None)
            or (lambda data, _name=hasher.algorithm: hashlib.new(_name, data)),
            rounds=hasher.iterations,
            digest=record.digest,
            clicks=stored.clicks,
        )
        self._materials[username] = material
        return material

    def submit(self, username: str, points: Sequence[Point]) -> int:
        """Queue one login attempt; returns its position in the queue.

        Unknown accounts (:class:`~repro.errors.StoreError`) and wrong
        click counts (:class:`~repro.errors.VerificationError`) raise
        here; out-of-image points raise from :meth:`flush` when their
        micro-batch is converted.
        """
        material = self._material_for(username)
        if len(points) != material.clicks:
            raise VerificationError(
                f"expected {material.clicks} click-points, got {len(points)}"
            )
        self._pending.append((username, points, material))
        return len(self._pending) - 1

    def submit_all(self, attempts: Sequence[Tuple[str, Sequence[Point]]]) -> int:
        """Queue a burst of ``(username, points)`` attempts atomically.

        Every attempt is validated (unknown account, wrong click count)
        **before** any of them is enqueued, so a failing burst leaves the
        pending queue untouched.  Returns the queue position of the first
        attempt; the burst occupies consecutive positions, and
        :meth:`flush` returns their outcomes at exactly those positions.
        """
        prepared = []
        for username, points in attempts:
            material = self._material_for(username)
            if len(points) != material.clicks:
                raise VerificationError(
                    f"expected {material.clicks} click-points, got {len(points)}"
                )
            prepared.append((username, points, material))
        start = len(self._pending)
        self._pending.extend(prepared)
        return start

    # -- batched decision ---------------------------------------------------

    def _chunk_points(self, chunk: Sequence[Tuple]) -> np.ndarray:
        """Stack a micro-batch's click-points into one ``(M, dim)`` array.

        Fast path: one ``np.array`` over the raw coordinate tuples
        (integer-pixel clicks, the flood case); points with exact-rational
        coordinates fall back to the general converter.  Domain checking
        is vectorized against the system's image and raises
        :class:`~repro.errors.DomainError` before any of this batch's
        decisions, mirroring the scalar path's pre-verification check.
        """
        flat = [point.coords for _, points, _ in chunk for point in points]
        try:
            array = np.array(flat, dtype=np.float64)
            if array.ndim != 2 or array.shape[1] != self._kernel.dim:
                raise ValueError(array.shape)
        except (TypeError, ValueError):
            array = as_point_array(
                [point for _, points, _ in chunk for point in points],
                self._kernel.dim,
            )
        image = getattr(self._store.system, "image", None)
        if image is not None and array.shape[1] == 2:
            inside = (
                (array[:, 0] >= 0)
                & (array[:, 0] < image.width)
                & (array[:, 1] >= 0)
                & (array[:, 1] < image.height)
            )
            if not inside.all():
                bad = int(np.argmin(inside))
                raise DomainError(
                    f"click-point {flat[bad]!r} outside image "
                    f"{image.name!r} ({image.width}x{image.height})"
                )
        return array

    def flush(self) -> List[LoginOutcome]:
        """Decide every pending attempt; outcomes in submission order.

        **Ordering guarantee**: ``flush()[i]`` is the outcome of the
        ``i``-th :meth:`submit` since the previous flush — one outcome per
        submitted attempt, in exactly the order attempts were submitted,
        across micro-batch boundaries.  The async front-end
        (:class:`repro.serving.AsyncVerificationService`) resolves the
        futures of parked coroutines by position against this list, so
        the guarantee is part of the public contract, not an
        implementation detail.

        Pending attempts are grouped into micro-batches; each micro-batch
        resolves its geometry in **one** vectorized ``locate`` call over
        the concatenated click-points of all its attempts (per-point
        public rows are stacked alongside, so attempts on different
        accounts — even with different click counts — share the call).
        Decisions then replay sequentially so per-account lockout
        ordering is preserved bit-for-bit.

        Durability is batched the same way the kernel work is: under the
        store's group-commit mode (the default; see
        :attr:`~repro.passwords.store.PasswordStore.batched_writes`)
        every throttle the flush changed is persisted in **one**
        :meth:`~repro.passwords.store.PasswordStore.persist_throttles`
        group commit at the end of the flush, instead of one durable
        commit per changed attempt.  The persisted end state is
        byte-identical — the in-memory throttles are authoritative
        during the flush — so decisions and lockout sequences cannot
        differ between modes.
        """
        pending, self._pending = self._pending, []
        outcomes: List[LoginOutcome] = []
        store = self._store
        throttles: Dict[str, object] = {}  # local cache of the store's objects
        encodings = _INT_ENCODINGS
        compare_digest = hmac.compare_digest
        # Defense knobs, hoisted: with the neutral DefenseConfig every
        # branch below is pre-decided False and the loop body is the same
        # instruction stream as the undefended service.
        defense = store.defense
        pepper = defense.pepper
        captcha_after = defense.captcha_after
        rate_limited = defense.rate_limited
        # Group commit, hoisted: under batched writes every throttle that
        # changes during this flush is collected (an insertion-ordered
        # dict doubles as the dedup set) and persisted in ONE
        # put_throttle_many at the end — the in-memory throttles already
        # hold post-flush state, so only durability batching changes.
        # Per-record mode keeps the historical commit-per-change loop.
        batched_persist = store.batched_writes
        dirty: Dict[str, None] = {}
        # Telemetry, hoisted likewise: `obs` is False on a disabled
        # registry and every timed branch below disappears — the
        # per-attempt loop body is never touched either way.
        obs = self._obs_enabled
        perf = time.perf_counter
        kernel_seconds = hash_seconds = 0.0
        batches = 0
        flush_started = perf() if obs else 0.0
        for start in range(0, len(pending), self._max_batch):
            chunk = pending[start : start + self._max_batch]
            points = self._chunk_points(chunk)
            public = np.concatenate(
                [material.public_rows for _, _, material in chunk], axis=0
            )
            if obs:
                batches += 1
                kernel_started = perf()
                located = self._kernel.locate(points, public)
                chunk_started = perf()
                kernel_seconds += chunk_started - kernel_started
                self._obs_kernel.observe(chunk_started - kernel_started)
                self._obs_batch.observe(len(chunk))
            else:
                located = self._kernel.locate(points, public)
            offset = 0
            for username, _, material in chunk:
                clicks = material.clicks
                secrets = located[offset : offset + clicks].ravel().tolist()
                offset += clicks
                throttle = throttles.get(username)
                if throttle is None:
                    throttle = throttles[username] = store.throttle_for(username)
                # Challenge state is read *before* this attempt is decided,
                # matching the scalar store.captcha_required() query order.
                captcha = (
                    captcha_after is not None
                    and throttle.failures >= captcha_after
                )
                if throttle.locked:
                    outcomes.append(
                        LoginOutcome(username=username, status=LOCKED, captcha=captcha)
                    )
                    continue
                if rate_limited and store.rate_limit_admit(username) is not None:
                    outcomes.append(
                        LoginOutcome(
                            username=username, status=THROTTLED, captcha=captcha
                        )
                    )
                    continue
                data = material.prefix + b"".join(
                    [encodings.get(v) or _encode_int(v) for v in secrets]
                )
                current = material.hash_new(material.salt + data).digest()
                for _ in range(material.rounds - 1):
                    current = material.hash_new(current).digest()
                if pepper:
                    # The outer keyed form of peppered_record: the stored
                    # digest is H(pepper || inner), and `current` here is
                    # exactly the inner digest bytes.
                    current = material.hash_new(pepper + current).digest()
                ok = compare_digest(current.hex(), material.digest)
                before = (throttle.failures, throttle.locked)
                throttle.record(ok)
                if (throttle.failures, throttle.locked) != before:
                    if batched_persist:
                        dirty[username] = None
                    else:
                        store._persist_throttle(username)
                outcomes.append(
                    LoginOutcome(
                        username=username,
                        status=ACCEPT if ok else REJECT,
                        captcha=captcha,
                    )
                )
            if obs:
                chunk_seconds = perf() - chunk_started
                hash_seconds += chunk_seconds
                self._obs_hash.observe(chunk_seconds)
        if dirty:
            store.persist_throttles(list(dirty))
        if obs and outcomes:
            # One registry touch per status per flush, not per attempt:
            # tally at C speed, then publish.  The captcha pass only runs
            # when the knob is armed — an undefended flush never looks at
            # the flag.
            for status, count in _TallyCounter(
                [outcome.status for outcome in outcomes]
            ).items():
                self._obs_status[status].inc(count)
                refusal = self._obs_defense.get(status)
                if refusal is not None:
                    refusal.inc(count)
            if captcha_after is not None:
                captchas = sum(1 for outcome in outcomes if outcome.captcha)
                if captchas:
                    self._obs_captcha.inc(captchas)
            self._obs_flush.observe(perf() - flush_started)
            self.__dict__["_last_flush_timings"] = {
                "kernel_seconds": kernel_seconds,
                "hash_seconds": hash_seconds,
                "batches": batches,
                "attempts": len(outcomes),
            }
        return outcomes

    def login_many(
        self, attempts: Sequence[Tuple[str, Sequence[Point]]]
    ) -> List[LoginOutcome]:
        """Submit a whole attempt stream and flush it in micro-batches."""
        for username, points in attempts:
            self.submit(username, points)
        return self.flush()
