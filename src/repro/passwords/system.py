"""Scheme-agnostic machinery for multi-click hashed graphical passwords.

This module glues a :class:`~repro.core.scheme.DiscretizationScheme` to the
crypto layer, implementing the storage flow of the paper (§3.1–3.2):

* enrollment discretizes every click-point, keeps the per-point **public**
  material (grid identifiers / offsets) in the clear, and stores a single
  hash over the concatenation of all public material and all secret
  indices — "all segment indices and their offsets are concatenated and
  hashed together as one", preventing per-point divide-and-conquer;
* verification re-discretizes the attempted click-points under the stored
  public material and compares hashes.

:class:`StoredPassword` is the unit the password store persists and the
offline attacks target (they see exactly: public material + hash + hashing
parameters).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.core.scheme import Discretization, DiscretizationScheme
from repro.crypto.encoding import Encodable, scalar_from_json, scalar_to_json
from repro.crypto.hashing import Hasher
from repro.crypto.records import VerificationRecord, make_record
from repro.errors import VerificationError
from repro.geometry.point import Point

__all__ = ["StoredPassword", "enroll_password", "verify_password", "locate_secrets"]


@dataclass(frozen=True, slots=True)
class StoredPassword:
    """Everything the server stores for one graphical password.

    Attributes
    ----------
    scheme_name:
        Name of the discretization scheme (for record-keeping; the verifier
        is constructed with the scheme object itself).
    publics:
        Per-click-point public material, in click order — Robust: one grid
        identifier per point; Centered: ``dim`` offsets per point.
    record:
        The hash record; its ``public`` field is the flattened ``publics``
        and its digest covers publics + all secret indices.
    """

    scheme_name: str
    publics: Tuple[Tuple[Encodable, ...], ...]
    record: VerificationRecord

    @property
    def clicks(self) -> int:
        """Number of click-points in the password."""
        return len(self.publics)

    def to_json(self) -> dict:
        """JSON-serializable representation."""
        return {
            "scheme_name": self.scheme_name,
            "publics": [
                [scalar_to_json(v) for v in per_point] for per_point in self.publics
            ],
            "record": self.record.to_json(),
        }

    @classmethod
    def from_json(cls, data: dict) -> "StoredPassword":
        """Inverse of :meth:`to_json`."""
        return cls(
            scheme_name=str(data["scheme_name"]),
            publics=tuple(
                tuple(scalar_from_json(v) for v in per_point)
                for per_point in data["publics"]
            ),
            record=VerificationRecord.from_json(data["record"]),
        )


def _flatten(parts: Sequence[Tuple[Encodable, ...]]) -> Tuple[Encodable, ...]:
    """Flatten per-point tuples into the canonical hash order."""
    flat: list[Encodable] = []
    for part in parts:
        flat.extend(part)
    return tuple(flat)


def enroll_password(
    scheme: DiscretizationScheme,
    points: Sequence[Point],
    hasher: Hasher | None = None,
) -> StoredPassword:
    """Enroll a multi-click password under *scheme*.

    Returns the server-side :class:`StoredPassword`; nothing about the
    original points is retained beyond the public material and the hash.

    >>> from repro.core.centered import CenteredDiscretization
    >>> scheme = CenteredDiscretization.for_pixel_tolerance(2, 9)
    >>> stored = enroll_password(scheme, [Point.xy(10, 20), Point.xy(100, 50)])
    >>> verify_password(scheme, stored, [Point.xy(12, 25), Point.xy(95, 41)])
    True
    """
    if not points:
        raise VerificationError("a password needs at least one click-point")
    enrollments: Tuple[Discretization, ...] = scheme.enroll_many(points)
    publics = tuple(e.public for e in enrollments)
    secrets = tuple(tuple(int(i) for i in e.secret) for e in enrollments)
    record = make_record(_flatten(publics), _flatten(secrets), hasher)
    return StoredPassword(
        scheme_name=scheme.name, publics=publics, record=record
    )


def locate_secrets(
    scheme: DiscretizationScheme,
    stored: StoredPassword,
    points: Sequence[Point],
) -> Tuple[Tuple[int, ...], ...]:
    """Discretize candidate *points* under the stored public material.

    This is the verification-side computation shared by the live system and
    the offline attacks (an attacker with the password file has the same
    public material the verifier has).
    """
    if len(points) != stored.clicks:
        raise VerificationError(
            f"expected {stored.clicks} click-points, got {len(points)}"
        )
    return tuple(
        scheme.locate(point, public)
        for point, public in zip(points, stored.publics)
    )


def verify_password(
    scheme: DiscretizationScheme,
    stored: StoredPassword,
    points: Sequence[Point],
    pepper: bytes = b"",
) -> bool:
    """Check a login attempt against a stored password.

    Exactly the deployed flow: discretize under stored public material,
    hash, compare digests.  Returns ``False`` for any well-formed mismatch;
    raises :class:`~repro.errors.VerificationError` only for structural
    problems (wrong click count).  *pepper* must be supplied for records
    enrolled under a peppered deployment
    (:func:`repro.passwords.defense.apply_pepper`).
    """
    secrets = locate_secrets(scheme, stored, points)
    return stored.record.matches(_flatten(secrets), pepper=pepper)
