"""False-accept / false-reject measurement on study data (Tables 1–2).

The paper measures, over all recorded login attempts, how often Robust
Discretization disagrees with centered tolerance, under two framings:

* **Equal grid-square size** (Table 1, Figure 5): both schemes use s×s
  squares; the centered ground truth is the s×s box centered on each
  original click-point.  Robust then exhibits both false accepts and false
  rejects (e.g. 13×13 → FA 1.7 %, FR 21.1 % in the paper's data).
* **Equal guaranteed tolerance r** (Table 2, Figure 6): Robust must use
  6r×6r squares; the ground truth is the centered box of half-side r.
  False rejects are structurally zero (everything within r is r-safe by
  construction — property-tested, not assumed); false accepts grow with
  the 6r cell (e.g. r = 6 → 14.1 %).

Centered Discretization scores identically zero on both error types under
both framings, by construction; the measurement code treats it like any
other scheme rather than special-casing it, so that claim is *measured*.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Optional, Sequence, Tuple

from repro.core.robust import GridSelection, RobustDiscretization
from repro.core.scheme import DiscretizationScheme
from repro.core.tolerance import Outcome, classify_attempt
from repro.errors import ParameterError
from repro.geometry.numbers import RealLike
from repro.study.dataset import StudyDataset

__all__ = [
    "FalseRateReport",
    "measure_false_rates",
    "equal_size_report",
    "equal_r_report",
    "sweep_equal_size",
    "sweep_equal_r",
]


@dataclass(frozen=True, slots=True)
class FalseRateReport:
    """Attempt-level confusion summary for one scheme/framing/dataset."""

    scheme_name: str
    image_name: Optional[str]
    rho: RealLike
    attempts: int
    true_accepts: int
    false_accepts: int
    false_rejects: int
    true_rejects: int

    @property
    def accepted(self) -> int:
        """Attempts the scheme accepted."""
        return self.true_accepts + self.false_accepts

    @property
    def within_tolerance(self) -> int:
        """Attempts inside centered tolerance (the ground truth)."""
        return self.true_accepts + self.false_rejects

    @property
    def false_accept_rate(self) -> float:
        """False accepts over all attempts (the paper's Table 1–2 metric).

        Paper footnote 3 explains the denominator: across *all logins*,
        which makes false-accept percentages look low because accurate
        users rarely click outside centered tolerance at all.
        """
        return self.false_accepts / self.attempts if self.attempts else 0.0

    @property
    def false_reject_rate(self) -> float:
        """False rejects over all attempts."""
        return self.false_rejects / self.attempts if self.attempts else 0.0

    @property
    def accept_rate(self) -> float:
        """Overall login success rate under the scheme."""
        return self.accepted / self.attempts if self.attempts else 0.0


def measure_false_rates(
    scheme: DiscretizationScheme,
    dataset: StudyDataset,
    rho: RealLike,
    image_name: Optional[str] = None,
) -> FalseRateReport:
    """Classify every login attempt of *dataset* against *scheme*.

    Each password's original points are enrolled under the scheme (the
    reconstruction methodology of the paper's §4: the study system stored
    raw coordinates, so any scheme can be replayed post hoc); every login
    attempt is then classified TA/FA/FR/TR with centered half-side *rho*
    as ground truth.
    """
    if image_name is not None and image_name not in dataset.images:
        raise ParameterError(f"unknown image {image_name!r}")
    counts: Dict[Outcome, int] = {outcome: 0 for outcome in Outcome}
    enrollment_cache: dict[int, tuple] = {}
    attempts = 0
    for password, login in dataset.iter_login_pairs():
        if image_name is not None and password.image_name != image_name:
            continue
        enrollments = enrollment_cache.get(password.password_id)
        if enrollments is None:
            enrollments = scheme.enroll_many(password.points)
            enrollment_cache[password.password_id] = enrollments
        outcome = classify_attempt(
            scheme, enrollments, password.points, login.points, rho
        )
        counts[outcome] += 1
        attempts += 1
    return FalseRateReport(
        scheme_name=scheme.name,
        image_name=image_name,
        rho=rho,
        attempts=attempts,
        true_accepts=counts[Outcome.TRUE_ACCEPT],
        false_accepts=counts[Outcome.FALSE_ACCEPT],
        false_rejects=counts[Outcome.FALSE_REJECT],
        true_rejects=counts[Outcome.TRUE_REJECT],
    )


def equal_size_report(
    dataset: StudyDataset,
    grid_size: int,
    scheme: Optional[DiscretizationScheme] = None,
    image_name: Optional[str] = None,
) -> FalseRateReport:
    """Table-1 framing: scheme cells and ground-truth box share side s.

    Defaults to Robust Discretization with the paper's most-centered grid
    selection; pass any scheme (e.g. Centered, for the zero-by-construction
    check, or a Robust with a different selection policy for ablation).
    """
    if scheme is None:
        scheme = RobustDiscretization.for_grid_size(
            2, grid_size, selection=GridSelection.MOST_CENTERED
        )
    rho = Fraction(grid_size, 2)
    return measure_false_rates(scheme, dataset, rho, image_name)


def equal_r_report(
    dataset: StudyDataset,
    r: int,
    scheme: Optional[DiscretizationScheme] = None,
    image_name: Optional[str] = None,
) -> FalseRateReport:
    """Table-2 framing: guaranteed tolerance r for both schemes.

    Ground truth is the half-open centered box of half-side r; the default
    scheme is Robust with 6r cells.  False rejects are provably zero for
    Robust here (any point within the half-open r-box of an r-safe point
    stays in the same cell) — the measurement confirms the theorem.
    """
    if scheme is None:
        scheme = RobustDiscretization(
            2, r, selection=GridSelection.MOST_CENTERED
        )
    return measure_false_rates(scheme, dataset, r, image_name)


def sweep_equal_size(
    dataset: StudyDataset,
    grid_sizes: Sequence[int] = (9, 13, 19),
    image_name: Optional[str] = None,
) -> Tuple[FalseRateReport, ...]:
    """Table 1: Robust false rates across grid sizes (defaults: paper's)."""
    return tuple(
        equal_size_report(dataset, size, image_name=image_name)
        for size in grid_sizes
    )


def sweep_equal_r(
    dataset: StudyDataset,
    r_values: Sequence[int] = (4, 6, 9),
    image_name: Optional[str] = None,
) -> Tuple[FalseRateReport, ...]:
    """Table 2: Robust false rates across equal-r values (defaults: paper's)."""
    return tuple(
        equal_r_report(dataset, r, image_name=image_name) for r in r_values
    )
