"""Usability statistics over study datasets (the §4 companion analysis).

The paper's usability section is backed by the SOUPS-2007 field study's
login-success and click-accuracy statistics; this module computes the same
descriptive layer on any :class:`~repro.study.dataset.StudyDataset`:

* per-scheme login success rates with Wilson confidence intervals,
* first-attempt vs. any-attempt success per password,
* click-error distributions (per-click Chebyshev/Euclidean percentiles),
* per-user accuracy variation.

These feed the calibration notes in EXPERIMENTS.md and give downstream
users the tooling to validate their own behavioural models against the
regime the paper describes (93 %+ of clicks within 4 px, etc.).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.stats import wilson_interval
from repro.core.scheme import DiscretizationScheme
from repro.errors import ParameterError
from repro.geometry.metrics import chebyshev, euclidean
from repro.study.dataset import StudyDataset

__all__ = [
    "SuccessReport",
    "login_success",
    "first_attempt_success",
    "ClickAccuracyReport",
    "click_accuracy",
    "per_user_accuracy",
]


@dataclass(frozen=True, slots=True)
class SuccessReport:
    """Login success counts with a Wilson 95 % interval."""

    scheme_name: str
    attempts: int
    successes: int

    @property
    def rate(self) -> float:
        """Success fraction (0 when there were no attempts)."""
        return self.successes / self.attempts if self.attempts else 0.0

    @property
    def interval(self) -> Tuple[float, float]:
        """Wilson 95 % confidence interval for the success rate."""
        return wilson_interval(self.successes, self.attempts)


def login_success(
    scheme: DiscretizationScheme,
    dataset: StudyDataset,
    image_name: Optional[str] = None,
) -> SuccessReport:
    """Fraction of login attempts the scheme accepts.

    Replays every attempt against enrollments of the original points,
    exactly like the deployed verification flow.
    """
    if image_name is not None and image_name not in dataset.images:
        raise ParameterError(f"unknown image {image_name!r}")
    attempts = 0
    successes = 0
    cache: dict = {}
    for password, login in dataset.iter_login_pairs():
        if image_name is not None and password.image_name != image_name:
            continue
        enrollments = cache.get(password.password_id)
        if enrollments is None:
            enrollments = scheme.enroll_many(password.points)
            cache[password.password_id] = enrollments
        attempts += 1
        if all(
            scheme.accepts(enrollment, point)
            for enrollment, point in zip(enrollments, login.points)
        ):
            successes += 1
    return SuccessReport(
        scheme_name=scheme.name, attempts=attempts, successes=successes
    )


def first_attempt_success(
    scheme: DiscretizationScheme,
    dataset: StudyDataset,
    image_name: Optional[str] = None,
) -> SuccessReport:
    """Success of each password's *first* recorded login attempt.

    First-attempt success is the usability number users feel most; the
    study literature reports it separately from overall success.
    """
    if image_name is not None and image_name not in dataset.images:
        raise ParameterError(f"unknown image {image_name!r}")
    first_logins: Dict[int, object] = {}
    for login in dataset.logins:
        if login.password_id not in first_logins:
            first_logins[login.password_id] = login
    attempts = 0
    successes = 0
    for password_id, login in first_logins.items():
        password = dataset.password(password_id)
        if image_name is not None and password.image_name != image_name:
            continue
        enrollments = scheme.enroll_many(password.points)
        attempts += 1
        if all(
            scheme.accepts(enrollment, point)
            for enrollment, point in zip(enrollments, login.points)  # type: ignore[attr-defined]
        ):
            successes += 1
    return SuccessReport(
        scheme_name=scheme.name, attempts=attempts, successes=successes
    )


@dataclass(frozen=True, slots=True)
class ClickAccuracyReport:
    """Distribution of per-click re-entry error over a dataset."""

    clicks: int
    mean_chebyshev: float
    mean_euclidean: float
    percentiles: Tuple[Tuple[int, float], ...]
    within: Tuple[Tuple[int, float], ...]

    def fraction_within(self, tolerance_px: int) -> float:
        """Fraction of clicks with Chebyshev error ≤ tolerance_px."""
        for tolerance, fraction in self.within:
            if tolerance == tolerance_px:
                return fraction
        raise ParameterError(
            f"tolerance {tolerance_px} not tabulated; available: "
            f"{[t for t, _ in self.within]}"
        )


def click_accuracy(
    dataset: StudyDataset,
    image_name: Optional[str] = None,
    tolerances: Sequence[int] = (1, 2, 4, 6, 9, 13),
    percentiles: Sequence[int] = (50, 75, 90, 95, 99),
) -> ClickAccuracyReport:
    """Per-click error statistics across all login attempts."""
    if image_name is not None and image_name not in dataset.images:
        raise ParameterError(f"unknown image {image_name!r}")
    cheb: list = []
    eucl: list = []
    for password, login in dataset.iter_login_pairs():
        if image_name is not None and password.image_name != image_name:
            continue
        for original, attempt in zip(password.points, login.points):
            cheb.append(float(chebyshev(original, attempt)))
            eucl.append(euclidean(original, attempt))
    if not cheb:
        raise ParameterError("no login attempts matched the filter")
    cheb_arr = np.array(cheb)
    return ClickAccuracyReport(
        clicks=len(cheb),
        mean_chebyshev=float(cheb_arr.mean()),
        mean_euclidean=float(np.mean(eucl)),
        percentiles=tuple(
            (p, float(np.percentile(cheb_arr, p))) for p in percentiles
        ),
        within=tuple(
            (t, float((cheb_arr <= t).mean())) for t in tolerances
        ),
    )


def per_user_accuracy(
    dataset: StudyDataset, image_name: Optional[str] = None
) -> Dict[int, float]:
    """Mean Chebyshev click error per user (sorted by user id).

    Exposes the per-user skill variation the error model injects; the
    spread here is what makes "most users fine, some users struggling"
    usability patterns appear.
    """
    if image_name is not None and image_name not in dataset.images:
        raise ParameterError(f"unknown image {image_name!r}")
    sums: Dict[int, float] = {}
    counts: Dict[int, int] = {}
    for password, login in dataset.iter_login_pairs():
        if image_name is not None and password.image_name != image_name:
            continue
        for original, attempt in zip(password.points, login.points):
            error = float(chebyshev(original, attempt))
            sums[password.user_id] = sums.get(password.user_id, 0.0) + error
            counts[password.user_id] = counts.get(password.user_id, 0) + 1
    return {
        user_id: sums[user_id] / counts[user_id] for user_id in sorted(sums)
    }
