"""Small statistics helpers used across analyses and experiments."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.errors import ParameterError

__all__ = ["percent", "wilson_interval", "Summary", "summarize"]


def percent(numerator: int, denominator: int, digits: int = 1) -> float:
    """Percentage rounded to *digits*, 0.0 for an empty denominator."""
    if denominator < 0 or numerator < 0:
        raise ParameterError("counts must be non-negative")
    if denominator == 0:
        return 0.0
    return round(100.0 * numerator / denominator, digits)


def wilson_interval(
    successes: int, trials: int, z: float = 1.96
) -> Tuple[float, float]:
    """Wilson score confidence interval for a binomial proportion.

    Robust at extreme proportions (0 % false accepts in a few thousand
    attempts still gets a meaningful upper bound), which is exactly the
    regime the Tables 1–2 reproductions live in.
    """
    if trials < 0 or successes < 0 or successes > trials:
        raise ParameterError(
            f"invalid binomial counts: {successes}/{trials}"
        )
    if trials == 0:
        return (0.0, 1.0)
    p_hat = successes / trials
    z2 = z * z
    denominator = 1 + z2 / trials
    center = (p_hat + z2 / (2 * trials)) / denominator
    margin = (
        z
        * math.sqrt(p_hat * (1 - p_hat) / trials + z2 / (4 * trials * trials))
        / denominator
    )
    return (max(0.0, center - margin), min(1.0, center + margin))


@dataclass(frozen=True, slots=True)
class Summary:
    """Five-number-ish summary of a sample."""

    count: int
    mean: float
    std: float
    minimum: float
    median: float
    maximum: float


def summarize(values: Sequence[float]) -> Summary:
    """Summarize a non-empty numeric sample (population std)."""
    if not values:
        raise ParameterError("cannot summarize an empty sample")
    ordered = sorted(float(v) for v in values)
    count = len(ordered)
    mean = sum(ordered) / count
    variance = sum((v - mean) ** 2 for v in ordered) / count
    middle = count // 2
    if count % 2:
        median = ordered[middle]
    else:
        median = (ordered[middle - 1] + ordered[middle]) / 2
    return Summary(
        count=count,
        mean=mean,
        std=math.sqrt(variance),
        minimum=ordered[0],
        median=median,
        maximum=ordered[-1],
    )
