"""Theoretical full password-space calculations (paper §2.2.2, Table 3).

For an image of W×H pixels and square grid cells of side s, each overlaid
grid has ``⌈W/s⌉ · ⌈H/s⌉`` distinct cells, and a k-click password ranges
over ``cells^k`` — ``k · log2(cells)`` bits.  The discretization scheme
enters through what s means for usability:

* Centered Discretization achieves pixel tolerance t with s = 2t + 1
  (or generally r = s/2);
* Robust Discretization needs s = 6r for guaranteed tolerance r — 3× the
  side, ~3.17 bits fewer per click in 2-D at equal r.

Also provides the text-password comparator the paper quotes: a random
8-character password over the standard 95-symbol printable alphabet is
52.5 bits.

Alongside the closed-form *theoretical* space, this module measures the
*empirical* space real users exercise: :func:`empirical_cell_distribution`
discretizes an observed click-point pool through the batch engine
(:mod:`repro.core.batch`) and :func:`effective_space_bits` reports the
Shannon entropy of the resulting cell distribution — the hotspot-skewed
space an attacker actually has to search, always at most the theoretical
value.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Sequence, Tuple

from repro.core.batch import PointArrayLike
from repro.core.scheme import DiscretizationScheme
from repro.errors import ParameterError
from repro.geometry.numbers import (
    centered_pixel_tolerance_for_grid_size,
    robust_r_for_grid_size,
)

__all__ = [
    "squares_per_grid",
    "password_space_bits",
    "text_password_bits",
    "SpaceRow",
    "space_row",
    "space_table",
    "equal_r_comparison",
    "empirical_cell_distribution",
    "effective_space_bits",
    "PAPER_GRID_SIZES",
    "PAPER_IMAGE_SIZES",
]

#: Grid sizes tabulated in the paper's Table 3.
PAPER_GRID_SIZES: Tuple[int, ...] = (9, 13, 19, 24, 36, 54)

#: Image sizes tabulated in the paper's Table 3 (study image, VGA).
PAPER_IMAGE_SIZES: Tuple[Tuple[int, int], ...] = ((451, 331), (640, 480))


def squares_per_grid(width: int, height: int, grid_size: int) -> int:
    """Number of grid cells overlapping a W×H image: ⌈W/s⌉·⌈H/s⌉.

    Cells straddling the image edge still count — a click near the border
    discretizes into them.  Reproduces Table 3's "# of Squares per Grid"
    column exactly (451×331 @ 9×9 → 1887, 640×480 @ 9×9 → 3888, …).

    >>> squares_per_grid(451, 331, 9)
    1887
    >>> squares_per_grid(640, 480, 36)
    252
    """
    if width < 1 or height < 1:
        raise ParameterError(f"image must be positive, got {width}x{height}")
    if grid_size < 1:
        raise ParameterError(f"grid_size must be >= 1, got {grid_size}")
    return math.ceil(width / grid_size) * math.ceil(height / grid_size)


def password_space_bits(
    width: int, height: int, grid_size: int, clicks: int = 5
) -> float:
    """Theoretical full password space in bits: clicks · log2(cells).

    >>> round(password_space_bits(640, 480, 9), 1)
    59.6
    """
    if clicks < 1:
        raise ParameterError(f"clicks must be >= 1, got {clicks}")
    return clicks * math.log2(squares_per_grid(width, height, grid_size))


def text_password_bits(length: int = 8, alphabet: int = 95) -> float:
    """Bits of a random text password: length · log2(alphabet).

    Paper §2.2.2: 8 characters over 95 symbols → 52.5 bits.

    >>> round(text_password_bits(), 1)
    52.6
    """
    if length < 1:
        raise ParameterError(f"length must be >= 1, got {length}")
    if alphabet < 2:
        raise ParameterError(f"alphabet must be >= 2, got {alphabet}")
    return length * math.log2(alphabet)


@dataclass(frozen=True, slots=True)
class SpaceRow:
    """One row of the Table-3 reproduction."""

    width: int
    height: int
    grid_size: int
    centered_r: Fraction
    robust_r: Fraction
    squares: int
    bits: float


def space_row(
    width: int, height: int, grid_size: int, clicks: int = 5
) -> SpaceRow:
    """Compute one Table-3 row for a given image and grid size."""
    return SpaceRow(
        width=width,
        height=height,
        grid_size=grid_size,
        centered_r=centered_pixel_tolerance_for_grid_size(grid_size),
        robust_r=robust_r_for_grid_size(grid_size),
        squares=squares_per_grid(width, height, grid_size),
        bits=password_space_bits(width, height, grid_size, clicks),
    )


def space_table(
    image_sizes: Sequence[Tuple[int, int]] = PAPER_IMAGE_SIZES,
    grid_sizes: Sequence[int] = PAPER_GRID_SIZES,
    clicks: int = 5,
) -> Tuple[SpaceRow, ...]:
    """The full Table-3 grid: every image size × every grid size."""
    return tuple(
        space_row(width, height, size, clicks)
        for (width, height) in image_sizes
        for size in grid_sizes
    )


def equal_r_comparison(
    width: int, height: int, r: int, clicks: int = 5
) -> dict:
    """Password-space bits of both schemes at the same guaranteed r.

    Centered uses (2r+1)-px cells (pixel convention); Robust needs 6r-px
    cells.  The paper's in-text example: 640×480, r = 4 → 59.6 bits
    (Centered, 9×9) vs 45.4 bits (Robust, 24×24).
    """
    if r < 1:
        raise ParameterError(f"r must be >= 1, got {r}")
    centered_size = 2 * r + 1
    robust_size = 6 * r
    return {
        "r": r,
        "centered_grid_size": centered_size,
        "robust_grid_size": robust_size,
        "centered_bits": password_space_bits(width, height, centered_size, clicks),
        "robust_bits": password_space_bits(width, height, robust_size, clicks),
        "advantage_bits": (
            password_space_bits(width, height, centered_size, clicks)
            - password_space_bits(width, height, robust_size, clicks)
        ),
    }


def empirical_cell_distribution(
    scheme: DiscretizationScheme, points: PointArrayLike
) -> Dict[Tuple[int, ...], int]:
    """Occupancy counts of discretization cells over an observed pool.

    Discretizes *points* in one :func:`~repro.core.batch.discretize_batch`
    call and tallies how many land in each distinct cell.  Keys are the
    secret index vectors, prefixed with the grid identifier for Robust
    Discretization (cells of different grids are different cells); for
    Centered Discretization the secret segment indices are the cells of
    the fixed ``2r`` lattice shifted by ``r``, so counts group clicks that
    would share a hashed secret.
    """
    import numpy as np

    # Pinned to numpy: the cell counting below runs on host arrays.
    batch = scheme.batch(xp=np).enroll(points)
    keys = batch.secret
    if batch.public.ndim == 1:  # robust: grid identifier distinguishes cells
        keys = np.column_stack([batch.public, batch.secret])
    return dict(Counter(tuple(int(v) for v in row) for row in keys))


def effective_space_bits(
    scheme: DiscretizationScheme, points: PointArrayLike, clicks: int = 5
) -> float:
    """Empirical password space: clicks × Shannon entropy of cell choice.

    The theoretical space (:func:`password_space_bits`) assumes users pick
    cells uniformly; real users cluster on hotspots, so the entropy of the
    observed cell distribution — measured here from a click-point pool via
    the batch engine — is the honest per-click exponent.  The gap between
    the two is the security cost of hotspots (paper §2.1 and the
    hotspot-attack literature).
    """
    if clicks < 1:
        raise ParameterError(f"clicks must be >= 1, got {clicks}")
    distribution = empirical_cell_distribution(scheme, points)
    total = sum(distribution.values())
    entropy = -sum(
        (count / total) * math.log2(count / total)
        for count in distribution.values()
    )
    return clicks * entropy
