"""Plain-text table rendering for experiment output.

The benchmark harness reproduces the paper's tables and figure series as
aligned text (no plotting dependencies).  Two renderers:

* :func:`render_table` — a generic aligned-columns table;
* :func:`render_comparison` — paper-value vs measured-value rows with a
  delta column, used by every experiment's report.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.errors import ParameterError

__all__ = ["render_table", "render_comparison", "format_value"]


def format_value(value, digits: int = 1) -> str:
    """Human formatting: floats rounded, Fractions as short rationals."""
    from fractions import Fraction

    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, Fraction):
        if value.denominator == 1:
            return str(value.numerator)
        as_float = float(value)
        return f"{as_float:.2f}".rstrip("0").rstrip(".")
    if isinstance(value, float):
        return f"{value:.{digits}f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: Optional[str] = None,
    digits: int = 1,
) -> str:
    """Render an aligned text table.

    >>> print(render_table(["a", "b"], [[1, 2.345]]))
    a  b
    -  ---
    1  2.3
    """
    if not headers:
        raise ParameterError("a table needs at least one column")
    formatted = [[format_value(cell, digits) for cell in row] for row in rows]
    for index, row in enumerate(formatted):
        if len(row) != len(headers):
            raise ParameterError(
                f"row {index} has {len(row)} cells, expected {len(headers)}"
            )
    widths = [
        max(len(str(headers[col])), *(len(row[col]) for row in formatted))
        if formatted
        else len(str(headers[col]))
        for col in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in formatted:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def render_comparison(
    rows: Sequence[dict],
    title: Optional[str] = None,
    digits: int = 1,
) -> str:
    """Render paper-vs-measured rows.

    Each row dict needs ``label``, ``paper`` and ``measured``; ``paper`` may
    be ``None`` for measurements with no published counterpart (marked
    ``--``).  Numeric pairs get a delta column.
    """
    headers = ["quantity", "paper", "measured", "delta"]
    body = []
    for row in rows:
        label = row["label"]
        paper = row.get("paper")
        measured = row["measured"]
        if paper is None:
            body.append([label, "--", format_value(measured, digits), "--"])
            continue
        try:
            delta = float(measured) - float(paper)
            delta_text = f"{delta:+.{digits}f}"
        except (TypeError, ValueError):
            delta_text = "--"
        body.append(
            [
                label,
                format_value(paper, digits),
                format_value(measured, digits),
                delta_text,
            ]
        )
    return render_table(headers, body, title=title, digits=digits)
