"""Analysis layer: password-space math, false-rate measurement, analytic
acceptance probabilities, usability statistics, reporting."""

from repro.analysis.acceptance import (
    AcceptanceCurve,
    acceptance_curve,
    centered_accept_probability,
    interval_stay_probability,
    robust_accept_probability,
    scheme_accept_probability,
    static_accept_probability,
)
from repro.analysis.false_rates import (
    FalseRateReport,
    equal_r_report,
    equal_size_report,
    measure_false_rates,
    sweep_equal_r,
    sweep_equal_size,
)
from repro.analysis.password_space import (
    PAPER_GRID_SIZES,
    PAPER_IMAGE_SIZES,
    SpaceRow,
    effective_space_bits,
    empirical_cell_distribution,
    equal_r_comparison,
    password_space_bits,
    space_row,
    space_table,
    squares_per_grid,
    text_password_bits,
)
from repro.analysis.stats import Summary, percent, summarize, wilson_interval
from repro.analysis.tables import format_value, render_comparison, render_table
from repro.analysis.usability import (
    ClickAccuracyReport,
    SuccessReport,
    click_accuracy,
    first_attempt_success,
    login_success,
    per_user_accuracy,
)

__all__ = [
    "AcceptanceCurve",
    "ClickAccuracyReport",
    "FalseRateReport",
    "PAPER_GRID_SIZES",
    "PAPER_IMAGE_SIZES",
    "SpaceRow",
    "SuccessReport",
    "Summary",
    "acceptance_curve",
    "centered_accept_probability",
    "click_accuracy",
    "effective_space_bits",
    "empirical_cell_distribution",
    "equal_r_comparison",
    "first_attempt_success",
    "interval_stay_probability",
    "login_success",
    "per_user_accuracy",
    "robust_accept_probability",
    "scheme_accept_probability",
    "static_accept_probability",
    "equal_r_report",
    "equal_size_report",
    "format_value",
    "measure_false_rates",
    "password_space_bits",
    "percent",
    "render_comparison",
    "render_table",
    "space_row",
    "space_table",
    "squares_per_grid",
    "summarize",
    "sweep_equal_r",
    "sweep_equal_size",
    "text_password_bits",
]
