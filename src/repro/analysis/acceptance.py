"""Analytic login-acceptance probabilities under Gaussian click error.

The simulation measures acceptance rates empirically; this module computes
them *semi-analytically* for an isotropic Gaussian re-entry error with
per-axis standard deviation σ, giving an independent check on the whole
measurement pipeline (the cross-validation lives in the test suite and the
``ablation_analytic`` benchmark):

* **Centered Discretization** — closed form.  The acceptance region is
  ``[x − r, x + r)`` per axis, so per-axis acceptance is
  ``Φ(r/σ) − Φ(−r/σ)`` and a k-click 2-D attempt accepts with that to the
  power 2k.
* **Static grid** — one numeric integral.  Conditioned on the click's
  position u inside its cell (uniform over [0, s)), per-axis acceptance is
  ``Φ((s−u)/σ) − Φ(−u/σ)``; integrate u out.
* **Robust Discretization** — quadrature over the enrollment position.
  The chosen cell's margins depend on the click's position modulo the
  3-grid lattice and on the selection policy; we average the exact
  per-axis Gaussian integral over a dense grid of positions in one
  ``6r × 6r`` fundamental domain.

All three reduce to the same primitive: the probability that a Gaussian
step from a known position inside a half-open interval stays inside.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.centered import CenteredDiscretization
from repro.core.robust import GridSelection, RobustDiscretization
from repro.core.scheme import DiscretizationScheme
from repro.core.static import StaticGridScheme
from repro.errors import ParameterError
from repro.geometry.point import Point

__all__ = [
    "interval_stay_probability",
    "centered_accept_probability",
    "static_accept_probability",
    "robust_accept_probability",
    "scheme_accept_probability",
    "AcceptanceCurve",
    "acceptance_curve",
]


def _phi(z: float) -> float:
    """Standard normal CDF."""
    return 0.5 * (1.0 + math.erf(z / math.sqrt(2.0)))


def interval_stay_probability(low: float, high: float, sigma: float) -> float:
    """P(low ≤ ε < high) for ε ~ N(0, σ²).

    The primitive shared by every scheme: the click stays within its
    acceptance interval when the error lands between the distances to the
    interval's two edges.
    """
    if sigma < 0:
        raise ParameterError(f"sigma must be >= 0, got {sigma}")
    if sigma == 0:
        return 1.0 if low <= 0 < high else 0.0
    return _phi(high / sigma) - _phi(low / sigma)


def centered_accept_probability(
    r: float, sigma: float, clicks: int = 5, dim: int = 2
) -> float:
    """Closed-form acceptance probability for Centered Discretization.

    Per axis the region is exactly ``[−r, +r)`` around the original point,
    independent of where the point sits — that is the whole point of the
    scheme — so no position averaging is needed.
    """
    if r <= 0:
        raise ParameterError(f"r must be > 0, got {r}")
    if clicks < 1 or dim < 1:
        raise ParameterError("clicks and dim must be >= 1")
    per_axis = interval_stay_probability(-r, r, sigma)
    return per_axis ** (dim * clicks)


def static_accept_probability(
    cell_size: float,
    sigma: float,
    clicks: int = 5,
    dim: int = 2,
    position_samples: int = 512,
) -> float:
    """Acceptance probability for a static grid, position-averaged.

    The click's per-axis position u inside its cell is uniform; the edge
    problem is visible as the integrand collapsing near u = 0 and u = s.
    """
    if cell_size <= 0:
        raise ParameterError(f"cell_size must be > 0, got {cell_size}")
    if position_samples < 2:
        raise ParameterError("position_samples must be >= 2")
    positions = (np.arange(position_samples) + 0.5) / position_samples * cell_size
    per_axis = float(
        np.mean(
            [
                interval_stay_probability(-u, cell_size - u, sigma)
                for u in positions
            ]
        )
    )
    return per_axis ** (dim * clicks)


def robust_accept_probability(
    r: float,
    sigma: float,
    clicks: int = 5,
    selection: GridSelection = GridSelection.MOST_CENTERED,
    position_samples: int = 48,
) -> float:
    """Acceptance probability for 2-D Robust Discretization, by quadrature.

    Averages the exact per-attempt acceptance over a ``position_samples ×
    position_samples`` grid of enrollment positions covering one 6r × 6r
    fundamental domain of the 3-grid lattice.  For each position the scheme
    itself chooses the grid (so the selection policy is honoured exactly),
    and the two per-axis Gaussian integrals use the chosen cell's true
    margins.
    """
    if r <= 0:
        raise ParameterError(f"r must be > 0, got {r}")
    if position_samples < 2:
        raise ParameterError("position_samples must be >= 2")
    scheme = RobustDiscretization(2, r, selection=selection, exact=False)
    side = 6.0 * r
    total = 0.0
    count = 0
    for ix in range(position_samples):
        x = (ix + 0.5) / position_samples * side
        for iy in range(position_samples):
            y = (iy + 0.5) / position_samples * side
            point = Point.xy(x, y)
            enrollment = scheme.enroll(point)
            box = scheme.acceptance_region(enrollment)
            px = interval_stay_probability(
                float(box.lo[0]) - x, float(box.hi[0]) - x, sigma
            )
            py = interval_stay_probability(
                float(box.lo[1]) - y, float(box.hi[1]) - y, sigma
            )
            total += px * py
            count += 1
    per_click = total / count
    return per_click**clicks


def scheme_accept_probability(
    scheme: DiscretizationScheme, sigma: float, clicks: int = 5
) -> float:
    """Dispatch on scheme type (2-D only for Robust)."""
    if isinstance(scheme, CenteredDiscretization):
        return centered_accept_probability(
            float(scheme.r), sigma, clicks=clicks, dim=scheme.dim
        )
    if isinstance(scheme, RobustDiscretization):
        if scheme.dim != 2:
            raise ParameterError("analytic robust acceptance is 2-D only")
        return robust_accept_probability(
            float(scheme.r), sigma, clicks=clicks, selection=scheme.selection
        )
    if isinstance(scheme, StaticGridScheme):
        return static_accept_probability(
            float(scheme.cell_size), sigma, clicks=clicks, dim=scheme.dim
        )
    raise ParameterError(f"unsupported scheme {type(scheme).__name__}")


@dataclass(frozen=True, slots=True)
class AcceptanceCurve:
    """Login acceptance vs click-error σ for one scheme configuration."""

    scheme_name: str
    clicks: int
    sigmas: tuple
    probabilities: tuple

    def at(self, sigma: float) -> float:
        """Linear interpolation of the curve at *sigma*."""
        return float(np.interp(sigma, self.sigmas, self.probabilities))


def acceptance_curve(
    scheme: DiscretizationScheme,
    sigmas: Optional[tuple] = None,
    clicks: int = 5,
) -> AcceptanceCurve:
    """Compute an acceptance-vs-σ curve for a scheme."""
    grid = sigmas if sigmas is not None else tuple(
        round(0.5 * k, 1) for k in range(1, 17)
    )
    probabilities = tuple(
        scheme_accept_probability(scheme, sigma, clicks=clicks) for sigma in grid
    )
    return AcceptanceCurve(
        scheme_name=scheme.name,
        clicks=clicks,
        sigmas=tuple(grid),
        probabilities=probabilities,
    )
