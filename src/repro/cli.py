"""Command-line interface: ``repro`` / ``python -m repro``.

Subcommands:

* ``repro list`` — show available experiments;
* ``repro run table1 figure8 …`` — run selected experiments (or ``all``)
  and print their reports;
* ``repro study --out study.json`` — generate and save the simulated field
  study;
* ``repro demo`` — the quickstart: enroll and verify a password under both
  schemes.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro._version import __version__

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Centered Discretization with Application to "
            "Graphical Passwords' (Chiasson et al., UPSEC 2008)."
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run_parser = sub.add_parser("run", help="run experiments and print reports")
    run_parser.add_argument(
        "experiments",
        nargs="+",
        help="experiment ids (see 'repro list'), or 'all'",
    )

    study_parser = sub.add_parser(
        "study", help="generate the simulated field study"
    )
    study_parser.add_argument(
        "--out", required=True, help="output JSON path"
    )
    study_parser.add_argument(
        "--seed", type=int, default=2008, help="simulation seed"
    )

    report_parser = sub.add_parser(
        "report",
        help="run experiments and export JSON/CSV artifacts",
    )
    report_parser.add_argument(
        "--out", required=True, help="output directory"
    )
    report_parser.add_argument(
        "experiments",
        nargs="*",
        default=[],
        help="experiment ids (default: all)",
    )

    sub.add_parser("demo", help="enroll/verify a password under both schemes")
    return parser


def _cmd_list() -> int:
    from repro.experiments.runner import EXPERIMENTS

    for experiment_id in EXPERIMENTS:
        print(experiment_id)
    return 0


def _cmd_run(experiment_ids: Sequence[str]) -> int:
    from repro.experiments.runner import EXPERIMENTS, run_all

    if list(experiment_ids) == ["all"]:
        selected = list(EXPERIMENTS)
    else:
        unknown = [e for e in experiment_ids if e not in EXPERIMENTS]
        if unknown:
            print(
                f"unknown experiments: {', '.join(unknown)} "
                f"(try 'repro list')",
                file=sys.stderr,
            )
            return 2
        selected = list(experiment_ids)
    results = run_all(selected)
    for index, result in enumerate(results.values()):
        if index:
            print()
        print(result.rendered())
    return 0


def _cmd_study(out_path: str, seed: int) -> int:
    from repro.study.fieldstudy import PAPER_STUDY, generate_field_study

    dataset = generate_field_study(PAPER_STUDY.with_seed(seed))
    dataset.save(out_path)
    summary = dataset.summary()
    print(
        f"wrote {out_path}: {summary['participants']} participants, "
        f"{summary['passwords']} passwords, {summary['logins']} logins"
    )
    return 0


def _cmd_report(out_dir: str, experiment_ids: Sequence[str]) -> int:
    from repro.experiments.export import write_reports
    from repro.experiments.runner import EXPERIMENTS, run_all

    selected = list(experiment_ids) if experiment_ids else list(EXPERIMENTS)
    unknown = [e for e in selected if e not in EXPERIMENTS]
    if unknown:
        print(
            f"unknown experiments: {', '.join(unknown)} (try 'repro list')",
            file=sys.stderr,
        )
        return 2
    results = run_all(selected)
    summary = write_reports(results.values(), out_dir)
    print(f"wrote {len(results)} experiment artifacts; summary: {summary}")
    return 0


def _cmd_demo() -> int:
    from repro.core.centered import CenteredDiscretization
    from repro.core.robust import RobustDiscretization
    from repro.geometry.point import Point
    from repro.passwords.passpoints import PassPointsSystem
    from repro.study.image import cars_image

    image = cars_image()
    points = [
        Point.xy(42, 61),
        Point.xy(130, 88),
        Point.xy(227, 154),
        Point.xy(318, 222),
        Point.xy(401, 290),
    ]
    retry_ok = [Point.xy(int(p.x) + 4, int(p.y) - 3) for p in points]
    retry_bad = [Point.xy(int(p.x) + 14, int(p.y)) for p in points]
    for scheme in (
        CenteredDiscretization.for_pixel_tolerance(2, 9),
        RobustDiscretization.for_pixel_tolerance(2, 9),
    ):
        system = PassPointsSystem(image=image, scheme=scheme)
        stored = system.enroll(points)
        print(
            f"{scheme.name}: cell {scheme.cell_size}px | "
            f"exact login: {system.verify(stored, points)} | "
            f"4px-off login: {system.verify(stored, retry_ok)} | "
            f"14px-off login: {system.verify(stored, retry_bad)}"
        )
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args.experiments)
    if args.command == "study":
        return _cmd_study(args.out, args.seed)
    if args.command == "report":
        return _cmd_report(args.out, args.experiments)
    if args.command == "demo":
        return _cmd_demo()
    parser.error(f"unhandled command {args.command!r}")
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
