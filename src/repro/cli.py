"""Command-line interface: ``repro`` / ``python -m repro``.

Subcommands:

* ``repro list`` — show available experiments;
* ``repro run table1 figure8 …`` — run selected experiments (or ``all``)
  and print their reports;
* ``repro study --out study.json`` — generate and save the simulated field
  study;
* ``repro demo`` — the quickstart: enroll and verify a password under both
  schemes;
* ``repro attack`` — the §5.1 known-identifier dictionary attack on the
  simulated field study, sharded across worker processes (``--workers``);
* ``repro store create/login/dump/compact/attack`` — operate a persistent
  password store on a backend URI (``memory:``, ``sqlite:PATH``,
  ``jsonl:PATH``, ``shards:sqlite:PREFIX{0..N}.db``): enroll a simulated
  population (resuming if already enrolled), run throttled logins, steal
  the password file, compact a grown-forever JSONL log down to its live
  state, and grind the stolen file offline;
* ``repro serve`` — expose a store over TCP through the asyncio JSONL
  login protocol (micro-batched verification under the hood);
* ``repro flood`` — self-hosted load generation: start a server on an
  ephemeral port, flood it with concurrent clients, report throughput and
  p50/p95 latency; ``--trace`` additionally records per-flush span trees
  and prints the queue-wait vs. kernel-time breakdown;
* ``repro metrics`` — scrape a running ``repro serve`` process's metrics
  registry over the JSONL protocol (``--json`` snapshot or ``--prom``
  Prometheus text exposition);
* ``repro defense-matrix`` — sweep every DefenseConfig cell against the
  online attack and the stolen-file grind, pricing attacker cost per
  cracked account against defender verification cost.

Deployments take a ``--defense`` spec (``store create``, ``serve``) of the
form ``hash_cost=K,pepper=hex:HEX,captcha_after=N,rate_limit=WINDOW:MAX,
lockout=N|none``; ``store create`` persists it in backend meta (which
``dump`` — the stolen artifact — never includes), so reopened stores
verify under the deployment they enrolled with.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro._version import __version__

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Centered Discretization with Application to "
            "Graphical Passwords' (Chiasson et al., UPSEC 2008)."
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run_parser = sub.add_parser("run", help="run experiments and print reports")
    run_parser.add_argument(
        "experiments",
        nargs="+",
        help="experiment ids (see 'repro list'), or 'all'",
    )

    study_parser = sub.add_parser(
        "study", help="generate the simulated field study"
    )
    study_parser.add_argument(
        "--out", required=True, help="output JSON path"
    )
    study_parser.add_argument(
        "--seed", type=int, default=2008, help="simulation seed"
    )

    report_parser = sub.add_parser(
        "report",
        help="run experiments and export JSON/CSV artifacts",
    )
    report_parser.add_argument(
        "--out", required=True, help="output directory"
    )
    report_parser.add_argument(
        "experiments",
        nargs="*",
        default=[],
        help="experiment ids (default: all)",
    )

    sub.add_parser("demo", help="enroll/verify a password under both schemes")

    attack_top = sub.add_parser(
        "attack",
        help="known-identifier dictionary attack, sharded across processes",
    )
    attack_top.add_argument(
        "--scheme",
        choices=["centered", "robust", "static"],
        default="centered",
        help="discretization scheme (default: centered)",
    )
    attack_top.add_argument(
        "--image",
        choices=["cars", "pool"],
        default="cars",
        help="canonical study image (default: cars)",
    )
    attack_top.add_argument(
        "--tolerance", type=int, default=9, help="pixel tolerance r (default: 9)"
    )
    attack_top.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes (default: one per schedulable CPU)",
    )
    attack_top.add_argument(
        "--victims",
        type=int,
        default=None,
        help="attack only the first N dataset passwords (default: all)",
    )
    attack_top.add_argument(
        "--mode",
        choices=("static", "queue"),
        default="queue",
        help=(
            "scheduling mode: 'queue' streams small tasks to idle workers "
            "(robust to skewed per-target cost), 'static' pins one "
            "contiguous shard per worker (default: queue)"
        ),
    )
    attack_top.add_argument(
        "--task-size",
        type=int,
        default=None,
        help="targets per queue task (default: auto, ~8 tasks per worker)",
    )

    store_parser = sub.add_parser(
        "store", help="operate a password store on a backend URI"
    )
    store_sub = store_parser.add_subparsers(dest="store_command", required=True)

    create_parser = store_sub.add_parser(
        "create", help="enroll a simulated population (resumes if present)"
    )
    create_parser.add_argument("uri", help="backend URI (memory:, sqlite:PATH, jsonl:PATH)")
    create_parser.add_argument(
        "--scheme",
        choices=["centered", "robust", "static"],
        default="centered",
        help="discretization scheme (default: centered)",
    )
    create_parser.add_argument(
        "--tolerance", type=int, default=9, help="pixel tolerance r (default: 9)"
    )
    create_parser.add_argument(
        "--image",
        choices=["cars", "pool"],
        default="cars",
        help="canonical study image (default: cars)",
    )
    create_parser.add_argument(
        "--users", type=int, default=10, help="accounts to enroll (default: 10)"
    )
    create_parser.add_argument(
        "--defense",
        default=None,
        help=(
            "defense spec, e.g. 'hash_cost=16,pepper=hex:a1b2,captcha_after=3,"
            "rate_limit=30:5,lockout=10' (default: none; persisted in backend "
            "meta and re-applied on every reopen)"
        ),
    )

    login_parser = store_sub.add_parser(
        "login", help="one throttled login attempt against a store"
    )
    login_parser.add_argument("uri", help="backend URI")
    login_parser.add_argument("--user", required=True, help="account name")
    login_parser.add_argument(
        "--points",
        required=True,
        help="click-points as 'x,y;x,y;...' (5 for classic PassPoints)",
    )

    dump_parser = store_sub.add_parser(
        "dump", help="print the password file (what an attacker steals)"
    )
    dump_parser.add_argument("uri", help="backend URI")

    compact_parser = store_sub.add_parser(
        "compact",
        help="rewrite a jsonl: append-only log to one event per live fact",
    )
    compact_parser.add_argument(
        "uri",
        help=(
            "jsonl:PATH backend URI (a served log grows one throttle event "
            "per login forever; compaction rewrites it to the live state)"
        ),
    )

    attack_parser = store_sub.add_parser(
        "attack", help="steal the password file and grind it offline"
    )
    attack_parser.add_argument("uri", help="backend URI")
    attack_parser.add_argument(
        "--budget",
        type=int,
        default=500,
        help="hash-guess budget per account (default: 500)",
    )
    attack_parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes (default: one per schedulable CPU)",
    )
    attack_parser.add_argument(
        "--mode",
        choices=("static", "queue"),
        default="queue",
        help=(
            "scheduling mode: 'queue' streams small tasks to idle workers "
            "(robust to early-stopped accounts), 'static' pins one "
            "contiguous shard per worker (default: queue)"
        ),
    )
    attack_parser.add_argument(
        "--task-size",
        type=int,
        default=None,
        help="accounts per queue task (default: auto, ~8 tasks per worker)",
    )
    attack_parser.add_argument(
        "--pepper",
        default=None,
        help=(
            "hex-encoded server pepper, if the attacker stole the server "
            "config too (default: file-only theft — a peppered store then "
            "fails closed and nothing cracks)"
        ),
    )

    serve_parser = sub.add_parser(
        "serve", help="serve a store over TCP (asyncio JSONL protocol)"
    )
    serve_parser.add_argument("uri", help="backend URI (run 'store create' first)")
    serve_parser.add_argument("--host", default="127.0.0.1", help="bind host")
    serve_parser.add_argument(
        "--port", type=int, default=7411, help="bind port (default: 7411)"
    )
    serve_parser.add_argument(
        "--max-batch", type=int, default=256,
        help="flush when this many attempts are pending (default: 256)",
    )
    serve_parser.add_argument(
        "--flush-interval", type=float, default=0.0,
        help="flush deadline in seconds; 0 = next event-loop pass (default)",
    )
    serve_parser.add_argument(
        "--defense",
        default=None,
        help=(
            "override the store's persisted defense spec for this serving "
            "run (same syntax as 'store create --defense')"
        ),
    )

    cluster_parser = sub.add_parser(
        "cluster",
        help="serve a shards: store as one worker process per shard",
    )
    cluster_parser.add_argument(
        "uri",
        help="shards: URI over durable children (run 'store create' first)",
    )
    cluster_parser.add_argument("--host", default="127.0.0.1", help="bind host")
    cluster_parser.add_argument(
        "--port", type=int, default=7411, help="router port (default: 7411)"
    )
    cluster_parser.add_argument(
        "--max-batch", type=int, default=256,
        help="per-worker flush size (default: 256)",
    )
    cluster_parser.add_argument(
        "--flush-interval", type=float, default=0.0,
        help="per-worker flush deadline in seconds (default: 0)",
    )
    cluster_parser.add_argument(
        "--max-pipeline", type=int, default=128,
        help="in-flight requests allowed per connection (default: 128)",
    )
    cluster_parser.add_argument(
        "--max-request-bytes", type=int, default=64 * 1024,
        help="request line size limit in bytes (default: 65536)",
    )

    flood_parser = sub.add_parser(
        "flood", help="flood a self-hosted server and report throughput/latency"
    )
    flood_parser.add_argument(
        "uri", help="backend URI (enrolled on the fly when empty)"
    )
    flood_parser.add_argument(
        "--users", type=int, default=25, help="accounts to enroll (default: 25)"
    )
    flood_parser.add_argument(
        "--attempts", type=int, default=2000,
        help="total login attempts (default: 2000)",
    )
    flood_parser.add_argument(
        "--clients", type=int, default=16,
        help="concurrent TCP client connections (default: 16)",
    )
    flood_parser.add_argument(
        "--connections", type=int, default=None,
        help="alias for --clients that wins when both are given",
    )
    flood_parser.add_argument(
        "--pipeline-depth", type=int, default=1,
        help=(
            "login requests each client keeps in flight per write burst "
            "(default: 1 = strict request/response)"
        ),
    )
    flood_parser.add_argument(
        "--cluster",
        action="store_true",
        help=(
            "self-host a shard-per-process ServingCluster instead of a "
            "single in-process server (requires a shards: URI over "
            "durable children)"
        ),
    )
    flood_parser.add_argument(
        "--wrong-fraction", type=float, default=0.25,
        help="fraction of attacker (wrong-password) attempts (default: 0.25)",
    )
    flood_parser.add_argument(
        "--seed", type=int, default=2008, help="stream seed (default: 2008)"
    )
    flood_parser.add_argument(
        "--scheme",
        choices=["centered", "robust", "static"],
        default="centered",
        help="scheme when enrolling a fresh backend (default: centered)",
    )
    flood_parser.add_argument(
        "--trace",
        action="store_true",
        help=(
            "record per-flush span trees on the self-hosted server and "
            "print the queue-wait vs. kernel-time breakdown"
        ),
    )

    metrics_parser = sub.add_parser(
        "metrics",
        help="scrape a running server's metrics registry over the wire",
    )
    metrics_parser.add_argument(
        "--host", default="127.0.0.1", help="server host (default: 127.0.0.1)"
    )
    metrics_parser.add_argument(
        "--port", type=int, default=7411, help="server port (default: 7411)"
    )
    metrics_format = metrics_parser.add_mutually_exclusive_group()
    metrics_format.add_argument(
        "--json",
        action="store_true",
        help="emit the raw registry snapshot as JSON (the default)",
    )
    metrics_format.add_argument(
        "--prom",
        action="store_true",
        help="emit Prometheus text exposition instead of JSON",
    )

    matrix_parser = sub.add_parser(
        "defense-matrix",
        help="sweep defense cells against online and stolen-file attacks",
    )
    matrix_parser.add_argument(
        "--scheme",
        choices=["centered", "robust", "static"],
        default="centered",
        help="discretization scheme (default: centered)",
    )
    matrix_parser.add_argument(
        "--tolerance", type=int, default=9, help="pixel tolerance r (default: 9)"
    )
    matrix_parser.add_argument(
        "--online-budget", type=int, default=30,
        help="online guesses per account (default: 30)",
    )
    matrix_parser.add_argument(
        "--offline-budget", type=int, default=200,
        help="offline grind guesses per record (default: 200)",
    )
    matrix_parser.add_argument(
        "--captcha-solve-seconds", type=float, default=None,
        help=(
            "price the attacker pays a CAPTCHA-solving service per "
            "challenge (default: unsolvable — challenges wall the attack)"
        ),
    )
    matrix_parser.add_argument(
        "--json", action="store_true", help="emit the machine-readable report"
    )
    matrix_parser.add_argument(
        "--out", default=None, help="also write the JSON report to this path"
    )
    return parser


def _cmd_list() -> int:
    from repro.experiments.runner import EXPERIMENTS

    for experiment_id in EXPERIMENTS:
        print(experiment_id)
    return 0


def _cmd_run(experiment_ids: Sequence[str]) -> int:
    from repro.experiments.runner import EXPERIMENTS, run_all

    if list(experiment_ids) == ["all"]:
        selected = list(EXPERIMENTS)
    else:
        unknown = [e for e in experiment_ids if e not in EXPERIMENTS]
        if unknown:
            print(
                f"unknown experiments: {', '.join(unknown)} "
                f"(try 'repro list')",
                file=sys.stderr,
            )
            return 2
        selected = list(experiment_ids)
    results = run_all(selected)
    for index, result in enumerate(results.values()):
        if index:
            print()
        print(result.rendered())
    return 0


def _cmd_study(out_path: str, seed: int) -> int:
    from repro.study.fieldstudy import PAPER_STUDY, generate_field_study

    dataset = generate_field_study(PAPER_STUDY.with_seed(seed))
    dataset.save(out_path)
    summary = dataset.summary()
    print(
        f"wrote {out_path}: {summary['participants']} participants, "
        f"{summary['passwords']} passwords, {summary['logins']} logins"
    )
    return 0


def _cmd_report(out_dir: str, experiment_ids: Sequence[str]) -> int:
    from repro.experiments.export import write_reports
    from repro.experiments.runner import EXPERIMENTS, run_all

    selected = list(experiment_ids) if experiment_ids else list(EXPERIMENTS)
    unknown = [e for e in selected if e not in EXPERIMENTS]
    if unknown:
        print(
            f"unknown experiments: {', '.join(unknown)} (try 'repro list')",
            file=sys.stderr,
        )
        return 2
    results = run_all(selected)
    summary = write_reports(results.values(), out_dir)
    print(f"wrote {len(results)} experiment artifacts; summary: {summary}")
    return 0


def _cmd_demo() -> int:
    from repro.core.centered import CenteredDiscretization
    from repro.core.robust import RobustDiscretization
    from repro.geometry.point import Point
    from repro.passwords.passpoints import PassPointsSystem
    from repro.study.image import cars_image

    image = cars_image()
    points = [
        Point.xy(42, 61),
        Point.xy(130, 88),
        Point.xy(227, 154),
        Point.xy(318, 222),
        Point.xy(401, 290),
    ]
    retry_ok = [Point.xy(int(p.x) + 4, int(p.y) - 3) for p in points]
    retry_bad = [Point.xy(int(p.x) + 14, int(p.y)) for p in points]
    for scheme in (
        CenteredDiscretization.for_pixel_tolerance(2, 9),
        RobustDiscretization.for_pixel_tolerance(2, 9),
    ):
        system = PassPointsSystem(image=image, scheme=scheme)
        stored = system.enroll(points)
        print(
            f"{scheme.name}: cell {scheme.cell_size}px | "
            f"exact login: {system.verify(stored, points)} | "
            f"4px-off login: {system.verify(stored, retry_ok)} | "
            f"14px-off login: {system.verify(stored, retry_bad)}"
        )
    return 0


def _scheme_named(name: str, tolerance: int):
    """Construct a 2-D scheme from its CLI name and pixel tolerance."""
    from repro.passwords.store import scheme_named

    return scheme_named(name, tolerance)


def _store_for_backend(backend, defense_spec: Optional[str] = None):
    """Reconstruct the deployed store from a backend's persisted meta.

    Thin CLI wrapper over :func:`repro.passwords.store.deployed_store`
    (shared with the cluster workers, which resume shards the same way).
    """
    from repro.passwords.store import deployed_store

    return deployed_store(backend, defense_spec=defense_spec)


def _cmd_store_create(
    uri: str,
    scheme_name: str,
    tolerance: int,
    image_name: str,
    users: int,
    defense_spec: Optional[str] = None,
) -> int:
    from repro.errors import ReproError
    from repro.experiments.common import default_dataset
    from repro.passwords.defense import DefenseConfig
    from repro.passwords.passpoints import PassPointsSystem
    from repro.passwords.storage import backend_from_uri
    from repro.passwords.store import PasswordStore
    from repro.study.image import cars_image, pool_image

    try:
        defense = DefenseConfig.from_spec(defense_spec or "")
        backend = backend_from_uri(uri)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    # A reopened backend must be resumed under the deployment it was
    # created with: records enrolled under one scheme (or one defense's
    # pepper / hash-cost) are unverifiable under another, so a mismatch
    # is refused rather than overwritten.
    existing = backend.get_meta("scheme")
    if existing is not None:
        requested = (scheme_name, str(tolerance), image_name, defense.to_spec())
        persisted = (
            existing,
            backend.get_meta("tolerance_px"),
            backend.get_meta("image"),
            backend.get_meta("defense") or "",
        )
        if requested != persisted:
            print(
                f"{backend.uri} was created with scheme={persisted[0]} "
                f"tolerance={persisted[1]} image={persisted[2]} "
                f"defense={persisted[3] or 'none'!r}; refusing to "
                f"re-create it as scheme={scheme_name} tolerance={tolerance} "
                f"image={image_name} defense={defense.to_spec() or 'none'!r}",
                file=sys.stderr,
            )
            backend.close()
            return 2
    else:
        backend.put_meta("scheme", scheme_name)
        backend.put_meta("tolerance_px", str(tolerance))
        backend.put_meta("image", image_name)
        if not defense.is_neutral:
            backend.put_meta("defense", defense.to_spec())
    image = {"cars": cars_image, "pool": pool_image}[image_name]()
    system = PassPointsSystem(image=image, scheme=_scheme_named(scheme_name, tolerance))
    store = PasswordStore(system=system, backend=backend, defense=defense)
    samples = default_dataset().passwords_on(image_name)[:users]
    to_enroll = []
    skipped = 0
    for sample in samples:
        username = f"user{sample.password_id}"
        if username in backend:
            skipped += 1
            continue
        to_enroll.append((username, list(sample.points)))
    # Bulk enrollment: every new record and initial throttle state lands
    # in one group commit (a single transaction on sqlite backends).
    enrolled = store.enroll_many(to_enroll) if to_enroll else 0
    defended = "" if defense.is_neutral else f", defense {defense.to_spec()!r}"
    print(
        f"{backend.uri}: enrolled {enrolled} new accounts under "
        f"{system.scheme.name} ({skipped} already present, "
        f"{len(backend)} total{defended})"
    )
    backend.close()
    return 0


def _cmd_store_login(uri: str, username: str, points_arg: str) -> int:
    from repro.errors import LockoutError, ReproError
    from repro.geometry.point import Point
    from repro.passwords.storage import backend_from_uri

    try:
        points = [
            Point.xy(int(x), int(y))
            for x, y in (pair.split(",") for pair in points_arg.split(";"))
        ]
    except ValueError:
        print(f"malformed --points {points_arg!r} (want 'x,y;x,y;...')", file=sys.stderr)
        return 2
    try:
        backend = backend_from_uri(uri)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        store = _store_for_backend(backend)
        ok = store.login(username, points)
    except LockoutError:
        print(f"{username}: locked")
        return 3
    except ReproError as exc:
        print(f"{username}: error: {exc}", file=sys.stderr)
        return 2
    finally:
        backend.close()
    print(f"{username}: {'accepted' if ok else 'rejected'}")
    return 0 if ok else 1


def _cmd_store_dump(uri: str) -> int:
    from repro.errors import ReproError
    from repro.passwords.storage import backend_from_uri

    try:
        backend = backend_from_uri(uri)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        print(backend.dump())
    finally:
        backend.close()
    return 0


def _cmd_store_compact(uri: str) -> int:
    from repro.errors import ReproError
    from repro.passwords.storage import JsonlBackend, backend_from_uri

    try:
        backend = backend_from_uri(uri)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not isinstance(backend, JsonlBackend):
        print(
            f"error: store compact only applies to jsonl: backends "
            f"(append-only logs), not {backend.uri}",
            file=sys.stderr,
        )
        backend.close()
        return 2
    try:
        before, after = backend.compact()
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        backend.close()
    saved = before - after
    percent = (saved / before * 100.0) if before else 0.0
    print(
        f"{backend.uri}: compacted {before:,} -> {after:,} bytes "
        f"(saved {saved:,}, {percent:.1f}%; {len(backend)} live accounts)"
    )
    return 0


def _cmd_attack(
    scheme_name: str,
    image: str,
    tolerance: int,
    workers: Optional[int],
    victims: Optional[int],
    mode: str = "queue",
    task_size: Optional[int] = None,
) -> int:
    from repro.attacks.parallel import ShardedAttackRunner
    from repro.errors import ReproError
    from repro.experiments.common import default_dataset, default_dictionary

    if victims is not None and victims < 1:
        print(f"error: --victims must be >= 1, got {victims}", file=sys.stderr)
        return 2
    try:
        scheme = _scheme_named(scheme_name, tolerance)
        passwords = default_dataset().passwords_on(image)
        if victims is not None:
            passwords = passwords[:victims]
        dictionary = default_dictionary(image)
        runner = ShardedAttackRunner(workers=workers, mode=mode, task_size=task_size)
        result = runner.run_known_identifiers(scheme, passwords, dictionary)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    used = min(runner.effective_workers, result.attacked)
    print(
        f"known-identifier attack on {image!r} under {result.scheme_name}: "
        f"{result.attacked} passwords, {result.dictionary_bits:.1f}-bit "
        f"dictionary, {used} worker(s)"
    )
    print(
        f"cracked {result.cracked}/{result.attacked} "
        f"({result.cracked_fraction:.1%}), mean matching entries "
        f"{result.mean_matching_entries:.1f}, modeled hashes "
        f"{result.hash_operations_modeled:,}"
    )
    return 0


def _cmd_store_attack(
    uri: str,
    budget: int,
    workers: Optional[int],
    pepper_hex: Optional[str] = None,
    mode: str = "queue",
    task_size: Optional[int] = None,
) -> int:
    from repro.attacks.parallel import ShardedAttackRunner
    from repro.errors import ReproError
    from repro.experiments.common import default_dictionary
    from repro.passwords.storage import backend_from_uri

    try:
        pepper = bytes.fromhex(pepper_hex) if pepper_hex else b""
    except ValueError:
        print(f"error: --pepper {pepper_hex!r} is not valid hex", file=sys.stderr)
        return 2
    try:
        backend = backend_from_uri(uri)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        store = _store_for_backend(backend)
        payload = backend.dump()  # the theft: any backend, same artifact
        dictionary = default_dictionary(backend.get_meta("image"))
        runner = ShardedAttackRunner(workers=workers, mode=mode, task_size=task_size)
        result = runner.run_stolen_file(
            store.system.scheme, payload, dictionary, guess_budget=budget, pepper=pepper
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        backend.close()
    print(
        f"stolen file from {uri}: {result.attacked} records, "
        f"budget {budget} guesses/record under {result.scheme_name}, "
        f"{min(runner.effective_workers, result.attacked)} worker(s)"
    )
    for outcome in result.outcomes:
        status = "CRACKED" if outcome.cracked else "survived"
        print(f"  {outcome.username:<12} {status:>9} ({outcome.guesses_hashed} hashes)")
    print(
        f"cracked {result.cracked}/{result.attacked} "
        f"({result.cracked_fraction:.0%}) with {result.hash_operations} hashes"
    )
    if result.cracked == 0 and store.defense.pepper and not pepper:
        print(
            "note: store records are peppered; without --pepper the grind "
            "fails closed"
        )
    return 0


def _cmd_serve(
    uri: str,
    host: str,
    port: int,
    max_batch: int,
    flush_interval: float,
    defense_spec: Optional[str] = None,
) -> int:
    import asyncio

    from repro.errors import ReproError
    from repro.passwords.storage import backend_from_uri
    from repro.serving import LoginServer

    try:
        backend = backend_from_uri(uri)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        store = _store_for_backend(backend, defense_spec=defense_spec)
        server = LoginServer(
            store,
            host=host,
            port=port,
            max_batch=max_batch,
            flush_interval=flush_interval,
        )

        async def run() -> None:
            await server.start()
            bound_host, bound_port = server.address
            print(
                f"serving {backend.uri} on {bound_host}:{bound_port} "
                f"(JSONL ops: login/enroll/stats/metrics/trace/ping; "
                f"defense: {store.defense.describe()}; Ctrl-C to stop)",
                flush=True,
            )
            await server.serve_forever()

        asyncio.run(run())
    except KeyboardInterrupt:
        print("shutting down")
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        backend.close()
    return 0


def _cmd_cluster(
    uri: str,
    host: str,
    port: int,
    max_batch: int,
    flush_interval: float,
    max_pipeline: int,
    max_request_bytes: int,
) -> int:
    import asyncio

    from repro.errors import ReproError
    from repro.passwords.storage import backend_from_uri
    from repro.serving.cluster import ServingCluster

    try:
        backend = backend_from_uri(uri)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        shard_uris = _cluster_shard_uris(backend)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        backend.close()
        return 2
    backend.close()
    cluster = ServingCluster(
        shard_uris=shard_uris,
        host=host,
        port=port,
        max_batch=max_batch,
        flush_interval=flush_interval,
        max_pipeline=max_pipeline,
        max_request_bytes=max_request_bytes,
    )

    async def run() -> None:
        await cluster.start()
        bound_host, bound_port = cluster.address
        print(
            f"cluster: {cluster.worker_count} shard worker(s) behind "
            f"router {bound_host}:{bound_port} (JSONL ops: "
            f"login/enroll/stats/metrics/trace/ping; Ctrl-C to stop)",
            flush=True,
        )
        try:
            while True:
                await asyncio.sleep(3600)
        finally:
            await cluster.aclose()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("shutting down")
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


def _cluster_shard_uris(backend) -> "list[str]":
    """Validate that *backend* can back a worker-per-shard cluster.

    Returns the child shard URIs.  Raises :class:`~repro.errors.ClusterError`
    when the backend is not sharded, when any shard is process-private
    (``memory:``), or when the store was never deployed — each worker
    process re-opens its shard by URI, so all three are fatal before a
    single child is spawned.
    """
    from repro.errors import ClusterError
    from repro.passwords.storage import ShardedBackend

    if not isinstance(backend, ShardedBackend):
        raise ClusterError(
            f"cluster serving needs a shards: URI, got {backend.uri!r}"
        )
    shard_uris = [shard.uri for shard in backend.shards]
    private = [u for u in shard_uris if u.partition(":")[0] == "memory"]
    if private:
        raise ClusterError(
            "cluster workers re-open shards by URI, so every shard must be "
            f"durable; {len(private)} memory: shard(s) found"
        )
    if backend.get_meta("scheme") is None:
        raise ClusterError(
            f"{backend.uri} has no deployment metadata; "
            "run 'repro store create' first"
        )
    return shard_uris


def _cmd_metrics(host: str, port: int, as_prom: bool) -> int:
    import json
    import socket

    fmt = "prom" if as_prom else "snapshot"
    request = json.dumps(
        {"op": "metrics", "id": 1, "format": fmt}, separators=(",", ":")
    ).encode() + b"\n"
    try:
        with socket.create_connection((host, port), timeout=10.0) as sock:
            sock.sendall(request)
            handle = sock.makefile("rb")
            line = handle.readline()
    except OSError as exc:
        print(f"error: cannot scrape {host}:{port}: {exc}", file=sys.stderr)
        return 2
    if not line:
        print(f"error: {host}:{port} closed the connection", file=sys.stderr)
        return 2
    try:
        response = json.loads(line)
    except json.JSONDecodeError as exc:
        print(f"error: malformed response: {exc}", file=sys.stderr)
        return 2
    if not response.get("ok"):
        print(
            f"error: server refused metrics: {response.get('message')}",
            file=sys.stderr,
        )
        return 2
    if as_prom:
        sys.stdout.write(response.get("prom", ""))
    else:
        print(json.dumps(response.get("metrics", {}), indent=2, sort_keys=True))
    return 0


def _cmd_flood(
    uri: str,
    users: int,
    attempts: int,
    clients: int,
    wrong_fraction: float,
    seed: int,
    scheme_name: str,
    trace: bool = False,
    pipeline_depth: int = 1,
    cluster: bool = False,
) -> int:
    import asyncio

    from repro.errors import ReproError
    from repro.experiments.common import default_dataset
    from repro.obs import MetricsRegistry, SpanTracer
    from repro.passwords.storage import backend_from_uri
    from repro.serving import LoginServer, flood_server, mixed_stream

    try:
        backend = backend_from_uri(uri)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        # A fresh backend is deployed on the spot (the flood's point is
        # serving-layer load, not enrollment ceremony); an existing one is
        # resumed under its persisted deployment, exactly like store create.
        if backend.get_meta("scheme") is None:
            backend.put_meta("scheme", scheme_name)
            backend.put_meta("tolerance_px", "9")
            backend.put_meta("image", "cars")
        store = _store_for_backend(backend)
        samples = default_dataset().passwords_on(backend.get_meta("image"))[:users]
        accounts = {}
        for sample in samples:
            username = f"user{sample.password_id}"
            if username not in backend:
                store.create_account(username, list(sample.points))
            accounts[username] = list(sample.points)
        image = store.system.image
        stream = mixed_stream(
            accounts,
            attempts,
            wrong_fraction=wrong_fraction,
            seed=seed,
            bounds=(image.width, image.height),
        )

        if cluster:
            return _flood_cluster(
                backend, stream, attempts, clients, pipeline_depth,
                len(accounts), trace,
            )

        # --trace runs against a dedicated registry/tracer so the span
        # trees and serving series describe this flood alone, not
        # whatever else the process published before.
        tracer = SpanTracer(capacity=1024) if trace else None
        registry = MetricsRegistry() if trace else None

        async def run():
            server = await LoginServer(
                store, port=0, registry=registry, tracer=tracer
            ).start()
            bound_host, bound_port = server.address
            print(
                f"flooding {backend.uri} via {bound_host}:{bound_port} — "
                f"{attempts:,} attempts, {clients} clients, "
                f"{len(accounts)} accounts, pipeline depth {pipeline_depth}"
            )
            report = await flood_server(
                bound_host, bound_port, stream, clients,
                pipeline_depth=pipeline_depth,
            )
            stats = server.service.stats
            await server.aclose()
            return report, stats

        report, stats = asyncio.run(run())
        if tracer is not None:
            report.trace = tracer.recent()
        locked = sum(1 for username in accounts if store.is_locked(username))
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        backend.close()
    print(report.summary())
    print(
        f"batching: {stats.flushes} flushes, mean batch {stats.mean_batch:.1f}, "
        f"largest {stats.largest_batch}; {locked} account(s) locked out"
    )
    if trace:
        print(report.trace_summary())
    return 0


def _flood_cluster(
    backend,
    stream,
    attempts: int,
    clients: int,
    pipeline_depth: int,
    account_count: int,
    trace: bool,
) -> int:
    """Flood a self-hosted :class:`ServingCluster` built over *backend*.

    The caller has already enrolled accounts through the parent process;
    this helper closes the parent's backend handle (each worker re-opens
    its shard by URI), spawns the cluster, drives the prepared attempt
    *stream* through the router, and prints the flood report plus the
    cross-worker merged batching stats.
    """
    import asyncio
    import json

    from repro.serving import flood_server
    from repro.serving.cluster import ServingCluster

    shard_uris = _cluster_shard_uris(backend)
    backend.close()
    if trace:
        print(
            "note: --trace is per-process; the cluster flood reports "
            "merged stats instead of span trees",
            file=sys.stderr,
        )

    async def run():
        serving = ServingCluster(shard_uris=shard_uris)
        try:
            await serving.start()
            host, port = serving.address
            print(
                f"flooding {len(shard_uris)} shard(s) via cluster router "
                f"{host}:{port} — {attempts:,} attempts, {clients} clients, "
                f"{account_count} accounts, pipeline depth {pipeline_depth}"
            )
            report = await flood_server(
                host, port, stream, clients, pipeline_depth=pipeline_depth
            )
            reader, writer = await asyncio.open_connection(host, port)
            try:
                writer.write(b'{"op":"stats","id":0}\n')
                await writer.drain()
                merged = json.loads(await reader.readline())
            finally:
                writer.close()
                await writer.wait_closed()
        finally:
            await serving.aclose()
        return report, merged

    report, merged = asyncio.run(run())
    print(report.summary())
    print(
        f"cluster batching: {merged['workers']} workers, "
        f"{merged['flushes']} flushes, mean batch {merged['mean_batch']}, "
        f"largest {merged['largest_batch']}; "
        f"{merged['throttled']} attempt(s) throttled"
    )
    return 0


def _cmd_defense_matrix(
    scheme_name: Optional[str],
    tolerance: int,
    online_budget: int,
    offline_budget: int,
    captcha_solve_seconds: Optional[float],
    as_json: bool,
    out_path: Optional[str],
) -> int:
    import json

    from repro.attacks.economics import defense_matrix_sweep, render_defense_matrix
    from repro.errors import ReproError

    try:
        scheme = (
            _scheme_named(scheme_name, tolerance) if scheme_name is not None else None
        )
        report = defense_matrix_sweep(
            scheme=scheme,
            online_guess_budget=online_budget,
            offline_guess_budget=offline_budget,
            captcha_solve_seconds=captcha_solve_seconds,
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if as_json:
        print(json.dumps(report, indent=2))
    else:
        print(render_defense_matrix(report))
    if out_path is not None:
        with open(out_path, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
        print(f"report written to {out_path}", file=sys.stderr)
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args.experiments)
    if args.command == "study":
        return _cmd_study(args.out, args.seed)
    if args.command == "report":
        return _cmd_report(args.out, args.experiments)
    if args.command == "demo":
        return _cmd_demo()
    if args.command == "attack":
        return _cmd_attack(
            args.scheme,
            args.image,
            args.tolerance,
            args.workers,
            args.victims,
            args.mode,
            args.task_size,
        )
    if args.command == "store":
        if args.store_command == "create":
            return _cmd_store_create(
                args.uri,
                args.scheme,
                args.tolerance,
                args.image,
                args.users,
                args.defense,
            )
        if args.store_command == "login":
            return _cmd_store_login(args.uri, args.user, args.points)
        if args.store_command == "dump":
            return _cmd_store_dump(args.uri)
        if args.store_command == "compact":
            return _cmd_store_compact(args.uri)
        if args.store_command == "attack":
            return _cmd_store_attack(
                args.uri,
                args.budget,
                args.workers,
                args.pepper,
                args.mode,
                args.task_size,
            )
    if args.command == "serve":
        return _cmd_serve(
            args.uri,
            args.host,
            args.port,
            args.max_batch,
            args.flush_interval,
            args.defense,
        )
    if args.command == "defense-matrix":
        return _cmd_defense_matrix(
            args.scheme,
            args.tolerance,
            args.online_budget,
            args.offline_budget,
            args.captcha_solve_seconds,
            args.json,
            args.out,
        )
    if args.command == "cluster":
        return _cmd_cluster(
            args.uri,
            args.host,
            args.port,
            args.max_batch,
            args.flush_interval,
            args.max_pipeline,
            args.max_request_bytes,
        )
    if args.command == "flood":
        return _cmd_flood(
            args.uri,
            args.users,
            args.attempts,
            args.connections if args.connections is not None else args.clients,
            args.wrong_fraction,
            args.seed,
            args.scheme,
            args.trace,
            args.pipeline_depth,
            args.cluster,
        )
    if args.command == "metrics":
        return _cmd_metrics(args.host, args.port, args.prom)
    parser.error(f"unhandled command {args.command!r}")
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
