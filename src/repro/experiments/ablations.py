"""Ablations: design choices the paper leaves open, quantified.

The paper's §4 notes that Robust Discretization's original description
leaves implementation decisions unspecified (grid selection, rounding), and
its §6 points at open questions.  Each ablation here isolates one such
choice on the same simulated substrate the main experiments use:

* :func:`grid_selection` — FIRST_SAFE vs MOST_CENTERED vs RANDOM_SAFE grid
  choice for Robust (the paper implemented the "optimal" most-centered);
* :func:`click_accuracy` — how the Table-1/2 error rates respond to user
  accuracy (the re-entry σ multiplier);
* :func:`dictionary_size` — Figure-8 crack rates vs number of lab seed
  passwords (5 → 30);
* :func:`shoulder_surfing` — §2.1's observation-accuracy claim: at equal r,
  Centered's smaller cells demand more accurate observation;
* :func:`hotspot_sources` — lab-seeded vs field-harvested vs salience-peak
  dictionaries (human-seeded vs automated attacks, §2.1);
* :func:`pccp_flattening` — PCCP's viewport persuasion vs plain hotspot
  selection, measured as dictionary-attack resistance (§2.1's "more recent
  systems … reduce the likelihood that users select … hotspots");
* :func:`edge_problem` — the naive static grid's worst-case margins (§2's
  motivation for discretization schemes at all);
* :func:`ndim_advantage` — §3.2's n-D extension: Centered-vs-Robust
  password-space advantage as dimensionality grows.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.analysis.false_rates import equal_r_report, equal_size_report
from repro.analysis.stats import percent
from repro.attacks.dictionary import HumanSeededDictionary
from repro.attacks.hotspot import (
    dictionary_from_hotspots,
    harvest_hotspots,
    hotspot_seed_points,
    salience_hotspots,
)
from repro.attacks.offline import offline_attack_known_identifiers
from repro.attacks.shoulder import shoulder_surf_attack
from repro.core.centered import CenteredDiscretization
from repro.core.robust import GridSelection, RobustDiscretization
from repro.core.static import StaticGridScheme
from repro.experiments.common import (
    ExperimentResult,
    default_dataset,
    default_dictionary,
)
from repro.study.clickmodel import ClickErrorModel
from repro.study.dataset import PasswordSample, StudyDataset
from repro.study.fieldstudy import PAPER_STUDY, generate_field_study
from repro.study.image import cars_image
from repro.study.labstudy import LabStudyConfig, generate_lab_study
from repro.passwords.pccp import ViewportSelectionModel

__all__ = [
    "grid_selection",
    "click_accuracy",
    "dictionary_size",
    "shoulder_surfing",
    "hotspot_sources",
    "pccp_flattening",
    "edge_problem",
    "ndim_advantage",
]


def grid_selection(
    dataset: Optional[StudyDataset] = None, grid_size: int = 13
) -> ExperimentResult:
    """Robust false rates under the three grid-selection policies."""
    data = dataset if dataset is not None else default_dataset()
    rng = np.random.default_rng(99)
    rows = []
    for policy in GridSelection:
        scheme = RobustDiscretization.for_grid_size(
            2,
            grid_size,
            selection=policy,
            rng=rng.random if policy is GridSelection.RANDOM_SAFE else None,
        )
        report = equal_size_report(data, grid_size, scheme=scheme)
        rows.append(
            (
                policy.value,
                percent(report.false_accepts, report.attempts),
                percent(report.false_rejects, report.attempts),
                percent(report.accepted, report.attempts),
            )
        )
    return ExperimentResult(
        experiment_id="ablation_grid_selection",
        title=(
            f"Ablation: Robust grid-selection policy ({grid_size}x{grid_size} "
            "squares, equal-size framing)"
        ),
        headers=("policy", "FA %", "FR %", "accept %"),
        rows=tuple(rows),
        comparisons=(),
        notes=(
            "The paper implemented MOST_CENTERED as the optimal "
            "reconstruction; FIRST_SAFE and RANDOM_SAFE are strictly worse "
            "on false rejects, i.e. the paper's reconstruction was "
            "charitable to Robust Discretization."
        ),
    )


def click_accuracy(
    multipliers: Sequence[float] = (0.5, 1.0, 1.5, 2.0),
    grid_size: int = 13,
    r: int = 6,
) -> ExperimentResult:
    """Sensitivity of false rates to user click accuracy.

    Scales both error-model σ components by each multiplier and regenerates
    a (smaller) field study; reports Table-1-framing FR and Table-2-framing
    FA at the paper's middle parameters.
    """
    rows = []
    for multiplier in multipliers:
        base = PAPER_STUDY.error_model
        scaled = ClickErrorModel(
            sigma=base.sigma * multiplier,
            tail_rate=base.tail_rate,
            tail_sigma=base.tail_sigma * multiplier,
            gross_rate=base.gross_rate,
            gross_sigma=base.gross_sigma,
            skill_spread=base.skill_spread,
        )
        config = replace(
            PAPER_STUDY,
            error_model=scaled,
            participants=60,
            passwords_total=150,
            logins_total=1000,
            seed=411,
        )
        data = generate_field_study(config)
        t1 = equal_size_report(data, grid_size)
        t2 = equal_r_report(data, r)
        rows.append(
            (
                multiplier,
                percent(t1.false_rejects, t1.attempts),
                percent(t1.false_accepts, t1.attempts),
                percent(t2.false_accepts, t2.attempts),
                percent(t1.accepted, t1.attempts),
            )
        )
    return ExperimentResult(
        experiment_id="ablation_click_accuracy",
        title=(
            f"Ablation: click-accuracy sensitivity ({grid_size}x{grid_size} "
            f"equal-size FR/FA; r={r} equal-r FA)"
        ),
        headers=(
            "sigma multiplier",
            "T1 FR %",
            "T1 FA %",
            "T2 FA %",
            "accept %",
        ),
        rows=tuple(rows),
        comparisons=(),
        notes=(
            "More accurate users (smaller multiplier) hit fewer Robust "
            "edges, shrinking all error rates — the usability gap is worst "
            "exactly for ordinary, slightly imprecise users."
        ),
    )


def dictionary_size(
    dataset: Optional[StudyDataset] = None,
    lab_counts: Sequence[int] = (5, 10, 20, 30),
    r: int = 9,
    image_name: str = "cars",
) -> ExperimentResult:
    """Figure-8 crack rates as the attacker's seed sample grows."""
    data = dataset if dataset is not None else default_dataset()
    passwords = data.passwords_on(image_name)
    image = cars_image() if image_name == "cars" else data.images[image_name]
    rows = []
    for count in lab_counts:
        lab = generate_lab_study(image, LabStudyConfig(passwords=count))
        dictionary = HumanSeededDictionary.from_lab_passwords(lab)
        centered = offline_attack_known_identifiers(
            CenteredDiscretization.for_pixel_tolerance(2, r),
            passwords,
            dictionary,
            count_entries=False,
        )
        robust = offline_attack_known_identifiers(
            RobustDiscretization(2, r),
            passwords,
            dictionary,
            count_entries=False,
        )
        rows.append(
            (
                count,
                round(dictionary.bits, 1),
                round(100 * centered.cracked_fraction, 1),
                round(100 * robust.cracked_fraction, 1),
            )
        )
    return ExperimentResult(
        experiment_id="ablation_dictionary_size",
        title=f"Ablation: seed-sample size vs crack rate (equal r={r}, {image_name})",
        headers=(
            "lab passwords",
            "dictionary bits",
            "centered cracked %",
            "robust cracked %",
        ),
        rows=tuple(rows),
        comparisons=(),
        notes=(
            "Even small seed samples crack many Robust passwords; Centered "
            "degrades the attacker's returns at every sample size."
        ),
    )


def shoulder_surfing(
    dataset: Optional[StudyDataset] = None,
    sigmas: Sequence[float] = (1.0, 3.0, 6.0, 12.0),
    r: int = 9,
    image_name: str = "cars",
    sample_passwords: int = 60,
) -> ExperimentResult:
    """§2.1: observation accuracy needed to replay a shoulder-surfed login."""
    data = dataset if dataset is not None else default_dataset()
    image = data.images[image_name]
    passwords = data.passwords_on(image_name)[:sample_passwords]
    rows = []
    for sigma in sigmas:
        centered = shoulder_surf_attack(
            CenteredDiscretization.for_pixel_tolerance(2, r),
            image,
            passwords,
            observation_sigma=sigma,
        )
        robust = shoulder_surf_attack(
            RobustDiscretization(2, r),
            image,
            passwords,
            observation_sigma=sigma,
        )
        rows.append(
            (
                sigma,
                round(100 * centered.success_rate, 1),
                round(100 * robust.success_rate, 1),
            )
        )
    return ExperimentResult(
        experiment_id="ablation_shoulder_surfing",
        title=f"Ablation: shoulder-surfing replay success vs observation σ (equal r={r})",
        headers=("observation sigma (px)", "centered success %", "robust success %"),
        rows=tuple(rows),
        comparisons=(),
        notes=(
            "Paper §2.1: smaller grid-squares force more accurate "
            "observations — Centered's 2r cells lose replayability faster "
            "than Robust's 6r cells as observation noise grows."
        ),
    )


def hotspot_sources(
    dataset: Optional[StudyDataset] = None,
    r: int = 9,
    image_name: str = "cars",
) -> ExperimentResult:
    """Lab-seeded vs harvested vs automated (salience) dictionaries."""
    data = dataset if dataset is not None else default_dataset()
    passwords = data.passwords_on(image_name)
    image = data.images[image_name]

    lab_dictionary = default_dictionary(image_name)
    # Harvest from a disjoint half of the field data (an insider sample).
    harvest_sample = passwords[: len(passwords) // 2]
    targets = passwords[len(passwords) // 2 :]
    harvested = harvest_hotspots(harvest_sample, radius=9)
    harvested_dictionary = dictionary_from_hotspots(
        hotspot_seed_points(harvested, minimum_support=2), image_name
    )
    salience_dictionary = dictionary_from_hotspots(
        salience_hotspots(image, top_n=30), image_name
    )

    rows = []
    for label, dictionary in (
        ("lab-seeded (30 pwds)", lab_dictionary),
        ("field-harvested hotspots", harvested_dictionary),
        ("automated salience peaks", salience_dictionary),
    ):
        centered = offline_attack_known_identifiers(
            CenteredDiscretization.for_pixel_tolerance(2, r),
            targets,
            dictionary,
            count_entries=False,
        )
        robust = offline_attack_known_identifiers(
            RobustDiscretization(2, r),
            targets,
            dictionary,
            count_entries=False,
        )
        rows.append(
            (
                label,
                len(dictionary.seed_points),
                round(100 * centered.cracked_fraction, 1),
                round(100 * robust.cracked_fraction, 1),
            )
        )
    return ExperimentResult(
        experiment_id="ablation_hotspot_sources",
        title=f"Ablation: dictionary seed source (equal r={r}, {image_name})",
        headers=("seed source", "seed points", "centered cracked %", "robust cracked %"),
        rows=tuple(rows),
        comparisons=(),
        notes=(
            "Targets are the half of the field passwords not used for "
            "harvesting. Automated seeds model an idealized image-processing "
            "attacker (Dirik et al.)."
        ),
    )


def _sample_passwords_with_model(
    image, selection, count: int, seed: int
) -> Tuple[PasswordSample, ...]:
    """Sample passwords using either selection model (helper)."""
    rng = np.random.default_rng(seed)
    samples = []
    for index in range(count):
        if isinstance(selection, ViewportSelectionModel):
            points = tuple(selection.sample_click(image, rng) for _ in range(5))
        else:
            points = selection.sample_password(image, rng, clicks=5)
        samples.append(
            PasswordSample(
                password_id=index,
                user_id=index,
                image_name=image.name,
                points=points,
            )
        )
    return tuple(samples)


def pccp_flattening(
    r: int = 9, image_name: str = "cars", population: int = 150
) -> ExperimentResult:
    """PCCP's viewport persuasion as dictionary-attack resistance.

    Generates two same-size populations on the same image — one clicking
    hotspots freely (PassPoints/CCP behaviour), one under PCCP viewports —
    and attacks each with a dictionary seeded from 30 same-behaviour
    passwords.
    """
    image = cars_image()
    free_selection = PAPER_STUDY.selection_model
    viewport = ViewportSelectionModel()

    rows = []
    for label, selection, seed in (
        ("free selection (PassPoints/CCP)", free_selection, 551),
        ("viewport selection (PCCP)", viewport, 552),
    ):
        targets = _sample_passwords_with_model(image, selection, population, seed)
        seeds = _sample_passwords_with_model(image, selection, 30, seed + 1000)
        dictionary = HumanSeededDictionary.from_lab_passwords(seeds)
        centered = offline_attack_known_identifiers(
            CenteredDiscretization.for_pixel_tolerance(2, r),
            targets,
            dictionary,
            count_entries=False,
        )
        robust = offline_attack_known_identifiers(
            RobustDiscretization(2, r),
            targets,
            dictionary,
            count_entries=False,
        )
        rows.append(
            (
                label,
                round(100 * centered.cracked_fraction, 1),
                round(100 * robust.cracked_fraction, 1),
            )
        )
    return ExperimentResult(
        experiment_id="ablation_pccp",
        title=f"Ablation: PCCP viewport flattening vs free selection (equal r={r})",
        headers=("creation behaviour", "centered cracked %", "robust cracked %"),
        rows=tuple(rows),
        comparisons=(),
        notes=(
            "Viewport-constrained selection (PCCP) spreads click-points, "
            "collapsing human-seeded dictionary effectiveness against "
            "Centered Discretization — the §2.1 claim about newer systems, "
            "quantified. Against Robust's 6r cells (54 px at r=9, as wide "
            "as the 75-px viewport itself) persuasion barely helps: "
            "discretization and persuasion compose, and PCCP + Centered is "
            "the strong pairing."
        ),
    )


def edge_problem(
    dataset: Optional[StudyDataset] = None,
    cell_size: int = 19,
) -> ExperimentResult:
    """§2: the naive static grid's edge problem, measured.

    Enrolls the field passwords on a fixed grid and reports the worst-case
    margin distribution plus attempt-level accept/false-reject rates against
    the same centered ground truth as Table 1.
    """
    from fractions import Fraction

    from repro.analysis.false_rates import measure_false_rates

    data = dataset if dataset is not None else default_dataset()
    scheme = StaticGridScheme(2, cell_size)
    report = measure_false_rates(scheme, data, Fraction(cell_size, 2))
    margins = []
    for password in data.passwords:
        for point in password.points:
            margins.append(float(scheme.worst_case_margin(point)))
    margins.sort()
    count = len(margins)
    rows = (
        ("attempts", report.attempts),
        ("accept %", percent(report.accepted, report.attempts)),
        ("false-reject %", percent(report.false_rejects, report.attempts)),
        ("false-accept %", percent(report.false_accepts, report.attempts)),
        ("min click margin (px)", margins[0]),
        ("median click margin (px)", margins[count // 2]),
        (
            "clicks with margin < 2 px (%)",
            percent(sum(1 for m in margins if m < 2), count),
        ),
    )
    return ExperimentResult(
        experiment_id="ablation_edge_problem",
        title=f"Ablation: static-grid edge problem ({cell_size}x{cell_size} cells)",
        headers=("quantity", "value"),
        rows=rows,
        comparisons=(),
        notes=(
            "A fixed grid gives some clicks essentially zero tolerance in "
            "one direction (margins near 0), producing false rejects no "
            "tolerance parameter can fix — the paper's motivation for "
            "Robust and Centered Discretization."
        ),
    )


def ndim_advantage(dims: Sequence[int] = (1, 2, 3, 4)) -> ExperimentResult:
    """§3.2: password-space advantage of Centered in n dimensions.

    Robust needs dim+1 grids of side 2(dim+1)r; Centered keeps 2r.  The
    per-click advantage is dim·log2(dim+1) bits — 1 bit in 1-D, ~3.17 in
    2-D, 6 bits in 3-D — so the n-D graphical schemes the paper sketches
    benefit even more than images do.
    """
    import math

    rows = []
    for dim in dims:
        centered = CenteredDiscretization(dim, 5)
        robust = RobustDiscretization(dim, 5)
        advantage = dim * math.log2(dim + 1)
        rows.append(
            (
                dim,
                float(centered.cell_size),
                float(robust.cell_size),
                robust.grid_count,
                round(advantage, 2),
            )
        )
    return ExperimentResult(
        experiment_id="ablation_ndim",
        title="Ablation: n-dimensional extension (r = 5)",
        headers=(
            "dim",
            "centered cell side",
            "robust cell side",
            "robust grids",
            "centered advantage (bits/click)",
        ),
        rows=tuple(rows),
        comparisons=(),
        notes=(
            "Both schemes generalize coordinate-wise; Robust needs dim+1 "
            "offset grids (Birget et al.), so its cells grow linearly with "
            "dimension while Centered's stay 2r."
        ),
    )
