"""Experiment: §5.2 — information revealed by clear grid identifiers.

Two measurements:

* identifier storage/entropy per click-point — Robust stores one of 3 grids
  (2 bits as stored), Centered stores (2r)² offsets (8 bits at r = 8), as
  the paper states;
* the visual-prioritization leak: with the identifier known, how early does
  a salience-ranked scan of grid cells reach the user's true cell?  The
  paper conjectures knowing Centered's exact cell-center pixel adds little
  over knowing Robust's central region; the mean rank fractions here test
  that conjecture.
"""

from __future__ import annotations

from typing import Optional

from repro.attacks.leakage import cell_salience_ranking, identifier_bits
from repro.core.centered import CenteredDiscretization
from repro.core.robust import RobustDiscretization
from repro.experiments.common import ExperimentResult, default_dataset
from repro.experiments.paper_values import IN_TEXT
from repro.study.dataset import StudyDataset

__all__ = ["run"]


def run(
    dataset: Optional[StudyDataset] = None,
    r: int = 8,
    image_name: str = "cars",
    sample_passwords: int = 40,
) -> ExperimentResult:
    """Measure identifier bits and the prioritization leak.

    ``r = 8`` matches the paper's §5.2 example (2r = 16 → 8 bits).  The
    rank experiment enrolls the first click-point of ``sample_passwords``
    field passwords under both schemes at equal r and salience-ranks cells.
    """
    data = dataset if dataset is not None else default_dataset()
    centered = CenteredDiscretization(2, r)
    robust = RobustDiscretization(2, r)
    centered_bits = identifier_bits(centered)
    robust_bits = identifier_bits(robust)

    image = data.images[image_name]
    passwords = data.passwords_on(image_name)[:sample_passwords]
    centered_ranks = []
    robust_ranks = []
    for password in passwords:
        point = password.points[0]
        centered_ranks.append(
            cell_salience_ranking(centered, image, point, center_window=1)
        )
        robust_ranks.append(
            cell_salience_ranking(robust, image, point, center_window=r)
        )
    centered_mean = sum(l.rank_fraction for l in centered_ranks) / len(centered_ranks)
    robust_mean = sum(l.rank_fraction for l in robust_ranks) / len(robust_ranks)

    rows = (
        (
            "centered",
            f"{2 * r}x{2 * r}",
            round(centered_bits["entropy_bits"], 2),
            centered_bits["storage_bits"],
            round(centered_mean, 3),
        ),
        (
            "robust",
            f"{6 * r}x{6 * r}",
            round(robust_bits["entropy_bits"], 2),
            robust_bits["storage_bits"],
            round(robust_mean, 3),
        ),
    )
    comparisons = (
        {
            "label": f"centered identifier bits (r={r})",
            "paper": IN_TEXT["centered_identifier_bits_r8"],
            "measured": round(centered_bits["entropy_bits"], 2),
        },
        {
            "label": "robust identifier storage bits",
            "paper": IN_TEXT["robust_identifier_storage_bits"],
            "measured": robust_bits["storage_bits"],
        },
        {
            "label": "leak advantage: robust mean rank frac - centered",
            "paper": None,
            "measured": round(robust_mean - centered_mean, 3),
        },
    )
    return ExperimentResult(
        experiment_id="leakage",
        title=f"§5.2: grid-identifier information leakage (r={r}, {image_name})",
        headers=(
            "scheme",
            "cell size",
            "identifier entropy bits",
            "storage bits",
            "mean true-cell rank fraction",
        ),
        rows=rows,
        comparisons=comparisons,
        notes=(
            "Rank fraction near 0 = the salience scan finds the true cell "
            "immediately (strong leak); near 0.5 = no better than random. "
            "The paper's conjecture is that the two schemes leak similarly; "
            "a small advantage delta confirms it."
        ),
    )
