"""Experiment: Table 2 — false rates at equal guaranteed tolerance r.

Paper, Table 2: "False accept and reject rates for Robust Discretization
when r is the same as for Centered Discretization."  Robust then needs
6r×6r squares; everything within the (half-open) centered r-box is
guaranteed accepted, so false rejects are structurally zero and only false
accepts remain, driven by the 6r cell reaching up to 5r from the original
point.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.analysis.false_rates import equal_r_report
from repro.analysis.stats import percent
from repro.core.centered import CenteredDiscretization
from repro.experiments.common import ExperimentResult, default_dataset
from repro.experiments.paper_values import TABLE2
from repro.study.dataset import StudyDataset

__all__ = ["run"]

#: Tolerance values of the paper's Table 2.
PAPER_R_VALUES: Tuple[int, ...] = (4, 6, 9)


def run(
    dataset: Optional[StudyDataset] = None,
    r_values: Sequence[int] = PAPER_R_VALUES,
    image_name: Optional[str] = None,
) -> ExperimentResult:
    """Reproduce Table 2 on the (simulated) field study."""
    data = dataset if dataset is not None else default_dataset()
    rows = []
    comparisons = []
    for r in r_values:
        robust = equal_r_report(data, r, image_name=image_name)
        centered = equal_r_report(
            data,
            r,
            scheme=CenteredDiscretization(2, r),
            image_name=image_name,
        )
        robust_fa = percent(robust.false_accepts, robust.attempts)
        robust_fr = percent(robust.false_rejects, robust.attempts)
        rows.append(
            (
                r,
                f"{6 * r}x{6 * r}",
                robust_fa,
                robust_fr,
                percent(centered.false_accepts, centered.attempts),
                percent(centered.false_rejects, centered.attempts),
            )
        )
        if r in TABLE2:
            _, paper_fa, paper_fr = TABLE2[r]
            comparisons.append(
                {
                    "label": f"r={r} robust false-accept %",
                    "paper": paper_fa,
                    "measured": robust_fa,
                }
            )
            comparisons.append(
                {
                    "label": f"r={r} robust false-reject %",
                    "paper": paper_fr,
                    "measured": robust_fr,
                }
            )
    return ExperimentResult(
        experiment_id="table2",
        title=(
            "Table 2: false accept/reject rates, equal guaranteed r "
            f"({data.summary()['logins']} login attempts"
            + (f", image={image_name}" if image_name else ", both images")
            + ")"
        ),
        headers=(
            "r (px)",
            "robust grid",
            "robust FA %",
            "robust FR %",
            "centered FA %",
            "centered FR %",
        ),
        rows=tuple(rows),
        comparisons=tuple(comparisons),
        notes=(
            "Robust FR is zero by construction in this framing (the paper "
            "makes the same observation); the measurement confirms the "
            "theorem on every attempt. FA falls as r grows because fewer "
            "re-entry clicks escape the centered r-box at all."
        ),
    )
