"""Experiment: Table 3 — theoretical full password space (exact).

Pure arithmetic — squares per grid and bits for 5-click passwords across
two image sizes and six grid sizes, plus the paper's in-text password-space
claims (§2.2.2) and the text-password comparator.  Unlike the empirical
tables, every number here must match the paper exactly.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.analysis.password_space import (
    PAPER_GRID_SIZES,
    PAPER_IMAGE_SIZES,
    equal_r_comparison,
    space_table,
    text_password_bits,
)
from repro.experiments.common import ExperimentResult
from repro.experiments.paper_values import IN_TEXT, TABLE3

__all__ = ["run"]


def run(
    image_sizes: Sequence[Tuple[int, int]] = PAPER_IMAGE_SIZES,
    grid_sizes: Sequence[int] = PAPER_GRID_SIZES,
    clicks: int = 5,
) -> ExperimentResult:
    """Reproduce Table 3 and the §2.2.2 in-text claims."""
    rows = []
    comparisons = []
    for row in space_table(image_sizes, grid_sizes, clicks):
        rows.append(
            (
                f"{row.width}x{row.height}",
                f"{row.grid_size}x{row.grid_size}",
                row.centered_r,
                f"{float(row.robust_r):.2f}",
                row.squares,
                round(row.bits, 1),
            )
        )
        key = (row.width, row.height, row.grid_size)
        if key in TABLE3:
            _, _, paper_squares, paper_bits = TABLE3[key]
            comparisons.append(
                {
                    "label": f"{row.width}x{row.height} @ {row.grid_size} squares",
                    "paper": paper_squares,
                    "measured": row.squares,
                }
            )
            comparisons.append(
                {
                    "label": f"{row.width}x{row.height} @ {row.grid_size} bits",
                    "paper": paper_bits,
                    "measured": round(row.bits, 1),
                }
            )
    # In-text claims.
    comparisons.append(
        {
            "label": "text password bits (8 chars, 95 symbols)",
            "paper": IN_TEXT["text_password_bits"],
            "measured": round(text_password_bits(), 1),
        }
    )
    equal_r4 = equal_r_comparison(640, 480, 4, clicks)
    comparisons.append(
        {
            "label": "640x480 equal r=4: centered bits",
            "paper": IN_TEXT["bits_640x480_equal_r4_centered"],
            "measured": round(equal_r4["centered_bits"], 1),
        }
    )
    comparisons.append(
        {
            "label": "640x480 equal r=4: robust bits",
            "paper": IN_TEXT["bits_640x480_equal_r4_robust"],
            "measured": round(equal_r4["robust_bits"], 1),
        }
    )
    return ExperimentResult(
        experiment_id="table3",
        title=f"Table 3: theoretical full password space ({clicks}-click passwords)",
        headers=(
            "image",
            "grid size",
            "centered r (px)",
            "robust r (px)",
            "squares/grid",
            "bits",
        ),
        rows=tuple(rows),
        comparisons=tuple(comparisons),
        notes="Closed-form; every value must (and does) match the paper exactly.",
    )
