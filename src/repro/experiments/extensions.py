"""Extension experiments: analytic cross-checks and §3.2's 3-D system.

Beyond the paper's own artifacts:

* :func:`analytic_acceptance` — the semi-analytic acceptance probabilities
  of :mod:`repro.analysis.acceptance` against Monte-Carlo measurements on
  freshly simulated logins, validating the whole measurement pipeline
  (agreement within Monte-Carlo noise);
* :func:`space3d` — the 3-D room system the paper sketches in §3.2:
  password-space accounting (Centered's advantage is 6 bits/click in 3-D)
  and a working enroll/verify round-trip at scale;
* :func:`attack_economics` — the §5.1 work-factor arguments as wall-clock
  cracking budgets for a GPU-class attacker, with and without identifiers
  and with iterated hashing.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.analysis.acceptance import scheme_accept_probability
from repro.attacks.economics import offline_cracking_cost
from repro.core.centered import CenteredDiscretization
from repro.core.robust import RobustDiscretization
from repro.core.static import StaticGridScheme
from repro.crypto.hashing import Hasher
from repro.experiments.common import ExperimentResult, default_dictionary
from repro.geometry.point import Point
from repro.passwords.space3d import ClickSpace3D, Space3DSystem, space3d_password_bits

__all__ = [
    "analytic_acceptance",
    "space3d",
    "attack_economics",
    "divide_and_conquer",
    "usability_profile",
]


def analytic_acceptance(
    sigma: float = 3.0,
    r: int = 4,
    trials: int = 4000,
    seed: int = 314,
) -> ExperimentResult:
    """Analytic vs Monte-Carlo acceptance at one (σ, r) configuration.

    The Monte-Carlo side enrolls uniform-random points on a 451×331 image
    and replays them with pure Gaussian error (no tails, matching the
    analytic model's assumption), 5 clicks per attempt.
    """
    rng = np.random.default_rng(seed)
    schemes = (
        CenteredDiscretization.for_pixel_tolerance(2, r),
        RobustDiscretization(2, r),
        StaticGridScheme(2, 2 * r + 1),
    )
    rows = []
    comparisons = []
    for scheme in schemes:
        analytic = scheme_accept_probability(scheme, sigma, clicks=5)
        hits = 0
        for _ in range(trials):
            accepted = True
            for _ in range(5):
                x = float(rng.uniform(30, 420))
                y = float(rng.uniform(30, 300))
                enrollment = scheme.enroll(Point.xy(x, y))
                candidate = Point.xy(
                    x + float(rng.normal(0, sigma)),
                    y + float(rng.normal(0, sigma)),
                )
                if not scheme.accepts(enrollment, candidate):
                    accepted = False
                    break
            if accepted:
                hits += 1
        simulated = hits / trials
        rows.append(
            (
                scheme.name,
                float(scheme.cell_size),
                f"{analytic:.4f}",
                f"{simulated:.4f}",
                f"{abs(analytic - simulated):.4f}",
            )
        )
        comparisons.append(
            {
                "label": f"{scheme.name}: |analytic - simulated|",
                "paper": None,
                "measured": round(abs(analytic - simulated), 4),
            }
        )
    return ExperimentResult(
        experiment_id="extension_analytic_acceptance",
        title=(
            f"Extension: analytic vs Monte-Carlo acceptance "
            f"(sigma={sigma}, r={r}, 5 clicks, {trials} trials)"
        ),
        headers=(
            "scheme",
            "cell size",
            "analytic P(accept)",
            "simulated P(accept)",
            "|delta|",
        ),
        rows=tuple(rows),
        comparisons=tuple(comparisons),
        notes=(
            "Two independent code paths (closed-form/quadrature vs the "
            "actual scheme implementations on sampled clicks) must agree "
            "within Monte-Carlo noise; this is a pipeline-integrity check."
        ),
    )


def space3d(
    room: Sequence[int] = (400, 300, 250),
    r_values: Sequence[int] = (4, 6, 9),
    seed: int = 2718,
) -> ExperimentResult:
    """§3.2's 3-D extension: password space and a working system.

    Compares Centered (2r cells) against Robust (8r cells — four grids in
    3-D) on a virtual room, and against the predefined-objects approach the
    existing 3-D schemes use (the paper's motivation for discretizing the
    whole space).
    """
    import math

    width, height, depth = room
    space = ClickSpace3D(
        name="room",
        width=width,
        height=height,
        depth=depth,
        objects=(
            (100.0, 80.0, 60.0, 6.0, 3.0),
            (300.0, 200.0, 120.0, 8.0, 2.0),
            (200.0, 150.0, 200.0, 5.0, 1.0),
        ),
    )
    rng = np.random.default_rng(seed)
    rows = []
    for r in r_values:
        centered_scheme = CenteredDiscretization.for_pixel_tolerance(3, r)
        robust_scheme = RobustDiscretization(3, r)
        centered_system = Space3DSystem(space=space, scheme=centered_scheme)
        # Round-trip sanity at this r: enroll/verify simulated clicks.
        points = [space.sample_click(rng) for _ in range(5)]
        stored = centered_system.enroll(points)
        ok = centered_system.verify(stored, points)
        rows.append(
            (
                r,
                round(space3d_password_bits(space, float(centered_scheme.cell_size)), 1),
                round(space3d_password_bits(space, float(robust_scheme.cell_size)), 1),
                round(3 * math.log2(4), 1),
                "ok" if ok else "FAIL",
            )
        )
    predefined_bits = 5 * math.log2(len(space.objects))
    comparisons = (
        {
            "label": "predefined-objects space (3 objects, 5 clicks) bits",
            "paper": None,
            "measured": round(predefined_bits, 1),
        },
        {
            "label": "centered advantage per click in 3-D (dim*log2(dim+1))",
            "paper": 6.0,
            "measured": round(3 * __import__("math").log2(4), 1),
        },
    )
    return ExperimentResult(
        experiment_id="extension_space3d",
        title=(
            f"Extension (§3.2): 3-D room {width}x{height}x{depth}, "
            "5-click passwords"
        ),
        headers=(
            "r (px)",
            "centered bits",
            "robust bits",
            "advantage/click",
            "enroll/verify",
        ),
        rows=tuple(rows),
        comparisons=comparisons,
        notes=(
            "Discretizing the whole room dwarfs the predefined-object "
            "password space, and Centered's edge over Robust doubles from "
            "2-D (~3.17 bits/click) to 3-D (6 bits/click): Robust needs "
            "four grids of 8r cells."
        ),
    )


def divide_and_conquer(
    r: int = 9, image_name: str = "cars", targets: int = 60
) -> ExperimentResult:
    """§3.1's rationale for one combined hash, demonstrated.

    Enrolls field passwords under the INSECURE per-point-hash layout and
    attacks them with the divide-and-conquer strategy — actually hashing,
    no closed form — then compares trial counts against what the combined
    hash forces.
    """
    from repro.attacks.divide_conquer import (
        attack_cost_comparison,
        divide_and_conquer_attack,
        enroll_per_point,
    )
    from repro.experiments.common import default_dataset

    dataset = default_dataset()
    dictionary = default_dictionary(image_name)
    passwords = dataset.passwords_on(image_name)[:targets]
    scheme = CenteredDiscretization.for_pixel_tolerance(2, r)

    cracked = 0
    trials = 0
    for password in passwords:
        stored = enroll_per_point(scheme, password.points)
        result = divide_and_conquer_attack(
            scheme, stored, dictionary.seed_points
        )
        trials += result.hash_trials
        if result.cracked:
            cracked += 1
    costs = attack_cost_comparison(len(dictionary.seed_points), 5)
    rows = (
        ("passwords attacked", targets),
        ("cracked via per-point hashes", cracked),
        ("hash trials per password (per-point)", costs["per_point_trials"]),
        ("hash trials per password (combined)", f"{costs['combined_trials']:.3g}"),
        ("divide-and-conquer speedup", f"{costs['speedup']:.3g}"),
        ("speedup in bits", round(costs["speedup_bits"], 1)),
    )
    comparisons = (
        {
            "label": "speedup bits the combined hash denies the attacker",
            "paper": None,
            "measured": round(costs["speedup_bits"], 1),
        },
    )
    return ExperimentResult(
        experiment_id="extension_divide_conquer",
        title=(
            "Extension (§3.1): divide-and-conquer against per-point hashes "
            f"(centered r={r}, {image_name})"
        ),
        headers=("quantity", "value"),
        rows=rows,
        comparisons=comparisons,
        notes=(
            "Hashing each click-point separately lets an attacker match "
            "positions independently (k·n real hash trials here) instead of "
            "enumerating k-tuples (n^k); the paper's single concatenated "
            "hash is what makes the 2^36 dictionary cost real."
        ),
    )


def usability_profile(image_name: str | None = None) -> ExperimentResult:
    """§4 companion: success rates and click-accuracy profile.

    The descriptive statistics behind the paper's usability discussion:
    per-scheme login success with Wilson intervals, first-attempt success,
    and the click-error distribution that drives Tables 1–2.
    """
    from repro.analysis.usability import (
        click_accuracy,
        first_attempt_success,
        login_success,
    )
    from repro.experiments.common import default_dataset

    dataset = default_dataset()
    rows = []
    for scheme in (
        CenteredDiscretization.for_pixel_tolerance(2, 9),
        RobustDiscretization(2, 9),
        StaticGridScheme(2, 19),
    ):
        overall = login_success(scheme, dataset, image_name=image_name)
        first = first_attempt_success(scheme, dataset, image_name=image_name)
        low, high = overall.interval
        rows.append(
            (
                scheme.name,
                round(100 * overall.rate, 1),
                f"[{100 * low:.1f}, {100 * high:.1f}]",
                round(100 * first.rate, 1),
            )
        )
    accuracy = click_accuracy(dataset, image_name=image_name)
    comparisons = (
        {
            "label": "fraction of clicks within 4 px (paper: 'very accurate')",
            "paper": None,
            "measured": round(accuracy.fraction_within(4), 3),
        },
        {
            "label": "median click error (px, Chebyshev)",
            "paper": None,
            "measured": accuracy.percentiles[0][1],
        },
    )
    return ExperimentResult(
        experiment_id="extension_usability",
        title=(
            "Extension (§4): success rates and click accuracy "
            + (f"({image_name})" if image_name else "(both images)")
        ),
        headers=("scheme", "success %", "95% CI", "first-attempt %"),
        rows=tuple(rows),
        comparisons=comparisons,
        notes=(
            "Robust's higher raw success at equal r is not a usability win "
            "— the surplus accepts are exactly Table 2's false accepts "
            "(clicks the user should expect rejected). The static grid's "
            "collapse shows why discretization schemes exist."
        ),
    )


def attack_economics(
    r: int = 9, image_name: str = "cars", hash_rate: float = 1e9
) -> ExperimentResult:
    """§5.1 work factors as wall-clock budgets for a 1 GH/s attacker."""
    dictionary = default_dictionary(image_name)
    rows = []
    for label, scheme, identifiers_known, iterations in (
        ("robust, ids known", RobustDiscretization(2, r), True, 1),
        ("centered, ids known", CenteredDiscretization.for_pixel_tolerance(2, r), True, 1),
        ("robust, ids hidden", RobustDiscretization(2, r), False, 1),
        ("centered, ids hidden", CenteredDiscretization.for_pixel_tolerance(2, r), False, 1),
        ("centered, ids known, h^1000", CenteredDiscretization.for_pixel_tolerance(2, r), True, 1000),
    ):
        estimate = offline_cracking_cost(
            scheme,
            dictionary,
            Hasher(iterations=iterations),
            identifiers_known=identifiers_known,
            hash_rate=hash_rate,
        )
        rows.append(
            (
                label,
                f"{estimate.hashes_per_password:.3g}",
                f"{estimate.hours_per_password:.3g}",
            )
        )
    return ExperimentResult(
        experiment_id="extension_attack_economics",
        title=(
            f"Extension (§5.1): offline cracking budgets, 2^36 dictionary, "
            f"r={r}, {hash_rate:.0e} hashes/s"
        ),
        headers=("configuration", "hashes per password", "hours per password"),
        rows=tuple(rows),
        comparisons=(),
        notes=(
            "Known identifiers make both schemes cheap to enumerate; hiding "
            "them multiplies Robust's cost by only 3^5 but Centered's by "
            "(2r)^10, and iterated hashing multiplies everything — the "
            "paper's layered-hardening story in wall-clock terms."
        ),
    )
