"""Run every experiment and collect results.

``run_all()`` executes the full reproduction — every paper table and
figure plus the ablations — against the shared simulated dataset and
returns the results keyed by experiment id.  The CLI and the EXPERIMENTS.md
generator are thin wrappers over this.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence

from repro.experiments import ablations, extensions, figure7, figure8, illustrations
from repro.experiments import leakage_exp, table1, table2, table3
from repro.experiments.common import ExperimentResult

__all__ = ["EXPERIMENTS", "run_experiment", "run_all", "render_all"]

#: Registry of every runnable experiment (id -> zero-argument callable).
EXPERIMENTS: Dict[str, Callable[[], ExperimentResult]] = {
    "table1": table1.run,
    "table2": table2.run,
    "table3": table3.run,
    "figure7": figure7.run,
    "figure8": figure8.run,
    "figure1": illustrations.figure1,
    "figure2": illustrations.figure2,
    "figures_3_4": illustrations.figures_3_4,
    "figures_5_6": illustrations.figures_5_6,
    "leakage": leakage_exp.run,
    "ablation_grid_selection": ablations.grid_selection,
    "ablation_click_accuracy": ablations.click_accuracy,
    "ablation_dictionary_size": ablations.dictionary_size,
    "ablation_shoulder_surfing": ablations.shoulder_surfing,
    "ablation_hotspot_sources": ablations.hotspot_sources,
    "ablation_pccp": ablations.pccp_flattening,
    "ablation_edge_problem": ablations.edge_problem,
    "ablation_ndim": ablations.ndim_advantage,
    "extension_analytic_acceptance": extensions.analytic_acceptance,
    "extension_space3d": extensions.space3d,
    "extension_attack_economics": extensions.attack_economics,
    "extension_divide_conquer": extensions.divide_and_conquer,
    "extension_usability": extensions.usability_profile,
}


def run_experiment(experiment_id: str) -> ExperimentResult:
    """Run one experiment by id; raises ``KeyError`` with the known ids."""
    try:
        runner = EXPERIMENTS[experiment_id]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {known}"
        ) from None
    return runner()


def run_all(
    only: Optional[Sequence[str]] = None,
) -> Dict[str, ExperimentResult]:
    """Run all (or the selected) experiments, in registry order."""
    ids = list(EXPERIMENTS) if only is None else list(only)
    return {experiment_id: run_experiment(experiment_id) for experiment_id in ids}


def render_all(results: Dict[str, ExperimentResult]) -> str:
    """Render a full text report from :func:`run_all` output."""
    sections = []
    for experiment_id, result in results.items():
        sections.append("=" * 72)
        sections.append(result.rendered())
    return "\n".join(sections)
