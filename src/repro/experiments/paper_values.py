"""Published values from the paper, for side-by-side comparison.

Every number the paper's evaluation reports, transcribed from the text and
tables.  Experiment drivers compare their measurements against these; the
benchmarks print both columns.  Values measured on the authors' human
dataset (Tables 1–2, Figures 7–8) are *targets for shape, not identity* —
our substrate is a simulated population (see DESIGN.md §4).  Table 3 and
the in-text arithmetic are exact and must match exactly.
"""

from __future__ import annotations

from typing import Dict, Tuple

__all__ = [
    "TABLE1",
    "TABLE2",
    "TABLE3",
    "FIGURE8_QUOTES",
    "IN_TEXT",
    "STUDY_SHAPE",
]

#: Table 1 — Robust Discretization false rates at equal grid-square size.
#: grid size -> (robust r in px, false-accept %, false-reject %).
TABLE1: Dict[int, Tuple[float, float, float]] = {
    9: (1.50, 3.5, 21.8),
    13: (2.17, 1.7, 21.1),
    19: (3.17, 0.5, 10.0),
}

#: Table 2 — Robust Discretization false rates at equal guaranteed r.
#: r -> (robust grid size, false-accept %, false-reject %).
TABLE2: Dict[int, Tuple[int, float, float]] = {
    4: (24, 32.1, 0.0),
    6: (36, 14.1, 0.0),
    9: (54, 4.3, 0.0),
}

#: Table 3 — theoretical password space for 5-click passwords.
#: (image width, image height, grid size) ->
#:   (centered r px, robust r px, squares per grid, bits).
TABLE3: Dict[Tuple[int, int, int], Tuple[float, float, int, float]] = {
    (451, 331, 9): (4.0, 1.50, 1887, 54.4),
    (451, 331, 13): (6.0, 2.17, 910, 49.1),
    (451, 331, 19): (9.0, 3.17, 432, 43.8),
    (451, 331, 24): (11.5, 4.0, 266, 40.3),
    (451, 331, 36): (17.5, 6.0, 130, 35.1),
    (451, 331, 54): (26.5, 9.0, 63, 29.9),
    (640, 480, 9): (4.0, 1.50, 3888, 59.6),
    (640, 480, 13): (6.0, 2.17, 1850, 54.3),
    (640, 480, 19): (9.0, 3.17, 884, 48.9),
    (640, 480, 24): (11.5, 4.0, 540, 45.4),
    (640, 480, 36): (17.5, 6.0, 252, 39.9),
    (640, 480, 54): (26.5, 9.0, 108, 33.8),
}

#: Figure 8 — the crack percentages the paper quotes in text.
#: (image, r, scheme) -> % of passwords cracked.
FIGURE8_QUOTES: Dict[Tuple[str, int, str], float] = {
    ("cars", 6, "centered"): 14.8,
    ("cars", 6, "robust"): 45.1,
    ("cars", 9, "centered"): 26.0,
    ("cars", 9, "robust"): 79.0,
}

#: Claims made in prose (section -> value).
IN_TEXT: Dict[str, float] = {
    # §2.2.2: 640x480 @ 36x36 squares.
    "squares_640x480_36": 252,
    "bits_640x480_36": 39.9,
    # §2.2.2: 640x480 @ 13x13 squares (centered-tolerance framing).
    "bits_640x480_13": 54.3,
    # §2.2.2: random 8-char text password over 95 symbols.
    "text_password_bits": 52.5,
    # §5.1: 30 lab passwords -> ≈2^36-entry dictionary.
    "dictionary_bits": 36.0,
    # §5.2: robust grid identifier storage.
    "robust_identifier_storage_bits": 2,
    # §5.2: centered identifier bits for r = 8 (2r = 16 -> log2 256).
    "centered_identifier_bits_r8": 8.0,
    # §3.2: iterated hashing h^1000 ≈ 10 bits.
    "iterated_hash_bits_1000": 10.0,
    # §5.1 in-text example at equal r = 4 on 640x480.
    "bits_640x480_equal_r4_centered": 59.6,
    "bits_640x480_equal_r4_robust": 45.4,
}

#: The field-study dataset shape (§4) and lab seed size (§5.1).
STUDY_SHAPE: Dict[str, int] = {
    "participants": 191,
    "passwords": 481,
    "logins": 3339,
    "image_width": 451,
    "image_height": 331,
    "lab_passwords_per_image": 30,
    "clicks_per_password": 5,
}
