"""Experiment: Table 1 — false rates at equal grid-square size.

Paper, Table 1: "False accept and reject rates for Robust Discretization
when grid-squares for both schemes are of equal size."  With s×s squares
the centered ground truth is the s×s box centered on the original point;
Robust Discretization's off-center cells produce both error kinds, Centered
Discretization produces neither (measured here, not assumed).

Workload: every login attempt of the simulated field study (defaults: 3339
attempts over 481 passwords, both images pooled, as in the paper).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.analysis.false_rates import equal_size_report
from repro.analysis.stats import percent
from repro.core.centered import CenteredDiscretization
from repro.experiments.common import ExperimentResult, default_dataset
from repro.experiments.paper_values import TABLE1
from repro.study.dataset import StudyDataset

__all__ = ["run"]

#: Grid sizes of the paper's Table 1.
PAPER_SIZES: Tuple[int, ...] = (9, 13, 19)


def run(
    dataset: Optional[StudyDataset] = None,
    grid_sizes: Sequence[int] = PAPER_SIZES,
    image_name: Optional[str] = None,
) -> ExperimentResult:
    """Reproduce Table 1 on the (simulated) field study.

    Returns rows ``(grid size, robust r, FA% robust, FR% robust,
    FA% centered, FR% centered)`` and paper-vs-measured comparisons for the
    Robust columns.
    """
    data = dataset if dataset is not None else default_dataset()
    rows = []
    comparisons = []
    for size in grid_sizes:
        robust = equal_size_report(data, size, image_name=image_name)
        centered = equal_size_report(
            data,
            size,
            scheme=CenteredDiscretization.for_grid_size(2, size),
            image_name=image_name,
        )
        robust_fa = percent(robust.false_accepts, robust.attempts)
        robust_fr = percent(robust.false_rejects, robust.attempts)
        rows.append(
            (
                f"{size}x{size}",
                f"{size / 6:.2f}",
                robust_fa,
                robust_fr,
                percent(centered.false_accepts, centered.attempts),
                percent(centered.false_rejects, centered.attempts),
            )
        )
        if size in TABLE1:
            _, paper_fa, paper_fr = TABLE1[size]
            comparisons.append(
                {
                    "label": f"{size}x{size} robust false-accept %",
                    "paper": paper_fa,
                    "measured": robust_fa,
                }
            )
            comparisons.append(
                {
                    "label": f"{size}x{size} robust false-reject %",
                    "paper": paper_fr,
                    "measured": robust_fr,
                }
            )
    return ExperimentResult(
        experiment_id="table1",
        title=(
            "Table 1: false accept/reject rates, equal grid-square sizes "
            f"({data.summary()['logins']} login attempts"
            + (f", image={image_name}" if image_name else ", both images")
            + ")"
        ),
        headers=(
            "grid size",
            "robust r (px)",
            "robust FA %",
            "robust FR %",
            "centered FA %",
            "centered FR %",
        ),
        rows=tuple(rows),
        comparisons=tuple(comparisons),
        notes=(
            "Paper values were measured on the human field-study dataset; "
            "ours on the calibrated simulation. Shape targets: FR high and "
            "slowly decaying with size, FA small and decaying, centered "
            "identically zero."
        ),
    )
