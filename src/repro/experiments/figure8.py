"""Experiment: Figure 8 — offline dictionary attack at equal r.

Paper, Figure 8: "Offline dictionary attack with known grid identifiers for
Robust and Centered Discretization with a 36-bit dictionary and equal
r-values assumed."  At equal guaranteed tolerance, Robust's squares are 3×
wider per axis (6r vs 2r), so far more dictionary entries land inside —
the paper quotes: with r = 6, 14.8 % of Cars passwords cracked under
Centered vs 45.1 % under Robust; with r = 9, Robust reaches 79 % while
Centered stays at 26 %.

This is the paper's headline security result (also the abstract's 79 %-vs-
26 % claim), and the experiment this module reproduces.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.attacks.parallel import ShardedAttackRunner
from repro.core.centered import CenteredDiscretization
from repro.core.robust import RobustDiscretization
from repro.experiments.common import (
    ExperimentResult,
    default_dataset,
    default_dictionary,
)
from repro.experiments.paper_values import FIGURE8_QUOTES
from repro.study.dataset import StudyDataset

__all__ = ["run"]

#: Tolerance values swept (Table 2's set).
PAPER_R_VALUES: Tuple[int, ...] = (4, 6, 9)


def run(
    dataset: Optional[StudyDataset] = None,
    r_values: Sequence[int] = PAPER_R_VALUES,
    images: Sequence[str] = ("cars", "pool"),
    workers: int = 1,
) -> ExperimentResult:
    """Reproduce the Figure 8 series: % cracked vs r, equal r.

    Centered uses (2r+1)-px cells (pixel convention), Robust 6r-px cells —
    the same pairing as Table 2.  *workers* shards each attack across
    processes without changing a single figure (the sharded merge is
    deterministic); the default stays serial — these closed-form attacks
    sit below process-pool break-even at paper scale.
    """
    data = dataset if dataset is not None else default_dataset()
    runner = ShardedAttackRunner(workers=workers)
    rows = []
    comparisons = []
    for image_name in images:
        passwords = data.passwords_on(image_name)
        dictionary = default_dictionary(image_name)
        for r in r_values:
            centered = runner.run_known_identifiers(
                CenteredDiscretization.for_pixel_tolerance(2, r),
                passwords,
                dictionary,
                count_entries=False,
            )
            robust = runner.run_known_identifiers(
                RobustDiscretization(2, r),
                passwords,
                dictionary,
                count_entries=False,
            )
            centered_pct = round(100 * centered.cracked_fraction, 1)
            robust_pct = round(100 * robust.cracked_fraction, 1)
            rows.append((image_name, r, centered_pct, robust_pct))
            for scheme_name, measured in (
                ("centered", centered_pct),
                ("robust", robust_pct),
            ):
                key = (image_name, r, scheme_name)
                if key in FIGURE8_QUOTES:
                    comparisons.append(
                        {
                            "label": f"{image_name} r={r} {scheme_name} cracked %",
                            "paper": FIGURE8_QUOTES[key],
                            "measured": measured,
                        }
                    )
    return ExperimentResult(
        experiment_id="figure8",
        title=(
            "Figure 8: offline dictionary attack, known grid identifiers, "
            "equal r (% of passwords cracked)"
        ),
        headers=("image", "r (px)", "centered cracked %", "robust cracked %"),
        rows=tuple(rows),
        comparisons=tuple(comparisons),
        notes=(
            "Shape targets: Robust ≫ Centered at every r; the gap grows "
            "with r; Robust reaches the high-double-digit regime at r=9 on "
            "the concentrated (cars) image while Centered stays far lower "
            "(paper: 79% vs 26%). Paper values are from the human dataset; "
            "ours from the calibrated simulation."
        ),
    )
