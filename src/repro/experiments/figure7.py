"""Experiment: Figure 7 — offline dictionary attack at equal grid sizes.

Paper, Figure 7: "Offline dictionary attack with known grid identifiers for
Robust and Centered Discretization with a 36-bit dictionary and equal
grid-square sizes assumed."  With equal squares, roughly the same guesses
land inside the acceptance cells of both schemes, so the curves track each
other — the figure's point is precisely this similarity (the schemes only
separate under the equal-r framing of Figure 8).

Workload: the simulated field-study passwords per image, attacked with the
lab-seeded ≈2^36-entry dictionary (30 passwords × 5 clicks per image),
evaluated in closed form.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.attacks.parallel import ShardedAttackRunner
from repro.core.centered import CenteredDiscretization
from repro.core.robust import RobustDiscretization
from repro.experiments.common import (
    ExperimentResult,
    default_dataset,
    default_dictionary,
)
from repro.study.dataset import StudyDataset

__all__ = ["run"]

#: Grid sizes swept (superset of Table 1's; all have both-scheme variants).
PAPER_SIZES: Tuple[int, ...] = (9, 13, 19, 24, 36, 54)


def run(
    dataset: Optional[StudyDataset] = None,
    grid_sizes: Sequence[int] = PAPER_SIZES,
    images: Sequence[str] = ("cars", "pool"),
    workers: int = 1,
) -> ExperimentResult:
    """Reproduce the Figure 7 series: % cracked vs grid size, equal sizes.

    *workers* shards each attack across processes; any worker count
    produces identical figures (the sharded merge is deterministic).  The
    default stays serial: these closed-form attacks are ~tens of
    milliseconds each, below process-pool break-even — raise *workers*
    for larger-than-paper datasets.
    """
    data = dataset if dataset is not None else default_dataset()
    runner = ShardedAttackRunner(workers=workers)
    rows = []
    comparisons = []
    max_gap = 0.0
    for image_name in images:
        passwords = data.passwords_on(image_name)
        dictionary = default_dictionary(image_name)
        for size in grid_sizes:
            centered = runner.run_known_identifiers(
                CenteredDiscretization.for_grid_size(2, size),
                passwords,
                dictionary,
                count_entries=False,
            )
            robust = runner.run_known_identifiers(
                RobustDiscretization.for_grid_size(2, size),
                passwords,
                dictionary,
                count_entries=False,
            )
            centered_pct = round(100 * centered.cracked_fraction, 1)
            robust_pct = round(100 * robust.cracked_fraction, 1)
            max_gap = max(max_gap, abs(centered_pct - robust_pct))
            rows.append(
                (
                    image_name,
                    f"{size}x{size}",
                    centered_pct,
                    robust_pct,
                    round(dictionary.bits, 1),
                )
            )
    comparisons.append(
        {
            "label": "max |centered - robust| gap (pct pts; paper: 'similar')",
            "paper": None,
            "measured": max_gap,
        }
    )
    return ExperimentResult(
        experiment_id="figure7",
        title=(
            "Figure 7: offline dictionary attack, known grid identifiers, "
            "equal grid-square sizes (% of passwords cracked)"
        ),
        headers=(
            "image",
            "grid size",
            "centered cracked %",
            "robust cracked %",
            "dictionary bits",
        ),
        rows=tuple(rows),
        comparisons=tuple(comparisons),
        notes=(
            "Shape target: the two schemes perform similarly at every size "
            "(same-size squares accept roughly the same guesses) and crack "
            "rates increase with square size. The paper's figure is a bar "
            "chart without printed values; the claim it makes is the "
            "similarity, which the gap row quantifies."
        ),
    )
