"""Export experiment results to machine-readable artifacts.

The benchmarks archive human-readable reports; this module produces the
machine-readable counterparts so downstream analyses (plotting, regression
tracking across library versions) don't have to parse text tables:

* per-experiment JSON (rows, comparisons, notes, metadata),
* per-experiment CSV of the data rows,
* a combined ``summary.json`` of every paper-vs-measured comparison, the
  artifact a CI job would diff release-over-release.
"""

from __future__ import annotations

import csv
import json
import os
from typing import Dict, Iterable, Optional

from repro._version import __version__
from repro.errors import ParameterError
from repro.experiments.common import ExperimentResult

__all__ = ["result_to_json", "write_result", "write_reports"]


def result_to_json(result: ExperimentResult) -> dict:
    """JSON-serializable form of an :class:`ExperimentResult`."""

    def cell(value):
        from fractions import Fraction

        if isinstance(value, Fraction):
            return float(value)
        return value

    return {
        "experiment_id": result.experiment_id,
        "title": result.title,
        "headers": list(result.headers),
        "rows": [[cell(v) for v in row] for row in result.rows],
        "comparisons": [dict(c) for c in result.comparisons],
        "notes": result.notes,
        "library_version": __version__,
    }


def write_result(result: ExperimentResult, directory: str) -> Dict[str, str]:
    """Write one experiment's JSON and CSV files; returns the paths."""
    os.makedirs(directory, exist_ok=True)
    json_path = os.path.join(directory, f"{result.experiment_id}.json")
    csv_path = os.path.join(directory, f"{result.experiment_id}.csv")
    with open(json_path, "w", encoding="utf-8") as handle:
        json.dump(result_to_json(result), handle, indent=1)
    with open(csv_path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(result.headers)
        for row in result.rows:
            writer.writerow([str(v) for v in row])
    return {"json": json_path, "csv": csv_path}


def write_reports(
    results: Iterable[ExperimentResult],
    directory: str,
    summary_name: str = "summary.json",
) -> str:
    """Write every result plus the combined comparison summary.

    Returns the summary path.  The summary flattens every
    paper-vs-measured comparison into one list — the regression artifact.
    """
    results = list(results)
    if not results:
        raise ParameterError("no results to write")
    os.makedirs(directory, exist_ok=True)
    comparisons = []
    for result in results:
        write_result(result, directory)
        for comparison in result.comparisons:
            entry = dict(comparison)
            entry["experiment_id"] = result.experiment_id
            comparisons.append(entry)
    summary_path = os.path.join(directory, summary_name)
    with open(summary_path, "w", encoding="utf-8") as handle:
        json.dump(
            {
                "library_version": __version__,
                "experiments": [r.experiment_id for r in results],
                "comparisons": comparisons,
            },
            handle,
            indent=1,
        )
    return summary_path
