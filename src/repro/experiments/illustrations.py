"""Experiments: the paper's illustrative figures, quantified.

Figures 1–6 of the paper are diagrams, not data plots; this module
reproduces their *content* as numbers and text art:

* Figure 1 — worst-case offset between a Robust cell and the same-size
  centered-tolerance square: overlap, false-accept and false-reject areas.
* Figure 2 — 1-D Centered Discretization walkthrough, including the
  paper's §3.1 worked example (x = 13, r = 5.5).
* Figures 3–4 — the Cars/Pool stand-ins rendered as ASCII salience maps.
* Figures 5–6 — the two comparison framings (equal size vs equal r) as
  side-by-side square geometries.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Tuple

from repro.core.centered import discretize_1d, locate_1d
from repro.core.tolerance import worst_case_geometry
from repro.experiments.common import ExperimentResult
from repro.geometry.numbers import RealLike
from repro.study.image import cars_image, pool_image

__all__ = ["figure1", "figure2", "figures_3_4", "figures_5_6"]


def figure1(r: RealLike = 9) -> ExperimentResult:
    """Quantify the Figure-1 worst case for tolerance *r* (2-D)."""
    geometry = worst_case_geometry(r, dim=2)
    rows = (
        ("guaranteed tolerance r", float(geometry.r)),
        ("worst-case accepted distance r_max", float(geometry.r_max)),
        ("robust cell area (6r)^2", float(geometry.cell_volume)),
        ("same-size centered square area", float(geometry.centered_volume)),
        ("worst-case overlap area", float(geometry.overlap_volume)),
        ("false-accept area", float(geometry.false_accept_volume)),
        ("false-reject area", float(geometry.false_reject_volume)),
        ("overlap fraction (worst case)", round(geometry.overlap_fraction, 4)),
    )
    comparisons = (
        {
            "label": "r_max / r (paper: 5r worst case)",
            "paper": 5.0,
            "measured": float(geometry.r_max) / float(geometry.r),
        },
        {
            "label": "worst-case overlap fraction ((2/3)^2)",
            "paper": round((2 / 3) ** 2, 4),
            "measured": round(geometry.overlap_fraction, 4),
        },
    )
    return ExperimentResult(
        experiment_id="figure1",
        title=f"Figure 1: worst-case Robust cell vs centered tolerance (r={r})",
        headers=("quantity", "value"),
        rows=rows,
        comparisons=comparisons,
        notes=(
            "A user clicking r+1 px in the bad direction is rejected while "
            "clicks up to 5r px in the good direction are accepted."
        ),
    )


def figure2(
    x: RealLike = 13, r: RealLike = Fraction(11, 2), probes: Tuple[RealLike, ...] = (10, 7, 19)
) -> ExperimentResult:
    """The paper's §3.1 worked example as a checkable table.

    Defaults reproduce x = 13, r = 5.5 → i = 0, d = 7.5, with probe logins
    x′ = 10 (accepted), 7 (rejected: 6 away ≥ r), 19 (rejected: 6 away).
    """
    index, offset = discretize_1d(x, r)
    rows = [
        ("original x", float(x)),
        ("tolerance r", float(r)),
        ("segment index i = floor((x-r)/2r)", index),
        ("offset d = (x-r) mod 2r", float(offset)),
        ("segment", f"[{float(x) - float(r)}, {float(x) + float(r)})"),
    ]
    for probe in probes:
        located = locate_1d(probe, offset, r)
        rows.append(
            (
                f"login x'={probe} -> segment {located}",
                "accepted" if located == index else "rejected",
            )
        )
    comparisons = (
        {"label": "worked example i", "paper": 0, "measured": index},
        {"label": "worked example d", "paper": 7.5, "measured": float(offset)},
        {
            "label": "x'=10 accepted (1=yes)",
            "paper": 1,
            "measured": int(locate_1d(10, offset, r) == index),
        },
    )
    return ExperimentResult(
        experiment_id="figure2",
        title="Figure 2 / §3.1: 1-D Centered Discretization walkthrough",
        headers=("quantity", "value"),
        rows=tuple(rows),
        comparisons=comparisons,
        notes="x is exactly centered: the segment is [x-r, x+r).",
    )


def figures_3_4(columns: int = 56) -> ExperimentResult:
    """ASCII salience renderings of the Cars and Pool stand-ins."""
    cars = cars_image()
    pool = pool_image()
    rows = (
        ("cars", f"{cars.width}x{cars.height}", len(cars.hotspots), cars.background_rate),
        ("pool", f"{pool.width}x{pool.height}", len(pool.hotspots), pool.background_rate),
    )
    art = (
        f"--- cars ({cars.width}x{cars.height}) ---\n"
        + cars.render_ascii(columns)
        + f"\n--- pool ({pool.width}x{pool.height}) ---\n"
        + pool.render_ascii(columns)
    )
    return ExperimentResult(
        experiment_id="figures_3_4",
        title="Figures 3-4: synthetic stand-ins for the study images",
        headers=("image", "size", "hotspots", "background rate"),
        rows=rows,
        comparisons=(),
        notes="Salience heat-maps (denser glyph = more clickable):\n" + art,
    )


def figures_5_6(r: int = 6) -> ExperimentResult:
    """The two comparison framings, as concrete square sizes."""
    equal_size = 6 * r  # compare at robust's natural size
    rows = (
        (
            "Figure 5 framing: equal grid-square size",
            f"{equal_size}x{equal_size}",
            f"{equal_size}x{equal_size}",
            f"centered r = {equal_size / 2:g} px vs robust r = {equal_size / 6:g} px",
        ),
        (
            "Figure 6 framing: equal guaranteed r",
            f"{2 * r + 1}x{2 * r + 1}",
            f"{6 * r}x{6 * r}",
            f"both guarantee r = {r} px; robust cells 9x the area",
        ),
    )
    return ExperimentResult(
        experiment_id="figures_5_6",
        title="Figures 5-6: the equal-size and equal-r comparison framings",
        headers=("framing", "centered square", "robust square", "consequence"),
        rows=rows,
        comparisons=(),
        notes=(
            "Equal size (Fig 5): same security, worse usability for robust "
            "(small guaranteed r). Equal r (Fig 6): same usability "
            "guarantee, far smaller password space for robust."
        ),
    )
