"""Shared infrastructure for experiment drivers.

Provides the :class:`ExperimentResult` container every driver returns, and
cached access to the default simulated field study and lab dictionaries so
that the tables, figures and ablations all analyze the *same* dataset —
exactly as the paper analyzes one dataset throughout.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.analysis.tables import render_comparison, render_table
from repro.attacks.dictionary import HumanSeededDictionary
from repro.study.dataset import StudyDataset
from repro.study.fieldstudy import PAPER_STUDY, FieldStudyConfig, generate_field_study
from repro.study.image import cars_image, pool_image
from repro.study.labstudy import LabStudyConfig, generate_lab_study

__all__ = [
    "ExperimentResult",
    "default_dataset",
    "default_dictionary",
    "enrolled_store",
    "clear_caches",
]


@dataclass(frozen=True)
class ExperimentResult:
    """Uniform result object for every experiment driver.

    Attributes
    ----------
    experiment_id:
        Stable identifier ("table1", "figure8", "ablation_selection", …).
    title:
        Human-readable description, including the paper artifact it
        reproduces.
    headers / rows:
        The reproduced table or figure series as aligned-table data.
    comparisons:
        Paper-vs-measured rows (``label``/``paper``/``measured`` dicts);
        empty for experiments with no published counterpart.
    notes:
        Caveats and interpretation (e.g. "shape target, human data
        substituted by simulation").
    """

    experiment_id: str
    title: str
    headers: Tuple[str, ...]
    rows: Tuple[Tuple, ...]
    comparisons: Tuple[Dict, ...] = ()
    notes: str = ""

    def rendered(self, digits: int = 1) -> str:
        """Full text report: data table, comparisons, notes."""
        parts = [render_table(self.headers, self.rows, title=self.title, digits=digits)]
        if self.comparisons:
            parts.append("")
            parts.append(
                render_comparison(
                    list(self.comparisons),
                    title="paper vs measured",
                    digits=digits,
                )
            )
        if self.notes:
            parts.append("")
            parts.append(f"notes: {self.notes}")
        return "\n".join(parts)


@functools.lru_cache(maxsize=4)
def _dataset_for(config: FieldStudyConfig) -> StudyDataset:
    return generate_field_study(config)


def default_dataset(config: Optional[FieldStudyConfig] = None) -> StudyDataset:
    """The shared simulated field study (cached per configuration).

    All tables/figures default to the same dataset, mirroring the paper's
    single-dataset methodology.
    """
    return _dataset_for(config if config is not None else PAPER_STUDY)


@functools.lru_cache(maxsize=8)
def _dictionary_for(image_name: str, seed: int, passwords: int) -> HumanSeededDictionary:
    images = {"cars": cars_image, "pool": pool_image}
    if image_name not in images:
        raise KeyError(
            f"no canonical image {image_name!r}; known: {sorted(images)}"
        )
    lab = generate_lab_study(
        images[image_name](), LabStudyConfig(passwords=passwords, seed=seed)
    )
    return HumanSeededDictionary.from_lab_passwords(lab)


def default_dictionary(
    image_name: str, seed: int = 1387, passwords: int = 30
) -> HumanSeededDictionary:
    """The shared lab-seeded attack dictionary for a canonical image."""
    return _dictionary_for(image_name, seed, passwords)


def enrolled_store(
    scheme,
    image_name: str = "cars",
    backend_uri: str = "memory:",
    victims: Optional[int] = None,
    policy=None,
):
    """A :class:`~repro.passwords.store.PasswordStore` holding the default
    field-study population, enrolled once and resumed thereafter.

    Accounts are named ``user<password_id>`` after the dataset passwords on
    *image_name*.  Accounts already present in the backend (a reopened
    ``sqlite:``/``jsonl:`` URI) are kept as-is — enrollment cost is paid
    once per backend, and repeated attack/experiment runs share the same
    enrolled population, lockout state included.
    """
    from repro.passwords.passpoints import PassPointsSystem
    from repro.passwords.policy import LockoutPolicy
    from repro.passwords.storage import backend_from_uri
    from repro.passwords.store import PasswordStore

    images = {"cars": cars_image, "pool": pool_image}
    system = PassPointsSystem(image=images[image_name](), scheme=scheme)
    backend = backend_from_uri(backend_uri)
    store = PasswordStore(
        system=system,
        policy=policy if policy is not None else LockoutPolicy(max_failures=3),
        backend=backend,
    )
    samples = default_dataset().passwords_on(image_name)
    if victims is not None:
        samples = samples[:victims]
    for sample in samples:
        username = f"user{sample.password_id}"
        if username not in backend:
            store.create_account(username, list(sample.points))
    return store


def clear_caches() -> None:
    """Drop cached datasets/dictionaries (for tests that vary configs)."""
    _dataset_for.cache_clear()
    _dictionary_for.cache_clear()
