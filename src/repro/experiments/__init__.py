"""Experiment drivers: every table and figure of the paper, runnable.

Each driver returns an :class:`~repro.experiments.common.ExperimentResult`
with the reproduced rows/series and paper-vs-measured comparisons; the
benchmarks under ``benchmarks/`` and the CLI call these.
"""

from repro.experiments.common import (
    ExperimentResult,
    clear_caches,
    default_dataset,
    default_dictionary,
    enrolled_store,
)
from repro.experiments.export import result_to_json, write_reports, write_result
from repro.experiments.runner import EXPERIMENTS, render_all, run_all, run_experiment

__all__ = [
    "EXPERIMENTS",
    "ExperimentResult",
    "clear_caches",
    "default_dataset",
    "default_dictionary",
    "enrolled_store",
    "render_all",
    "result_to_json",
    "run_all",
    "run_experiment",
    "write_reports",
    "write_result",
]
