"""Canonical, injective byte encoding of discretized password material.

Before hashing, a discretized password — a sequence of per-point clear
*offsets* and secret *segment indices* (paper §3.1–3.2) — must be turned
into bytes.  The encoding must be **canonical** (equal values always produce
equal bytes, so a correct re-entry reproduces the stored hash) and
**injective** (distinct values never collide at the encoding layer, so the
only collisions are those of the hash function itself).

We achieve injectivity with a tagged, length-prefixed format:

* every scalar is rendered to a canonical text form and tagged with its
  type (``i`` int, ``f`` float, ``q`` rational, ``s`` string),
* every item is length-prefixed, so concatenations cannot be re-split
  ambiguously (``("ab", "c")`` ≠ ``("a", "bc")``),
* the sequence itself is prefixed with its length.

Numeric canonicalization: ints and integral Fractions encode identically
(``2 == Fraction(2, 1)``), and floats that are exactly integral encode as
ints — so ``Fraction(19, 2)`` and ``9.5`` encode identically too.  This
mirrors the mathematics: the discretization formulas do not care which
Python type carried the value.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Union

from repro.errors import ParameterError

__all__ = [
    "Encodable",
    "encode_scalar",
    "encode_scalars",
    "scalar_to_json",
    "scalar_from_json",
]

#: Scalar types accepted by the encoder.
Encodable = Union[int, float, Fraction, str]


def _canonical_number(value: Union[int, float, Fraction]) -> tuple[str, str]:
    """Return ``(tag, text)`` for a number in canonical form.

    All exactly-rational values are reduced to lowest terms; integral values
    (of any carrier type) become plain ints.
    """
    if isinstance(value, int):
        # Fast path for the overwhelmingly common case (secret indices are
        # ints); identical output to the Fraction route below.
        return "i", str(value)
    if isinstance(value, float):
        if not value == value or value in (float("inf"), float("-inf")):
            raise ParameterError(f"cannot encode non-finite float {value!r}")
        frac = Fraction(value)
    elif isinstance(value, Fraction):
        frac = value
    else:
        frac = Fraction(value)
    if frac.denominator == 1:
        return "i", str(frac.numerator)
    return "q", f"{frac.numerator}/{frac.denominator}"


def encode_scalar(value: Encodable) -> bytes:
    """Encode one scalar as tagged, length-prefixed bytes.

    >>> encode_scalar(7)
    b'i:1:7'
    >>> encode_scalar(Fraction(19, 2))
    b'q:4:19/2'
    """
    if isinstance(value, bool):
        raise ParameterError("booleans are not valid password material")
    if isinstance(value, str):
        tag, text = "s", value
    elif isinstance(value, (int, float, Fraction)):
        tag, text = _canonical_number(value)
    else:
        raise ParameterError(
            f"cannot encode value of type {type(value).__name__}: {value!r}"
        )
    payload = text.encode("utf-8")
    return f"{tag}:{len(payload)}:".encode("ascii") + payload


def encode_scalars(values: Iterable[Encodable]) -> bytes:
    """Encode a sequence of scalars injectively.

    The result is the count header followed by each scalar's encoding:
    distinct sequences always yield distinct byte strings.

    >>> encode_scalars([1, 2]) != encode_scalars([12])
    True
    """
    parts = [encode_scalar(v) for v in values]
    header = f"n:{len(parts)};".encode("ascii")
    return header + b"".join(parts)


def scalar_to_json(value: Encodable):
    """JSON-serializable form of one scalar.

    Ints, floats and strings pass through; :class:`~fractions.Fraction`
    becomes ``{"q": [numerator, denominator]}`` so exact rationals survive
    a JSON round-trip.  This is the one wire format shared by
    :class:`~repro.crypto.records.VerificationRecord`,
    :class:`~repro.passwords.system.StoredPassword` and the storage
    backends.

    >>> scalar_to_json(Fraction(19, 2))
    {'q': [19, 2]}
    >>> scalar_to_json(7)
    7
    """
    if isinstance(value, Fraction):
        return {"q": [value.numerator, value.denominator]}
    return value


def scalar_from_json(value) -> Encodable:
    """Inverse of :func:`scalar_to_json`.

    >>> scalar_from_json({"q": [19, 2]})
    Fraction(19, 2)
    """
    if isinstance(value, dict) and "q" in value:
        numerator, denominator = value["q"]
        return Fraction(int(numerator), int(denominator))
    return value
