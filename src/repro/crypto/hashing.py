"""Salted, iterated hashing of discretized password material.

The paper stores, per password, the clear *grid identifiers* (offsets) and a
single hash over the concatenation of all offsets and segment indices
(§3.1: "all segment indices and their offsets are concatenated and hashed
together as one.  This stops attackers from matching individual points, and
thus carrying out an efficient divide-and-conquer attack").  Section 3.2
adds two hardening knobs, both implemented here:

* a per-user **salt** ("a user identifier could be added to the hash ...
  essentially serving as a salt") to defeat pre-computed dictionaries, and
* **iterated hashing** ("using h^1000 effectively adds 10 bits of
  security") to raise the per-guess cost of offline attacks.
"""

from __future__ import annotations

import hashlib
import hmac
import math
from dataclasses import dataclass
from typing import Iterable

from repro.crypto.encoding import Encodable, encode_scalars
from repro.errors import ParameterError

__all__ = ["Hasher", "DEFAULT_ALGORITHM", "added_security_bits", "peppered_hex"]

#: Hash algorithm used unless overridden; any :mod:`hashlib` name works.
DEFAULT_ALGORITHM = "sha256"


def peppered_hex(algorithm: str, pepper: bytes, inner_hex: str) -> str:
    """Outer keyed hash binding a server-side *pepper* over an inner digest.

    ``H(pepper || inner_digest)`` — the stored form of a peppered record's
    digest.  The pepper stays in server configuration (it is *not* part of
    the record, unlike the salt), so a stolen password file cannot verify
    candidate guesses: the attacker can compute inner digests but not the
    stored outer ones.  See :class:`~repro.passwords.defense.DefenseConfig`.
    """
    if not isinstance(pepper, bytes):
        raise ParameterError(f"pepper must be bytes, got {type(pepper).__name__}")
    return hashlib.new(algorithm, pepper + bytes.fromhex(inner_hex)).hexdigest()


def added_security_bits(iterations: int) -> float:
    """Security added by iterated hashing, in bits: log2(iterations).

    Paper §3.2: "using h^1000 effectively adds 10 bits of security
    (1000 ≈ 2^10)".

    >>> round(added_security_bits(1000), 2)
    9.97
    """
    if iterations < 1:
        raise ParameterError(f"iterations must be >= 1, got {iterations}")
    return math.log2(iterations)


@dataclass(frozen=True, slots=True)
class Hasher:
    """A configured hash function ``h`` for password records.

    Parameters
    ----------
    algorithm:
        A :mod:`hashlib` algorithm name (default SHA-256).
    iterations:
        Number of hash applications (``h^iterations``); 1 means plain
        hashing.  Each round hashes the previous digest, so the work factor
        scales linearly.
    salt:
        Clear-text salt mixed into the first round, typically a user
        identifier (paper §3.2).  Stored alongside the record.

    >>> Hasher().hash_scalars([0, 7.5]) == Hasher().hash_scalars([0, 7.5])
    True
    >>> Hasher(salt=b"alice") == Hasher(salt=b"bob")
    False
    """

    algorithm: str = DEFAULT_ALGORITHM
    iterations: int = 1
    salt: bytes = b""

    def __post_init__(self) -> None:
        if self.iterations < 1:
            raise ParameterError(
                f"iterations must be >= 1, got {self.iterations}"
            )
        try:
            hashlib.new(self.algorithm)
        except (ValueError, TypeError) as exc:
            raise ParameterError(
                f"unknown hash algorithm {self.algorithm!r}"
            ) from exc
        if not isinstance(self.salt, bytes):
            raise ParameterError(
                f"salt must be bytes, got {type(self.salt).__name__}"
            )

    # -- core --------------------------------------------------------------

    def digest(self, data: bytes) -> bytes:
        """Iterated, salted digest of raw bytes.

        Round 1 hashes ``salt || data``; each following round hashes the
        previous digest.  The salt is bound into every password hash without
        requiring the verifier to store anything beyond (salt, digest).
        """
        if not isinstance(data, bytes):
            raise ParameterError(f"data must be bytes, got {type(data).__name__}")
        current = hashlib.new(self.algorithm, self.salt + data).digest()
        for _ in range(self.iterations - 1):
            current = hashlib.new(self.algorithm, current).digest()
        return current

    def hash_scalars(self, values: Iterable[Encodable]) -> str:
        """Hex digest of a scalar sequence via the canonical encoding.

        This is the library's ``h(d₁, i₁, …, d₅, i₅)`` from the paper: the
        values are canonically encoded (see :mod:`repro.crypto.encoding`)
        and digested.
        """
        return self.digest(encode_scalars(values)).hex()

    def verify_scalars(self, values: Iterable[Encodable], expected_hex: str) -> bool:
        """Constant-time comparison of ``hash_scalars(values)`` to a digest."""
        actual = self.hash_scalars(values)
        return hmac.compare_digest(actual, expected_hex)

    # -- metadata ----------------------------------------------------------

    @property
    def added_bits(self) -> float:
        """Bits of security added by the iteration count (log2)."""
        return added_security_bits(self.iterations)

    def with_salt(self, salt: bytes) -> "Hasher":
        """A copy of this hasher with a different salt."""
        return Hasher(self.algorithm, self.iterations, salt)

    def to_json(self) -> dict:
        """JSON-serializable parameters (salt hex-encoded)."""
        return {
            "algorithm": self.algorithm,
            "iterations": self.iterations,
            "salt": self.salt.hex(),
        }

    @classmethod
    def from_json(cls, data: dict) -> "Hasher":
        """Inverse of :meth:`to_json`."""
        return cls(
            algorithm=data["algorithm"],
            iterations=int(data["iterations"]),
            salt=bytes.fromhex(data["salt"]),
        )
