"""Crypto substrate: canonical encoding, salted iterated hashing, records.

Implements the storage side of the paper: grid identifiers in the clear,
one salted (optionally iterated) hash over the concatenated offsets and
segment indices of all click-points.
"""

from repro.crypto.encoding import Encodable, encode_scalar, encode_scalars
from repro.crypto.hashing import DEFAULT_ALGORITHM, Hasher, added_security_bits
from repro.crypto.records import VerificationRecord, combine_material, make_record

__all__ = [
    "DEFAULT_ALGORITHM",
    "Encodable",
    "Hasher",
    "VerificationRecord",
    "added_security_bits",
    "combine_material",
    "encode_scalar",
    "encode_scalars",
    "make_record",
]
