"""Password verification records: clear public data plus a hash.

Both discretization schemes store the same *shape* of record (paper §2.2 and
§3.1):

* **public** material kept in the clear — grid identifiers (Robust: which of
  the 3 grids per click-point; Centered: the per-axis offsets ``d``), plus
  the salt and hashing parameters;
* one **digest** over the concatenation of the public material and the
  secret segment/cell indices of every click-point.

A record deliberately never stores the indices themselves; the only way to
check a login is to discretize the attempted click-points under the stored
public parameters and compare hashes — exactly the verification flow of the
paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence, Tuple

import hmac

from repro.crypto.encoding import Encodable, scalar_from_json, scalar_to_json
from repro.crypto.hashing import Hasher, peppered_hex
from repro.errors import VerificationError

__all__ = [
    "VerificationRecord",
    "combine_material",
    "make_record",
    "peppered_record",
]


def combine_material(
    public: Sequence[Encodable], secret: Sequence[Encodable]
) -> Tuple[Encodable, ...]:
    """Concatenate public and secret scalars in the canonical hash order.

    The paper hashes ``h(d₁ˣ, d₁ʸ, i₁ˣ, i₁ʸ, …, d₅ˣ, d₅ʸ, i₅ˣ, i₅ʸ)`` — the
    clear offsets are bound *inside* the hash so a record's digest commits to
    them.  We keep the simpler (public…, secret…) order; what matters is
    that it is fixed, injective (the encoder length-prefixes everything) and
    covers both halves.
    """
    return tuple(public) + tuple(secret)


@dataclass(frozen=True, slots=True)
class VerificationRecord:
    """The stored form of one graphical password.

    Attributes
    ----------
    public:
        Clear-text scalars (grid identifiers / offsets), in a scheme-defined
        order.  Visible to any attacker who obtains the password file.
    digest:
        Hex digest over :func:`combine_material` of the public scalars and
        the secret index scalars.
    hasher:
        The hashing configuration (algorithm, iterations, salt) — also
        clear-text, as in any password file.
    """

    public: Tuple[Encodable, ...]
    digest: str
    hasher: Hasher

    def matches(self, secret: Iterable[Encodable], pepper: bytes = b"") -> bool:
        """Whether *secret* index material reproduces the stored digest.

        For a record created by :func:`peppered_record`, the verifier must
        supply the deployment's *pepper*: the stored digest is the outer
        ``H(pepper || inner)`` form, so without the pepper every candidate
        fails — exactly the fail-closed behavior a stolen password file
        gives an attacker who did not also steal the server config.
        """
        material = combine_material(self.public, tuple(secret))
        if not pepper:
            return self.hasher.verify_scalars(material, self.digest)
        inner = self.hasher.hash_scalars(material)
        outer = peppered_hex(self.hasher.algorithm, pepper, inner)
        return hmac.compare_digest(outer, self.digest)

    def to_json(self) -> dict:
        """JSON-serializable representation."""
        return {
            "public": [scalar_to_json(v) for v in self.public],
            "digest": self.digest,
            "hasher": self.hasher.to_json(),
        }

    @classmethod
    def from_json(cls, data: dict) -> "VerificationRecord":
        """Inverse of :meth:`to_json`."""
        try:
            public = tuple(scalar_from_json(v) for v in data["public"])
            return cls(
                public=public,
                digest=str(data["digest"]),
                hasher=Hasher.from_json(data["hasher"]),
            )
        except (KeyError, TypeError) as exc:
            raise VerificationError(f"malformed record JSON: {exc}") from exc


def make_record(
    public: Sequence[Encodable],
    secret: Sequence[Encodable],
    hasher: Hasher | None = None,
) -> VerificationRecord:
    """Create a :class:`VerificationRecord` from enrollment material.

    >>> record = make_record([7.5], [0])
    >>> record.matches([0]), record.matches([1])
    (True, False)
    """
    hasher = hasher if hasher is not None else Hasher()
    material = combine_material(public, secret)
    digest = hasher.hash_scalars(material)
    return VerificationRecord(tuple(public), digest, hasher)


def peppered_record(
    record: VerificationRecord, pepper: bytes
) -> VerificationRecord:
    """Rewrap a record's digest as ``H(pepper || inner_digest)``.

    Public material, salt and hashing parameters are unchanged (they stay
    in the password file as usual); only the digest is replaced by its
    peppered outer form.  Verify with ``matches(secret, pepper=...)``.
    """
    if not pepper:
        raise VerificationError("peppered_record needs a non-empty pepper")
    return VerificationRecord(
        public=record.public,
        digest=peppered_hex(record.hasher.algorithm, pepper, record.digest),
        hasher=record.hasher,
    )
